"""Chaos/soak harness: seeded random failure, provable job accounting.

Drives the serve engine through a *seeded randomized fault schedule*
while submitting a wave of tiny jobs, then gates on invariants audited
over the store's JSONL mutation journal — not on anything the harness
observed while the chaos was running:

* every submitted job reaches a terminal state (none lost at the
  deadline), and the journal shows each reaching it **exactly once**;
* attempt counts never regress except through an explicit refund and
  never jump by more than one;
* no orphaned ``/dev/shm`` segments survive the run;
* every ``done`` job's result is **bit-identical** to a fault-free
  inline reference run of the same spec and flow config.

The chaos itself (all seeded by ``--seed``):

* probabilistic fault injection — ``serve.http_500`` and
  ``serve.client_conn_reset`` armed in the bench process (the server
  handlers and client run here), ``serve.store_write`` /
  ``serve.disk_full`` armed per-job inside the worker processes via
  ``options.faults``;
* random ``SIGKILL`` of busy workers;
* random cancels of a subset of jobs;
* random engine restarts mid-load (drain → close → reopen on the same
  root), exercising orphan requeue + checkpoint resume.

Two modes::

    PYTHONPATH=src python benchmarks/bench_chaos.py --jobs 24 --seed 7
    PYTHONPATH=src python benchmarks/bench_chaos.py \
        --drill restart --jobs 50           # ISSUE 9 restart-under-load

The restart drill is the acceptance criterion made executable: drain
during a 50-job run (the exact code path ``repro serve`` runs on
SIGTERM), restart the engine on the same root, finish everything with
zero lost or duplicated terminal states and bit-identical results.

The record (``BENCH_chaos.json``) carries exact-gated invariant
metrics (all zeros, seed-independent) plus wide-open outcome counts;
see ``chaos_*`` in ``repro.obs.runs.TOLERANCES``.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import random
import shutil
import signal
import sys
import tempfile
import time

from repro.resilience.faults import FaultPlan, fault_plan, install_plan
from repro.serve import JobServer, ServeClient, ServeSettings
from repro.serve.journal import JobJournal, check_invariants
from repro.serve.schema import TERMINAL_STATES
from repro.serve.store import JobStore

#: The tiny-job template: small and stage-complete.
JOB_CELLS = 40
JOB_GP_ITERS = 3

#: Result fields that must be bit-identical to the fault-free reference.
RESULT_FIELDS = (
    "hpwl_gp", "hpwl_legal", "hpwl_final", "rc", "scaled_hpwl",
    "total_overflow", "peak_congestion", "legal",
)


def _settings(args) -> ServeSettings:
    return ServeSettings(
        workers=args.workers,
        poll_interval=0.05,
        heartbeat_interval=0.25,
        monitor_interval=0.2,
        stale_timeout=args.stale_timeout,
        cancel_grace=2.0,
        default_max_retries=5,
        drain_timeout=args.drain_timeout,
    )


def _shm_entries() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return set()


def _job_options(rng: random.Random, *, seed: int, chaos: bool) -> dict:
    options: dict = {
        "route": False,
        "run_dp": False,
        "config": {"gp.max_outer_iterations": JOB_GP_ITERS},
    }
    if chaos:
        # Worker-side store faults, seeded per job so the whole
        # schedule replays from --seed alone.
        options["faults"] = (
            f"serve.store_write~0.03,serve.disk_full~0.01,"
            f"seed={rng.randrange(1, 1_000_000)}"
        )
    return options


def submit_jobs(client: ServeClient, count: int, rng: random.Random,
                *, chaos: bool) -> list:
    job_ids = []
    for i in range(count):
        record = client.submit(
            {
                "spec": {
                    "name": f"chaos{i:04d}",
                    "num_cells": JOB_CELLS,
                    "seed": rng.randrange(1, 10_000_000),
                }
            },
            options=_job_options(rng, seed=i, chaos=chaos),
            priority=rng.randrange(0, 3),
        )
        job_ids.append(record["job_id"])
    return job_ids


def reference_result(record: dict) -> dict:
    """Fault-free inline run of one job's spec + flow config."""
    from repro.flow import NTUplace4H
    from repro.serve.worker import (
        build_design,
        build_flow_config,
        flow_result_summary,
    )

    options = dict(record.get("options") or {})
    options.pop("faults", None)
    job_dir = tempfile.mkdtemp(prefix="chaos-ref-")
    try:
        cfg = build_flow_config(options, job_dir=job_dir,
                                default_workers=1, runs_dir=None)
        design = build_design(record["design"])
        result = NTUplace4H(cfg).run(
            design, route=bool(options.get("route", True))
        )
        return flow_result_summary(result)
    finally:
        shutil.rmtree(job_dir, ignore_errors=True)


def verify_results(finals: list, *, limit: int = 0) -> tuple[int, list]:
    """Count done jobs whose results differ from a fault-free rerun."""
    install_plan(None)  # references must run clean
    done = [r for r in finals if r["state"] == "done"]
    if limit:
        done = done[:limit]
    mismatches = []
    for record in done:
        ref = reference_result(record)
        got = record.get("result") or {}
        diffs = {
            field: (got.get(field), ref.get(field))
            for field in RESULT_FIELDS
            if got.get(field) != ref.get(field)
        }
        if diffs:
            mismatches.append({"job_id": record["job_id"], "diffs": diffs})
    return len(done), mismatches


def audit(root: str, job_ids: list, finals: list,
          *, strict_journal: bool) -> dict:
    """The invariant gate: journal audit + store-level accounting.

    ``strict_journal`` additionally requires the journal itself to show
    every job terminal (the restart drill, where no SIGKILL can eat the
    sub-millisecond commit-to-journal-append window).  The soak audits
    the journal per-job and takes lost-job accounting from the store,
    which is authoritative.
    """
    journal = JobJournal(root)
    violations = check_invariants(
        journal,
        expect_submitted=len(job_ids) if strict_journal else None,
    )
    by_id = {r["job_id"]: r for r in finals}
    lost = [j for j in job_ids if by_id.get(j, {}).get("state")
            not in TERMINAL_STATES]
    duplicate_terminals = sum(
        1 for v in violations if "terminal state" in v and "times" in v
    )
    attempt_regressions = sum(
        1 for v in violations if "regressed" in v or "jumped" in v
    )
    return {
        "violations": violations,
        "lost": lost,
        "duplicate_terminals": duplicate_terminals,
        "attempt_regressions": attempt_regressions,
    }


def _kill_one_busy_worker(store: JobStore, rng: random.Random) -> bool:
    running = [r for r in store.running() if r.get("worker")]
    if not running:
        return False
    victim = rng.choice(running)
    try:
        os.kill(victim["worker"], signal.SIGKILL)
    except (ProcessLookupError, OSError):
        return False
    return True


def run_soak(args) -> dict:
    rng = random.Random(args.seed)
    shm_before = _shm_entries()
    # Bench-process faults: server handlers + client both live here.
    install_plan(FaultPlan.parse(
        f"serve.http_500~{args.http_500_prob},"
        f"serve.client_conn_reset~{args.conn_reset_prob},"
        f"seed={args.seed}"
    ))
    settings = _settings(args)
    t0 = time.perf_counter()
    server = JobServer(args.root, settings=settings).start()
    store = JobStore(args.root)  # read-side handle that survives restarts
    kills = 0
    restarts = 0
    cancelled_req = set()
    try:
        client = ServeClient(server.url, timeout=60.0, client_id="chaos",
                             backoff=0.1)
        job_ids = submit_jobs(client, args.jobs, rng, chaos=True)
        cancel_targets = set(rng.sample(
            job_ids, max(1, len(job_ids) // 10)
        ))
        deadline = time.monotonic() + args.timeout
        next_kill = time.monotonic() + rng.uniform(1.0, 3.0)
        restart_times = sorted(
            time.monotonic() + rng.uniform(1.0, 3.0) * (i + 1)
            for i in range(args.restarts)
        )
        while time.monotonic() < deadline:
            counts = store.counts()
            open_jobs = counts.get("queued", 0) + counts.get("running", 0)
            if open_jobs == 0:
                break
            now = time.monotonic()
            if now >= next_kill:
                if _kill_one_busy_worker(store, rng):
                    kills += 1
                next_kill = now + rng.uniform(
                    args.kill_interval * 0.5, args.kill_interval * 1.5
                )
            for job_id in list(cancel_targets):
                if rng.random() < 0.2:
                    cancel_targets.discard(job_id)
                    cancelled_req.add(job_id)
                    try:
                        client.cancel(job_id)
                    except Exception:
                        cancelled_req.discard(job_id)
            if restart_times and now >= restart_times[0]:
                restart_times.pop(0)
                server.drain(args.drain_timeout)
                server.close()
                restarts += 1
                server = JobServer(args.root, settings=settings).start()
                client = ServeClient(server.url, timeout=60.0,
                                     client_id="chaos", backoff=0.1)
            time.sleep(0.2)
        finals = [store.get(j) for j in job_ids]
        bench_faults = fault_plan().fire_count() if fault_plan() else 0
    finally:
        server.close()
        install_plan(None)
    checked = audit(args.root, job_ids, finals, strict_journal=False)
    verified, mismatches = verify_results(
        finals, limit=args.max_reference
    )
    shm_orphans = sorted(_shm_entries() - shm_before)
    wall = time.perf_counter() - t0
    states: dict = {}
    requeues = 0
    for r in finals:
        states[r["state"]] = states.get(r["state"], 0) + 1
        requeues += len(r.get("requeues") or ())
    recoveries = len(glob.glob(
        os.path.join(args.root, "jobs.sqlite.quarantine-*")
    ))
    return {
        "design": "serve-chaos",
        "mode": "soak",
        "seed": args.seed,
        "workers": args.workers,
        "wall_s": round(wall, 3),
        "violations": checked["violations"],
        "lost_ids": checked["lost"],
        "result_mismatches": mismatches,
        "shm_orphans": shm_orphans,
        "cancel_requested": len(cancelled_req),
        "reference_runs": verified,
        "metrics": {
            "chaos_submitted": args.jobs,
            "chaos_done": states.get("done", 0),
            "chaos_failed": states.get("failed", 0),
            "chaos_cancelled": states.get("cancelled", 0),
            "chaos_requeues": requeues,
            "chaos_worker_kills": kills,
            "chaos_restarts": restarts,
            "chaos_faults_fired": bench_faults,
            "chaos_store_recoveries": recoveries,
            "chaos_invariant_violations": len(checked["violations"]),
            "chaos_lost_jobs": len(checked["lost"]),
            "chaos_duplicate_terminals": checked["duplicate_terminals"],
            "chaos_attempt_regressions": checked["attempt_regressions"],
            "chaos_orphaned_shm": len(shm_orphans),
            "chaos_result_mismatches": len(mismatches),
        },
    }


def run_restart_drill(args) -> dict:
    """Restart under load: drain mid-run, reopen, lose nothing."""
    rng = random.Random(args.seed)
    shm_before = _shm_entries()
    settings = _settings(args)
    t0 = time.perf_counter()
    server = JobServer(args.root, settings=settings).start()
    try:
        client = ServeClient(server.url, timeout=60.0, client_id="drill")
        job_ids = submit_jobs(client, args.jobs, rng, chaos=False)
        # Let the fleet get some jobs genuinely in flight first.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            counts = server.store.counts()
            if counts.get("done", 0) >= 2 and counts.get("running", 0):
                break
            time.sleep(0.1)
        # The `repro serve` SIGTERM path, inline: drain then close.
        drain_t0 = time.monotonic()
        summary = server.drain(args.drain_timeout)
        drain_wall = time.monotonic() - drain_t0
        drained_within_deadline = drain_wall <= args.drain_timeout + 2.0
        server.close()
        leftover_running = len(JobStore(args.root).running())
    finally:
        server.close()
    # Restart on the same root; the new engine must finish everything.
    server = JobServer(args.root, settings=settings).start()
    try:
        client = ServeClient(server.url, timeout=60.0, client_id="drill")
        finals_map = client.wait_all(job_ids, timeout=args.timeout)
        finals = [finals_map[j] for j in job_ids if j in finals_map]
    finally:
        server.close()
    checked = audit(args.root, job_ids, finals, strict_journal=True)
    verified, mismatches = verify_results(
        finals, limit=args.max_reference
    )
    shm_orphans = sorted(_shm_entries() - shm_before)
    wall = time.perf_counter() - t0
    states: dict = {}
    requeues = 0
    resumed = 0
    for r in finals:
        states[r["state"]] = states.get(r["state"], 0) + 1
        requeues += len(r.get("requeues") or ())
        if (r.get("result") or {}).get("resumed_stages"):
            resumed += 1
    not_done = args.jobs - states.get("done", 0)
    return {
        "design": "serve-chaos",
        "mode": "restart-drill",
        "seed": args.seed,
        "workers": args.workers,
        "wall_s": round(wall, 3),
        "drain_summary": summary,
        "drain_wall_s": round(drain_wall, 3),
        "drained_within_deadline": drained_within_deadline,
        "running_after_close": leftover_running,
        "resumed_jobs": resumed,
        "violations": checked["violations"],
        "lost_ids": checked["lost"],
        "result_mismatches": mismatches,
        "shm_orphans": shm_orphans,
        "reference_runs": verified,
        "metrics": {
            "chaos_submitted": args.jobs,
            "chaos_done": states.get("done", 0),
            "chaos_failed": states.get("failed", 0) + not_done,
            "chaos_cancelled": states.get("cancelled", 0),
            "chaos_requeues": requeues,
            "chaos_worker_kills": 0,
            "chaos_restarts": 1,
            "chaos_faults_fired": 0,
            "chaos_store_recoveries": 0,
            "chaos_invariant_violations": len(checked["violations"]),
            "chaos_lost_jobs": len(checked["lost"]),
            "chaos_duplicate_terminals": checked["duplicate_terminals"],
            "chaos_attempt_regressions": checked["attempt_regressions"],
            "chaos_orphaned_shm": len(shm_orphans),
            "chaos_result_mismatches": len(mismatches),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--drill", choices=["soak", "restart"], default="soak",
        help="soak = randomized chaos schedule; restart = the "
        "restart-under-load acceptance drill",
    )
    parser.add_argument("--jobs", type=int, default=24)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="overall deadline for all jobs to go terminal",
    )
    parser.add_argument("--stale-timeout", type=float, default=10.0)
    parser.add_argument("--drain-timeout", type=float, default=30.0)
    parser.add_argument(
        "--kill-interval", type=float, default=4.0,
        help="mean seconds between random worker SIGKILLs (soak)",
    )
    parser.add_argument(
        "--restarts", type=int, default=1,
        help="random engine restarts during the soak",
    )
    parser.add_argument("--http-500-prob", type=float, default=0.05)
    parser.add_argument("--conn-reset-prob", type=float, default=0.05)
    parser.add_argument(
        "--max-reference", type=int, default=0,
        help="cap fault-free reference reruns (0 = verify every done "
        "job)",
    )
    parser.add_argument("--root", default="chaos_bench_state")
    parser.add_argument("--out", default="BENCH_chaos.json")
    args = parser.parse_args(argv)

    if os.path.exists(args.root):
        shutil.rmtree(args.root)

    if args.drill == "restart":
        record = run_restart_drill(args)
    else:
        record = run_soak(args)

    metrics = record["metrics"]
    passed = (
        metrics["chaos_invariant_violations"] == 0
        and metrics["chaos_lost_jobs"] == 0
        and metrics["chaos_duplicate_terminals"] == 0
        and metrics["chaos_attempt_regressions"] == 0
        and metrics["chaos_orphaned_shm"] == 0
        and metrics["chaos_result_mismatches"] == 0
    )
    if args.drill == "restart":
        passed = passed and (
            record["drained_within_deadline"]
            and record["running_after_close"] == 0
            and metrics["chaos_done"] == metrics["chaos_submitted"]
        )
    record["passed"] = passed
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(
        f"[{record['mode']} seed={record['seed']}] "
        f"{metrics['chaos_done']} done / {metrics['chaos_failed']} failed "
        f"/ {metrics['chaos_cancelled']} cancelled of "
        f"{metrics['chaos_submitted']} in {record['wall_s']:.1f}s "
        f"(kills {metrics['chaos_worker_kills']}, restarts "
        f"{metrics['chaos_restarts']}, requeues "
        f"{metrics['chaos_requeues']}, faults fired "
        f"{metrics['chaos_faults_fired']})"
    )
    print(
        f"invariants: {metrics['chaos_invariant_violations']} violations, "
        f"{metrics['chaos_lost_jobs']} lost, "
        f"{metrics['chaos_duplicate_terminals']} duplicate terminals, "
        f"{metrics['chaos_attempt_regressions']} attempt regressions, "
        f"{metrics['chaos_orphaned_shm']} shm orphans, "
        f"{metrics['chaos_result_mismatches']}/{record['reference_runs']} "
        f"reference mismatches"
    )
    print(f"wrote {args.out}")
    if not passed:
        for line in record["violations"][:20]:
            print(f"  - {line}", file=sys.stderr)
        print("FAIL: chaos invariants violated", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
