"""Detailed-placement & legalization perf-regression harness.

Runs legalization + detailed placement on a deterministic pre-DP
placement twice — once with ``LegalConfig(reference=True)`` /
``DPConfig(reference=True)`` (the original per-object Tetris, Abacus,
audit, scoring, and spreading loops, kept verbatim as the golden
baseline) and once on the array-based hot paths — verifies the two
produce *bit-identical* final placements and identical per-pass
trajectories, and writes a machine-readable ``BENCH_dp.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_dp_perf.py                  # rh06
    PYTHONPATH=src python benchmarks/bench_dp_perf.py --design rh02 \
        --repeats 1 --out BENCH_dp.json --trace-summary trace.txt

The pre-DP placement is rebuilt fresh for every run (suite design +
``initial_placement`` with a fixed seed), so both modes start from the
same coordinates without sharing mutable state.  Wall time varies run to
run, so each mode is timed ``--repeats`` times in alternating order and
the per-mode *minimum* is compared; the quality numbers (HPWL, accepted
moves, pass count) are mode-independent by construction and are what
``benchmarks/check_regression.py`` gates on.  Result equality is
asserted here, so a CI run fails loudly on any behaviour drift; timing
itself is machine-dependent and not gated, except via the optional
``--min-speedup`` floor used when regenerating the committed record.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from common import host_metadata

from repro.benchgen import SUITE, make_suite_design
from repro.dp import DetailedPlacer, DPConfig
from repro.gp import initial_placement
from repro.legal import LegalConfig, Legalizer
from repro.obs import SamplingProfiler, Tracer, format_trace_summary, use_tracer

SEED = 3


def _run_dp(design_name: str, reference: bool, tracer=None):
    """Legalize + detail-place one fresh pre-placed design copy.

    Returns ``(legal_wall, dp_wall, state, legal_result, dp_report,
    design)`` where ``state`` is the final ``(x, y)`` coordinate pair.
    """
    design = make_suite_design(design_name)
    initial_placement(design, seed=SEED)
    legalizer = Legalizer(LegalConfig(reference=reference))
    placer = DetailedPlacer(DPConfig(reference=reference))
    if tracer is not None:
        with use_tracer(tracer):
            t0 = time.perf_counter()
            result = legalizer.legalize(design)
            t1 = time.perf_counter()
            report = placer.run(design, result.submap)
            t2 = time.perf_counter()
    else:
        t0 = time.perf_counter()
        result = legalizer.legalize(design)
        t1 = time.perf_counter()
        report = placer.run(design, result.submap)
        t2 = time.perf_counter()
    state = (
        np.array([n.x for n in design.nodes]),
        np.array([n.y for n in design.nodes]),
    )
    return t1 - t0, t2 - t1, state, result, report, design


def _assert_identical(ref_state, opt_state, ref_passes, opt_passes) -> None:
    if not np.array_equal(ref_state[0], opt_state[0]) or not np.array_equal(
        ref_state[1], opt_state[1]
    ):
        raise AssertionError("final placements differ between reference and optimized")
    if ref_passes != opt_passes:
        raise AssertionError(
            "per-pass trajectories differ between reference and optimized"
        )


def _stage_breakdown(tracer: Tracer) -> dict:
    """Aggregate traced span wall time by top-level stage name."""
    stages: dict = {}
    for span in tracer.finished_spans():
        name = span.name.split("[")[0]
        stages[name] = stages.get(name, 0.0) + span.duration
    return {k: round(v, 4) for k, v in sorted(stages.items(), key=lambda kv: -kv[1])}


def run_bench(design_name: str, repeats: int):
    ref_times: list[float] = []
    opt_times: list[float] = []
    ref_state = opt_state = None
    ref_report = report = None
    result = None
    design = None
    for _ in range(repeats):
        lw, dw, opt_state, result, report, design = _run_dp(
            design_name, reference=False
        )
        opt_times.append(lw + dw)
        lw, dw, ref_state, _, ref_report, _ = _run_dp(design_name, reference=True)
        ref_times.append(lw + dw)

    _assert_identical(ref_state, opt_state, ref_report.passes, report.passes)

    tracer = Tracer()
    profiler = SamplingProfiler(tracer)
    with profiler:
        _run_dp(design_name, reference=False, tracer=tracer)

    baseline = min(ref_times)
    optimized = min(opt_times)
    record = {
        "design": design_name,
        "num_nodes": design.num_nodes,
        "seed": SEED,
        "repeats": repeats,
        "baseline_s": round(baseline, 4),
        "baseline_runs_s": [round(t, 4) for t in ref_times],
        "optimized_s": round(optimized, 4),
        "optimized_runs_s": [round(t, 4) for t in opt_times],
        "speedup": round(baseline / optimized, 3),
        "stages_s": _stage_breakdown(tracer),
        "metrics": {
            "hpwl": design.hpwl(),
            "dp_improvement": report.improvement,
            "dp_accepted": sum(p[1] for p in report.passes),
            "dp_pass_count": len(report.passes),
            "legal_ok": int(result.ok),
            "max_displacement": result.max_displacement,
        },
        "identical_placements": True,
        "identical_metrics": True,
        # True when a resilience fallback fired mid-bench; the regression
        # gate refuses degraded records.
        "degraded": bool(report.budget_exhausted or not result.ok),
        # Sampling-profiler attribution of the traced run (top-level on
        # purpose: check_regression only gates keys under "metrics").
        "profile": profiler.as_record(),
        "host": host_metadata(),
    }
    return record, tracer, profiler


def run_worker_sweep(design_name: str, counts) -> dict:
    """Legalize + detail-place at each worker count; assert bit-identity.

    Worker counts feed :class:`LegalConfig` (row-parallel Tetris/Abacus);
    detailed placement itself is move-sequential and stays single-process
    at every count.  Parallel legalization is bit-identical by
    construction, so any mismatch is a hard failure, not a data point.
    """
    counts = sorted(set(int(c) for c in counts) | {1})
    sweep = []
    base_state = None
    base_wall = None
    for w in counts:
        design = make_suite_design(design_name)
        initial_placement(design, seed=SEED)
        placer = DetailedPlacer(DPConfig(workers=w))
        t0 = time.perf_counter()
        result = Legalizer(LegalConfig(workers=w)).legalize(design)
        placer.run(design, result.submap)
        wall = time.perf_counter() - t0
        state = (
            np.array([n.x for n in design.nodes]),
            np.array([n.y for n in design.nodes]),
        )
        if w == 1:
            base_state = state
            base_wall = wall
            identical = True
        else:
            identical = np.array_equal(base_state[0], state[0]) and np.array_equal(
                base_state[1], state[1]
            )
        sweep.append(
            {
                "workers": w,
                "wall_s": round(wall, 4),
                "speedup": round(base_wall / wall, 3) if wall > 0 else 0.0,
                "identical": bool(identical),
            }
        )
    return {"sweep": sweep, "deterministic": True}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--design", default="rh06", choices=sorted(SUITE),
        help="suite design to legalize and detail-place (default: rh06)",
    )
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--out", default="BENCH_dp.json")
    parser.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="fail unless baseline/optimized reaches this ratio "
        "(used when regenerating the committed record; 0 disables)",
    )
    parser.add_argument(
        "--trace-summary", metavar="PATH",
        help="write the traced optimized run's span/counter summary here",
    )
    parser.add_argument(
        "--workers-sweep", metavar="COUNTS",
        help="comma-separated worker counts (e.g. 1,2,4): legalize+DP at "
        "each, assert bit-identity vs workers=1, and add per-count "
        "scaling to the record's 'parallel' section",
    )
    args = parser.parse_args(argv)

    record, tracer, profiler = run_bench(args.design, max(1, args.repeats))
    if args.workers_sweep:
        counts = [c for c in args.workers_sweep.split(",") if c.strip()]
        record["parallel"] = run_worker_sweep(args.design, counts)
        record["identical_parallel_placements"] = all(
            row["identical"] for row in record["parallel"]["sweep"]
        )
        record["host"]["workers"] = max(int(c) for c in counts)
        if not record["identical_parallel_placements"]:
            print("ERROR: parallel placements differ from workers=1", file=sys.stderr)
            return 1
        for row in record["parallel"]["sweep"]:
            print(
                f"  workers={row['workers']}: {row['wall_s']:.3f}s "
                f"({row['speedup']:.2f}x)"
            )
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(
        f"{record['design']}: baseline {record['baseline_s']:.3f}s  "
        f"optimized {record['optimized_s']:.3f}s  "
        f"speedup {record['speedup']:.2f}x  "
        f"hpwl {record['metrics']['hpwl']:.4g}  "
        f"accepted {record['metrics']['dp_accepted']}"
    )
    print(f"wrote {args.out}")

    if args.trace_summary:
        with open(args.trace_summary, "w", encoding="utf-8") as fh:
            fh.write(format_trace_summary(tracer, profile=profiler))
            fh.write("\n")
        print(f"wrote {args.trace_summary}")

    if args.min_speedup > 0 and record["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {record['speedup']:.2f}x below the "
            f"--min-speedup floor {args.min_speedup:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
