"""Figure 1 — global-placement convergence.

Reproduces the GP convergence figure: HPWL and density overflow per outer
iteration.  Expected shape: overflow decays monotonically (up to small
wobble) toward the target while HPWL grows from the clumped optimum and
plateaus — the classic analytical-placement trade curve.
"""

from repro.benchgen import make_suite_design
from repro.gp import GlobalPlacer, GPConfig
from repro.metrics import format_table

from benchmarks.common import bench_designs, print_banner

_SERIES = {}


def test_fig1_convergence(benchmark):
    name = bench_designs()[1]  # a congested design makes the nicer curve

    def run():
        design = make_suite_design(name)
        cfg = GPConfig(clustering=False)
        report = GlobalPlacer(cfg).place(design)
        _SERIES["report"] = report
        _SERIES["name"] = name
        return report.final_overflow

    benchmark.pedantic(run, rounds=1, iterations=1)

    report = _SERIES["report"]
    print_banner(f"Figure 1: GP convergence on {_SERIES['name']}")
    rows = [
        {
            "iter": it.outer,
            "HPWL": round(it.hpwl, 0),
            "overflow": round(it.overflow, 4),
            "lambda": f"{it.lam:.2e}",
            "inflation": round(it.mean_inflation, 3),
        }
        for it in report.iterations
    ]
    print(format_table(rows))
    overflow = [it.overflow for it in report.iterations]
    hpwl = [it.hpwl for it in report.iterations]
    # Shape assertions: overflow shrinks by >2x, HPWL grows as it spreads.
    assert overflow[-1] < 0.5 * overflow[0]
    assert hpwl[-1] > hpwl[0]
