"""Figure 2 — congestion heat map, wirelength-only vs routability-driven.

Reproduces the paper's before/after congestion maps: the same congested
design placed by both flows, routed, and rendered as per-tile
usage/capacity heat maps.  Expected shape: the wirelength-only hotspot
over the capacity-starved band dissolves (or at least shrinks and cools)
under the routability-driven flow.
"""

import numpy as np

from repro.viz import ascii_heatmap

from benchmarks.common import bench_designs, print_banner, run_flow

_MAPS = {}


def test_fig2_maps(benchmark):
    # Prefer a congested design if the subset includes one.
    from repro.benchgen import SUITE

    candidates = [n for n in bench_designs() if SUITE[n].congested_band > 0]
    name = candidates[0] if candidates else bench_designs()[0]

    def run():
        for flow_name, routability in (("WL-driven", False), ("NTUplace4h", True)):
            _, result = run_flow(name, routability=routability)
            _MAPS[flow_name] = (result.route_result.congestion_map(), result)
        return True

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_banner(f"Figure 2: congestion maps on {name} (usage/capacity per tile)")
    vmax = max(float(m.max()) for m, _ in _MAPS.values())
    for flow_name, (cmap, result) in _MAPS.items():
        hot = float((cmap > 1.0).mean())
        print(
            f"\n--- {flow_name}: RC {result.rc:.3f}, peak {result.peak_congestion:.2f}, "
            f"tiles over capacity {100 * hot:.1f}% ---"
        )
        print(ascii_heatmap(cmap, vmax=vmax))
    wl_map = _MAPS["WL-driven"][0]
    rd_map = _MAPS["NTUplace4h"][0]
    # Shape: the routability-driven flow has no more over-capacity tiles.
    assert (rd_map > 1.0).sum() <= (wl_map > 1.0).sum() + 2
