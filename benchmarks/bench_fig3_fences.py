"""Figure 3 — fence-region compliance through the flow.

Reproduces the hierarchy figure: the fraction of fenced cells inside
their fence at every global-placement iteration, then after projection,
legalization and detailed placement.  Expected shape: compliance climbs
as the fence weight grows, projection closes the gap, and the back-end
stages never break it (100% at the end — a hard constraint).
"""

import numpy as np
import pytest

from repro.benchgen import SUITE, make_suite_design
from repro.db import Design
from repro.dp import DetailedPlacer, DPConfig
from repro.gp import GlobalPlacer, GPConfig, fence_violation
from repro.legal import Legalizer, legalize_macros
from repro.metrics import format_table

from benchmarks.common import bench_designs, print_banner

_SERIES = {}


def _compliance(design: Design) -> float:
    fenced = sum(
        1 for n in design.nodes if n.region is not None and n.is_movable
    )
    if fenced == 0:
        return 1.0
    bad, _ = fence_violation(design)
    return 1.0 - bad / fenced


def test_fig3_fence_compliance(benchmark):
    candidates = [n for n in bench_designs() if SUITE[n].num_fences > 0]
    name = candidates[0] if candidates else "rh03"

    def run():
        design = make_suite_design(name)
        stages = []
        cfg = GPConfig(clustering=False)
        report = GlobalPlacer(cfg).place(design)
        stages.append(("gp+projection", _compliance(design)))
        legalize_macros(design)
        stages.append(("macro_legal", _compliance(design)))
        legal = Legalizer().legalize(design)
        stages.append(("legalize", _compliance(design)))
        DetailedPlacer(DPConfig(rounds=1)).run(design, legal.submap)
        stages.append(("detailed_place", _compliance(design)))
        _SERIES["stages"] = stages
        _SERIES["fence_iters"] = [
            (it.outer, it.fence) for it in report.iterations
        ]
        _SERIES["name"] = name
        return stages[-1][1]

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_banner(f"Figure 3: fence compliance on {_SERIES['name']}")
    print(format_table([
        {"stage": s, "in_fence_fraction": round(c, 4)} for s, c in _SERIES["stages"]
    ]))
    print("\nfence penalty value per GP iteration:")
    print(format_table([
        {"iter": i, "fence_penalty": round(v, 2)} for i, v in _SERIES["fence_iters"]
    ]))
    # Hard-constraint shape: full compliance from projection onward.
    for stage, compliance in _SERIES["stages"]:
        assert compliance == pytest.approx(1.0), stage
