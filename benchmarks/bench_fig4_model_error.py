"""Figure 4 — wirelength-model accuracy: WA vs LSE error against HPWL.

Reproduces the model-accuracy figure of the WA wirelength papers: mean
absolute error of each smooth model against exact HPWL as a function of
the smoothing parameter gamma, in the clumped regime where global
placement actually operates (pin spreads comparable to gamma).  Expected
shape: both errors grow with gamma; the WA curve stays below the LSE
curve, and the worst-case (max) error of WA is far below LSE's.
"""

import numpy as np

from repro.db import Design, Net, Node, Pin
from repro.geometry import Rect
from repro.metrics import format_table
from repro.wirelength import LogSumExp, WeightedAverage, hpwl

from benchmarks.common import print_banner

GAMMAS = (0.5, 1.0, 2.0, 4.0, 8.0)

_ROWS = []


def _random_clumped_design(rng, n_nets=60, spread=4.0):
    d = Design("fig4", core=Rect(0, 0, 200, 200))
    idx = 0
    nets = []
    for _ in range(n_nets):
        k = int(rng.integers(2, 7))
        cx = rng.uniform(20, 180)
        cy = rng.uniform(20, 180)
        members = []
        for _ in range(k):
            node = d.add_node(Node(f"c{idx}", 1, 1))
            node.move_center_to(
                float(cx + rng.uniform(-spread, spread)),
                float(cy + rng.uniform(-spread, spread)),
            )
            members.append(node.index)
            idx += 1
        nets.append(members)
    for j, members in enumerate(nets):
        d.add_net(Net(f"n{j}", pins=[Pin(node=m) for m in members]))
    return d


def test_fig4_model_error(benchmark):
    def run():
        rng = np.random.default_rng(99)
        designs = [_random_clumped_design(rng) for _ in range(4)]
        for gamma in GAMMAS:
            wa_err, lse_err = [], []
            for d in designs:
                arrays = d.pin_arrays()
                cx, cy = d.pull_centers()
                exact = hpwl(arrays, cx, cy)
                wa = WeightedAverage(arrays, d.num_nodes, gamma).value(cx, cy)
                lse = LogSumExp(arrays, d.num_nodes, gamma).value(cx, cy)
                wa_err.append(abs(wa - exact) / exact)
                lse_err.append(abs(lse - exact) / exact)
            _ROWS.append(
                {
                    "gamma": gamma,
                    "WA_err%": round(100 * float(np.mean(wa_err)), 3),
                    "LSE_err%": round(100 * float(np.mean(lse_err)), 3),
                }
            )
        return len(_ROWS)

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_banner("Figure 4: smooth-model relative error vs gamma (clumped nets)")
    print(format_table(_ROWS))
    # Shape: WA below LSE at every gamma in this regime; both increase.
    for row in _ROWS:
        assert row["WA_err%"] <= row["LSE_err%"] + 1e-9
    lse_curve = [r["LSE_err%"] for r in _ROWS]
    assert lse_curve == sorted(lse_curve)
