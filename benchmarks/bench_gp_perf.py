"""Global-placement perf-regression harness.

Runs :class:`~repro.gp.placer.GlobalPlacer` on a generated suite design
twice — once with ``GPConfig(reference=True)`` (the original objective,
density, CG, and orientation code paths, kept verbatim as the golden
baseline) and once on the optimized hot paths — verifies the two produce
*bit-identical* final placements, and writes a machine-readable
``BENCH_gp.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_gp_perf.py                  # rh04
    PYTHONPATH=src python benchmarks/bench_gp_perf.py --design rh01 \
        --repeats 1 --out BENCH_gp.json --trace-summary trace.txt

Placement wall time on one design varies run to run (allocator state,
machine load), so each mode is timed ``--repeats`` times in alternating
order and the per-mode *minimum* is compared; the quality numbers (HPWL,
overflow) are mode-independent by construction and are what
``benchmarks/check_regression.py`` gates on.  Result equality is
asserted here, so a CI run fails loudly on any behaviour drift; timing
itself is machine-dependent and not gated.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from common import host_metadata

from repro.benchgen import SUITE, make_suite_design
from repro.gp.config import GPConfig
from repro.gp.placer import GlobalPlacer
from repro.obs import SamplingProfiler, Tracer, format_trace_summary, use_tracer


def _run_gp(design_name: str, reference: bool, tracer=None, workers: int = 1):
    """Place one fresh copy of the design; returns (wall, state, report)."""
    design = make_suite_design(design_name)
    placer = GlobalPlacer(GPConfig(reference=reference, workers=workers))
    t0 = time.perf_counter()
    if tracer is not None:
        with use_tracer(tracer):
            report = placer.place(design)
    else:
        report = placer.place(design)
    wall = time.perf_counter() - t0
    state = (
        np.array([n.cx for n in design.nodes]),
        np.array([n.cy for n in design.nodes]),
        [n.orientation.name for n in design.nodes],
    )
    return wall, state, report, design


def _assert_identical(ref_state, opt_state) -> None:
    if not np.array_equal(ref_state[0], opt_state[0]) or not np.array_equal(
        ref_state[1], opt_state[1]
    ):
        raise AssertionError("final placements differ between reference and optimized")
    if ref_state[2] != opt_state[2]:
        raise AssertionError("final orientations differ between reference and optimized")


def _stage_breakdown(tracer: Tracer) -> dict:
    """Aggregate traced span wall time by top-level stage name."""
    stages: dict = {}
    for span in tracer.finished_spans():
        name = span.name.split("[")[0]
        stages[name] = stages.get(name, 0.0) + span.duration
    return {k: round(v, 4) for k, v in sorted(stages.items(), key=lambda kv: -kv[1])}


def run_worker_sweep(design_name: str, counts) -> dict:
    """Place at each worker count; assert bit-identity vs workers=1.

    Returns the ``parallel`` section of the bench record: per-count wall
    seconds and speedup over the single-worker run.  The deterministic
    parallel mode guarantees bit-identical placements for any worker
    count, so any mismatch is a hard failure, not a data point.
    """
    counts = sorted(set(int(c) for c in counts) | {1})
    sweep = []
    base_state = None
    base_wall = None
    for w in counts:
        wall, state, _, _ = _run_gp(design_name, reference=False, workers=w)
        if w == 1:
            base_state = state
            base_wall = wall
            identical = True
        else:
            try:
                _assert_identical(base_state, state)
                identical = True
            except AssertionError:
                identical = False
        sweep.append(
            {
                "workers": w,
                "wall_s": round(wall, 4),
                "speedup": round(base_wall / wall, 3) if wall > 0 else 0.0,
                "identical": identical,
            }
        )
    return {"sweep": sweep, "deterministic": True}


def run_bench(design_name: str, repeats: int):
    ref_times: list[float] = []
    opt_times: list[float] = []
    ref_state = opt_state = None
    report = None
    design = None
    for _ in range(repeats):
        wall, opt_state, report, design = _run_gp(design_name, reference=False)
        opt_times.append(wall)
        wall, ref_state, _, _ = _run_gp(design_name, reference=True)
        ref_times.append(wall)

    _assert_identical(ref_state, opt_state)

    tracer = Tracer()
    profiler = SamplingProfiler(tracer)
    with profiler:
        _run_gp(design_name, reference=False, tracer=tracer)

    baseline = min(ref_times)
    optimized = min(opt_times)
    record = {
        "design": design_name,
        "num_nodes": design.num_nodes,
        "repeats": repeats,
        "baseline_s": round(baseline, 4),
        "baseline_runs_s": [round(t, 4) for t in ref_times],
        "optimized_s": round(optimized, 4),
        "optimized_runs_s": [round(t, 4) for t in opt_times],
        "speedup": round(baseline / optimized, 3),
        "stages_s": _stage_breakdown(tracer),
        "metrics": {
            "hpwl": design.hpwl(),
            "overflow": report.final_overflow,
            "gp_iterations": sum(1 for _ in report.iterations),
        },
        "identical_placements": True,
        # True when any resilience fallback fired mid-bench; the
        # regression gate refuses degraded records.
        "degraded": bool(
            report.guard_rollbacks
            or report.guard_exhausted
            or report.budget_exhausted
        ),
        # Sampling-profiler attribution of the traced run (top-level on
        # purpose: check_regression only gates keys under "metrics").
        "profile": profiler.as_record(),
        "host": host_metadata(),
    }
    return record, tracer, profiler


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--design", default="rh04", choices=sorted(SUITE),
        help="suite design to place (default: rh04)",
    )
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--out", default="BENCH_gp.json")
    parser.add_argument(
        "--trace-summary", metavar="PATH",
        help="write the traced optimized run's span/counter summary here",
    )
    parser.add_argument(
        "--workers-sweep", metavar="COUNTS",
        help="comma-separated worker counts (e.g. 1,2,4): place at each, "
        "assert bit-identity vs workers=1, and add per-count scaling to "
        "the record's 'parallel' section",
    )
    args = parser.parse_args(argv)

    record, tracer, profiler = run_bench(args.design, max(1, args.repeats))
    if args.workers_sweep:
        counts = [c for c in args.workers_sweep.split(",") if c.strip()]
        record["parallel"] = run_worker_sweep(args.design, counts)
        record["identical_parallel_placements"] = all(
            row["identical"] for row in record["parallel"]["sweep"]
        )
        record["host"]["workers"] = max(int(c) for c in counts)
        if not record["identical_parallel_placements"]:
            print("ERROR: parallel placements differ from workers=1", file=sys.stderr)
            return 1
        for row in record["parallel"]["sweep"]:
            print(
                f"  workers={row['workers']}: {row['wall_s']:.3f}s "
                f"({row['speedup']:.2f}x)"
            )
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(
        f"{record['design']}: baseline {record['baseline_s']:.3f}s  "
        f"optimized {record['optimized_s']:.3f}s  "
        f"speedup {record['speedup']:.2f}x  "
        f"hpwl {record['metrics']['hpwl']:.4g}  "
        f"overflow {record['metrics']['overflow']:.4f}"
    )
    print(f"wrote {args.out}")

    if args.trace_summary:
        with open(args.trace_summary, "w", encoding="utf-8") as fh:
            fh.write(format_trace_summary(tracer, profile=profiler))
            fh.write("\n")
        print(f"wrote {args.trace_summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
