"""Observability no-op-overhead micro-benchmark.

The placer is instrumented against ``repro.obs`` unconditionally — every
GP iteration enters spans and records metric samples through whatever
tracer is installed.  The design contract is that the default
:data:`~repro.obs.tracer.NULL_TRACER` makes all of that *free*.  This
bench proves that claim three ways:

1. It builds an **obs-stubbed** clone of ``repro.gp.placer`` (an AST
   transform strips every ``with tracer.span(...):`` wrapper and every
   ``tracer.``/``metrics.`` call statement from the source) and runs
   the real instrumented module and the stub on the same suite design
   in alternating order, asserting bit-identical placements.
2. It times both builds (``--repeats`` runs each, per-build minimum)
   and reports the end-to-end wall delta.  Like the other perf benches,
   wall time is machine-dependent and *not* gated — on a loaded CI box
   run-to-run noise dwarfs a sub-0.1% effect.
3. The **gate** is the deterministically *attributed* overhead: one
   traced run counts the exact span/event/sample call volume, a tight
   microbenchmark measures the per-call cost of the disabled
   (``NULL_TRACER``) paths, and ``volume x cost / stub runtime`` must
   stay under ``--max-overhead`` percent (default 1%).  This detects a
   no-op path turning expensive (allocation, locking, clock reads) at
   full sensitivity regardless of machine noise.

Run directly::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py              # rh04
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --design rh01 --repeats 3 --max-overhead 1.0 --out BENCH_obs.json
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
import time
import types

import numpy as np

import repro.gp.placer as placer_mod
from repro.benchgen import SUITE, make_suite_design
from repro.gp.config import GPConfig
from repro.obs import NULL_TRACER, Tracer, use_tracer


class _StripObs(ast.NodeTransformer):
    """Remove ``repro.obs`` instrumentation from a module's AST.

    * ``with tracer.span(...):`` / ``with get_tracer().span(...):``
      blocks (no ``as`` capture) are unwrapped to their bodies;
    * expression statements calling through a ``tracer``/``metrics``
      name (``metrics.record(...)``, ``tracer.event(...)``,
      ``metrics.counter(...).inc()``) are deleted.

    Assignments like ``tracer = get_tracer()`` stay — they run once per
    call, cost nothing, and keep the stub's line numbers meaningful.
    """

    OBS_ROOTS = frozenset({"tracer", "metrics"})

    def __init__(self):
        self.stripped_spans = 0
        self.stripped_calls = 0

    def _root_name(self, node) -> str | None:
        while isinstance(node, (ast.Attribute, ast.Call)):
            node = node.func if isinstance(node, ast.Call) else node.value
        return node.id if isinstance(node, ast.Name) else None

    def _is_span_item(self, item: ast.withitem) -> bool:
        call = item.context_expr
        return (
            item.optional_vars is None
            and isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == "span"
        )

    def visit_With(self, node: ast.With):
        self.generic_visit(node)
        if node.items and all(self._is_span_item(i) for i in node.items):
            self.stripped_spans += len(node.items)
            return node.body
        return node

    def visit_Expr(self, node: ast.Expr):
        self.generic_visit(node)
        if (
            isinstance(node.value, ast.Call)
            and self._root_name(node.value) in self.OBS_ROOTS
        ):
            self.stripped_calls += 1
            return None
        return node


def build_stubbed_placer() -> tuple[types.ModuleType, _StripObs]:
    """Exec an obs-stripped clone of ``repro.gp.placer``."""
    src_path = placer_mod.__file__
    with open(src_path, encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=src_path)
    stripper = _StripObs()
    tree = ast.fix_missing_locations(stripper.visit(tree))
    if not stripper.stripped_spans or not stripper.stripped_calls:
        raise AssertionError(
            "stub transform found no instrumentation to strip — the "
            "placer's obs usage changed; update bench_obs_overhead.py"
        )
    module = types.ModuleType("repro.gp.placer_obs_stub")
    module.__file__ = src_path
    # dataclass machinery resolves string annotations through
    # sys.modules[cls.__module__], so the clone must be registered.
    sys.modules[module.__name__] = module
    code = compile(tree, src_path, "exec")
    exec(code, module.__dict__)
    return module, stripper


def _run_once(placer_cls, design_name: str) -> tuple[float, tuple]:
    design = make_suite_design(design_name)
    placer = placer_cls(GPConfig())
    t0 = time.perf_counter()
    placer.place(design)
    wall = time.perf_counter() - t0
    state = (
        np.array([n.cx for n in design.nodes]),
        np.array([n.cy for n in design.nodes]),
    )
    return wall, state


def null_path_costs(loops: int = 100_000) -> dict:
    """Per-call seconds of the disabled span/record/event paths."""
    tracer = NULL_TRACER
    metrics = tracer.metrics
    t0 = time.perf_counter()
    for i in range(loops):
        with tracer.span(f"iter[{i}]"):  # includes the f-string the
            pass                         # call sites pay for the name
    span_s = (time.perf_counter() - t0) / loops
    t0 = time.perf_counter()
    for i in range(loops):
        metrics.record("gp.hpwl", i, 1.0)
    record_s = (time.perf_counter() - t0) / loops
    t0 = time.perf_counter()
    for i in range(loops):
        tracer.event("watchdog.expired", outer=i)
    event_s = (time.perf_counter() - t0) / loops
    return {"span": span_s, "record": record_s, "event": event_s}


def call_volume(design_name: str) -> dict:
    """Exact obs call counts of one placement, from a real traced run."""
    design = make_suite_design(design_name)
    tracer = Tracer()
    with use_tracer(tracer):
        placer_mod.GlobalPlacer(GPConfig()).place(design)
    return {
        "spans": len(tracer.finished_spans()),
        "events": len(tracer.events()),
        "samples": len(tracer.metrics.samples()),
    }


def run_bench(design_name: str, repeats: int) -> dict:
    stub_mod, stripper = build_stubbed_placer()
    instrumented = placer_mod.GlobalPlacer
    stubbed = stub_mod.GlobalPlacer

    instr_times: list[float] = []
    stub_times: list[float] = []
    instr_state = stub_state = None
    for _ in range(repeats):
        wall, instr_state = _run_once(instrumented, design_name)
        instr_times.append(wall)
        wall, stub_state = _run_once(stubbed, design_name)
        stub_times.append(wall)

    if not np.array_equal(instr_state[0], stub_state[0]) or not np.array_equal(
        instr_state[1], stub_state[1]
    ):
        raise AssertionError(
            "instrumented and obs-stubbed placers produced different "
            "placements — the stub transform altered behaviour"
        )

    instr = min(instr_times)
    stub = min(stub_times)

    volume = call_volume(design_name)
    costs = null_path_costs()
    attributed_s = (
        volume["spans"] * costs["span"]
        + volume["samples"] * costs["record"]
        + volume["events"] * costs["event"]
    )
    return {
        "design": design_name,
        "repeats": repeats,
        "instrumented_s": round(instr, 4),
        "instrumented_runs_s": [round(t, 4) for t in instr_times],
        "stubbed_s": round(stub, 4),
        "stubbed_runs_s": [round(t, 4) for t in stub_times],
        "wall_overhead_pct": round(100.0 * (instr - stub) / stub, 3),
        "call_volume": volume,
        "null_cost_ns": {k: round(v * 1e9, 1) for k, v in costs.items()},
        "attributed_overhead_s": round(attributed_s, 6),
        "overhead_pct": round(100.0 * attributed_s / stub, 4),
        "stripped_spans": stripper.stripped_spans,
        "stripped_calls": stripper.stripped_calls,
        "identical_placements": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--design", default="rh04", choices=sorted(SUITE),
        help="suite design to place (default: rh04)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--max-overhead", type=float, default=1.0, metavar="PCT",
        help="fail when disabled-tracing overhead exceeds this percent "
        "(default: 1.0)",
    )
    parser.add_argument("--out", default="BENCH_obs.json")
    args = parser.parse_args(argv)

    record = run_bench(args.design, max(1, args.repeats))
    record["max_overhead_pct"] = args.max_overhead
    passed = record["overhead_pct"] <= args.max_overhead
    record["passed"] = passed
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    vol = record["call_volume"]
    print(
        f"{record['design']}: instrumented {record['instrumented_s']:.3f}s  "
        f"stubbed {record['stubbed_s']:.3f}s  "
        f"wall delta {record['wall_overhead_pct']:+.2f}% (not gated)"
    )
    print(
        f"attributed: {vol['spans']} spans + {vol['samples']} samples + "
        f"{vol['events']} events -> {record['attributed_overhead_s'] * 1e3:.3f}ms "
        f"= {record['overhead_pct']:.4f}% of stub runtime "
        f"(gate {args.max_overhead:.2f}%)"
    )
    print(f"wrote {args.out}")
    if not passed:
        print(
            f"FAIL: disabled-tracing overhead {record['overhead_pct']:.2f}% "
            f"exceeds {args.max_overhead:.2f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
