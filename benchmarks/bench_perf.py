"""Router perf-regression harness.

Times :class:`~repro.route.router.GlobalRouter` twice on the same
placement of a generated suite design — once in ``reference=True`` mode
(the pre-overhaul per-net/dict/scan implementations, kept verbatim as
the golden baseline) and once on the optimized hot paths — verifies the
two produce *identical* results, and writes a machine-readable
``BENCH_route.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_perf.py                  # rh06, full
    PYTHONPATH=src python benchmarks/bench_perf.py --design rh02 \
        --repeats 2 --out BENCH_route.json --trace-summary trace.txt

The optimized router is timed both cold (decomposition memo empty) and
warm (repeated route calls, the flow-loop regime); ``speedup`` in the
JSON is baseline-best over optimized-best, with the cold ratio reported
alongside.  Identical metrics are asserted, so a CI run fails loudly on
any behaviour drift; timing itself is machine-dependent and not gated
here.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.baselines.random_place import random_placement
from repro.benchgen import SUITE, make_suite_design
from repro.obs import SamplingProfiler, Tracer, format_trace_summary, use_tracer
from repro.route.router import GlobalRouter
from repro.route.steiner import clear_decompose_cache


def _time_route(router: GlobalRouter, arrays, cx, cy, repeats: int):
    """Wall-times of ``repeats`` route calls plus the last result."""
    times = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = router.route(arrays=arrays, cx=cx, cy=cy)
        times.append(time.perf_counter() - t0)
    return times, result


def _assert_identical(ref, opt) -> None:
    if not np.array_equal(ref.graph.use_e, opt.graph.use_e) or not np.array_equal(
        ref.graph.use_n, opt.graph.use_n
    ):
        raise AssertionError("edge usage differs between reference and optimized")
    for attr in ("rc", "total_overflow", "peak_congestion", "vias"):
        a, b = getattr(ref.metrics, attr), getattr(opt.metrics, attr)
        if a != b:
            raise AssertionError(f"metrics.{attr} differs: ref={a} opt={b}")
    if ref.num_segments != opt.num_segments:
        raise AssertionError("segment counts differ")


def run_bench(design_name: str, repeats: int, seed: int) -> dict:
    design = make_suite_design(design_name)
    random_placement(design, seed=seed)
    spec = design.routing
    arrays = design.pin_arrays()
    cx, cy = design.pull_centers()

    ref_times, ref_result = _time_route(
        GlobalRouter(spec, reference=True), arrays, cx, cy, repeats
    )

    clear_decompose_cache()
    opt_router = GlobalRouter(spec)
    cold_times, _ = _time_route(opt_router, arrays, cx, cy, 1)
    warm_times, opt_result = _time_route(opt_router, arrays, cx, cy, repeats)

    _assert_identical(ref_result, opt_result)

    # One traced+profiled optimized route for the "profile" section.
    tracer = Tracer()
    profiler = SamplingProfiler(tracer)
    with use_tracer(tracer), profiler:
        GlobalRouter(spec).route(arrays=arrays, cx=cx, cy=cy)

    baseline = min(ref_times)
    optimized = min(warm_times)
    return {
        "design": design_name,
        "seed": seed,
        "num_nodes": design.num_nodes,
        "num_segments": opt_result.num_segments,
        "repeats": repeats,
        "baseline_s": round(baseline, 4),
        "baseline_runs_s": [round(t, 4) for t in ref_times],
        "optimized_s": round(optimized, 4),
        "optimized_cold_s": round(cold_times[0], 4),
        "optimized_runs_s": [round(t, 4) for t in warm_times],
        "speedup": round(baseline / optimized, 3),
        "speedup_cold": round(baseline / cold_times[0], 3),
        "metrics": {
            "rc": ref_result.metrics.rc,
            "total_overflow": ref_result.metrics.total_overflow,
            "peak_congestion": ref_result.metrics.peak_congestion,
            "vias": ref_result.metrics.vias,
        },
        "identical_metrics": True,
        # The standalone router has no fallback path — it either
        # completes exactly or this bench raises; the field keeps the
        # record schema uniform for the regression gate.
        "degraded": False,
        # Sampling-profiler attribution of the traced run (top-level on
        # purpose: check_regression only gates keys under "metrics").
        "profile": profiler.as_record(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--design", default="rh06", choices=sorted(SUITE),
        help="suite design to route (default: rh06, the largest)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="BENCH_route.json")
    parser.add_argument(
        "--trace-summary", metavar="PATH",
        help="write a traced optimized run's span/counter summary here",
    )
    args = parser.parse_args(argv)

    record = run_bench(args.design, max(1, args.repeats), args.seed)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(
        f"{record['design']}: baseline {record['baseline_s']:.3f}s  "
        f"optimized {record['optimized_s']:.3f}s "
        f"(cold {record['optimized_cold_s']:.3f}s)  "
        f"speedup {record['speedup']:.2f}x"
    )
    print(f"wrote {args.out}")

    if args.trace_summary:
        design = make_suite_design(args.design)
        random_placement(design, seed=args.seed)
        tracer = Tracer()
        with use_tracer(tracer):
            GlobalRouter(design.routing).route(design)
        with open(args.trace_summary, "w", encoding="utf-8") as fh:
            fh.write(format_trace_summary(tracer))
            fh.write("\n")
        print(f"wrote {args.trace_summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
