"""Router perf-regression harness.

Times :class:`~repro.route.router.GlobalRouter` twice on the same
placement of a generated suite design — once in ``reference=True`` mode
(the pre-overhaul per-net/dict/scan implementations, kept verbatim as
the golden baseline) and once on the optimized hot paths — verifies the
two produce *identical* results, and writes a machine-readable
``BENCH_route.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_perf.py                  # rh06, full
    PYTHONPATH=src python benchmarks/bench_perf.py --design rh02 \
        --repeats 2 --out BENCH_route.json --trace-summary trace.txt

The optimized router is timed both cold (decomposition memo empty) and
warm (repeated route calls, the flow-loop regime); ``speedup`` in the
JSON is baseline-best over optimized-best, with the cold ratio reported
alongside.  Identical metrics are asserted, so a CI run fails loudly on
any behaviour drift; timing itself is machine-dependent and not gated
here.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from common import host_metadata

from repro.baselines.random_place import random_placement
from repro.benchgen import SUITE, make_suite_design
from repro.obs import SamplingProfiler, Tracer, format_trace_summary, use_tracer
from repro.route.router import GlobalRouter
from repro.route.steiner import clear_decompose_cache


def _time_route(router: GlobalRouter, arrays, cx, cy, repeats: int):
    """Wall-times of ``repeats`` route calls plus the last result."""
    times = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = router.route(arrays=arrays, cx=cx, cy=cy)
        times.append(time.perf_counter() - t0)
    return times, result


def _assert_identical(ref, opt) -> None:
    if not np.array_equal(ref.graph.use_e, opt.graph.use_e) or not np.array_equal(
        ref.graph.use_n, opt.graph.use_n
    ):
        raise AssertionError("edge usage differs between reference and optimized")
    for attr in ("rc", "total_overflow", "peak_congestion", "vias"):
        a, b = getattr(ref.metrics, attr), getattr(opt.metrics, attr)
        if a != b:
            raise AssertionError(f"metrics.{attr} differs: ref={a} opt={b}")
    if ref.num_segments != opt.num_segments:
        raise AssertionError("segment counts differ")


def run_bench(design_name: str, repeats: int, seed: int) -> dict:
    design = make_suite_design(design_name)
    random_placement(design, seed=seed)
    spec = design.routing
    arrays = design.pin_arrays()
    cx, cy = design.pull_centers()

    ref_times, ref_result = _time_route(
        GlobalRouter(spec, reference=True), arrays, cx, cy, repeats
    )

    clear_decompose_cache()
    opt_router = GlobalRouter(spec)
    cold_times, _ = _time_route(opt_router, arrays, cx, cy, 1)
    warm_times, opt_result = _time_route(opt_router, arrays, cx, cy, repeats)

    _assert_identical(ref_result, opt_result)

    # One traced+profiled optimized route for the "profile" section.
    tracer = Tracer()
    profiler = SamplingProfiler(tracer)
    with use_tracer(tracer), profiler:
        GlobalRouter(spec).route(arrays=arrays, cx=cx, cy=cy)

    baseline = min(ref_times)
    optimized = min(warm_times)
    return {
        "design": design_name,
        "seed": seed,
        "num_nodes": design.num_nodes,
        "num_segments": opt_result.num_segments,
        "repeats": repeats,
        "baseline_s": round(baseline, 4),
        "baseline_runs_s": [round(t, 4) for t in ref_times],
        "optimized_s": round(optimized, 4),
        "optimized_cold_s": round(cold_times[0], 4),
        "optimized_runs_s": [round(t, 4) for t in warm_times],
        "speedup": round(baseline / optimized, 3),
        "speedup_cold": round(baseline / cold_times[0], 3),
        "metrics": {
            "rc": ref_result.metrics.rc,
            "total_overflow": ref_result.metrics.total_overflow,
            "peak_congestion": ref_result.metrics.peak_congestion,
            "vias": ref_result.metrics.vias,
        },
        "identical_metrics": True,
        # The standalone router has no fallback path — it either
        # completes exactly or this bench raises; the field keeps the
        # record schema uniform for the regression gate.
        "degraded": False,
        # Sampling-profiler attribution of the traced run (top-level on
        # purpose: check_regression only gates keys under "metrics").
        "profile": profiler.as_record(),
        "host": host_metadata(),
    }


def run_worker_sweep(design_name: str, seed: int, counts) -> dict:
    """Route at each worker count; assert results match workers=1.

    The parallel rip-up path is bit-identical by construction, so any
    divergence fails the sweep rather than being recorded as data.
    """
    design = make_suite_design(design_name)
    random_placement(design, seed=seed)
    spec = design.routing
    arrays = design.pin_arrays()
    cx, cy = design.pull_centers()
    counts = sorted(set(int(c) for c in counts) | {1})
    sweep = []
    base_result = None
    base_wall = None
    for w in counts:
        clear_decompose_cache()
        times, result = _time_route(
            GlobalRouter(spec, workers=w), arrays, cx, cy, 1
        )
        if w == 1:
            base_result = result
            base_wall = times[0]
            identical = True
        else:
            try:
                _assert_identical(base_result, result)
                identical = True
            except AssertionError:
                identical = False
        sweep.append(
            {
                "workers": w,
                "wall_s": round(times[0], 4),
                "speedup": round(base_wall / times[0], 3) if times[0] > 0 else 0.0,
                "identical": identical,
            }
        )
    return {"sweep": sweep, "deterministic": True}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--design", default="rh06", choices=sorted(SUITE),
        help="suite design to route (default: rh06, the largest)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="BENCH_route.json")
    parser.add_argument(
        "--trace-summary", metavar="PATH",
        help="write a traced optimized run's span/counter summary here",
    )
    parser.add_argument(
        "--workers-sweep", metavar="COUNTS",
        help="comma-separated worker counts (e.g. 1,2,4): route at each, "
        "assert identity vs workers=1, and add per-count scaling to the "
        "record's 'parallel' section",
    )
    args = parser.parse_args(argv)

    record = run_bench(args.design, max(1, args.repeats), args.seed)
    if args.workers_sweep:
        counts = [c for c in args.workers_sweep.split(",") if c.strip()]
        record["parallel"] = run_worker_sweep(args.design, args.seed, counts)
        record["identical_parallel_placements"] = all(
            row["identical"] for row in record["parallel"]["sweep"]
        )
        record["host"]["workers"] = max(int(c) for c in counts)
        if not record["identical_parallel_placements"]:
            print("ERROR: parallel routing differs from workers=1", file=sys.stderr)
            return 1
        for row in record["parallel"]["sweep"]:
            print(
                f"  workers={row['workers']}: {row['wall_s']:.3f}s "
                f"({row['speedup']:.2f}x)"
            )
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(
        f"{record['design']}: baseline {record['baseline_s']:.3f}s  "
        f"optimized {record['optimized_s']:.3f}s "
        f"(cold {record['optimized_cold_s']:.3f}s)  "
        f"speedup {record['speedup']:.2f}x"
    )
    print(f"wrote {args.out}")

    if args.trace_summary:
        design = make_suite_design(args.design)
        random_placement(design, seed=args.seed)
        tracer = Tracer()
        with use_tracer(tracer):
            GlobalRouter(design.routing).route(design)
        with open(args.trace_summary, "w", encoding="utf-8") as fh:
            fh.write(format_trace_summary(tracer))
            fh.write("\n")
        print(f"wrote {args.trace_summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
