"""Learned-congestion-predictor bench: hybrid vs. router inflation.

End-to-end proof of the ``repro.predict`` pipeline: train the model zoo
on three seeded benchgen designs (every byte deterministic), then place
one suite design twice — ``congestion_estimator="router"`` (a real
look-ahead route every inflation round) and ``"hybrid"`` (the trained
predictor every round, the router every K-th round plus a final check) —
and record the quality delta and the inflation-loop speedup in a
machine-readable ``BENCH_predict.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_predict.py                 # rh04
    PYTHONPATH=src python benchmarks/bench_predict.py --design rh06 \
        --repeats 1 --out BENCH_predict.json --trace-summary trace.txt

Wall time is machine-dependent and recorded, not gated; the gated
``predict_*`` metrics (round counts, fallbacks, quality deltas, model
validation MSE) are deterministic for a given code revision, so
``benchmarks/check_regression.py`` fails on any behaviour drift — a
fallback firing mid-bench, a scheduling change, or a model regression.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time

import numpy as np

from common import host_metadata

from repro.benchgen import SUITE, make_suite_design
from repro.gp.config import GPConfig
from repro.gp.placer import GlobalPlacer
from repro.obs import Tracer, format_trace_summary, use_tracer
from repro.predict import train_predictor, training_specs
from repro.predict.model import save_artifact
from repro.route.steiner import clear_decompose_cache


def _train_artifact(seed: int, designs: int) -> tuple[str, dict, float]:
    """Train the zoo on seeded benchgen designs; returns (path, artifact, s)."""
    t0 = time.perf_counter()
    artifact = train_predictor(training_specs(designs, seed), seed=seed)
    train_s = time.perf_counter() - t0
    path = tempfile.mktemp(prefix="bench_predict_", suffix=".json")
    save_artifact(artifact, path)
    return path, artifact, train_s


def _run_gp(design_name: str, estimator: str, model_path: str | None,
            workers: int = 1):
    """Place one fresh copy of the design; returns (wall, spans, report, design).

    The process-wide MST-decomposition memo is dropped first: it is keyed
    on net pin-tile signatures, so a second placement of the same design
    reuses most entries and its look-ahead routes time ~3x faster than a
    fresh process would.  Each timed leg must pay the cold-cache cost a
    real placement pays (warming *within* the run is part of the flow).
    """
    clear_decompose_cache()
    design = make_suite_design(design_name)
    cfg = GPConfig(
        congestion_estimator=estimator,
        predict_model=model_path,
        workers=workers,
    )
    tracer = Tracer()
    t0 = time.perf_counter()
    with use_tracer(tracer):
        report = GlobalPlacer(cfg).place(design)
    wall = time.perf_counter() - t0
    spans: dict = {}
    for span in tracer.finished_spans():
        name = span.name.split("[")[0]
        spans[name] = spans.get(name, 0.0) + span.duration
    return wall, spans, report, design, tracer


def _state(design):
    return (
        np.array([n.cx for n in design.nodes]),
        np.array([n.cy for n in design.nodes]),
    )


def run_bench(design_name: str, repeats: int, seed: int, train_designs: int):
    model_path, artifact, train_s = _train_artifact(seed, train_designs)

    legs: dict = {}
    tracer = None
    for estimator in ("router", "hybrid"):
        walls, inflations = [], []
        spans = report = design = None
        for _ in range(repeats):
            model = model_path if estimator == "hybrid" else None
            wall, spans, report, design, leg_tracer = _run_gp(
                design_name, estimator, model
            )
            walls.append(wall)
            inflations.append(spans.get("inflation", 0.0))
            if estimator == "hybrid":
                tracer = leg_tracer
        legs[estimator] = {
            "wall_s": round(min(walls), 4),
            "inflation_s": round(min(inflations), 4),
            "lookahead_s": round(spans.get("lookahead_route", 0.0), 4),
            "predict_s": round(spans.get("predict", 0.0), 4),
            "hpwl": report.final_hpwl,
            "overflow": report.final_overflow,
            "report": report,
            "state": _state(design),
        }

    router = legs["router"]
    hybrid = legs["hybrid"]
    stats = hybrid["report"].inflation
    hybrid_inflation = max(hybrid["inflation_s"], 1e-9)
    speedup = router["inflation_s"] / hybrid_inflation
    record = {
        "design": design_name,
        "repeats": repeats,
        "train_s": round(train_s, 4),
        "artifact": {
            "primary": artifact["primary"],
            "config_hash": artifact["provenance"]["config_hash"],
            "num_samples": artifact["provenance"]["num_samples"],
        },
        "router": {k: v for k, v in router.items() if k not in ("report", "state")},
        "hybrid": {k: v for k, v in hybrid.items() if k not in ("report", "state")},
        "inflation_speedup": round(speedup, 3),
        "metrics": {
            "hpwl": hybrid["hpwl"],
            "overflow": hybrid["overflow"],
            "gp_iterations": len(hybrid["report"].iterations),
            "predict_router_rounds": stats["router_rounds"],
            "predict_predictor_rounds": stats["predictor_rounds"],
            "predict_fallbacks": 0 if stats["fallback_round"] is None else 1,
            "predict_final_drift": stats["final_drift"],
            "predict_val_mse": artifact["metrics"][
                f"val_mse_{artifact['primary']}"
            ],
            "predict_train_samples": artifact["provenance"]["num_samples"],
            "predict_hpwl_rel_delta": (hybrid["hpwl"] - router["hpwl"])
            / router["hpwl"],
            "predict_overflow_delta": hybrid["overflow"] - router["overflow"],
            # Timing ratio: recorded for the artifact, tolerance-exempt.
            "predict_inflation_speedup": round(speedup, 3),
        },
        "degraded": any(
            leg["report"].guard_rollbacks
            or leg["report"].guard_exhausted
            or leg["report"].budget_exhausted
            for leg in legs.values()
        ),
        "host": host_metadata(),
    }
    return record, legs, tracer, model_path


def run_worker_sweep(design_name: str, counts, model_path: str) -> dict:
    """Hybrid placement at each worker count; bit-identity vs workers=1."""
    counts = sorted(set(int(c) for c in counts) | {1})
    sweep = []
    base_state = None
    base_wall = None
    for w in counts:
        wall, _, _, design, _ = _run_gp(design_name, "hybrid", model_path, workers=w)
        state = _state(design)
        if w == 1:
            base_state, base_wall, identical = state, wall, True
        else:
            identical = np.array_equal(base_state[0], state[0]) and np.array_equal(
                base_state[1], state[1]
            )
        sweep.append(
            {
                "workers": w,
                "wall_s": round(wall, 4),
                "speedup": round(base_wall / wall, 3) if wall > 0 else 0.0,
                "identical": identical,
            }
        )
    return {"sweep": sweep, "deterministic": True}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--design", default="rh04", choices=sorted(SUITE),
        help="suite design to place (default: rh04)",
    )
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--seed", type=int, default=0, help="training-design seed"
    )
    parser.add_argument(
        "--train-designs", type=int, default=3,
        help="number of generated training designs (default 3)",
    )
    parser.add_argument("--out", default="BENCH_predict.json")
    parser.add_argument(
        "--trace-summary", metavar="PATH",
        help="write the traced hybrid run's span/counter summary here",
    )
    parser.add_argument(
        "--workers-sweep", metavar="COUNTS",
        help="comma-separated worker counts (e.g. 1,2): run the hybrid "
        "placement at each and assert bit-identity vs workers=1",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="fail unless the inflation-loop speedup reaches this factor "
        "(timing-based: leave 0 on shared/noisy runners)",
    )
    args = parser.parse_args(argv)

    record, _, tracer, model_path = run_bench(
        args.design, max(1, args.repeats), args.seed, args.train_designs
    )
    # Reuse the already-trained artifact for the sweep.
    if args.workers_sweep:
        counts = [c for c in args.workers_sweep.split(",") if c.strip()]
        record["parallel"] = run_worker_sweep(args.design, counts, model_path)
        record["identical_parallel_placements"] = all(
            row["identical"] for row in record["parallel"]["sweep"]
        )
        if not record["identical_parallel_placements"]:
            print(
                "ERROR: hybrid placements differ from workers=1",
                file=sys.stderr,
            )
            return 1
        for row in record["parallel"]["sweep"]:
            print(
                f"  workers={row['workers']}: {row['wall_s']:.3f}s "
                f"({row['speedup']:.2f}x)"
            )

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    m = record["metrics"]
    print(
        f"{record['design']}: inflation router "
        f"{record['router']['inflation_s']:.3f}s  hybrid "
        f"{record['hybrid']['inflation_s']:.3f}s  speedup "
        f"{record['inflation_speedup']:.2f}x  hpwl delta "
        f"{100 * m['predict_hpwl_rel_delta']:+.2f}%  rounds "
        f"{m['predict_router_rounds']}R/{m['predict_predictor_rounds']}P  "
        f"final drift {m['predict_final_drift']:.3f}"
    )
    print(f"wrote {args.out}")

    if args.trace_summary and tracer is not None:
        with open(args.trace_summary, "w", encoding="utf-8") as fh:
            fh.write(format_trace_summary(tracer))
            fh.write("\n")
        print(f"wrote {args.trace_summary}")

    if args.min_speedup > 0 and record["inflation_speedup"] < args.min_speedup:
        print(
            f"ERROR: inflation speedup {record['inflation_speedup']:.2f}x "
            f"below required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
