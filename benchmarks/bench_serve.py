"""Serve load-test harness: hammer the job engine, prove nothing is lost.

Starts an in-process :class:`repro.serve.server.JobServer` with a small
worker fleet, submits hundreds of concurrent tiny benchgen jobs over
the real HTTP API, and — mid-flight — SIGKILLs one worker process to
prove that its in-progress jobs are requeued and resumed from their
checkpoints.  The record (``BENCH_serve.json``) carries:

* **gated** job accounting: ``jobs_submitted`` / ``jobs_done`` /
  ``jobs_lost`` / ``jobs_failed`` / ``jobs_cancelled`` — a lost job is
  a correctness bug, so these are exact against the committed baseline
  (``benchmarks/baselines/BENCH_serve.json``);
* **artifact-only** load numbers: throughput (jobs/s), submit-to-done
  latency p50/p95, requeue and respawn counts — machine-dependent, so
  their tolerances are wide open (see ``repro.obs.runs.TOLERANCES``).

Run directly::

    PYTHONPATH=src python benchmarks/bench_serve.py                # 200 jobs
    PYTHONPATH=src python benchmarks/bench_serve.py \
        --jobs 40 --workers 2 --no-kill --out BENCH_serve.json     # CI smoke
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import random
import signal
import sys
import time

from repro.serve import JobServer, ServeClient, ServeSettings
from repro.serve.store import job_summary_row

#: The tiny-job template: small enough that hundreds finish in minutes,
#: big enough that every flow stage actually runs.
JOB_CELLS = 60
JOB_GP_ITERS = 4


def _percentile(values: list, q: float) -> float:
    """Nearest-rank percentile of a non-empty list."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return float(ordered[rank])


def submit_wave(client: ServeClient, count: int, *, seed: int,
                concurrency: int = 32) -> list:
    """Submit ``count`` tiny jobs concurrently; returns their records."""
    rng = random.Random(seed)
    seeds = [rng.randrange(1, 10_000_000) for _ in range(count)]

    def one(i: int) -> dict:
        return client.submit(
            {
                "spec": {
                    "name": f"load{i:04d}",
                    "num_cells": JOB_CELLS,
                    "seed": seeds[i],
                }
            },
            options={
                "route": False,
                "run_dp": False,
                "config": {"gp.max_outer_iterations": JOB_GP_ITERS},
            },
            priority=rng.randrange(0, 3),
        )

    with concurrent.futures.ThreadPoolExecutor(concurrency) as pool:
        return list(pool.map(one, range(count)))


def kill_busy_worker(client: ServeClient, anchor_ids: list,
                     *, deadline_s: float = 60.0) -> int | None:
    """SIGKILL the worker running an anchor job that has checkpointed.

    Waits until one of the ``anchor_ids`` jobs is running inside a
    stage *after* GP — once a later stage span is open, the GP
    checkpoint has been written, so the post-kill requeue must resume
    rather than restart.  Returns the killed pid (None if no anchor
    got there).
    """
    later = {"macro_legal_refine", "legal", "dp", "route"}
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        for job_id in anchor_ids:
            record = client.get(job_id)
            # The stage column is the innermost open span path, e.g.
            # "flow/dp/round[0]/global_swap" — the segment after "flow"
            # names the flow stage.
            parts = (record.get("stage") or "").split("/")
            past_gp = len(parts) >= 2 and parts[1] in later
            if record["state"] == "running" and past_gp and record["worker"]:
                try:
                    os.kill(record["worker"], signal.SIGKILL)
                except (ProcessLookupError, OSError):
                    return None
                return record["worker"]
        time.sleep(0.05)
    return None


def run_bench(args) -> dict:
    settings = ServeSettings(
        workers=args.workers,
        poll_interval=0.05,
        heartbeat_interval=0.25,
        monitor_interval=0.2,
        stale_timeout=args.stale_timeout,
        default_max_retries=3,
    )
    t_start = time.perf_counter()
    with JobServer(args.root, settings=settings) as server:
        client = ServeClient(server.url, timeout=60.0)
        anchor_ids = []
        if not args.no_kill:
            # Two slower high-priority "anchor" jobs: claimed first, they
            # run long enough for the kill to land after their GP
            # checkpoint exists, which forces a genuine resume.
            for i in range(2):
                rec = client.submit(
                    {
                        "spec": {
                            "name": f"anchor{i}",
                            "num_cells": 1500,
                            "seed": 100 + i,
                        }
                    },
                    options={"route": False},
                    priority=10,
                    max_retries=3,
                )
                anchor_ids.append(rec["job_id"])
        records = submit_wave(client, args.jobs - len(anchor_ids),
                              seed=args.seed)
        records = [client.get(j) for j in anchor_ids] + records
        job_ids = [r["job_id"] for r in records]
        submitted_at = {r["job_id"]: r["submitted"] for r in records}
        t_submitted = time.perf_counter()

        killed_pid = None
        if not args.no_kill:
            # Yank the worker out from under a checkpointed anchor job.
            killed_pid = kill_busy_worker(client, anchor_ids)

        finals = client.wait_all(
            job_ids, timeout=args.timeout, poll=0.25
        )
        t_done = time.perf_counter()

        latencies = [
            r["finished"] - submitted_at[jid]
            for jid, r in finals.items()
            if r.get("finished")
        ]
        states: dict = {}
        requeued = 0
        resumed_jobs = 0
        for r in finals.values():
            states[r["state"]] = states.get(r["state"], 0) + 1
            requeued += len(r.get("requeues") or ())
            if (r.get("result") or {}).get("resumed_stages"):
                resumed_jobs += 1
        lost = args.jobs - len(finals)
        respawns = server.supervisor.respawns

        worst = [
            job_summary_row(r)
            for r in finals.values()
            if r["state"] != "done"
        ]

    wall = t_done - t_start
    return {
        "design": "serve-load",
        "workers": args.workers,
        "job_cells": JOB_CELLS,
        "killed_worker_pid": killed_pid,
        "resumed_jobs": resumed_jobs,
        "submit_wall_s": round(t_submitted - t_start, 3),
        "drain_wall_s": round(t_done - t_submitted, 3),
        "wall_s": round(wall, 3),
        "not_done": worst,
        "metrics": {
            "jobs_submitted": args.jobs,
            "jobs_done": states.get("done", 0),
            "jobs_failed": states.get("failed", 0),
            "jobs_cancelled": states.get("cancelled", 0),
            "jobs_lost": lost,
            "jobs_requeued": requeued,
            "worker_respawns": respawns,
            "throughput_jobs_per_s": round(args.jobs / max(wall, 1e-9), 3),
            "latency_p50_s": round(_percentile(latencies, 0.50), 3)
            if latencies else 0.0,
            "latency_p95_s": round(_percentile(latencies, 0.95), 3)
            if latencies else 0.0,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=200,
        help="concurrent jobs to submit (default: 200)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="queue-draining worker processes (default: 2)",
    )
    parser.add_argument(
        "--no-kill", action="store_true",
        help="skip the mid-flight worker SIGKILL (pure throughput run)",
    )
    parser.add_argument(
        "--timeout", type=float, default=900.0,
        help="overall drain deadline in seconds",
    )
    parser.add_argument("--stale-timeout", type=float, default=20.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--root", default="serve_bench_state")
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    record = run_bench(args)
    metrics = record["metrics"]
    # The acceptance bar: every submitted job reaches `done`, none lost,
    # and (when a worker was killed) at least one job resumed from its
    # checkpoint rather than restarting.
    passed = (
        metrics["jobs_done"] == metrics["jobs_submitted"]
        and metrics["jobs_lost"] == 0
        and metrics["jobs_failed"] == 0
        and metrics["jobs_cancelled"] == 0
    )
    if not args.no_kill and record["killed_worker_pid"] is not None:
        passed = passed and record["resumed_jobs"] >= 1
    record["passed"] = passed
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(
        f"{metrics['jobs_done']}/{metrics['jobs_submitted']} jobs done on "
        f"{record['workers']} workers in {record['wall_s']:.1f}s "
        f"({metrics['throughput_jobs_per_s']:.2f} jobs/s)"
    )
    print(
        f"latency p50 {metrics['latency_p50_s']:.2f}s  "
        f"p95 {metrics['latency_p95_s']:.2f}s  "
        f"requeues {metrics['jobs_requeued']}  "
        f"respawns {metrics['worker_respawns']}  "
        f"resumed jobs {record['resumed_jobs']}"
    )
    print(f"wrote {args.out}")
    if not passed:
        print(
            "FAIL: job accounting did not close "
            f"(lost={metrics['jobs_lost']} failed={metrics['jobs_failed']} "
            f"cancelled={metrics['jobs_cancelled']} "
            f"resumed={record['resumed_jobs']})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
