"""Table 1 — benchmark statistics.

Reproduces the paper's benchmark-characteristics table: per design, the
number of standard cells, movable macros, fixed objects, terminals, nets,
pins, fence regions, hierarchy modules, utilization and macro-area share.
"""

from repro.benchgen import make_suite_design
from repro.db import compute_stats
from repro.metrics import format_table

from benchmarks.common import bench_designs, print_banner

_ROWS = {}


def _stats_row(name: str) -> dict:
    design = make_suite_design(name)
    return compute_stats(design).as_row()


def test_table1_stats(benchmark):
    def run():
        for name in bench_designs():
            _ROWS[name] = _stats_row(name)
        return len(_ROWS)

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Table 1: benchmark statistics")
    print(format_table([_ROWS[n] for n in sorted(_ROWS)]))
    assert len(_ROWS) == len(bench_designs())
