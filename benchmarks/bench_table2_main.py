"""Table 2 — the headline comparison.

Scaled HPWL, RC and overflow of the routability-driven flow (NTUplace4h)
against (a) the identical flow with routability disabled — the paper's
primary baseline — and (b) the quadratic (SimPL-lineage) baseline, on
every suite design.  Expected shape, as in the paper: on congested
designs the routability-driven flow trades a few percent of raw HPWL for
a lower RC and wins scaled HPWL; on mild designs the flows tie.
"""

import pytest

from repro.metrics import comparison_table

from benchmarks.common import bench_designs, print_banner, run_flow, run_quadratic

_RESULTS = {"NTUplace4h": {}, "WL-driven": {}, "Quadratic": {}}


@pytest.mark.parametrize("name", bench_designs())
def test_ntuplace4h(benchmark, name):
    def run():
        _, result = run_flow(name, routability=True)
        _RESULTS["NTUplace4h"][name] = result
        return result.scaled_hpwl

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert _RESULTS["NTUplace4h"][name].legal


@pytest.mark.parametrize("name", bench_designs())
def test_wirelength_driven(benchmark, name):
    def run():
        _, result = run_flow(name, routability=False)
        _RESULTS["WL-driven"][name] = result
        return result.scaled_hpwl

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert _RESULTS["WL-driven"][name].legal


@pytest.mark.parametrize("name", bench_designs())
def test_quadratic_baseline(benchmark, name):
    def run():
        _, result = run_quadratic(name)
        _RESULTS["Quadratic"][name] = result
        return result.scaled_hpwl

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert _RESULTS["Quadratic"][name].legal


def test_table2_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Assemble and print the table (depends on the tests above)."""
    complete = {
        flow: results
        for flow, results in _RESULTS.items()
        if len(results) == len(bench_designs())
    }
    assert "NTUplace4h" in complete, "flow runs must execute first"
    print_banner("Table 2: scaled HPWL / RC, NTUplace4h vs baselines")
    print(comparison_table(complete))
    # Shape assertion: geometric-mean scaled HPWL of the routability-driven
    # flow must not lose to the wirelength-only flow.
    if "WL-driven" in complete:
        from repro.metrics import geometric_mean

        ratios = [
            complete["NTUplace4h"][n].scaled_hpwl / complete["WL-driven"][n].scaled_hpwl
            for n in bench_designs()
            if complete["WL-driven"][n].scaled_hpwl > 0
        ]
        assert geometric_mean(ratios) <= 1.05
