"""Table 3 — runtime breakdown by flow stage.

Reproduces the paper's runtime table: seconds spent in global placement,
macro legalization + refinement, legalization, detailed placement and
routing-based scoring, per design.  Expected shape: global placement
dominates, legalization is cheap, routing scales with design size.
"""

import pytest

from repro.metrics import format_table

from benchmarks.common import bench_designs, print_banner, run_flow

_ROWS = []


@pytest.mark.parametrize("name", bench_designs())
def test_stage_runtime(benchmark, name):
    def run():
        _, result = run_flow(name, routability=True)
        row = {"design": name}
        row.update({k: round(v, 2) for k, v in result.stage_seconds.items()})
        row["total"] = round(result.runtime_seconds, 2)
        _ROWS.append(row)
        return result.runtime_seconds

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_table3_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _ROWS, "stage runs must execute first"
    print_banner("Table 3: runtime breakdown (seconds)")
    print(format_table(sorted(_ROWS, key=lambda r: r["design"])))
    for row in _ROWS:
        assert row["total"] > 0
