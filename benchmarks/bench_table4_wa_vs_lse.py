"""Table 4 — ablation: WA vs LSE wirelength model.

The same global placement run with the weighted-average model (the
paper's contribution) and with log-sum-exp, at equal smoothing and
iteration budget.  Expected shape, as in the WA papers: WA reaches equal
or better final HPWL, typically converging in no more iterations.
"""

import pytest

from repro.benchgen import make_suite_design
from repro.gp import GlobalPlacer, GPConfig
from repro.metrics import format_table, geometric_mean

from benchmarks.common import bench_designs, print_banner

_ROWS = []


@pytest.mark.parametrize("name", bench_designs())
@pytest.mark.parametrize("model", ["wa", "lse"])
def test_model_run(benchmark, name, model):
    def run():
        design = make_suite_design(name)
        cfg = GPConfig(
            wirelength_model=model,
            clustering=False,
            routability=False,
            optimize_orientations=False,
        )
        report = GlobalPlacer(cfg).place(design)
        _ROWS.append(
            {
                "design": name,
                "model": model,
                "hpwl": round(report.final_hpwl, 0),
                "overflow": round(report.final_overflow, 4),
                "iters": report.num_iterations,
                "time_s": round(report.runtime_seconds, 2),
            }
        )
        return report.final_hpwl

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_table4_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _ROWS, "model runs must execute first"
    print_banner("Table 4: WA vs LSE wirelength model (global placement)")
    print(format_table(sorted(_ROWS, key=lambda r: (r["design"], r["model"]))))
    wa = {r["design"]: r["hpwl"] for r in _ROWS if r["model"] == "wa"}
    lse = {r["design"]: r["hpwl"] for r in _ROWS if r["model"] == "lse"}
    ratios = [wa[d] / lse[d] for d in wa if d in lse and lse[d] > 0]
    gmean = geometric_mean(ratios)
    print(f"\nWA / LSE final-HPWL geometric mean: {gmean:.4f}")
    # Shape: WA at least ties LSE overall (a few percent tolerance).
    assert gmean <= 1.03
