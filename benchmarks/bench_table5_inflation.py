"""Table 5 — ablation: congestion-driven cell inflation on/off.

The full routability-driven flow with inflation enabled versus the same
flow with inflation disabled (all else equal), on the *congested* suite
designs.  Expected shape: inflation cuts RC/peak congestion at a small
raw-HPWL cost — the paper's core routability mechanism.

The inflation-on rows are further split by congestion estimator:
``rudy`` (analytic demand map), ``router`` (a real look-ahead route
every inflation round), and ``hybrid`` (the learned predictor with the
router every K-th round — the packaged default artifact).  Expected
shape: all three land in the same quality band, with hybrid matching
router far cheaper per round.
"""

import pytest

from repro.benchgen import SUITE, make_suite_design
from repro.flow import NTUplace4H
from repro.metrics import format_table

from benchmarks.common import bench_designs, flow_config, print_banner

CONGESTED = [n for n in bench_designs() if SUITE[n].congested_band > 0] or ["rh02"]

_ROWS = []


#: (inflate, congestion estimator) legs; estimator is moot with
#: inflation off, so that leg runs once.
_LEGS = [
    (True, "rudy"),
    (True, "router"),
    (True, "hybrid"),
    (False, "rudy"),
]


@pytest.mark.parametrize("name", CONGESTED)
@pytest.mark.parametrize(
    "inflate,estimator",
    _LEGS,
    ids=["inflate-rudy", "inflate-router", "inflate-hybrid", "no-inflate"],
)
def test_inflation_run(benchmark, name, inflate, estimator):
    def run():
        design = make_suite_design(name)
        cfg = flow_config(routability=True)
        cfg.gp.routability = inflate
        cfg.gp.congestion_estimator = estimator
        cfg.dp.congestion_aware = True
        result = NTUplace4H(cfg).run(design)
        _ROWS.append(
            {
                "design": name,
                "inflation": "on" if inflate else "off",
                "estimator": estimator if inflate else "-",
                "HPWL": round(result.hpwl_final, 0),
                "RC": round(result.rc, 4),
                "sHPWL": round(result.scaled_hpwl, 0),
                "peak": round(result.peak_congestion, 3),
                "overflow": round(result.total_overflow, 1),
            }
        )
        return result.rc

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_table5_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _ROWS, "inflation runs must execute first"
    print_banner("Table 5: congestion-driven inflation ablation")
    print(
        format_table(
            sorted(_ROWS, key=lambda r: (r["design"], r["inflation"], r["estimator"]))
        )
    )
    on = {r["design"]: r for r in _ROWS if r["inflation"] == "on" and r["estimator"] == "rudy"}
    off = {r["design"]: r for r in _ROWS if r["inflation"] == "off"}
    # Shape: inflation must not increase congestion overall.
    mean_on = sum(on[d]["RC"] for d in on) / len(on)
    mean_off = sum(off[d]["RC"] for d in off) / len(off)
    assert mean_on <= mean_off + 0.02
    # Shape: the learned hybrid estimator must land in the same RC band
    # as the real look-ahead router it stands in for.
    router = {r["design"]: r for r in _ROWS if r["estimator"] == "router"}
    hybrid = {r["design"]: r for r in _ROWS if r["estimator"] == "hybrid"}
    for d in router:
        assert abs(hybrid[d]["RC"] - router[d]["RC"]) <= 0.05, (
            f"{d}: hybrid RC {hybrid[d]['RC']} vs router RC {router[d]['RC']}"
        )
