"""Table 6 — ablation of the individual routability levers.

DESIGN.md calls out three routability mechanisms; this bench isolates
them on the congested flagship design: wirelength-only, inflation only,
inflation + whitespace reservation (the default flow), and the full
stack with congestion-driven net weighting.  Expected shape: each lever
lowers RC further (or holds it) with a modest raw-HPWL cost; the default
flow is on the sHPWL pareto front.
"""

import pytest

from repro.benchgen import SUITE, make_suite_design
from repro.flow import FlowConfig, NTUplace4H
from repro.metrics import format_table

from benchmarks.common import bench_designs, print_banner, run_dp

CONGESTED = [n for n in bench_designs() if SUITE[n].congested_band > 0] or ["rh02"]
NAME = CONGESTED[0]

_VARIANTS = {
    "wl-only": dict(routability=False, reservation=False, weighting=False),
    "inflation": dict(routability=True, reservation=False, weighting=False),
    "infl+reserve": dict(routability=True, reservation=True, weighting=False),
    "full+netweight": dict(routability=True, reservation=True, weighting=True),
}

_ROWS = []


def _config(routability: bool, reservation: bool, weighting: bool) -> FlowConfig:
    cfg = FlowConfig() if routability else FlowConfig.wirelength_only()
    cfg.run_dp = run_dp()
    cfg.gp.whitespace_reservation = reservation
    cfg.net_weighting = weighting
    cfg.dp.congestion_aware = routability
    return cfg


@pytest.mark.parametrize("variant", list(_VARIANTS))
def test_lever_variant(benchmark, variant):
    def run():
        design = make_suite_design(NAME)
        result = NTUplace4H(_config(**_VARIANTS[variant])).run(design)
        _ROWS.append(
            {
                "variant": variant,
                "HPWL": round(result.hpwl_final, 0),
                "RC": round(result.rc, 4),
                "sHPWL": round(result.scaled_hpwl, 0),
                "peak": round(result.peak_congestion, 3),
                "overflow": round(result.total_overflow, 1),
            }
        )
        return result.scaled_hpwl

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_table6_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _ROWS, "variant runs must execute first"
    order = {v: i for i, v in enumerate(_VARIANTS)}
    print_banner(f"Table 6: routability-lever ablation on {NAME}")
    print(format_table(sorted(_ROWS, key=lambda r: order[r["variant"]])))
    by = {r["variant"]: r for r in _ROWS}
    # Shape: every lever stack is no more congested than wl-only, and
    # the default flow (infl+reserve) does not lose sHPWL to wl-only.
    assert by["inflation"]["RC"] <= by["wl-only"]["RC"] + 0.02
    assert by["infl+reserve"]["RC"] <= by["wl-only"]["RC"] + 0.02
    assert by["infl+reserve"]["sHPWL"] <= by["wl-only"]["sHPWL"] * 1.02
