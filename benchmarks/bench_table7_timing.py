"""Table 7 — extension ablation: timing-driven net weighting.

Sweeps the timing-weighting strength on one design and reports the
longest combinational path (from the bundled STA) against HPWL.
Expected shape: the longest path shrinks monotonically-ish with
strength while HPWL grows — the classical timing/wirelength tradeoff
curve that timing-driven placers expose.
"""

import pytest

from repro.benchgen import make_suite_design
from repro.flow import FlowConfig, NTUplace4H
from repro.metrics import format_table
from repro.timing import analyze

from benchmarks.common import bench_designs, print_banner, run_dp

NAME = bench_designs()[0]
STRENGTHS = (0.0, 1.0, 2.0, 4.0)

_ROWS = []


@pytest.mark.parametrize("strength", STRENGTHS)
def test_timing_strength(benchmark, strength):
    def run():
        design = make_suite_design(NAME)
        cfg = FlowConfig.wirelength_only()
        cfg.run_dp = run_dp()
        cfg.timing_weighting = strength > 0
        cfg.timing_weighting_strength = strength
        result = NTUplace4H(cfg).run(design, route=False)
        report = analyze(design)
        _ROWS.append(
            {
                "strength": strength,
                "HPWL": round(result.hpwl_final, 0),
                "longest_path": round(report.clock_period, 1),
                "#critical": len(report.critical_nets),
            }
        )
        return report.clock_period

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_table7_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _ROWS, "strength runs must execute first"
    print_banner(f"Table 7: timing-weighting strength sweep on {NAME}")
    rows = sorted(_ROWS, key=lambda r: r["strength"])
    print(format_table(rows))
    base = rows[0]
    strongest = rows[-1]
    # Shape: strongest weighting shortens the longest path vs baseline.
    assert strongest["longest_path"] < base["longest_path"]
