"""Benchmark quality-regression gate.

Compares a freshly produced benchmark record (``BENCH_gp.json`` from
``bench_gp_perf.py``, ``BENCH_dp.json`` from ``bench_dp_perf.py``, or
``BENCH_route.json`` from ``bench_perf.py``)
against a committed baseline under ``benchmarks/baselines/`` and exits
non-zero if any *quality* metric drifts beyond tolerance.  Timing fields
are deliberately ignored — wall time is machine-dependent and belongs in
artifacts, not gates; the gated metrics (HPWL, density overflow, routed
overflow, congestion, vias) are deterministic for a given code revision,
so any drift means behaviour changed.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py \
        --bench BENCH_gp.json --baseline benchmarks/baselines/BENCH_gp_rh01.json

Drift in *either* direction fails the gate: an improvement is a reason
to re-baseline intentionally (run the bench, inspect, commit the new
JSON — see ``docs/ci.md``), not to let the gate rot.
"""

from __future__ import annotations

import argparse
import json
import sys

# metric name -> (relative tolerance, absolute tolerance); a metric
# passes if it is within EITHER bound of the baseline value.  The
# canonical table lives in repro.obs.runs so that `repro runs diff`
# flags regressions with exactly the bounds CI gates on; the literal
# fallback keeps this script usable standalone (no PYTHONPATH).
try:
    from repro.obs.runs import DEFAULT_TOLERANCE, TOLERANCES
except ImportError:
    DEFAULT_TOLERANCE = (0.02, 0.0)
    TOLERANCES = {
        "hpwl": (0.02, 0.0),
        "overflow": (0.02, 0.02),
        "rc": (0.02, 0.0),
        "total_overflow": (0.02, 1.0),
        "peak_congestion": (0.02, 0.05),
        "vias": (0.02, 0.0),
        "gp_iterations": (0.0, 0.0),
        "dp_improvement": (0.02, 1e-6),
        "dp_accepted": (0.0, 0.0),
        "dp_pass_count": (0.0, 0.0),
        "legal_ok": (0.0, 0.0),
        "max_displacement": (0.02, 0.0),
        "workers": (0.0, 0.0),
        "parallel_identical": (0.0, 0.0),
        "parallel_wall_s": (1e9, 1e9),
        "parallel_speedup": (1e9, 1e9),
        "jobs_submitted": (0.0, 0.0),
        "jobs_done": (0.0, 0.0),
        "jobs_lost": (0.0, 0.0),
        "jobs_failed": (0.0, 0.0),
        "jobs_cancelled": (0.0, 0.0),
        "jobs_requeued": (1e9, 1e9),
        "worker_respawns": (1e9, 1e9),
        "throughput_jobs_per_s": (1e9, 1e9),
        "latency_p50_s": (1e9, 1e9),
        "latency_p95_s": (1e9, 1e9),
        "chaos_invariant_violations": (0.0, 0.0),
        "chaos_lost_jobs": (0.0, 0.0),
        "chaos_duplicate_terminals": (0.0, 0.0),
        "chaos_attempt_regressions": (0.0, 0.0),
        "chaos_orphaned_shm": (0.0, 0.0),
        "chaos_result_mismatches": (0.0, 0.0),
        "chaos_submitted": (1e9, 1e9),
        "chaos_done": (1e9, 1e9),
        "chaos_failed": (1e9, 1e9),
        "chaos_cancelled": (1e9, 1e9),
        "chaos_requeues": (1e9, 1e9),
        "chaos_worker_kills": (1e9, 1e9),
        "chaos_restarts": (1e9, 1e9),
        "chaos_faults_fired": (1e9, 1e9),
        "chaos_store_recoveries": (1e9, 1e9),
        "predict_router_rounds": (0.0, 0.0),
        "predict_predictor_rounds": (0.0, 0.0),
        "predict_fallbacks": (0.0, 0.0),
        "predict_train_samples": (0.0, 0.0),
        "predict_final_drift": (0.0, 0.1),
        "predict_val_mse": (0.0, 0.05),
        "predict_hpwl_rel_delta": (0.0, 0.01),
        "predict_overflow_delta": (0.0, 0.02),
        "predict_inflation_speedup": (1e9, 1e9),
    }
# Flags that must be true in the fresh record for the gate to pass.
# Each is checked only when present, so baselines produced without a
# worker sweep keep gating records that do carry one (and vice versa).
REQUIRED_FLAGS = (
    "identical_placements",
    "identical_metrics",
    "identical_parallel_placements",
)


def compare(fresh: dict, baseline: dict) -> list[str]:
    """Return a list of human-readable failures (empty == pass)."""
    failures: list[str] = []
    if fresh.get("design") != baseline.get("design"):
        failures.append(
            f"design mismatch: fresh={fresh.get('design')!r} "
            f"baseline={baseline.get('design')!r}"
        )
        return failures
    for flag in REQUIRED_FLAGS:
        if flag in fresh and not fresh[flag]:
            failures.append(f"{flag} is false in the fresh record")
    # A degraded record means a resilience fallback fired during the
    # bench run (numerical rollback, watchdog expiry, stage fallback) —
    # its metrics are not comparable and the run itself needs a look.
    if fresh.get("degraded"):
        failures.append(
            "fresh record is degraded (a resilience fallback fired; "
            "see docs/robustness.md)"
        )
    fresh_metrics = fresh.get("metrics", {})
    base_metrics = baseline.get("metrics", {})
    for name, base_value in sorted(base_metrics.items()):
        if not isinstance(base_value, (int, float)):
            continue
        if name not in fresh_metrics:
            failures.append(f"metric {name!r} missing from the fresh record")
            continue
        value = fresh_metrics[name]
        rel_tol, abs_tol = TOLERANCES.get(name, DEFAULT_TOLERANCE)
        drift = abs(value - base_value)
        limit = max(rel_tol * abs(base_value), abs_tol)
        if drift > limit:
            failures.append(
                f"metric {name!r} drifted: fresh={value!r} baseline={base_value!r} "
                f"(|drift|={drift:.6g} > tolerance {limit:.6g})"
            )
    for name in sorted(fresh_metrics):
        if name not in base_metrics:
            failures.append(
                f"metric {name!r} present in the fresh record but not the "
                f"baseline (re-baseline to adopt it)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", required=True, help="fresh benchmark JSON")
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    args = parser.parse_args(argv)

    with open(args.bench, encoding="utf-8") as fh:
        fresh = json.load(fh)
    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)

    failures = compare(fresh, baseline)
    if failures:
        print(f"REGRESSION: {args.bench} vs {args.baseline}")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(
        f"OK: {args.bench} matches {args.baseline} "
        f"({len(baseline.get('metrics', {}))} metrics within tolerance)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
