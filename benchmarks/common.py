"""Shared machinery for the benchmark harness.

Every ``bench_*.py`` file regenerates one table or figure of the paper's
(reconstructed) evaluation and prints it in the paper's row/series
format.  Absolute numbers differ from the paper — the substrate is a
synthetic suite on a Python router, not the contest testbed — but the
*shape* (who wins, by roughly what factor) is the reproduction target;
EXPERIMENTS.md records both.

Environment:

* ``REPRO_BENCH_FULL=1`` — run the full six-design suite (several
  minutes); default is the three small designs.
* ``REPRO_BENCH_DP=1`` — include detailed placement in flow runs
  (slower, slightly better HPWL everywhere, same comparisons).
* ``REPRO_BENCH_TRACE_DIR=dir`` — capture a hierarchical trace of every
  flow run and write ``<dir>/<design>_<flow>.trace.jsonl``, so the
  runtime tables can be cross-checked against stage-level span
  breakdowns (``repro.obs.format_trace_summary``).
"""

from __future__ import annotations

import os

from repro.benchgen import SUITE, make_suite_design
from repro.dp import DPConfig
from repro.flow import FlowConfig, NTUplace4H
from repro.baselines import run_baseline_flow
from repro.obs import JsonlStreamSink, NULL_TRACER, Tracer, use_tracer

SMALL_SET = ("rh01", "rh02", "rh03")
FULL_SET = tuple(sorted(SUITE))


def bench_designs():
    """The benchmark subset selected by ``REPRO_BENCH_FULL``."""
    if os.environ.get("REPRO_BENCH_FULL"):
        return FULL_SET
    return SMALL_SET


def run_dp() -> bool:
    return bool(os.environ.get("REPRO_BENCH_DP"))


def trace_dir() -> str | None:
    return os.environ.get("REPRO_BENCH_TRACE_DIR") or None


def _traced(label: str, fn):
    """Run ``fn`` under a tracer, streaming a JSONL trace when enabled.

    The trace is written live through a :class:`JsonlStreamSink`, so a
    hung or killed bench run still leaves every completed span on disk
    (and the file can be tailed while the suite runs).
    """
    out = trace_dir()
    if not out:
        with use_tracer(NULL_TRACER):
            return fn()
    os.makedirs(out, exist_ok=True)
    tracer = Tracer()
    sink = JsonlStreamSink(os.path.join(out, f"{label}.trace.jsonl"))
    tracer.add_sink(sink, meta={"bench": label})
    try:
        with use_tracer(tracer):
            return fn()
    finally:
        tracer.close_sinks()


def flow_config(routability: bool) -> FlowConfig:
    cfg = FlowConfig() if routability else FlowConfig.wirelength_only()
    cfg.run_dp = run_dp()
    cfg.dp = DPConfig(rounds=1, congestion_aware=routability)
    return cfg


def run_flow(name: str, routability: bool):
    """Generate a suite design and run one flow over it."""
    design = make_suite_design(name)
    flow_label = "4h" if routability else "wl"
    result = _traced(
        f"{name}_{flow_label}",
        lambda: NTUplace4H(flow_config(routability)).run(design),
    )
    return design, result


def run_quadratic(name: str):
    design = make_suite_design(name)
    result = _traced(
        f"{name}_quadratic",
        lambda: run_baseline_flow(design, "quadratic", run_dp=run_dp()),
    )
    return design, result


def host_metadata(workers: int | None = None) -> dict:
    """Host/core facts stamped into bench records.

    Parallel speedups are meaningless without knowing what they ran on,
    so every BENCH JSON carries the physical/logical core counts (SMT
    siblings collapse into one physical core) and, when given, the
    worker count the record's parallel fields used.
    """
    import platform

    from repro.parallel import logical_cores, physical_cores

    meta = {
        "hostname": platform.node(),
        "physical_cores": physical_cores(),
        "logical_cores": logical_cores(),
    }
    if workers is not None:
        meta["workers"] = workers
    return meta


def print_banner(title: str) -> None:
    line = "=" * max(40, len(title) + 4)
    print(f"\n{line}\n  {title}\n{line}")
