"""Shared machinery for the benchmark harness.

Every ``bench_*.py`` file regenerates one table or figure of the paper's
(reconstructed) evaluation and prints it in the paper's row/series
format.  Absolute numbers differ from the paper — the substrate is a
synthetic suite on a Python router, not the contest testbed — but the
*shape* (who wins, by roughly what factor) is the reproduction target;
EXPERIMENTS.md records both.

Environment:

* ``REPRO_BENCH_FULL=1`` — run the full six-design suite (several
  minutes); default is the three small designs.
* ``REPRO_BENCH_DP=1`` — include detailed placement in flow runs
  (slower, slightly better HPWL everywhere, same comparisons).
"""

from __future__ import annotations

import os

from repro.benchgen import SUITE, make_suite_design
from repro.dp import DPConfig
from repro.flow import FlowConfig, NTUplace4H
from repro.baselines import run_baseline_flow

SMALL_SET = ("rh01", "rh02", "rh03")
FULL_SET = tuple(sorted(SUITE))


def bench_designs():
    """The benchmark subset selected by ``REPRO_BENCH_FULL``."""
    if os.environ.get("REPRO_BENCH_FULL"):
        return FULL_SET
    return SMALL_SET


def run_dp() -> bool:
    return bool(os.environ.get("REPRO_BENCH_DP"))


def flow_config(routability: bool) -> FlowConfig:
    cfg = FlowConfig() if routability else FlowConfig.wirelength_only()
    cfg.run_dp = run_dp()
    cfg.dp = DPConfig(rounds=1, congestion_aware=routability)
    return cfg


def run_flow(name: str, routability: bool):
    """Generate a suite design and run one flow over it."""
    design = make_suite_design(name)
    result = NTUplace4H(flow_config(routability)).run(design)
    return design, result


def run_quadratic(name: str):
    design = make_suite_design(name)
    result = run_baseline_flow(design, "quadratic", run_dp=run_dp())
    return design, result


def print_banner(title: str) -> None:
    line = "=" * max(40, len(title) + 4)
    print(f"\n{line}\n  {title}\n{line}")
