"""Bookshelf interchange + custom placement experiments.

Run:  python examples/bookshelf_roundtrip.py

Shows the I/O and experimentation APIs: write a generated benchmark to
Bookshelf format (the academic interchange the contest benchmarks use),
read it back, then compare three global-placement configurations on it —
the WA wirelength model, the LSE model, and the quadratic baseline —
through the same legalization back-end.
"""

import tempfile

from repro import (
    GPConfig,
    GlobalPlacer,
    Legalizer,
    QuadraticPlacer,
    make_suite_design,
    read_bookshelf,
    write_bookshelf,
)
from repro.legal import legalize_macros
from repro.metrics import format_table


def place_and_legalize(design, label: str, placer) -> dict:
    placer(design)
    legalize_macros(design)
    legal = Legalizer().legalize(design)
    return {
        "config": label,
        "HPWL": round(design.hpwl(), 0),
        "legal": "yes" if legal.report.ok else "NO",
        "max_disp": round(legal.max_displacement, 2),
    }


def main():
    design = make_suite_design("rh01")
    with tempfile.TemporaryDirectory() as tmp:
        aux = write_bookshelf(design, tmp)
        print(f"wrote Bookshelf benchmark: {aux}")
        reloaded = read_bookshelf(aux)
        print(f"reloaded: {reloaded}")
        assert abs(reloaded.hpwl() - design.hpwl()) < 1e-3 * max(design.hpwl(), 1)

        rows = []
        for label, model in (("WA model", "wa"), ("LSE model", "lse")):
            d = read_bookshelf(aux)
            cfg = GPConfig(wirelength_model=model, clustering=False, routability=False)
            rows.append(
                place_and_legalize(d, label, lambda dd, c=cfg: GlobalPlacer(c).place(dd))
            )
        d = read_bookshelf(aux)
        rows.append(
            place_and_legalize(d, "Quadratic (B2B)", lambda dd: QuadraticPlacer().place(dd))
        )
        print()
        print(format_table(rows, title="global-placement configurations on the same netlist"))


if __name__ == "__main__":
    main()
