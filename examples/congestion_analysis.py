"""Routability study: wirelength-only vs routability-driven placement.

Run:  python examples/congestion_analysis.py

Uses the capacity-starved design ``rh02`` (a low-capacity band crosses
the die centre — think of a partially blocked routing channel).  Places
it twice: once purely wirelength-driven, once with the routability
machinery (RUDY-based congestion estimation, congestion-driven cell
inflation, congestion-gated detailed placement).  Prints both congestion
heat maps and the metric comparison, and writes SVG heat maps.
"""

from repro import FlowConfig, NTUplace4H, make_suite_design
from repro.metrics import comparison_table
from repro.viz import ascii_heatmap, heatmap_to_svg


def place(routability: bool):
    design = make_suite_design("rh02")
    cfg = FlowConfig() if routability else FlowConfig.wirelength_only()
    result = NTUplace4H(cfg).run(design)
    return design, result


def main():
    runs = {}
    for label, routability in (("WL-driven", False), ("NTUplace4h", True)):
        print(f"running {label} flow ...")
        design, result = place(routability)
        runs[label] = {"rh02": result}
        cmap = result.route_result.congestion_map()
        print(f"\n--- {label}: RC {result.rc:.3f}, peak {result.peak_congestion:.2f}, "
              f"overflow {result.total_overflow:.0f} ---")
        print(ascii_heatmap(cmap, vmax=1.5))
        svg = f"congestion_{label.lower().replace('-', '_')}.svg"
        heatmap_to_svg(cmap, svg, vmax=1.5)
        print(f"wrote {svg}")

    print()
    print(comparison_table(runs, title="wirelength-only vs routability-driven"))


if __name__ == "__main__":
    main()
