"""ECO workflow: incremental re-legalization after local changes.

Run:  python examples/eco_incremental.py

Places a design once, then simulates an engineering change order — a few
cells resized and a few new buffer cells dropped in — and repairs the
placement *incrementally*: only the changed cells move, everything else
stays put.  Compares the disturbance against a full re-legalization.
"""

from repro import NTUplace4H, FlowConfig, make_suite_design
from repro.analysis import displacement_stats
from repro.db import Node
from repro.legal import Legalizer, check_legal, eco_legalize
from repro.metrics import format_table


def place_base():
    design = make_suite_design("rh01")
    cfg = FlowConfig.wirelength_only()
    cfg.run_dp = False
    NTUplace4H(cfg).run(design, route=False)
    return design


def apply_eco(design):
    """Resize three cells and add two buffers near the die centre."""
    changed = []
    for name in ("c10", "c20", "c30"):
        node = design.node(name)
        node.width += 2 * design.site_width  # upsized cell
        changed.append(node.index)
    center = design.core.center
    for k in range(2):
        buf = design.add_node(
            Node(f"eco_buf{k}", 0.5, 1.0, x=center.x + k, y=center.y)
        )
        changed.append(buf.index)
    return changed


def main():
    print("placing baseline ...")
    design = place_base()
    reference = {n.index: (n.x, n.y) for n in design.nodes}

    changed = apply_eco(design)
    print(f"ECO: {len(changed)} cells changed; placement now "
          f"{'legal' if check_legal(design).ok else 'ILLEGAL'}")

    result = eco_legalize(design, changed)
    audit = check_legal(design)
    stats = displacement_stats(design, reference)
    print(f"after eco_legalize: {audit.summary()}")
    print(format_table([
        {
            "repair": "incremental (eco_legalize)",
            "cells_moved": len(result.placed),
            "total_disp": round(stats["total"], 2),
            "max_disp": round(stats["max"], 2),
        }
    ]))

    # Contrast: full re-legalization moves (a little of) everything.
    design2 = place_base()
    ref2 = {n.index: (n.x, n.y) for n in design2.nodes}
    apply_eco(design2)
    Legalizer().legalize(design2)
    stats2 = displacement_stats(design2, ref2)
    moved2 = sum(
        1
        for n in design2.nodes
        if n.index in ref2
        and (abs(n.x - ref2[n.index][0]) + abs(n.y - ref2[n.index][1])) > 1e-9
    )
    print(format_table([
        {
            "repair": "full legalization",
            "cells_moved": moved2,
            "total_disp": round(stats2["total"], 2),
            "max_disp": round(stats2["max"], 2),
        }
    ]))
    print(
        "\nincremental repair touches only the changed cells and disturbs "
        "far less placement; the gap widens with design size."
    )


if __name__ == "__main__":
    main()
