"""Hierarchical placement with fence regions.

Run:  python examples/hierarchical_fences.py

Builds a design whose hierarchy modules are bound to fence regions
(exclusive placement domains), places it with the hierarchy-aware flow,
and verifies the constraint end to end: every fenced cell inside its
fence, every foreign cell outside.  Demonstrates the hierarchy API
(module tree, fence binding) and saves the fenced placement as SVG.
"""

from repro import NTUplace4H, make_suite_design
from repro.gp import fence_violation
from repro.legal import check_legal
from repro.metrics import format_table
from repro.viz import placement_to_svg


def main():
    design = make_suite_design("rh03")

    print("design hierarchy (modules with >= 100 cells in subtree):")
    rows = []
    for module in design.hierarchy.modules():
        cells = len(module.all_cells())
        if cells >= 100 and module.name:
            rows.append(
                {
                    "module": module.name,
                    "#cells": cells,
                    "fence": design.regions[module.region].name
                    if module.region is not None
                    else "-",
                }
            )
    print(format_table(rows))

    print("\nfence regions:")
    print(
        format_table(
            [
                {
                    "fence": r.name,
                    "area": round(r.area, 1),
                    "bbox": f"({r.bounding_box.xl:.0f},{r.bounding_box.yl:.0f})-"
                    f"({r.bounding_box.xh:.0f},{r.bounding_box.yh:.0f})",
                    "#members": sum(
                        1 for n in design.nodes if n.region == r.index
                    ),
                }
                for r in design.regions
            ]
        )
    )

    result = NTUplace4H().run(design)
    bad, dist = fence_violation(design)
    audit = check_legal(design)

    print("\nflow result:")
    print(format_table([result.as_row()]))
    print(f"fenced cells outside their fence : {bad}")
    print(f"legality audit                   : {audit.summary()}")

    out = "hierarchical_placement.svg"
    placement_to_svg(design, out)
    print(f"\nwrote {out} (fences drawn as dashed green outlines)")


if __name__ == "__main__":
    main()
