"""Quickstart: place a small mixed-size design end to end and score it.

Run:  python examples/quickstart.py

Generates a synthetic 1200-cell design (2 macros, boundary terminals,
routing capacities), runs the full NTUplace4h flow — global placement,
macro legalization, cell refinement, legalization, detailed placement —
routes the result, and prints the contest metrics.  Saves the final
placement as ``quickstart_placement.svg``.
"""

from repro import NTUplace4H, make_suite_design
from repro.metrics import format_table
from repro.viz import placement_to_svg


def main():
    design = make_suite_design("rh01")
    print(f"placing {design}")

    flow = NTUplace4H()
    result = flow.run(design)

    print("\nflow result:")
    print(format_table([result.as_row()]))
    print("\nstage runtimes (s):")
    print(format_table([{k: round(v, 2) for k, v in result.stage_seconds.items()}]))
    print(f"\nHPWL after GP        : {result.hpwl_gp:12.0f}")
    print(f"HPWL after legalize  : {result.hpwl_legal:12.0f}")
    print(f"HPWL final (post DP) : {result.hpwl_final:12.0f}")
    print(f"routing congestion RC: {result.rc:12.4f}")
    print(f"scaled HPWL          : {result.scaled_hpwl:12.0f}")
    print(f"placement legal      : {result.legal}")

    out = "quickstart_placement.svg"
    placement_to_svg(design, out)
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
