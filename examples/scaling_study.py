"""Scaling study: placer quality and runtime versus design size.

Run:  python examples/scaling_study.py [--sizes 500,1000,2000]

Generates a family of designs of increasing size with fixed structure,
runs the routability-driven flow on each, and prints how runtime,
wirelength-per-pin and congestion evolve — the practical "will it handle
my block" question for a downstream adopter.
"""

import argparse
import time

from repro import BenchmarkSpec, NTUplace4H, make_benchmark
from repro.flow import FlowConfig
from repro.metrics import format_table


def run_size(num_cells: int) -> dict:
    spec = BenchmarkSpec(
        name=f"scale{num_cells}",
        num_cells=num_cells,
        num_macros=max(2, num_cells // 1500),
        num_fixed_macros=1,
        num_terminals=32,
        utilization=0.65,
        cap_factor=4.5,
        seed=500 + num_cells,
    )
    design = make_benchmark(spec)
    cfg = FlowConfig()
    cfg.run_dp = num_cells <= 2000  # keep the sweep brisk
    t0 = time.time()
    result = NTUplace4H(cfg).run(design)
    elapsed = time.time() - t0
    return {
        "#cells": num_cells,
        "HPWL": round(result.hpwl_final, 0),
        "HPWL/pin": round(result.hpwl_final / design.num_pins, 3),
        "RC": round(result.rc, 3),
        "legal": "yes" if result.legal else "NO",
        "GP_s": round(result.stage_seconds.get("global_place", 0), 1),
        "total_s": round(elapsed, 1),
    }


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--sizes", default="500,1000,2000")
    args = parser.parse_args()
    sizes = [int(s) for s in args.sizes.split(",")]
    rows = []
    for n in sizes:
        print(f"running {n} cells ...")
        rows.append(run_size(n))
    print()
    print(format_table(rows, title="scaling study (routability-driven flow)"))
    print(
        "\nHPWL/pin should stay roughly flat (Rent scaling) while runtime "
        "grows near-linearly with cells."
    )


if __name__ == "__main__":
    main()
