"""Timing-driven placement: STA-coupled net weighting.

Run:  python examples/timing_driven.py

Places the same design twice — plain wirelength-driven, and with the
timing-weighting lever (the bundled STA computes per-net slacks at the
GP solution; critical nets get up-weighted before the refinement pass) —
and compares the resulting longest combinational path.  Also prints the
critical path and a slack histogram, demonstrating the timing API.
"""

from repro import FlowConfig, NTUplace4H, make_suite_design
from repro.metrics import format_table
from repro.timing import analyze
from repro.viz import ascii_histogram


def run(timing: bool):
    design = make_suite_design("rh01")
    cfg = FlowConfig.wirelength_only()
    cfg.timing_weighting = timing
    result = NTUplace4H(cfg).run(design, route=False)
    report = analyze(design)
    return design, report, result


def main():
    rows = []
    reports = {}
    for label, flag in (("baseline", False), ("timing-weighted", True)):
        print(f"running {label} flow ...")
        design, report, result = run(flag)
        reports[label] = (design, report)
        rows.append(
            {
                "flow": label,
                # result.hpwl_final scores with the original net weights,
                # so the two flows are directly comparable
                "HPWL": round(result.hpwl_final, 0),
                "longest_path": round(report.clock_period, 1),
                "#critical_nets": len(report.critical_nets),
            }
        )
    print()
    print(format_table(rows, title="timing-driven vs baseline"))

    design, report = reports["timing-weighted"]
    names = [design.nodes[i].name for i in report.critical_path]
    print(f"\ncritical path ({len(names)} stages): " + " -> ".join(names[:12]))
    import numpy as np

    finite = report.net_slack[np.isfinite(report.net_slack)]
    print("\nnet slack distribution:")
    print(ascii_histogram(finite, bins=8, label="slack (timing units)"))


if __name__ == "__main__":
    main()
