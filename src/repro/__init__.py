"""repro — routability-driven placement for hierarchical mixed-size designs.

A from-scratch reproduction of the DAC 2013 NTUplace4h paper: analytical
global placement with the weighted-average wirelength model, bell-shaped
density, congestion-driven cell inflation, fence-region (hierarchy)
constraints and mixed-size macro handling — plus every substrate the
evaluation needs (Bookshelf I/O, a global router for congestion scoring,
synthetic benchmark generation and baseline placers).

Quickstart::

    from repro import NTUplace4H, make_suite_design

    design = make_suite_design("rh02")
    result = NTUplace4H().run(design)
    print(result.as_row())
"""

from repro.db import Design, Net, Node, NodeKind, Pin, Region, Row
from repro.geometry import Orientation, Point, Rect
from repro.benchgen import BenchmarkSpec, make_benchmark, make_suite_design
from repro.flow import FlowConfig, FlowResult, NTUplace4H, wirelength_driven_flow
from repro.gp import GlobalPlacer, GPConfig
from repro.legal import Legalizer, check_legal
from repro.dp import DetailedPlacer, DPConfig
from repro.route import (
    GlobalRouter,
    RoutingSpec,
    congestion_metrics,
    rc_score,
    scaled_hpwl,
)
from repro.io import read_bookshelf, write_bookshelf
from repro.baselines import QuadraticPlacer, run_baseline_flow
from repro.obs import (
    MetricsRegistry,
    Tracer,
    format_trace_summary,
    get_tracer,
    use_tracer,
    write_jsonl,
)

__version__ = "1.0.0"

__all__ = [
    "BenchmarkSpec",
    "DPConfig",
    "Design",
    "DetailedPlacer",
    "FlowConfig",
    "FlowResult",
    "GPConfig",
    "GlobalPlacer",
    "GlobalRouter",
    "Legalizer",
    "MetricsRegistry",
    "NTUplace4H",
    "Net",
    "Node",
    "NodeKind",
    "Orientation",
    "Pin",
    "Point",
    "QuadraticPlacer",
    "Rect",
    "Region",
    "Row",
    "RoutingSpec",
    "Tracer",
    "check_legal",
    "congestion_metrics",
    "format_trace_summary",
    "get_tracer",
    "make_benchmark",
    "make_suite_design",
    "rc_score",
    "read_bookshelf",
    "run_baseline_flow",
    "scaled_hpwl",
    "use_tracer",
    "wirelength_driven_flow",
    "write_bookshelf",
    "write_jsonl",
]
