"""Placement-quality analytics.

Post-hoc inspection tools a physical-design engineer reaches for when a
result looks off: net-length distributions, displacement fields between
two placements, utilization profiles, and a one-call quality summary
combining them with the library's congestion and timing metrics.
"""

from repro.analysis.quality import (
    QualitySummary,
    displacement_stats,
    net_length_stats,
    quality_summary,
    utilization_profile,
)

__all__ = [
    "QualitySummary",
    "displacement_stats",
    "net_length_stats",
    "quality_summary",
    "utilization_profile",
]
