"""Quality analytics over placed designs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.density import density_map, density_overflow
from repro.wirelength.hpwl import hpwl_per_net


def net_length_stats(design) -> dict:
    """Distribution statistics of per-net HPWL (unweighted).

    The long tail is what routability work attacks; the mean tracks the
    placer's core objective.
    """
    arrays = design.pin_arrays()
    cx, cy = design.pull_centers()
    lengths = hpwl_per_net(arrays, cx, cy)
    active = lengths[np.diff(arrays.net_ptr) >= 2]
    if active.size == 0:
        return {"count": 0}
    return {
        "count": int(active.size),
        "total": float(active.sum()),
        "mean": float(active.mean()),
        "median": float(np.median(active)),
        "p90": float(np.percentile(active, 90)),
        "p99": float(np.percentile(active, 99)),
        "max": float(active.max()),
    }


def displacement_stats(design, reference: dict) -> dict:
    """Displacement of every movable node versus ``reference``.

    ``reference`` maps node index to ``(x, y)`` (e.g. a snapshot taken
    before legalization — the shape ``Design.clone_placement`` returns
    also works, orientation entries are ignored).
    """
    disps = []
    for node in design.nodes:
        if not node.is_movable or node.index not in reference:
            continue
        ref = reference[node.index]
        disps.append(abs(node.x - ref[0]) + abs(node.y - ref[1]))
    if not disps:
        return {"count": 0}
    arr = np.asarray(disps)
    return {
        "count": int(arr.size),
        "total": float(arr.sum()),
        "mean": float(arr.mean()),
        "p90": float(np.percentile(arr, 90)),
        "max": float(arr.max()),
    }


def utilization_profile(design, *, bands: int = 10, axis: str = "y") -> np.ndarray:
    """Movable-area utilization per horizontal (or vertical) band.

    A flat profile means the placer spread evenly; spikes reveal
    under-spread pockets that will hurt legalization.
    """
    if axis not in ("x", "y"):
        raise ValueError("axis must be 'x' or 'y'")
    core = design.core
    used = np.zeros(bands)
    free = np.zeros(bands)
    lo = core.yl if axis == "y" else core.xl
    span = core.height if axis == "y" else core.width
    for node in design.nodes:
        r = node.rect
        a, b = (r.yl, r.yh) if axis == "y" else (r.xl, r.xh)
        other = r.width if axis == "y" else r.height
        for band in range(bands):
            b_lo = lo + span * band / bands
            b_hi = lo + span * (band + 1) / bands
            overlap = max(0.0, min(b, b_hi) - max(a, b_lo))
            if overlap <= 0:
                continue
            if node.is_movable:
                used[band] += overlap * other
            elif node.kind.blocks_placement:
                free[band] -= overlap * other
    band_area = core.area / bands
    capacity = np.maximum(band_area + free, 1e-12)
    return used / capacity


@dataclass
class QualitySummary:
    """One-call overview of a placement's health."""

    hpwl: float
    net_stats: dict
    overflow: float
    peak_density: float
    rc: float | None = None
    longest_path: float | None = None

    def as_row(self) -> dict:
        row = {
            "HPWL": round(self.hpwl, 0),
            "net_mean": round(self.net_stats.get("mean", 0), 2),
            "net_p99": round(self.net_stats.get("p99", 0), 2),
            "overflow": round(self.overflow, 4),
            "peak_density": round(self.peak_density, 3),
        }
        if self.rc is not None:
            row["RC"] = round(self.rc, 4)
        if self.longest_path is not None:
            row["longest_path"] = round(self.longest_path, 1)
        return row


def quality_summary(
    design, *, route: bool = False, timing: bool = False
) -> QualitySummary:
    """Compute a :class:`QualitySummary` (routing/timing optional)."""
    _, dm = density_map(design)
    summary = QualitySummary(
        hpwl=design.hpwl(),
        net_stats=net_length_stats(design),
        overflow=density_overflow(design),
        peak_density=float(dm.max()) if dm.size else 0.0,
    )
    if route and design.routing is not None:
        from repro.route import GlobalRouter

        rr = GlobalRouter(design.routing).route(design)
        summary.rc = rr.metrics.rc
    if timing:
        from repro.timing import analyze

        summary.longest_path = analyze(design).clock_period
    return summary
