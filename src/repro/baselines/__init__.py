"""Baseline placers the evaluation compares against.

* :class:`QuadraticPlacer` — a SimPL-lineage quadratic placer: bound-to-
  bound net model solved as a sparse linear system, interleaved with
  grid-warping spreading and anchor pseudo-nets.  Represents the
  force-directed/quadratic school the contest entries came from.
* :func:`random_placement` — the sanity floor: uniform random positions.
* The *wirelength-driven* baseline (the paper's primary comparison) is
  the main flow with routability disabled —
  :func:`repro.flow.wirelength_driven_flow`.

Both baselines share the same legalization/detailed-placement backend as
the main flow, so comparisons isolate the global-placement algorithm.
"""

from repro.baselines.quadratic import QuadraticPlacer, QuadraticConfig
from repro.baselines.random_place import random_placement
from repro.baselines.runner import run_baseline_flow

__all__ = [
    "QuadraticConfig",
    "QuadraticPlacer",
    "random_placement",
    "run_baseline_flow",
]
