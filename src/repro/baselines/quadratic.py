"""A SimPL-lineage quadratic baseline placer.

Global placement by alternating two steps:

1. **Bound-to-bound (B2B) quadratic solve** — each net contributes
   springs from its boundary pins to every other pin with the B2B
   weights, making the quadratic optimum match HPWL at the linearization
   point (Spindler et al.).  Solved per axis with SciPy sparse CG.
   Anchor pseudo-springs pull toward the previous spread positions.
2. **Grid warping spread** — per-axis cumulative-density equalization
   over a bin grid moves cells out of overfull bins (the Kraftwerk-style
   lookahead that plays the role of SimPL's rough legalization).

The result feeds the shared legalization/DP backend.  No routability
awareness — that is the point of the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.db import Design
from repro.gp.initial import initial_placement
from repro.grids import BinGrid


@dataclass
class QuadraticConfig:
    """Knobs of :class:`QuadraticPlacer`."""

    iterations: int = 12
    anchor_weight_initial: float = 0.01
    anchor_weight_growth: float = 1.6
    spread_bins: int = 24
    spread_strength: float = 0.8  # 1.0 = full CDF equalization per step
    seed: int = 7


class QuadraticPlacer:
    """B2B quadratic global placement with warping-based spreading."""

    def __init__(self, config: QuadraticConfig | None = None):
        self.config = config or QuadraticConfig()

    def place(self, design: Design) -> dict:
        """Run global placement; returns convergence info."""
        cfg = self.config
        initial_placement(design, seed=cfg.seed)
        mov = design.movable_indices()
        if len(mov) == 0:
            return {"iterations": 0}
        mov_pos = {int(i): k for k, i in enumerate(mov)}
        cx, cy = design.pull_centers()
        anchor_w = cfg.anchor_weight_initial
        info = {"iterations": 0, "hpwl": []}
        for it in range(cfg.iterations):
            cx, cy = self._solve_axis_pair(design, cx, cy, mov, mov_pos, anchor_w)
            cx, cy = self._spread(design, cx, cy, mov)
            design.push_centers(cx, cy)
            info["iterations"] = it + 1
            info["hpwl"].append(design.hpwl())
            anchor_w *= cfg.anchor_weight_growth
        return info

    # ------------------------------------------------------------------
    def _solve_axis_pair(self, design, cx, cy, mov, mov_pos, anchor_w):
        new_cx = self._solve_axis(design, cx, mov, mov_pos, anchor_w, axis=0)
        new_cy = self._solve_axis(design, cy, mov, mov_pos, anchor_w, axis=1)
        cx = cx.copy()
        cy = cy.copy()
        cx[mov] = new_cx
        cy[mov] = new_cy
        return cx, cy

    def _solve_axis(self, design, coord, mov, mov_pos, anchor_w, axis):
        """Assemble and solve the B2B system for one axis."""
        m = len(mov)
        rows, cols, vals = [], [], []
        diag = np.zeros(m)
        rhs = np.zeros(m)

        def add_spring(a: int, b: int, w: float, pa: float, pb: float):
            """Spring between nodes a, b with offsets folded into rhs."""
            ia = mov_pos.get(a)
            ib = mov_pos.get(b)
            off_a = pa - coord[a]
            off_b = pb - coord[b]
            if ia is not None:
                diag[ia] += w
                rhs[ia] += w * (off_b - off_a)
            if ib is not None:
                diag[ib] += w
                rhs[ib] += w * (off_a - off_b)
            if ia is not None and ib is not None:
                rows.append(ia)
                cols.append(ib)
                vals.append(-w)
                rows.append(ib)
                cols.append(ia)
                vals.append(-w)
            elif ia is not None:
                rhs[ia] += w * coord[b]
            elif ib is not None:
                rhs[ib] += w * coord[a]

        arrays = design.pin_arrays()
        offs = arrays.pin_dx if axis == 0 else arrays.pin_dy
        for n in range(arrays.num_nets):
            a0, a1 = int(arrays.net_ptr[n]), int(arrays.net_ptr[n + 1])
            k = a1 - a0
            if k < 2:
                continue
            nodes = arrays.pin_node[a0:a1]
            pos = coord[nodes] + offs[a0:a1]
            weight = arrays.net_weight[n]
            lo = int(np.argmin(pos))
            hi = int(np.argmax(pos))
            span = max(pos[hi] - pos[lo], 1e-6)
            base = weight * 2.0 / (k - 1)
            for j in range(k):
                for b in (lo, hi):
                    if j == b or (j == lo and b == hi):
                        continue
                    w = base / max(abs(pos[j] - pos[b]), 0.1 * span, 1e-6)
                    add_spring(
                        int(nodes[j]), int(nodes[b]), w, float(pos[j]), float(pos[b])
                    )
        # Anchors to current positions keep the system well-posed and
        # implement the spreading feedback.
        diag += anchor_w
        target = coord[mov]
        rhs += anchor_w * target
        lap = sp.coo_matrix((vals, (rows, cols)), shape=(m, m)).tocsr()
        lap += sp.diags(diag)
        solution, _ = spla.cg(lap, rhs, x0=target, rtol=1e-6, maxiter=300)
        return solution

    # ------------------------------------------------------------------
    def _spread(self, design, cx, cy, mov):
        """One step of per-axis cumulative-density warping."""
        cfg = self.config
        core = design.core
        grid = BinGrid(core, cfg.spread_bins, cfg.spread_bins)
        w, h = design.placed_sizes()
        usage = grid.rasterize_rects(
            cx[mov] - w[mov] / 2,
            cy[mov] - h[mov] / 2,
            cx[mov] + w[mov] / 2,
            cy[mov] + h[mov] / 2,
        )
        cx = cx.copy()
        cy = cy.copy()
        cx[mov] = self._warp_axis(
            cx[mov], usage.sum(axis=1), core.xl, grid.bin_w, cfg.spread_strength
        )
        cy[mov] = self._warp_axis(
            cy[mov], usage.sum(axis=0), core.yl, grid.bin_h, cfg.spread_strength
        )
        # Fenced cells stay near their regions: clamp to fence bounding box.
        for node in design.nodes:
            if node.region is not None and node.is_movable:
                box = design.regions[node.region].bounding_box
                cx[node.index] = min(max(cx[node.index], box.xl), box.xh)
                cy[node.index] = min(max(cy[node.index], box.yl), box.yh)
        return cx, cy

    @staticmethod
    def _warp_axis(pos, density, origin, pitch, strength):
        """Map coordinates through the equalizing CDF of ``density``."""
        n = len(density)
        total = density.sum()
        if total <= 0:
            return pos
        cdf = np.concatenate([[0.0], np.cumsum(density)]) / total
        edges = origin + np.arange(n + 1) * pitch
        # Position -> cdf fraction -> uniform remap.
        frac = np.interp(pos, edges, cdf)
        uniform = origin + frac * n * pitch
        return (1.0 - strength) * pos + strength * uniform
