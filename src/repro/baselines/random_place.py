"""Uniform random placement — the sanity floor of every comparison."""

from __future__ import annotations

import numpy as np

from repro.db import Design


def random_placement(design: Design, seed: int = 0) -> None:
    """Place every movable node uniformly at random inside the core
    (fenced nodes uniformly inside their fence's bounding box)."""
    rng = np.random.default_rng(seed)
    core = design.core
    for node in design.nodes:
        if not node.is_movable:
            continue
        area = core
        if node.region is not None:
            area = design.regions[node.region].bounding_box
        w, h = node.placed_width, node.placed_height
        x = rng.uniform(area.xl, max(area.xl, area.xh - w))
        y = rng.uniform(area.yl, max(area.yl, area.yh - h))
        node.x, node.y = float(x), float(y)
