"""Run a baseline global placer through the shared back-end flow.

Keeps comparisons apples-to-apples: every placer gets the same macro
legalization, fence-aware legalization, detailed placement and router
scoring as the main flow.
"""

from __future__ import annotations

import time

from repro.baselines.quadratic import QuadraticPlacer
from repro.baselines.random_place import random_placement
from repro.db import Design
from repro.dp import DetailedPlacer, DPConfig
from repro.flow.ntuplace4h import FlowResult
from repro.gp.fence import project_into_fences
from repro.legal import Legalizer, legalize_macros
from repro.route import GlobalRouter, scaled_hpwl


def run_baseline_flow(
    design: Design,
    kind: str = "quadratic",
    *,
    run_dp: bool = True,
    route: bool = True,
    seed: int = 0,
) -> FlowResult:
    """Place ``design`` with the named baseline and score it.

    ``kind``: ``"quadratic"`` or ``"random"``.
    """
    result = FlowResult(design_name=design.name)
    t = time.perf_counter()
    if kind == "quadratic":
        QuadraticPlacer().place(design)
    elif kind == "random":
        random_placement(design, seed=seed)
    else:
        raise ValueError(f"unknown baseline {kind!r}")
    project_into_fences(design)
    result.stage_seconds["global_place"] = time.perf_counter() - t
    result.hpwl_gp = design.hpwl()

    t = time.perf_counter()
    legalize_macros(design)
    legal_result = Legalizer().legalize(design)
    result.stage_seconds["legalize"] = time.perf_counter() - t
    result.legal_result = legal_result
    result.hpwl_legal = design.hpwl()

    if run_dp:
        t = time.perf_counter()
        dp_cfg = DPConfig(congestion_aware=False)
        result.dp_report = DetailedPlacer(dp_cfg).run(design, legal_result.submap)
        result.stage_seconds["detailed_place"] = time.perf_counter() - t

    result.hpwl_final = design.hpwl()
    result.legal = legal_result.report.ok
    if route and design.routing is not None:
        t = time.perf_counter()
        rr = GlobalRouter(design.routing).route(design)
        result.stage_seconds["route"] = time.perf_counter() - t
        result.route_result = rr
        result.rc = rr.metrics.rc
        result.total_overflow = rr.metrics.total_overflow
        result.peak_congestion = rr.metrics.peak_congestion
        result.scaled_hpwl = scaled_hpwl(result.hpwl_final, result.rc)
    else:
        result.scaled_hpwl = result.hpwl_final
    return result
