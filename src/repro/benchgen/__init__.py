"""Synthetic benchmark generation.

The contest benchmarks the paper evaluated on (superblue*) are
proprietary; this package generates laptop-scale circuits with the same
*statistical* structure — Rent's-rule hierarchical locality, mixed-size
macros, fence regions bound to hierarchy modules, boundary terminals, and
a routing-capacity map with deliberate tight spots — so every code path
the paper's evaluation exercises is exercised here.  Real Bookshelf
benchmarks drop in through :mod:`repro.io` unchanged.
"""

from repro.benchgen.circuits import BenchmarkSpec, make_benchmark
from repro.benchgen.suite import SUITE, load_suite, make_suite_design, suite_specs

__all__ = [
    "BenchmarkSpec",
    "SUITE",
    "load_suite",
    "make_benchmark",
    "make_suite_design",
    "suite_specs",
]
