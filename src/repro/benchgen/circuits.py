"""Construction of one synthetic hierarchical mixed-size benchmark."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db import Design, Net, Node, NodeKind, Pin, PinDirection, Region, Row
from repro.geometry import Rect
from repro.route import RoutingSpec
from repro.benchgen import rent

SITE_WIDTH = 0.25
ROW_HEIGHT = 1.0


@dataclass
class BenchmarkSpec:
    """Knobs of the synthetic benchmark generator.

    Defaults give a comfortably routable design; lower ``cap_factor`` or
    add ``congested_band`` to create the routability stress the paper's
    evaluation needs.
    """

    name: str = "bench"
    num_cells: int = 2000
    num_macros: int = 4  # movable macros
    num_fixed_macros: int = 2  # preplaced blockages
    num_terminals: int = 64
    macro_area_fraction: float = 0.25  # of total movable area
    utilization: float = 0.7
    avg_net_degree: float = 3.6
    max_net_degree: int = 24
    nets_per_cell: float = 1.15
    hierarchy_branching: int = 4
    hierarchy_depth: int | None = None  # default: sized for ~150-cell leaves
    locality: float = 0.75
    num_fences: int = 0
    fence_level: int = 1
    fence_utilization: float = 0.6
    route_tiles: int = 32
    cap_factor: float = 0.45  # tracks per (tile span / site width)
    congested_band: float = 0.0  # capacity multiplier 1-x over a center band
    macro_route_block: float = 0.6  # capacity kept over fixed macros
    seed: int = 1


@dataclass
class _Layout:
    core: Rect
    num_rows: int
    sites_per_row: int


def _depth_for(spec: BenchmarkSpec) -> int:
    if spec.hierarchy_depth is not None:
        return spec.hierarchy_depth
    depth = 1
    while spec.num_cells / (spec.hierarchy_branching**depth) > 150 and depth < 4:
        depth += 1
    return depth


def _plan_layout(total_area: float, utilization: float) -> _Layout:
    """A square-ish core of whole rows/sites fitting ``total_area/util``."""
    die_area = total_area / utilization
    side = np.sqrt(die_area)
    num_rows = max(4, int(np.ceil(side / ROW_HEIGHT)))
    sites_per_row = max(16, int(np.ceil(die_area / (num_rows * ROW_HEIGHT) / SITE_WIDTH)))
    core = Rect(0.0, 0.0, sites_per_row * SITE_WIDTH, num_rows * ROW_HEIGHT)
    return _Layout(core, num_rows, sites_per_row)


def _place_non_overlapping(
    rng: np.random.Generator, core: Rect, sizes, existing, max_tries: int = 200
):
    """Deterministic rejection sampling of non-overlapping rects in core."""
    placed = []
    for w, h in sizes:
        ok = None
        for _ in range(max_tries):
            x = float(rng.uniform(core.xl, max(core.xl, core.xh - w)))
            y = ROW_HEIGHT * round(float(rng.uniform(core.yl, max(core.yl, core.yh - h))) / ROW_HEIGHT)
            cand = Rect.from_size(x, y, w, h)
            if not core.contains_rect(cand):
                continue
            if any(cand.inflated(ROW_HEIGHT).intersects(r) for r in existing + placed):
                continue
            ok = cand
            break
        if ok is None:  # fall back: allow contact but stay in core
            x = float(rng.uniform(core.xl, max(core.xl, core.xh - w)))
            y = float(rng.uniform(core.yl, max(core.yl, core.yh - h)))
            ok = Rect.from_size(x, y, w, h)
        placed.append(ok)
    return placed


def make_benchmark(spec: BenchmarkSpec) -> Design:
    """Generate the full design: netlist, floorplan, hierarchy, fences,
    routing capacities.  Deterministic in ``spec.seed``."""
    rng = np.random.default_rng(spec.seed)
    design = Design(spec.name)

    # ------------------------------------------------------------- cells
    cell_sites = rng.integers(2, 9, size=spec.num_cells)  # 2..8 sites wide
    cell_w = cell_sites * SITE_WIDTH
    cell_area = float(np.sum(cell_w * ROW_HEIGHT))

    # ------------------------------------------------------------ macros
    macro_sizes = []
    if spec.num_macros > 0 and spec.macro_area_fraction > 0:
        macro_total = (
            cell_area
            * spec.macro_area_fraction
            / max(1e-9, 1.0 - spec.macro_area_fraction)
        )
        shares = rng.dirichlet(np.ones(spec.num_macros)) * macro_total
        for a in shares:
            aspect = float(rng.uniform(0.6, 1.6))
            w = max(2 * ROW_HEIGHT, np.sqrt(a * aspect))
            h = max(2 * ROW_HEIGHT, a / w)
            h = ROW_HEIGHT * max(2, round(h / ROW_HEIGHT))
            w = SITE_WIDTH * max(4, round(w / SITE_WIDTH))
            macro_sizes.append((w, h))
    macro_area = sum(w * h for w, h in macro_sizes)
    movable_area = cell_area + macro_area

    layout = _plan_layout(movable_area, spec.utilization)
    design.core = layout.core
    for r in range(layout.num_rows):
        design.add_row(
            Row(
                y=r * ROW_HEIGHT,
                height=ROW_HEIGHT,
                site_width=SITE_WIDTH,
                x_min=0.0,
                num_sites=layout.sites_per_row,
            )
        )

    # ----------------------------------------------------- fixed macros
    fixed_rects = []
    if spec.num_fixed_macros > 0:
        side = np.sqrt(layout.core.area * 0.04)  # each ~4% of die
        sizes = [
            (
                SITE_WIDTH * max(8, round(float(rng.uniform(0.7, 1.4)) * side / SITE_WIDTH)),
                ROW_HEIGHT * max(4, round(float(rng.uniform(0.7, 1.4)) * side / ROW_HEIGHT)),
            )
            for _ in range(spec.num_fixed_macros)
        ]
        fixed_rects = _place_non_overlapping(rng, layout.core.inflated(-2 * ROW_HEIGHT), sizes, [])
        # Blockages sit on the site/row grid like everything else.
        fixed_rects = [
            Rect.from_size(
                SITE_WIDTH * round(r.xl / SITE_WIDTH),
                ROW_HEIGHT * round(r.yl / ROW_HEIGHT),
                r.width,
                r.height,
            )
            for r in fixed_rects
        ]

    # ---------------------------------------------------- node creation
    depth = _depth_for(spec)
    leaf_of_cell, members = rent.assign_cells_to_leaves(
        spec.num_cells, spec.hierarchy_branching, depth
    )
    for i in range(spec.num_cells):
        path = rent.leaf_module_path(
            int(leaf_of_cell[i]), spec.hierarchy_branching, depth
        )
        design.add_node(
            Node(
                name=f"c{i}",
                width=float(cell_w[i]),
                height=ROW_HEIGHT,
                kind=NodeKind.CELL,
                module=path,
            )
        )
    macro_ids = []
    for k, (w, h) in enumerate(macro_sizes):
        node = design.add_node(
            Node(name=f"mac{k}", width=w, height=h, kind=NodeKind.MACRO, module="top")
        )
        macro_ids.append(node.index)
    for k, r in enumerate(fixed_rects):
        design.add_node(
            Node(
                name=f"blk{k}",
                width=r.width,
                height=r.height,
                kind=NodeKind.FIXED,
                x=r.xl,
                y=r.yl,
            )
        )
    terminal_ids = []
    core = layout.core
    for k in range(spec.num_terminals):
        t = k / max(1, spec.num_terminals)
        per = core.half_perimeter() * 2.0
        d = t * per
        if d < core.width:
            x, y = core.xl + d, core.yl
        elif d < core.width + core.height:
            x, y = core.xh, core.yl + (d - core.width)
        elif d < 2 * core.width + core.height:
            x, y = core.xh - (d - core.width - core.height), core.yh
        else:
            x, y = core.xl, core.yh - (d - 2 * core.width - core.height)
        node = design.add_node(
            Node(
                name=f"p{k}",
                width=0.0,
                height=0.0,
                kind=NodeKind.TERMINAL_NI,
                x=float(x),
                y=float(y),
            )
        )
        terminal_ids.append(node.index)

    # ------------------------------------------------------------- nets
    num_nets = int(spec.num_cells * spec.nets_per_cell)
    levels = rent.sample_net_levels(rng, num_nets, depth, spec.locality)
    degrees = rent.sample_net_degrees(
        rng, num_nets, spec.avg_net_degree, spec.max_net_degree
    )
    p_macro_pin = min(0.5, 3.0 * len(macro_ids) / max(1, num_nets) * 40)
    for n in range(num_nets):
        anchor_leaf = int(rng.integers(0, len(members)))
        pool = rent.subtree_cells(
            members, anchor_leaf, int(levels[n]), spec.hierarchy_branching, depth
        )
        k = int(min(degrees[n], len(pool)))
        if k < 2:
            continue
        chosen = rng.choice(pool, size=k, replace=False)
        pins = []
        for pin_pos, c in enumerate(chosen):
            node = design.nodes[int(c)]
            pins.append(
                Pin(
                    node=int(c),
                    dx=float(rng.uniform(-node.width / 2, node.width / 2)),
                    dy=float(rng.uniform(-node.height / 2, node.height / 2)),
                    # First pin drives: gives the netlist a well-defined
                    # timing DAG (cells are picked without replacement,
                    # so driver cycles only arise across nets).
                    direction=PinDirection.OUTPUT if pin_pos == 0 else PinDirection.INPUT,
                )
            )
        # Root-level nets may also touch a macro and/or a terminal.
        if levels[n] == 0 and macro_ids and rng.uniform() < p_macro_pin:
            m = int(rng.choice(macro_ids))
            node = design.nodes[m]
            pins.append(
                Pin(
                    node=m,
                    dx=float(rng.uniform(-node.width / 2, node.width / 2)),
                    dy=float(rng.uniform(-node.height / 2, node.height / 2)),
                )
            )
        if levels[n] == 0 and terminal_ids and rng.uniform() < 0.15:
            pins.append(Pin(node=int(rng.choice(terminal_ids))))
        design.add_net(Net(name=f"n{n}", pins=pins))

    # ------------------------------------------------------------ fences
    # Fences are anchored at die corners/edge midpoints, which keeps them
    # mutually disjoint by construction; their area budget is grown by any
    # blockage overlap so member capacity is preserved.
    if spec.num_fences > 0:
        fence_modules = _pick_fence_modules(design, spec, rng)
        placed_fences = []
        anchors = _fence_anchors(core)
        for path in fence_modules:
            module = design.hierarchy.get(path)
            area = sum(design.nodes[i].area for i in module.all_cells())
            if area <= 0:
                continue
            rect = _anchor_fence(
                area / spec.fence_utilization, core, anchors, placed_fences, fixed_rects
            )
            if rect is None:
                continue
            placed_fences.append(rect)
            region = Region(name=f"fence_{path.replace('/', '_')}", rects=[rect])
            design.add_region(region)
            design.bind_region(path, region)

    # ----------------------------------------------------------- routing
    tiles = spec.route_tiles
    tile_w = core.width / tiles
    tile_h = core.height / tiles
    hcap = spec.cap_factor * tile_h / SITE_WIDTH
    vcap = spec.cap_factor * tile_w / SITE_WIDTH
    routing = RoutingSpec.uniform(core, tiles, tiles, hcap=hcap, vcap=vcap)
    if spec.congested_band > 0.0:
        band = Rect(
            core.xl,
            core.yl + 0.4 * core.height,
            core.xh,
            core.yl + 0.6 * core.height,
        )
        routing.block_rect(band, keep_fraction=1.0 - spec.congested_band)
    for r in fixed_rects:
        routing.block_rect(r, keep_fraction=spec.macro_route_block)
    design.routing = routing
    return design


def _fence_anchors(core: Rect) -> list:
    """Candidate fence anchor points: corners first, then edge midpoints."""
    return [
        (core.xl, core.yl),
        (core.xh, core.yh),
        (core.xh, core.yl),
        (core.xl, core.yh),
        ((core.xl + core.xh) / 2, core.yl),
        ((core.xl + core.xh) / 2, core.yh),
        (core.xl, (core.yl + core.yh) / 2),
        (core.xh, (core.yl + core.yh) / 2),
    ]


def _anchor_fence(area: float, core: Rect, anchors, placed, blockages):
    """Place a fence of ``area`` at the first anchor where it fits.

    The rectangle is grown to compensate for overlap with fixed
    blockages, snapped to row/site grid, and must not intersect other
    fences.  Returns ``None`` only if no anchor works.
    """
    inset = ROW_HEIGHT
    usable = core.inflated(-inset)
    for ax, ay in anchors:
        grow = 1.0
        for _ in range(4):
            side = np.sqrt(area * grow)
            w = min(side, usable.width)
            h = min(area * grow / w, usable.height)
            x = min(max(ax - w / 2, usable.xl), usable.xh - w)
            y = min(max(ay - h / 2, usable.yl), usable.yh - h)
            rect = Rect(
                SITE_WIDTH * np.floor(x / SITE_WIDTH),
                ROW_HEIGHT * np.floor(y / ROW_HEIGHT),
                SITE_WIDTH * np.ceil((x + w) / SITE_WIDTH),
                ROW_HEIGHT * np.ceil((y + h) / ROW_HEIGHT),
            )
            if any(rect.intersects(f) for f in placed):
                break  # try next anchor
            blocked = sum(rect.overlap_area(b) for b in blockages)
            if blocked <= 0.02 * rect.area:
                return rect
            grow = (rect.area + blocked * 1.1) / rect.area
        else:
            continue
    # Last resort: any anchor ignoring the blockage compensation.
    for ax, ay in anchors:
        side = np.sqrt(area)
        w = min(side, usable.width)
        h = min(area / w, usable.height)
        x = min(max(ax - w / 2, usable.xl), usable.xh - w)
        y = min(max(ay - h / 2, usable.yl), usable.yh - h)
        rect = Rect(
            SITE_WIDTH * np.floor(x / SITE_WIDTH),
            ROW_HEIGHT * np.floor(y / ROW_HEIGHT),
            SITE_WIDTH * np.ceil((x + w) / SITE_WIDTH),
            ROW_HEIGHT * np.ceil((y + h) / ROW_HEIGHT),
        )
        if not any(rect.intersects(f) for f in placed):
            return rect
    return None


def _pick_fence_modules(design: Design, spec: BenchmarkSpec, rng) -> list:
    """Deterministically pick ``num_fences`` modules at ``fence_level``."""
    candidates = [
        m.name
        for m in design.hierarchy.modules()
        if m.name.count("/") == spec.fence_level and m.name.startswith("top")
    ]
    candidates.sort()
    if not candidates:
        return []
    take = min(spec.num_fences, len(candidates))
    idx = rng.choice(len(candidates), size=take, replace=False)
    return [candidates[i] for i in sorted(idx)]
