"""Hierarchical net generation following Rent's rule.

Cells are assigned to the leaves of a balanced module tree; each net picks
an enclosing module level with a geometric bias toward the leaves and
draws its pins from that subtree.  The bias parameter plays the role of
the Rent exponent: stronger locality (more leaf-level nets) corresponds to
a smaller exponent.  This is the standard GNL-style construction and
produces netlists whose placed wirelength scales like real designs'.
"""

from __future__ import annotations

import numpy as np


def assign_cells_to_leaves(num_cells: int, branching: int, depth: int):
    """Contiguously partition ``num_cells`` over ``branching**depth`` leaves.

    Returns ``leaf_of_cell`` (int array) and a list of per-leaf cell index
    arrays.  Contiguity matters: it lets module paths be derived from the
    leaf index alone.
    """
    num_leaves = branching**depth
    leaf_of_cell = (np.arange(num_cells) * num_leaves) // max(num_cells, 1)
    leaf_of_cell = np.minimum(leaf_of_cell, num_leaves - 1)
    members = [np.flatnonzero(leaf_of_cell == leaf) for leaf in range(num_leaves)]
    return leaf_of_cell, members


def leaf_module_path(leaf: int, branching: int, depth: int, prefix: str = "top") -> str:
    """Hierarchy path of a leaf, e.g. ``top/m2/m0/m3``."""
    digits = []
    for _ in range(depth):
        digits.append(leaf % branching)
        leaf //= branching
    return "/".join([prefix] + [f"m{d}" for d in reversed(digits)])


def sample_net_levels(
    rng: np.random.Generator, num_nets: int, depth: int, locality: float
) -> np.ndarray:
    """Enclosing-module *level* for each net (0 = root, ``depth`` = leaf).

    ``locality`` in (0, 1): probability mass moves toward the leaves as it
    grows.  Geometric over levels, truncated and renormalized.
    """
    if not 0.0 < locality < 1.0:
        raise ValueError("locality must be in (0, 1)")
    levels = np.arange(depth + 1)
    weights = locality ** (depth - levels)
    weights = weights / weights.sum()
    return rng.choice(levels, size=num_nets, p=weights)


def sample_net_degrees(
    rng: np.random.Generator, num_nets: int, avg_degree: float, max_degree: int
) -> np.ndarray:
    """Net degrees: 2 + (shifted geometric), matching real distributions
    where 2-pin nets dominate with a long high-fanout tail."""
    if avg_degree <= 2.0:
        return np.full(num_nets, 2, dtype=np.int64)
    p = 1.0 / (avg_degree - 1.0)
    extra = rng.geometric(p=min(max(p, 1e-6), 1.0), size=num_nets) - 1
    return np.clip(2 + extra, 2, max_degree)


def subtree_cells(members, leaf: int, level: int, branching: int, depth: int):
    """All cell indices inside the level-``level`` ancestor of ``leaf``.

    Leaves are numbered so a level-``l`` module owns a contiguous block of
    ``branching**(depth - l)`` leaves.
    """
    block = branching ** (depth - level)
    start = (leaf // block) * block
    return np.concatenate(members[start : start + block]) if block > 1 else members[leaf]
