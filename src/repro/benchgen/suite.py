"""The named benchmark suite used by the tables and figures.

Six designs spanning the axes the paper's evaluation varies: size, macro
content, hierarchy/fence constraints, and routing pressure.  ``rh``
stands for *routability-hierarchical*; higher numbers are harder.
"""

from __future__ import annotations

from repro.benchgen.circuits import BenchmarkSpec, make_benchmark

SUITE = {
    # Small, mild: sanity row of the tables.
    "rh01": BenchmarkSpec(
        name="rh01",
        num_cells=1200,
        num_macros=2,
        num_fixed_macros=1,
        macro_area_fraction=0.15,
        utilization=0.65,
        num_fences=0,
        cap_factor=4.7,
        seed=101,
    ),
    # Small but congested: a capacity-starved band across the die centre.
    "rh02": BenchmarkSpec(
        name="rh02",
        num_cells=1500,
        num_macros=3,
        num_fixed_macros=2,
        macro_area_fraction=0.20,
        utilization=0.70,
        num_fences=0,
        cap_factor=5.23,
        congested_band=0.5,
        seed=102,
    ),
    # Hierarchical: two fence regions, moderate congestion.
    "rh03": BenchmarkSpec(
        name="rh03",
        num_cells=2000,
        num_macros=3,
        num_fixed_macros=1,
        macro_area_fraction=0.20,
        utilization=0.68,
        num_fences=2,
        fence_level=2,
        cap_factor=4.65,
        seed=103,
    ),
    # Mid-size, macro-heavy: mixed-size stress.
    "rh04": BenchmarkSpec(
        name="rh04",
        num_cells=4000,
        num_macros=6,
        num_fixed_macros=3,
        macro_area_fraction=0.35,
        utilization=0.70,
        num_fences=0,
        cap_factor=4.7,
        seed=104,
    ),
    # Mid-size, hierarchical AND congested: the paper's headline regime.
    "rh05": BenchmarkSpec(
        name="rh05",
        num_cells=5000,
        num_macros=4,
        num_fixed_macros=2,
        macro_area_fraction=0.25,
        utilization=0.66,
        num_fences=3,
        fence_level=2,
        cap_factor=5.71,
        congested_band=0.45,
        seed=105,
    ),
    # The large row: everything at once.
    "rh06": BenchmarkSpec(
        name="rh06",
        num_cells=9000,
        num_macros=8,
        num_fixed_macros=3,
        macro_area_fraction=0.30,
        utilization=0.68,
        num_fences=3,
        fence_level=2,
        cap_factor=11.7,
        congested_band=0.4,
        route_tiles=40,
        seed=106,
    ),
}


def suite_specs(names=None) -> list:
    """Specs of the requested suite designs (default: all, in order)."""
    if names is None:
        names = sorted(SUITE)
    return [SUITE[name] for name in names]


def make_suite_design(name: str):
    """Generate one suite design by name."""
    return make_benchmark(SUITE[name])


def load_suite(names=None) -> dict:
    """Generate several suite designs; returns ``{name: Design}``."""
    if names is None:
        names = sorted(SUITE)
    return {name: make_benchmark(SUITE[name]) for name in names}
