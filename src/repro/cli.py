"""Command-line interface.

Four subcommands mirror how the original tools were driven::

    python -m repro generate --suite rh02 --out bench_dir
    python -m repro place    --aux bench_dir/rh02.aux --out placed_dir
    python -m repro route    --aux placed_dir/rh02.aux
    python -m repro stats    --aux bench_dir/rh02.aux

``place`` runs the full NTUplace4h flow (``--wirelength-only`` disables
the routability machinery; ``--baseline quadratic`` runs the quadratic
placer through the same back-end) and writes the placed design back in
Bookshelf format, plus an optional SVG.
"""

from __future__ import annotations

import argparse
import logging
import sys

from repro.baselines import run_baseline_flow
from repro.benchgen import SUITE, BenchmarkSpec, make_benchmark, make_suite_design
from repro.db import compute_stats
from repro.flow import FlowConfig, NTUplace4H
from repro.io import read_bookshelf, write_bookshelf
from repro.metrics import format_table
from repro.obs import (
    NULL_TRACER,
    Tracer,
    configure_logging,
    format_trace_summary,
    get_logger,
    use_tracer,
    write_jsonl,
)
from repro.route import GlobalRouter, scaled_hpwl

_log = get_logger("cli")


def _cmd_generate(args) -> int:
    if args.suite:
        design = make_suite_design(args.suite)
    else:
        spec = BenchmarkSpec(
            name=args.name,
            num_cells=args.cells,
            num_macros=args.macros,
            num_fences=args.fences,
            seed=args.seed,
        )
        design = make_benchmark(spec)
    aux = write_bookshelf(design, args.out)
    print(f"wrote {aux}")
    print(format_table([compute_stats(design).as_row()]))
    return 0


def _cmd_place(args) -> int:
    design = read_bookshelf(args.aux)
    tracing = bool(args.trace or args.trace_summary)
    if args.trace:
        # Fail fast on an unwritable path before a minutes-long run.
        try:
            with open(args.trace, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"error: cannot write trace file: {exc}", file=sys.stderr)
            return 2
    tracer = Tracer() if tracing else NULL_TRACER
    with use_tracer(tracer):
        if args.baseline:
            result = run_baseline_flow(design, args.baseline, route=not args.no_route)
        else:
            cfg = FlowConfig.wirelength_only() if args.wirelength_only else FlowConfig()
            if args.no_dp:
                cfg.run_dp = False
            _apply_route_knobs(cfg, args)
            result = NTUplace4H(cfg).run(design, route=not args.no_route)
    if args.trace:
        count = write_jsonl(
            tracer, args.trace, meta={"command": "place", "design": design.name}
        )
        print(f"wrote {args.trace} ({count} records)")
    if args.trace_summary:
        print(format_trace_summary(tracer))
    print(format_table([result.as_row()], title="flow result"))
    if not result.legal:
        _log.warning(
            "placement is not legal: %s", result.legal_result.report.summary()
        )
    if args.out:
        aux = write_bookshelf(design, args.out)
        print(f"wrote {aux}")
    if args.svg:
        from repro.viz import placement_to_svg

        placement_to_svg(design, args.svg)
        print(f"wrote {args.svg}")
    return 0 if result.legal else 1


def _apply_route_knobs(cfg: FlowConfig, args) -> None:
    """Copy the router tuning flags (when given) onto a flow config."""
    if args.route_sweeps is not None:
        cfg.route_sweeps = args.route_sweeps
    if args.maze_rounds is not None:
        cfg.route_maze_rounds = args.maze_rounds
    if args.max_maze_nets is not None:
        cfg.route_max_maze_nets = args.max_maze_nets
    if args.cost_refresh is not None:
        cfg.route_cost_refresh = args.cost_refresh


def _add_route_knobs(p) -> None:
    p.add_argument(
        "--route-sweeps", type=int, metavar="N",
        help="number of vectorized L-routing sweeps",
    )
    p.add_argument(
        "--maze-rounds", type=int, metavar="N",
        help="maximum maze rip-up-and-reroute rounds",
    )
    p.add_argument(
        "--max-maze-nets", type=int, metavar="N",
        help="per-round cap on maze-rerouted segments",
    )
    p.add_argument(
        "--cost-refresh", type=int, metavar="K",
        help="1 = exact incremental cost refresh; K>1 = full rebuild every K reroutes",
    )


def _cmd_route(args) -> int:
    design = read_bookshelf(args.aux)
    if design.routing is None:
        print("error: benchmark has no .route file", file=sys.stderr)
        return 2
    cfg = FlowConfig()
    _apply_route_knobs(cfg, args)
    rr = GlobalRouter(
        design.routing,
        sweeps=cfg.route_sweeps,
        maze_rounds=cfg.route_maze_rounds,
        max_maze_nets=cfg.route_max_maze_nets,
        cost_refresh=cfg.route_cost_refresh,
    ).route(design)
    hpwl = design.hpwl()
    row = rr.metrics.as_row()
    row["HPWL"] = round(hpwl, 0)
    row["sHPWL"] = round(scaled_hpwl(hpwl, rr.metrics.rc), 0)
    print(format_table([row], title="routing-based congestion score"))
    if args.map:
        from repro.viz import ascii_heatmap

        print(ascii_heatmap(rr.congestion_map(), vmax=1.5))
    return 0


def _cmd_stats(args) -> int:
    design = read_bookshelf(args.aux)
    print(format_table([compute_stats(design).as_row()]))
    problems = design.validate()
    if problems:
        print(f"{len(problems)} consistency problems; first: {problems[0]}")
        return 1
    print("design is consistent")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Routability-driven placement for hierarchical mixed-size designs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a synthetic benchmark")
    g.add_argument("--suite", choices=sorted(SUITE), help="named suite design")
    g.add_argument("--name", default="bench")
    g.add_argument("--cells", type=int, default=2000)
    g.add_argument("--macros", type=int, default=4)
    g.add_argument("--fences", type=int, default=0)
    g.add_argument("--seed", type=int, default=1)
    g.add_argument("--out", required=True, help="output directory")
    g.set_defaults(func=_cmd_generate)

    p = sub.add_parser("place", help="run the placement flow on a benchmark")
    p.add_argument("--aux", required=True, help="Bookshelf .aux file")
    p.add_argument("--out", help="directory for the placed benchmark")
    p.add_argument("--svg", help="write the placement as SVG")
    p.add_argument("--wirelength-only", action="store_true")
    p.add_argument("--baseline", choices=["quadratic", "random"])
    p.add_argument("--no-dp", action="store_true")
    p.add_argument("--no-route", action="store_true")
    p.add_argument(
        "--trace", metavar="PATH",
        help="capture a hierarchical trace and write it as JSONL",
    )
    p.add_argument(
        "--trace-summary", action="store_true",
        help="print the stage-breakdown table of the captured trace",
    )
    _add_route_knobs(p)
    p.set_defaults(func=_cmd_place)

    r = sub.add_parser("route", help="score an existing placement by routing")
    r.add_argument("--aux", required=True)
    r.add_argument("--map", action="store_true", help="print the congestion map")
    _add_route_knobs(r)
    r.set_defaults(func=_cmd_route)

    s = sub.add_parser("stats", help="print benchmark statistics")
    s.add_argument("--aux", required=True)
    s.set_defaults(func=_cmd_stats)
    return parser


def main(argv=None) -> int:
    configure_logging(logging.WARNING)
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
