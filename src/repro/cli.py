"""Command-line interface.

The subcommands mirror how the original tools were driven::

    python -m repro generate --suite rh02 --out bench_dir
    python -m repro validate --aux bench_dir/rh02.aux
    python -m repro place    --aux bench_dir/rh02.aux --out placed_dir
    python -m repro route    --aux placed_dir/rh02.aux
    python -m repro stats    --aux bench_dir/rh02.aux

``place`` runs the full NTUplace4h flow (``--wirelength-only`` disables
the routability machinery; ``--baseline quadratic`` runs the quadratic
placer through the same back-end) and writes the placed design back in
Bookshelf format, plus an optional SVG.  ``--checkpoint-dir`` makes the
flow write a resumable checkpoint after every stage and ``--resume``
continues from it; ``--strict`` turns a degraded result into a nonzero
exit.  On flow failure, ``place``/``route`` exit nonzero and print the
failing stage plus the last trace event (see docs/robustness.md).

Exit codes: 0 success; 1 flow finished but the placement is not legal
(or, with ``--strict``, the result is degraded); 2 usage or input
error; 3 the flow itself failed.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys

from repro.baselines import run_baseline_flow
from repro.benchgen import SUITE, BenchmarkSpec, make_benchmark, make_suite_design
from repro.db import compute_stats
from repro.flow import FlowConfig, NTUplace4H
from repro.io import read_bookshelf, write_bookshelf
from repro.metrics import format_table
from repro.obs import (
    FlightRecorder,
    HeartbeatSink,
    JsonlStreamSink,
    RunRegistry,
    RunRegistryError,
    SamplingProfiler,
    Tracer,
    configure_logging,
    diff_runs,
    format_trace_summary,
    get_logger,
    use_tracer,
)
from repro.obs.runs import default_runs_dir, run_summary_row
from repro.resilience import validate_design
from repro.route import GlobalRouter, scaled_hpwl

_log = get_logger("cli")


def _read_design(args):
    """Load the benchmark, turning parse errors into a (None, code) exit."""
    try:
        return read_bookshelf(args.aux), 0
    except (OSError, ValueError) as exc:
        print(f"error: cannot load {args.aux}: {exc}", file=sys.stderr)
        return None, 2


def _report_flow_failure(tracer, exc) -> None:
    """Print the failing stage and the last trace event to stderr."""
    errored = [s for s in tracer.finished_spans() if s.error]
    # Spans finish children-first, so the first errored span is the
    # innermost frame — its path is the most precise failure location.
    stage = errored[0].path if errored else "(no stage recorded)"
    print(f"error: flow failed in stage {stage}: {exc}", file=sys.stderr)
    events = tracer.events()
    if events:
        last = events[-1]
        where = f" at {last.path}" if last.path else ""
        print(
            f"last trace event: {last.name}{where} {last.attrs}", file=sys.stderr
        )


def _print_degradations(result) -> None:
    for entry in result.degradation:
        detail = {k: v for k, v in entry.items() if k not in ("stage", "reason")}
        suffix = f" {detail}" if detail else ""
        print(
            f"degraded: stage={entry['stage']} reason={entry['reason']}{suffix}",
            file=sys.stderr,
        )


def _cmd_generate(args) -> int:
    if args.suite:
        design = make_suite_design(args.suite)
    else:
        spec = BenchmarkSpec(
            name=args.name,
            num_cells=args.cells,
            num_macros=args.macros,
            num_fences=args.fences,
            seed=args.seed,
        )
        design = make_benchmark(spec)
    aux = write_bookshelf(design, args.out)
    print(f"wrote {aux}")
    print(format_table([compute_stats(design).as_row()]))
    return 0


def _cmd_validate(args) -> int:
    design, code = _read_design(args)
    if design is None:
        return code
    report = validate_design(design, sanitize=args.sanitize)
    if report.issues:
        print(format_table([i.as_row() for i in report.issues], title="validation"))
    print(report.summary())
    if not report.ok:
        print(
            f"error: {len(report.fatal)} fatal issues; the flow would refuse "
            "to run this design",
            file=sys.stderr,
        )
        return 2
    if args.sanitize and args.out:
        aux = write_bookshelf(design, args.out)
        print(f"wrote sanitized benchmark {aux}")
    return 0


def _cmd_place(args) -> int:
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.baseline and (args.resume or args.checkpoint_dir):
        print(
            "error: --checkpoint-dir/--resume do not apply to --baseline runs",
            file=sys.stderr,
        )
        return 2
    design, code = _read_design(args)
    if design is None:
        return code
    # Always capture a trace: on failure the failing stage and the last
    # event are reported; --trace/--trace-summary just export it.
    tracer = Tracer(profile_resources=args.profile)
    trace_sink = None
    if args.trace:
        # Streaming sink: the file is written record-by-record, so it
        # is tail -f-able mid-run (and an unwritable path fails fast
        # here, before a minutes-long run).
        try:
            trace_sink = JsonlStreamSink(args.trace)
        except OSError as exc:
            print(f"error: cannot write trace file: {exc}", file=sys.stderr)
            return 2
        tracer.add_sink(
            trace_sink, meta={"command": "place", "design": design.name}
        )
    if args.heartbeat:
        tracer.add_sink(HeartbeatSink(args.heartbeat))
    if args.flight_recorder:
        tracer.add_sink(FlightRecorder(path=args.flight_recorder))
    profiler = SamplingProfiler(tracer) if args.profile else None
    if profiler is not None:
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
        profiler.start()
    try:
        with use_tracer(tracer):
            if args.baseline:
                result = run_baseline_flow(
                    design, args.baseline, route=not args.no_route
                )
            else:
                cfg = (
                    FlowConfig.wirelength_only()
                    if args.wirelength_only
                    else FlowConfig()
                )
                if args.no_dp:
                    cfg.run_dp = False
                cfg.checkpoint_dir = args.checkpoint_dir
                cfg.runs_dir = default_runs_dir(args.runs_dir)
                _apply_route_knobs(cfg, args)
                _apply_dp_knobs(cfg, args)
                _apply_predict_knobs(cfg, args)
                result = NTUplace4H(cfg).run(
                    design,
                    route=not args.no_route,
                    resume_from=args.checkpoint_dir if args.resume else None,
                )
    except Exception as exc:
        dumps = tracer.dump_flight_recorders(reason="crash")
        tracer.close_sinks()
        _report_flow_failure(tracer, exc)
        for path in dumps:
            print(f"flight-recorder dump: {path}", file=sys.stderr)
        return 3
    finally:
        if profiler is not None:
            profiler.stop()
    tracer.close_sinks()
    if trace_sink is not None:
        print(f"wrote {args.trace} ({trace_sink.records_written} records)")
        run_id = getattr(result, "run_id", None)
        if run_id:
            RunRegistry(cfg.runs_dir).set_trace_path(run_id, args.trace)
    if args.trace_summary or args.profile:
        print(format_trace_summary(tracer, profile=profiler))
    print(format_table([result.as_row()], title="flow result"))
    if not result.legal:
        _log.warning(
            "placement is not legal: %s", result.legal_result.report.summary()
        )
    if args.out:
        aux = write_bookshelf(design, args.out)
        print(f"wrote {aux}")
    if args.svg:
        from repro.viz import placement_to_svg

        placement_to_svg(design, args.svg)
        print(f"wrote {args.svg}")
    if result.degraded:
        _print_degradations(result)
        if args.strict:
            print("error: result is degraded and --strict is set", file=sys.stderr)
            return 1
    return 0 if result.legal else 1


def _apply_route_knobs(cfg: FlowConfig, args) -> None:
    """Copy the router tuning flags (when given) onto a flow config."""
    if args.route_sweeps is not None:
        cfg.route_sweeps = args.route_sweeps
    if args.maze_rounds is not None:
        cfg.route_maze_rounds = args.maze_rounds
    if args.max_maze_nets is not None:
        cfg.route_max_maze_nets = args.max_maze_nets
    if args.cost_refresh is not None:
        cfg.route_cost_refresh = args.cost_refresh
    if args.workers is not None:
        cfg.workers = args.workers
    if getattr(args, "parallel_fast", False):
        cfg.deterministic = False


def _add_route_knobs(p) -> None:
    p.add_argument(
        "--workers", type=int, metavar="N",
        help="worker processes for the parallel GP/legalization/routing "
        "paths (default 1 = serial, honouring $REPRO_WORKERS; 0 = one "
        "per CPU core)",
    )
    p.add_argument(
        "--route-sweeps", type=int, metavar="N",
        help="number of vectorized L-routing sweeps",
    )
    p.add_argument(
        "--maze-rounds", type=int, metavar="N",
        help="maximum maze rip-up-and-reroute rounds",
    )
    p.add_argument(
        "--max-maze-nets", type=int, metavar="N",
        help="per-round cap on maze-rerouted segments",
    )
    p.add_argument(
        "--cost-refresh", type=int, metavar="K",
        help="1 = exact incremental cost refresh; K>1 = full rebuild every K reroutes",
    )


def _apply_predict_knobs(cfg: FlowConfig, args) -> None:
    """Copy the congestion-estimator flags (when given) onto a flow config."""
    if args.estimator is not None:
        cfg.gp.congestion_estimator = args.estimator
    if args.predict_model is not None:
        cfg.gp.predict_model = args.predict_model
    if args.predict_interval is not None:
        cfg.gp.predict_router_interval = args.predict_interval
    if args.predict_drift_tol is not None:
        cfg.gp.predict_drift_tol = args.predict_drift_tol


def _add_predict_knobs(p) -> None:
    p.add_argument(
        "--estimator", choices=["rudy", "router", "hybrid"],
        help="GP congestion estimator: rudy (no routing), router "
        "(look-ahead route every inflation round), or hybrid (learned "
        "predictor + periodic router, see 'repro predict')",
    )
    p.add_argument(
        "--predict-model", metavar="PATH",
        help="hybrid estimator: model artifact JSON (default: the "
        "packaged artifact trained by 'repro predict train')",
    )
    p.add_argument(
        "--predict-interval", type=int, metavar="K",
        help="hybrid estimator: run the real look-ahead router every "
        "K-th inflation round (predictor in between)",
    )
    p.add_argument(
        "--predict-drift-tol", type=float, metavar="T",
        help="hybrid estimator: fall back to the router permanently "
        "once mean |predicted - routed| congestion over hot tiles "
        "exceeds T on a router round",
    )


def _apply_dp_knobs(cfg: FlowConfig, args) -> None:
    """Copy the detailed-placement flags (when given) onto a flow config."""
    if args.dp_passes is not None:
        cfg.dp.rounds = args.dp_passes
    if args.dp_reference:
        # The golden mode spans both post-GP stages: the original
        # legalization loops and the original DP scoring loops.
        cfg.dp.reference = True
        cfg.legal.reference = True


def _add_dp_knobs(p) -> None:
    p.add_argument(
        "--dp-passes", type=int, metavar="N",
        help="number of detailed-placement rounds (swap/reorder/matching)",
    )
    p.add_argument(
        "--dp-reference", action="store_true",
        help="run legalization and detailed placement on the original "
        "per-object reference paths (bit-identical, slower; for "
        "equivalence debugging)",
    )
    p.add_argument(
        "--parallel-fast", action="store_true",
        help="with --workers N: let GP workers pre-reduce their shard "
        "(faster; reproducible per worker count instead of bit-identical "
        "across counts)",
    )


def _cmd_route(args) -> int:
    design, code = _read_design(args)
    if design is None:
        return code
    if design.routing is None:
        print("error: benchmark has no .route file", file=sys.stderr)
        return 2
    cfg = FlowConfig()
    _apply_route_knobs(cfg, args)
    tracer = Tracer()
    try:
        with use_tracer(tracer):
            rr = GlobalRouter(
                design.routing,
                sweeps=cfg.route_sweeps,
                maze_rounds=cfg.route_maze_rounds,
                max_maze_nets=cfg.route_max_maze_nets,
                cost_refresh=cfg.route_cost_refresh,
                workers=cfg.workers,
            ).route(design)
    except Exception as exc:
        _report_flow_failure(tracer, exc)
        return 3
    hpwl = design.hpwl()
    row = rr.metrics.as_row()
    row["HPWL"] = round(hpwl, 0)
    row["sHPWL"] = round(scaled_hpwl(hpwl, rr.metrics.rc), 0)
    print(format_table([row], title="routing-based congestion score"))
    if args.map:
        from repro.viz import ascii_heatmap

        print(ascii_heatmap(rr.congestion_map(), vmax=1.5))
    return 0


def _cmd_stats(args) -> int:
    design = read_bookshelf(args.aux)
    print(format_table([compute_stats(design).as_row()]))
    problems = design.validate()
    if problems:
        print(f"{len(problems)} consistency problems; first: {problems[0]}")
        return 1
    print("design is consistent")
    return 0


def _cmd_predict_train(args) -> int:
    from repro.predict import train_predictor, training_specs
    from repro.predict.model import save_artifact
    from repro.predict.train import default_artifact_path

    specs = training_specs(args.designs, args.seed)
    artifact = train_predictor(
        specs,
        seed=args.seed,
        boost_rounds=args.boost_rounds,
        ridge_alpha=args.ridge_alpha,
    )
    out = args.out or default_artifact_path()
    save_artifact(artifact, out)
    metrics = artifact["metrics"]
    rows = [
        {
            "primary": artifact["primary"],
            "designs": len(specs),
            "samples": artifact["provenance"]["num_samples"],
            **{k: f"{v:.4f}" for k, v in sorted(metrics.items())},
        }
    ]
    print(format_table(rows, title="trained congestion predictor"))
    print(f"wrote {out}")
    return 0


def _cmd_predict_show(args) -> int:
    from repro.predict.model import PredictError, load_artifact
    from repro.predict.train import default_artifact_path

    path = args.model or default_artifact_path()
    try:
        artifact = load_artifact(path)
    except PredictError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    prov = artifact["provenance"]
    rows = [
        {
            "primary": artifact["primary"],
            "models": "/".join(sorted(artifact["models"])),
            "features": len(artifact["feature_names"]),
            "designs": ",".join(prov["designs"]),
            "samples": prov["num_samples"],
            "config_hash": prov["config_hash"][:12],
        }
    ]
    print(format_table(rows, title=f"model artifact {path}"))
    metrics = artifact.get("metrics", {})
    if metrics:
        print(format_table(
            [{k: f"{v:.4f}" for k, v in sorted(metrics.items())}],
            title="training metrics",
        ))
    return 0


def _cmd_serve(args) -> int:
    import signal
    import threading

    from repro.serve import JobServer, ServeSettings

    settings = ServeSettings(
        workers=args.workers,
        default_job_workers=args.job_workers,
        stale_timeout=args.stale_timeout,
        cancel_grace=args.cancel_grace,
        default_max_retries=args.max_retries,
        runs_dir=default_runs_dir(args.runs_dir),
        max_queue_depth=args.max_queue_depth,
        rate_limit=args.rate_limit,
        drain_timeout=args.drain_timeout,
    )
    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, lambda *_: stop.set())
    with JobServer(
        args.root, host=args.host, port=args.port, settings=settings
    ) as server:
        print(
            f"serving jobs on {server.url} "
            f"({settings.workers} workers, root {server.root})",
            flush=True,
        )
        stop.wait()
        # SIGTERM/SIGINT = rolling restart: refuse new submits, let
        # in-flight jobs finish (or checkpoint) before closing.  Jobs
        # still running at the deadline are requeued with the attempt
        # refunded on close and resume from checkpoint next start.
        print("draining", file=sys.stderr)
        summary = server.drain(args.drain_timeout)
        print(
            f"shutting down ({summary['in_flight']} jobs still in "
            f"flight)",
            file=sys.stderr,
        )
    return 0


def _submit_design(args):
    """The job's design reference from the submit flags; None on misuse."""
    sources = [bool(args.suite), bool(args.aux), args.cells is not None]
    if sum(sources) != 1:
        print(
            "error: pick exactly one design source: --suite, --aux, or "
            "--cells",
            file=sys.stderr,
        )
        return None
    if args.suite:
        return {"suite": args.suite}
    if args.aux:
        return {"aux": os.path.abspath(args.aux)}
    return {
        "spec": {
            "name": args.name,
            "num_cells": args.cells,
            "num_macros": args.macros,
            "seed": args.seed,
        }
    }


def _parse_assignments(pairs, flag: str):
    """``key=value`` strings -> dict; prints + returns None on misuse."""
    out = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        if not sep or not key:
            print(f"error: {flag} expects key=value, got {pair!r}",
                  file=sys.stderr)
            return None
        out[key] = value
    return out


def _cmd_submit(args) -> int:
    import json as _json

    from repro.serve import ServeAPIError, ServeClient

    design = _submit_design(args)
    if design is None:
        return 2
    overrides = _parse_assignments(args.set, "--set")
    budgets = _parse_assignments(args.stage_budget, "--stage-budget")
    if overrides is None or budgets is None:
        return 2
    options: dict = {}
    if args.job_workers is not None:
        options["workers"] = args.job_workers
    if args.no_route:
        options["route"] = False
    if args.no_dp:
        options["run_dp"] = False
    if args.wirelength_only:
        options["wirelength_only"] = True
    if overrides:
        options["config"] = overrides
    if budgets:
        options["stage_budget"] = {
            k: float(v) for k, v in budgets.items()
        }
    if args.timeout is not None:
        options["timeout"] = args.timeout
    if args.faults:
        options["faults"] = args.faults
    client = ServeClient(args.url)
    try:
        record = client.submit(
            design,
            options=options or None,
            priority=args.priority,
            max_retries=args.max_retries,
        )
        if args.wait:
            if args.follow:
                for line in client.stream(
                    record["job_id"], timeout=args.wait_timeout
                ):
                    print(line, flush=True)
            record = client.wait(
                record["job_id"], timeout=args.wait_timeout
            )
    except ServeAPIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except TimeoutError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(record, indent=2, sort_keys=True))
    else:
        from repro.serve.store import job_summary_row

        print(format_table([job_summary_row(record)], title="job"))
    if args.wait and record["state"] != "done":
        return 1
    return 0


def _cmd_jobs(args) -> int:
    import json as _json

    from repro.serve import ServeAPIError, ServeClient
    from repro.serve.store import job_summary_row

    client = ServeClient(args.url)
    try:
        if args.jobs_command == "list":
            records = client.list(state=args.state, limit=args.limit)
            if not records:
                print("no jobs")
                return 0
            print(
                format_table(
                    [job_summary_row(r) for r in records],
                    title=f"jobs ({args.url})",
                )
            )
        elif args.jobs_command == "show":
            print(
                _json.dumps(
                    client.get(args.job_id), indent=2, sort_keys=True
                )
            )
        elif args.jobs_command == "result":
            print(
                _json.dumps(
                    client.result(args.job_id), indent=2, sort_keys=True
                )
            )
        elif args.jobs_command == "cancel":
            record = client.cancel(args.job_id)
            print(
                f"{record['job_id']}: state={record['state']} "
                f"cancel_requested={record['cancel_requested']}"
            )
        elif args.jobs_command == "trace":
            out = client.tail_trace(args.job_id, offset=args.offset)
            for line in out["lines"]:
                print(line)
            print(
                f"# state={out['state']} next-offset={out['offset']}",
                file=sys.stderr,
            )
        elif args.jobs_command == "drain":
            summary = client.drain(args.timeout)
            drained = "drained" if summary["drained"] else "deadline hit"
            print(
                f"{drained}: {summary['in_flight']} jobs still in "
                f"flight (timeout {summary['timeout']:.0f}s); new "
                f"submits are refused with 503"
            )
            if not summary["drained"]:
                return 1
    except ServeAPIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _open_registry(args):
    """Resolve the registry directory; (None, code) on usage errors."""
    runs_dir = default_runs_dir(args.runs_dir)
    if runs_dir is None:
        print(
            "error: no run registry configured; pass --runs-dir or set "
            "REPRO_RUNS_DIR",
            file=sys.stderr,
        )
        return None, 2
    return RunRegistry(runs_dir), 0


def _cmd_runs_list(args) -> int:
    registry, code = _open_registry(args)
    if registry is None:
        return code
    records = registry.list(design=args.design, limit=args.limit)
    if not records:
        print("no runs recorded")
        return 0
    print(
        format_table(
            [run_summary_row(r) for r in records],
            title=f"run history ({registry.root})",
        )
    )
    return 0


def _cmd_runs_show(args) -> int:
    registry, code = _open_registry(args)
    if registry is None:
        return code
    try:
        record = registry.get(args.run_id)
    except RunRegistryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_table([run_summary_row(record)], title="run"))
    stages = record.get("stage_seconds", {})
    if stages:
        rows = [
            {"stage": name, "seconds": round(seconds, 3)}
            for name, seconds in stages.items()
        ]
        print()
        print(format_table(rows, title="stage runtimes"))
    print()
    import json as _json

    print(_json.dumps(record, indent=2, sort_keys=True))
    return 0


def _cmd_runs_diff(args) -> int:
    registry, code = _open_registry(args)
    if registry is None:
        return code
    try:
        rec_a = registry.get(args.a)
        rec_b = registry.get(args.b)
    except RunRegistryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diff = diff_runs(rec_a, rec_b)
    print(
        format_table(
            [run_summary_row(rec_a), run_summary_row(rec_b)], title="runs"
        )
    )
    if not diff["comparable"]:
        print(
            f"note: different designs ({rec_a.get('design')} vs "
            f"{rec_b.get('design')}); deltas are not regression-gated",
            file=sys.stderr,
        )
    if diff["metrics"]:
        print()
        print(format_table(diff["metrics"], title="quality deltas (a -> b)"))
    if diff["stages"]:
        print()
        print(format_table(diff["stages"], title="stage runtime deltas (a -> b)"))
    if diff["comparable"] and diff["regressions"]:
        print(
            f"REGRESSION: {', '.join(diff['regressions'])} drifted beyond "
            "check_regression tolerances",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Routability-driven placement for hierarchical mixed-size designs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a synthetic benchmark")
    g.add_argument("--suite", choices=sorted(SUITE), help="named suite design")
    g.add_argument("--name", default="bench")
    g.add_argument("--cells", type=int, default=2000)
    g.add_argument("--macros", type=int, default=4)
    g.add_argument("--fences", type=int, default=0)
    g.add_argument("--seed", type=int, default=1)
    g.add_argument("--out", required=True, help="output directory")
    g.set_defaults(func=_cmd_generate)

    v = sub.add_parser("validate", help="check a benchmark against the flow's rules")
    v.add_argument("--aux", required=True, help="Bookshelf .aux file")
    v.add_argument(
        "--sanitize", action="store_true",
        help="repair fixable issues in place (as the flow itself would)",
    )
    v.add_argument("--out", help="directory for the sanitized benchmark")
    v.set_defaults(func=_cmd_validate)

    p = sub.add_parser("place", help="run the placement flow on a benchmark")
    p.add_argument("--aux", required=True, help="Bookshelf .aux file")
    p.add_argument("--out", help="directory for the placed benchmark")
    p.add_argument("--svg", help="write the placement as SVG")
    p.add_argument("--wirelength-only", action="store_true")
    p.add_argument("--baseline", choices=["quadratic", "random"])
    p.add_argument("--no-dp", action="store_true")
    p.add_argument("--no-route", action="store_true")
    p.add_argument(
        "--trace", metavar="PATH",
        help="stream a hierarchical trace to PATH as JSONL (written "
        "record-by-record; tail -f-able while the flow runs)",
    )
    p.add_argument(
        "--trace-summary", action="store_true",
        help="print the stage-breakdown table of the captured trace",
    )
    p.add_argument(
        "--heartbeat", type=float, metavar="SEC",
        help="print a progress line (stage, iteration, elapsed) to stderr "
        "every SEC seconds",
    )
    p.add_argument(
        "--flight-recorder", metavar="PATH",
        help="keep a ring buffer of the last telemetry records and dump "
        "it to PATH on crash or degradation",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="record per-span CPU/RSS/heap deltas and run the sampling "
        "profiler; prints the top-functions table after the flow",
    )
    p.add_argument(
        "--runs-dir", metavar="DIR",
        help="append a run-history record here (default: $REPRO_RUNS_DIR; "
        "inspect with 'repro runs')",
    )
    p.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="write a resumable checkpoint here after every completed stage",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="resume from the checkpoint in --checkpoint-dir, skipping "
        "completed stages",
    )
    p.add_argument(
        "--strict", action="store_true",
        help="exit nonzero when the flow degrades (fallbacks, budget expiry)",
    )
    _add_route_knobs(p)
    _add_dp_knobs(p)
    _add_predict_knobs(p)
    p.set_defaults(func=_cmd_place)

    r = sub.add_parser("route", help="score an existing placement by routing")
    r.add_argument("--aux", required=True)
    r.add_argument("--map", action="store_true", help="print the congestion map")
    _add_route_knobs(r)
    r.set_defaults(func=_cmd_route)

    s = sub.add_parser("stats", help="print benchmark statistics")
    s.add_argument("--aux", required=True)
    s.set_defaults(func=_cmd_stats)

    pr = sub.add_parser(
        "predict",
        help="train/inspect the learned congestion predictor "
        "(the hybrid GP estimator's model artifact)",
    )
    prsub = pr.add_subparsers(dest="predict_command", required=True)
    pt = prsub.add_parser(
        "train", help="train the model zoo on seeded benchgen designs"
    )
    pt.add_argument(
        "--designs", type=int, default=3, metavar="N",
        help="number of generated training designs (default 3)",
    )
    pt.add_argument(
        "--seed", type=int, default=0,
        help="seed for design generation (the run is fully deterministic)",
    )
    pt.add_argument(
        "--boost-rounds", type=int, default=150, metavar="N",
        help="gradient-boosting rounds for the stump model",
    )
    pt.add_argument(
        "--ridge-alpha", type=float, default=1.0, metavar="A",
        help="L2 strength for the ridge model",
    )
    pt.add_argument(
        "--out", metavar="PATH",
        help="artifact output path (default: the packaged default artifact)",
    )
    pt.set_defaults(func=_cmd_predict_train)
    ps = prsub.add_parser("show", help="print an artifact's provenance/metrics")
    ps.add_argument(
        "--model", metavar="PATH",
        help="artifact to inspect (default: the packaged default artifact)",
    )
    ps.set_defaults(func=_cmd_predict_show)

    sv = sub.add_parser(
        "serve",
        help="run the placement job server (HTTP API + worker fleet)",
    )
    sv.add_argument(
        "--root", required=True, metavar="DIR",
        help="server state directory (job DB, per-job artifact dirs)",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument(
        "--port", type=int, default=8180,
        help="listen port (0 = pick a free one; default 8180)",
    )
    sv.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="queue-draining worker processes (default 2)",
    )
    sv.add_argument(
        "--job-workers", type=int, default=1, metavar="N",
        help="default per-job flow worker count; always pinned, so "
        "REPRO_WORKERS never multiplies across concurrent jobs",
    )
    sv.add_argument(
        "--stale-timeout", type=float, default=15.0, metavar="SEC",
        help="requeue a running job after SEC without a heartbeat",
    )
    sv.add_argument(
        "--cancel-grace", type=float, default=5.0, metavar="SEC",
        help="seconds to wait for cooperative cancel before escalating",
    )
    sv.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="default crash/stall requeue budget per job",
    )
    sv.add_argument(
        "--runs-dir", metavar="DIR",
        help="also append finished jobs to this run-history registry",
    )
    sv.add_argument(
        "--max-queue-depth", type=int, default=10_000, metavar="N",
        help="refuse new submits (503 + Retry-After) past N queued jobs",
    )
    sv.add_argument(
        "--rate-limit", type=float, default=0.0, metavar="RPS",
        help="per-client submit rate limit in requests/second "
        "(token bucket, 429 + Retry-After on breach; 0 = off)",
    )
    sv.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SEC",
        help="on SIGTERM, wait up to SEC for in-flight jobs before "
        "checkpoint-requeueing them",
    )
    sv.set_defaults(func=_cmd_serve)

    sm = sub.add_parser("submit", help="submit a job to a running server")
    sm.add_argument(
        "--url", default="http://127.0.0.1:8180", help="server base URL"
    )
    sm.add_argument("--suite", choices=sorted(SUITE), help="named suite design")
    sm.add_argument("--aux", help="Bookshelf .aux path (server-readable)")
    sm.add_argument(
        "--cells", type=int, metavar="N",
        help="inline benchgen spec with N cells (see --macros/--seed)",
    )
    sm.add_argument("--name", default="bench", help="inline spec name")
    sm.add_argument("--macros", type=int, default=0, help="inline spec macros")
    sm.add_argument("--seed", type=int, default=1, help="inline spec seed")
    sm.add_argument("--priority", type=int, default=0,
                    help="higher claims first")
    sm.add_argument(
        "--job-workers", type=int, metavar="N",
        help="flow worker processes for this job (pinned; overrides the "
        "server default)",
    )
    sm.add_argument("--no-dp", action="store_true")
    sm.add_argument("--no-route", action="store_true")
    sm.add_argument("--wirelength-only", action="store_true")
    sm.add_argument(
        "--set", action="append", metavar="KEY=VALUE",
        help="dotted FlowConfig override, e.g. gp.max_outer_iterations=12 "
        "(repeatable)",
    )
    sm.add_argument(
        "--stage-budget", action="append", metavar="STAGE=SEC",
        help="soft per-stage time budget (repeatable)",
    )
    sm.add_argument(
        "--timeout", type=float, metavar="SEC",
        help="hard wall-clock budget per attempt; the server kills and "
        "requeues past it",
    )
    sm.add_argument(
        "--faults", metavar="SPEC",
        help="REPRO_FAULTS-style fault spec installed for this job only",
    )
    sm.add_argument(
        "--max-retries", type=int, metavar="N",
        help="crash/stall requeue budget for this job",
    )
    sm.add_argument(
        "--wait", action="store_true",
        help="block until the job is terminal; exit 1 unless it is done",
    )
    sm.add_argument(
        "--follow", action="store_true",
        help="with --wait: stream the live trace JSONL to stdout",
    )
    sm.add_argument(
        "--wait-timeout", type=float, default=600.0, metavar="SEC"
    )
    sm.add_argument(
        "--json", action="store_true", help="print the raw job record"
    )
    sm.set_defaults(func=_cmd_submit)

    jb = sub.add_parser("jobs", help="inspect/cancel jobs on a server")
    jb.add_argument(
        "--url", default="http://127.0.0.1:8180", help="server base URL"
    )
    jsub = jb.add_subparsers(dest="jobs_command", required=True)
    jl = jsub.add_parser("list", help="table of jobs, newest first")
    jl.add_argument("--state", choices=["queued", "running", "done",
                                        "failed", "cancelled"])
    jl.add_argument("--limit", type=int, default=50)
    jl.set_defaults(func=_cmd_jobs)
    for name, help_text in (
        ("show", "full record of one job"),
        ("result", "result summary (409 while still running)"),
        ("cancel", "cancel a job (immediate if queued, cooperative if "
                   "running)"),
    ):
        jp = jsub.add_parser(name, help=help_text)
        jp.add_argument("job_id", help="job id (unique prefix accepted)")
        jp.set_defaults(func=_cmd_jobs)
    jt = jsub.add_parser("trace", help="tail a job's live trace")
    jt.add_argument("job_id")
    jt.add_argument("--offset", type=int, default=0,
                    help="byte offset from a previous tail")
    jt.set_defaults(func=_cmd_jobs)
    jd = jsub.add_parser(
        "drain",
        help="drain the server: stop claiming, wait for in-flight "
        "jobs, refuse new submits (exit 1 if the deadline hit)",
    )
    jd.add_argument(
        "--timeout", type=float, default=None, metavar="SEC",
        help="seconds to wait for in-flight jobs (default: the "
        "server's --drain-timeout)",
    )
    jd.set_defaults(func=_cmd_jobs)

    runs = sub.add_parser(
        "runs", help="inspect the persistent run-history registry"
    )
    runs.add_argument(
        "--runs-dir", metavar="DIR",
        help="registry directory (default: $REPRO_RUNS_DIR)",
    )
    rsub = runs.add_subparsers(dest="runs_command", required=True)
    rl = rsub.add_parser("list", help="table of recorded runs, newest first")
    rl.add_argument("--design", help="only runs of this design")
    rl.add_argument("--limit", type=int, default=20)
    rl.set_defaults(func=_cmd_runs_list)
    rs2 = rsub.add_parser("show", help="full record of one run")
    rs2.add_argument("run_id", help="run id (unique prefix accepted)")
    rs2.set_defaults(func=_cmd_runs_show)
    rd = rsub.add_parser(
        "diff",
        help="per-stage runtime and quality deltas between two runs "
        "(exit 1 when a quality metric regresses beyond tolerance)",
    )
    rd.add_argument("a", help="baseline run id")
    rd.add_argument("b", help="fresh run id")
    rd.set_defaults(func=_cmd_runs_diff)
    return parser


def main(argv=None) -> int:
    configure_logging(logging.WARNING)
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # ``repro runs show ... | head`` — the reader closed stdout
        # early.  Point stdout at devnull so the interpreter-shutdown
        # flush doesn't raise a second time, and exit clean.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
