"""The placement design database.

``Design`` is the hub every stage operates on: it owns nodes, nets, rows,
fence regions and the design hierarchy, and exposes NumPy array views
(positions, sizes, CSR pin tables) so analytical placement and congestion
estimation run vectorized.
"""

from repro.db.node import Node, NodeKind
from repro.db.net import Net, Pin, PinDirection
from repro.db.rows import Row
from repro.db.regions import Region
from repro.db.hierarchy import HierarchyTree, Module
from repro.db.design import Design, NodeIncidence, PinArrays
from repro.db.stats import DesignStats, compute_stats

__all__ = [
    "Design",
    "DesignStats",
    "NodeIncidence",
    "PinArrays",
    "HierarchyTree",
    "Module",
    "Net",
    "Node",
    "NodeKind",
    "Pin",
    "PinDirection",
    "Region",
    "Row",
    "compute_stats",
]
