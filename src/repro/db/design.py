"""The top-level design container.

``Design`` owns the netlist (nodes, nets, pins), the floorplan (rows, core
area, fence regions), the design hierarchy and an optional routing
specification.  Algorithmic stages interact with it two ways:

* **Array interface** — ``pull_centers`` / ``push_centers`` /
  ``pin_arrays`` / size-and-mask arrays.  Analytical global placement and
  congestion estimation run entirely on these NumPy views.
* **Object interface** — ``nodes`` / ``nets`` / ``rows``.  Sequential
  stages (legalization, detailed placement) mutate :class:`Node` objects
  directly.

Positions are authoritative on the :class:`Node` objects; the array
interface copies out and writes back at stage boundaries, so the two views
never drift mid-stage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import Orientation, Rect, transform_offset
from repro.geometry.orientation import _ROTATIONS

# Orientation lookup tables for the vectorized pin transform: enum -> dense
# code, and per code the (flip, rotation-matrix) pair transform_offset uses.
_ORIENT_CODE = {orient: code for code, orient in enumerate(Orientation)}
_ORIENT_XFORM = [
    (orient.is_flipped, *_ROTATIONS[orient.rotation]) for orient in Orientation
]
from repro.obs import get_tracer
from repro.db.node import Node, NodeKind
from repro.db.net import Net, Pin
from repro.db.rows import Row
from repro.db.regions import Region
from repro.db.hierarchy import HierarchyTree


@dataclass
class NodeIncidence:
    """CSR incidence views derived from :class:`PinArrays`.

    ``node_net_ids[node_net_ptr[i]:node_net_ptr[i+1]]`` are the distinct
    nets touching node ``i``, sorted ascending; ``node_pin_ids`` slices
    the same way into the flat pin table (pin indices grouped per node,
    in net-major order).  Detailed placement uses these to find the nets
    and pins dirtied by a move without walking Python pin objects.
    """

    node_net_ptr: np.ndarray  # int64 [num_nodes+1]
    node_net_ids: np.ndarray  # int32 [node-net incidences]
    node_pin_ptr: np.ndarray  # int64 [num_nodes+1]
    node_pin_ids: np.ndarray  # int64 [P] pin-table indices grouped by node


@dataclass
class PinArrays:
    """CSR view of the netlist's pins, ordered net-by-net.

    ``net_ptr[i]:net_ptr[i+1]`` slices the pin arrays for net ``i``.
    Offsets are relative to node centres and already account for each
    node's current orientation.
    """

    pin_node: np.ndarray  # int32 [P] node index of each pin
    pin_dx: np.ndarray  # float64 [P] oriented offset from node centre
    pin_dy: np.ndarray  # float64 [P]
    net_ptr: np.ndarray  # int64 [N+1]
    net_weight: np.ndarray  # float64 [N]

    @property
    def num_pins(self) -> int:
        return len(self.pin_node)

    @property
    def num_nets(self) -> int:
        return len(self.net_weight)

    def pin_positions(self, cx: np.ndarray, cy: np.ndarray):
        """Absolute pin coordinates given node-centre arrays."""
        return cx[self.pin_node] + self.pin_dx, cy[self.pin_node] + self.pin_dy


class Design:
    """A mixed-size, hierarchy-aware placement design."""

    def __init__(self, name: str = "design", core: Rect | None = None):
        self.name = name
        self.nodes: list = []
        self.nets: list = []
        self.rows: list = []
        self.regions: list = []
        self.hierarchy = HierarchyTree()
        self.routing = None  # repro.route.RoutingSpec, if congestion-aware
        # One-time congestion-estimator calibration (pin_norm, supply
        # map) shared by every CongestionInflator bound to this design
        # and carried through flow checkpoints (see repro.gp.inflation).
        self.congestion_calibration = None
        self._core = core
        self._node_index: dict = {}
        self._net_index: dict = {}
        self._topology_version = 0
        self._positions_version = 0
        self._pin_cache = None
        self._pin_cache_version = -1
        # Orientation-only bumps of the topology version: the raw (N-frame)
        # pin arrays survive them, so re-orienting macros only replays the
        # offset transform instead of the full per-pin rebuild.
        self._orient_version = 0
        self._pin_base = None
        self._pin_base_struct = -1
        self._centers_cache = None
        self._centers_key = (-1, -1)
        self._incidence_cache = None
        self._incidence_version = -1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Register ``node``; names must be unique."""
        if node.name in self._node_index:
            raise ValueError(f"duplicate node name {node.name!r}")
        node.index = len(self.nodes)
        self.nodes.append(node)
        node._design = self
        self._node_index[node.name] = node.index
        if node.module is not None:
            self.hierarchy.assign_cell(node.index, node.module)
        self._topology_version += 1
        return node

    def add_net(self, net: Net) -> Net:
        """Register ``net``; pins must reference existing nodes."""
        if net.name in self._net_index:
            raise ValueError(f"duplicate net name {net.name!r}")
        net.index = len(self.nets)
        for pin in net.pins:
            if not 0 <= pin.node < len(self.nodes):
                raise ValueError(
                    f"net {net.name!r} pin references unknown node {pin.node}"
                )
            pin.net = net.index
            self.nodes[pin.node].pins.append(pin)
        self.nets.append(net)
        self._net_index[net.name] = net.index
        self._topology_version += 1
        return net

    def connect(self, net: Net, node: Node, dx: float = 0.0, dy: float = 0.0, **kw) -> Pin:
        """Append a pin on ``node`` to an already-registered ``net``."""
        if net.index < 0:
            raise ValueError("net must be added to the design before connecting")
        pin = Pin(node=node.index, dx=dx, dy=dy, net=net.index, **kw)
        net.pins.append(pin)
        node.pins.append(pin)
        self._topology_version += 1
        return pin

    def remove_nets(self, indices) -> int:
        """Drop the nets at ``indices`` and reindex the survivors.

        Pins of removed nets are detached from their nodes; remaining
        pins have their ``net`` backref updated.  Returns the number of
        nets removed.  Used by design sanitization to drop empty nets.
        """
        doomed = set(indices)
        if not doomed:
            return 0
        for idx in doomed:
            if not 0 <= idx < len(self.nets):
                raise ValueError(f"cannot remove unknown net index {idx}")
            net = self.nets[idx]
            for pin in net.pins:
                if 0 <= pin.node < len(self.nodes):
                    node_pins = self.nodes[pin.node].pins
                    if pin in node_pins:
                        node_pins.remove(pin)
        survivors = [net for net in self.nets if net.index not in doomed]
        self.nets = survivors
        self._net_index = {}
        for new_idx, net in enumerate(survivors):
            net.index = new_idx
            for pin in net.pins:
                pin.net = new_idx
            self._net_index[net.name] = new_idx
        self._topology_version += 1
        return len(doomed)

    def add_row(self, row: Row) -> Row:
        row.index = len(self.rows)
        self.rows.append(row)
        return row

    def add_region(self, region: Region) -> Region:
        region.index = len(self.regions)
        self.regions.append(region)
        return region

    def bind_region(self, module_path: str, region: Region) -> None:
        """Fence the hierarchy module at ``module_path`` into ``region``.

        Every cell currently in the module's subtree is constrained;
        cells added to the module later pick the constraint up via their
        ``module`` attribute when assigned.
        """
        if region.index < 0:
            region = self.add_region(region)
        module = self.hierarchy.ensure(module_path)
        module.region = region.index
        for idx in module.all_cells():
            self.nodes[idx].region = region.index

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        return self.nodes[self._node_index[name]]

    def net(self, name: str) -> Net:
        return self.nets[self._net_index[name]]

    def has_node(self, name: str) -> bool:
        return name in self._node_index

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    @property
    def num_pins(self) -> int:
        return sum(net.degree for net in self.nets)

    @property
    def core(self) -> Rect:
        """The placeable core area (explicit, or the union of the rows)."""
        if self._core is not None:
            return self._core
        if not self.rows:
            raise ValueError("design has neither an explicit core nor rows")
        box = self.rows[0].rect
        for row in self.rows[1:]:
            box = box.union(row.rect)
        return box

    @core.setter
    def core(self, rect: Rect) -> None:
        self._core = rect

    @property
    def site_width(self) -> float:
        return self.rows[0].site_width if self.rows else 1.0

    @property
    def row_height(self) -> float:
        return self.rows[0].height if self.rows else 1.0

    # ------------------------------------------------------------------
    # array interface
    # ------------------------------------------------------------------
    def pull_centers(self):
        """Centre coordinates of every node as two float64 arrays.

        The arrays are cached and invalidated by node geometry writes
        (``Node.__setattr__`` notifies the owning design), so repeated
        pulls between moves — router, estimators, metrics — skip the
        Python loop.  Callers always receive fresh copies and may mutate
        them freely.
        """
        key = (self._positions_version, self._topology_version)
        if self._centers_cache is not None and self._centers_key == key:
            cx, cy = self._centers_cache
            get_tracer().metrics.counter("design.centers_cache.hits").inc()
            return cx.copy(), cy.copy()
        n = len(self.nodes)
        cx = np.empty(n)
        cy = np.empty(n)
        for i, node in enumerate(self.nodes):
            cx[i] = node.cx
            cy[i] = node.cy
        self._centers_cache = (cx, cy)
        self._centers_key = key
        get_tracer().metrics.counter("design.centers_cache.misses").inc()
        return cx.copy(), cy.copy()

    def mark_positions_dirty(self) -> None:
        """Force the next :meth:`pull_centers` to rebuild its cache.

        Geometry writes through :class:`Node` attributes notify the
        design automatically; this is the escape hatch for callers that
        mutate node state in ways the backref cannot see.
        """
        self._positions_version += 1

    def push_centers(self, cx: np.ndarray, cy: np.ndarray, indices=None) -> None:
        """Write centre coordinates back onto movable nodes.

        Fixed nodes are never moved; ``indices`` restricts the write to a
        subset (positions arrays are still indexed by global node id).
        """
        it = indices if indices is not None else range(len(self.nodes))
        for i in it:
            node = self.nodes[i]
            if node.is_movable:
                node.move_center_to(float(cx[i]), float(cy[i]))

    def placed_sizes(self):
        """Oriented (width, height) arrays of every node."""
        n = len(self.nodes)
        w = np.empty(n)
        h = np.empty(n)
        for i, node in enumerate(self.nodes):
            w[i] = node.placed_width
            h[i] = node.placed_height
        return w, h

    def movable_mask(self) -> np.ndarray:
        return np.array([node.is_movable for node in self.nodes], dtype=bool)

    def fixed_mask(self) -> np.ndarray:
        return ~self.movable_mask()

    def macro_mask(self) -> np.ndarray:
        """Movable macros only."""
        return np.array(
            [node.kind is NodeKind.MACRO for node in self.nodes], dtype=bool
        )

    def filler_mask(self) -> np.ndarray:
        return np.array(
            [node.kind is NodeKind.FILLER for node in self.nodes], dtype=bool
        )

    def region_ids(self) -> np.ndarray:
        """Fence id per node (-1 when unconstrained)."""
        return np.array(
            [-1 if node.region is None else node.region for node in self.nodes],
            dtype=np.int32,
        )

    def movable_indices(self) -> np.ndarray:
        return np.flatnonzero(self.movable_mask())

    def pin_arrays(self, *, reference: bool = False) -> PinArrays:
        """The CSR pin view, rebuilt only when topology/orientation changed.

        The default rebuild keeps the raw N-frame offsets cached and
        replays the orientation transform vectorized, orientation group by
        orientation group, with the same scalar arithmetic as
        :func:`transform_offset` — the arrays are bit-identical to the
        original per-pin loop, which ``reference=True`` runs verbatim.
        """
        if self._pin_cache is not None and self._pin_cache_version == self._topology_version:
            return self._pin_cache
        if reference:
            num_pins = self.num_pins
            pin_node = np.empty(num_pins, dtype=np.int32)
            pin_dx = np.empty(num_pins)
            pin_dy = np.empty(num_pins)
            net_ptr = np.empty(len(self.nets) + 1, dtype=np.int64)
            net_weight = np.empty(len(self.nets))
            k = 0
            net_ptr[0] = 0
            for i, net in enumerate(self.nets):
                for pin in net.pins:
                    node = self.nodes[pin.node]
                    dx, dy = transform_offset(pin.dx, pin.dy, node.orientation)
                    pin_node[k] = pin.node
                    pin_dx[k] = dx
                    pin_dy[k] = dy
                    k += 1
                net_ptr[i + 1] = k
                net_weight[i] = net.weight
            self._pin_cache = PinArrays(pin_node, pin_dx, pin_dy, net_ptr, net_weight)
            self._pin_cache_version = self._topology_version
            return self._pin_cache
        # Orientation bumps leave the structural part untouched.
        struct = self._topology_version - self._orient_version
        if self._pin_base is None or self._pin_base_struct != struct:
            num_pins = self.num_pins
            pin_node = np.empty(num_pins, dtype=np.int32)
            dx0 = np.empty(num_pins)
            dy0 = np.empty(num_pins)
            net_ptr = np.empty(len(self.nets) + 1, dtype=np.int64)
            net_weight = np.empty(len(self.nets))
            k = 0
            net_ptr[0] = 0
            for i, net in enumerate(self.nets):
                for pin in net.pins:
                    pin_node[k] = pin.node
                    dx0[k] = pin.dx
                    dy0[k] = pin.dy
                    k += 1
                net_ptr[i + 1] = k
                net_weight[i] = net.weight
            self._pin_base = (pin_node, dx0, dy0, net_ptr, net_weight)
            self._pin_base_struct = struct
        pin_node, dx0, dy0, net_ptr, net_weight = self._pin_base
        codes = np.fromiter(
            (_ORIENT_CODE[n.orientation] for n in self.nodes),
            dtype=np.int8,
            count=len(self.nodes),
        )
        pcodes = codes[pin_node] if len(pin_node) else codes[:0]
        pin_dx = np.empty_like(dx0)
        pin_dy = np.empty_like(dy0)
        for code, (flip, a, b, c, d) in enumerate(_ORIENT_XFORM):
            sel = pcodes == code
            if not sel.any():
                continue
            vx = dx0[sel]
            vy = dy0[sel]
            if flip:
                vx = -vx
            pin_dx[sel] = a * vx + b * vy
            pin_dy[sel] = c * vx + d * vy
        self._pin_cache = PinArrays(pin_node, pin_dx, pin_dy, net_ptr, net_weight)
        self._pin_cache_version = self._topology_version
        return self._pin_cache

    def node_incidence(self) -> NodeIncidence:
        """CSR node→net / node→pin incidence derived from :meth:`pin_arrays`.

        Built once per topology version from the flat pin table — never
        from the Python ``node.pins`` objects, so it cannot silently
        diverge from the arrays the incremental-HPWL bookkeeping reads.
        Nets per node come out sorted ascending and deduplicated (the pin
        table is net-major, so a stable sort by node preserves net order
        within each node's group).
        """
        arrays = self.pin_arrays()
        if (
            self._incidence_cache is not None
            and self._incidence_version == self._topology_version
        ):
            return self._incidence_cache
        num_nodes = len(self.nodes)
        num_pins = arrays.num_pins
        pin_net = np.repeat(
            np.arange(arrays.num_nets, dtype=np.int32), np.diff(arrays.net_ptr)
        )
        order = np.argsort(arrays.pin_node, kind="stable").astype(np.int64)
        node_pin_ptr = np.zeros(num_nodes + 1, dtype=np.int64)
        if num_pins:
            np.cumsum(
                np.bincount(arrays.pin_node, minlength=num_nodes),
                out=node_pin_ptr[1:],
            )
        nodes_sorted = arrays.pin_node[order]
        nets_sorted = pin_net[order]
        if num_pins:
            keep = np.ones(num_pins, dtype=bool)
            keep[1:] = (nodes_sorted[1:] != nodes_sorted[:-1]) | (
                nets_sorted[1:] != nets_sorted[:-1]
            )
        else:
            keep = np.zeros(0, dtype=bool)
        node_net_ids = nets_sorted[keep]
        node_net_ptr = np.zeros(num_nodes + 1, dtype=np.int64)
        if node_net_ids.size:
            np.cumsum(
                np.bincount(nodes_sorted[keep], minlength=num_nodes),
                out=node_net_ptr[1:],
            )
        self._incidence_cache = NodeIncidence(
            node_net_ptr=node_net_ptr,
            node_net_ids=node_net_ids,
            node_pin_ptr=node_pin_ptr,
            node_pin_ids=order,
        )
        self._incidence_version = self._topology_version
        return self._incidence_cache

    def set_orientation(self, node: Node, orient: Orientation) -> None:
        """Re-orient ``node`` about its centre and invalidate pin caches."""
        cx, cy = node.cx, node.cy
        node.orientation = orient
        node.move_center_to(cx, cy)
        self._topology_version += 1
        self._orient_version += 1

    # ------------------------------------------------------------------
    # metrics & checks
    # ------------------------------------------------------------------
    def hpwl(self) -> float:
        """Exact weighted half-perimeter wirelength of the placement."""
        arrays = self.pin_arrays()
        if arrays.num_pins == 0:
            return 0.0
        cx, cy = self.pull_centers()
        px, py = arrays.pin_positions(cx, cy)
        ptr = arrays.net_ptr
        nonempty = ptr[1:] > ptr[:-1]
        if not nonempty.any():
            return 0.0
        starts = ptr[:-1][nonempty]
        wx = np.maximum.reduceat(px, starts) - np.minimum.reduceat(px, starts)
        wy = np.maximum.reduceat(py, starts) - np.minimum.reduceat(py, starts)
        return float(np.sum(arrays.net_weight[nonempty] * (wx + wy)))

    def movable_area(self) -> float:
        return sum(
            n.area for n in self.nodes if n.is_movable and n.kind is not NodeKind.FILLER
        )

    def fixed_area_in_core(self) -> float:
        """Area of fixed, placement-blocking footprints clipped to the core."""
        core = self.core
        total = 0.0
        for node in self.nodes:
            if node.kind.is_fixed and node.kind.blocks_placement:
                total += core.overlap_area(node.rect)
        return total

    def utilization(self) -> float:
        """Movable area over free core area."""
        free = self.core.area - self.fixed_area_in_core()
        if free <= 0:
            return float("inf")
        return self.movable_area() / free

    def validate(self) -> list:
        """Consistency diagnostics; an empty list means the design is sound."""
        problems = []
        for node in self.nodes:
            if node.width < 0 or node.height < 0:
                problems.append(f"node {node.name} has negative size")
            if node.region is not None and not 0 <= node.region < len(self.regions):
                problems.append(f"node {node.name} references unknown region {node.region}")
        for net in self.nets:
            if net.degree == 0:
                problems.append(f"net {net.name} has no pins")
            for pin in net.pins:
                if not 0 <= pin.node < len(self.nodes):
                    problems.append(f"net {net.name} pin references unknown node")
        seen = set()
        for node in self.nodes:
            if node.name in seen:
                problems.append(f"duplicate node name {node.name}")
            seen.add(node.name)
        return problems

    def clone_placement(self) -> dict:
        """Snapshot of every node's position/orientation, for undo."""
        return {
            node.index: (node.x, node.y, node.orientation) for node in self.nodes
        }

    def restore_placement(self, snapshot: dict) -> None:
        """Restore a snapshot taken by :meth:`clone_placement`."""
        for idx, (x, y, orient) in snapshot.items():
            node = self.nodes[idx]
            node.x, node.y = x, y
            node.orientation = orient
        self._topology_version += 1

    def __repr__(self) -> str:
        return (
            f"Design({self.name!r}, nodes={len(self.nodes)}, "
            f"nets={len(self.nets)}, rows={len(self.rows)}, "
            f"regions={len(self.regions)})"
        )
