"""Design hierarchy: the logical module tree behind fence regions.

NTUplace4h is *hierarchical* placement: the netlist carries a module tree
(``top/cpu/alu`` style paths); selected modules are bound to fence regions,
and clustering must never merge cells across module boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Module:
    """A node of the design hierarchy tree."""

    name: str  # full path, e.g. "top/cpu/alu"
    parent: "Module | None" = None
    children: dict = field(default_factory=dict)  # local name -> Module
    cells: list = field(default_factory=list)  # node indices directly inside
    region: int | None = None  # fence region id bound to this module

    @property
    def local_name(self) -> str:
        return self.name.rsplit("/", 1)[-1]

    @property
    def depth(self) -> int:
        return self.name.count("/")

    def iter_subtree(self):
        """This module and every descendant, preorder."""
        yield self
        for child in self.children.values():
            yield from child.iter_subtree()

    def all_cells(self) -> list:
        """Node indices of every cell in this module's subtree."""
        out = []
        for module in self.iter_subtree():
            out.extend(module.cells)
        return out


class HierarchyTree:
    """The module tree of a design.

    Paths use ``/`` separators; the root is the empty path ``""`` (top).
    """

    def __init__(self):
        self.root = Module(name="")
        self._by_name = {"": self.root}

    def get(self, path: str) -> Module:
        """The module at ``path`` (KeyError when absent)."""
        return self._by_name[path]

    def __contains__(self, path: str) -> bool:
        return path in self._by_name

    def modules(self):
        """Every module, preorder from the root."""
        return list(self.root.iter_subtree())

    def ensure(self, path: str) -> Module:
        """The module at ``path``, creating intermediate modules as needed."""
        if path in self._by_name:
            return self._by_name[path]
        parent_path, _, local = path.rpartition("/")
        parent = self.ensure(parent_path) if path else self.root
        module = Module(name=path, parent=parent)
        parent.children[local] = module
        self._by_name[path] = module
        return module

    def assign_cell(self, node_index: int, path: str) -> Module:
        """Record that ``node_index`` lives directly in module ``path``."""
        module = self.ensure(path)
        module.cells.append(node_index)
        return module

    def module_of(self, path: str) -> "Module | None":
        return self._by_name.get(path)

    def lowest_common_module(self, path_a: str, path_b: str) -> Module:
        """Deepest module containing both paths."""
        parts_a = path_a.split("/") if path_a else []
        parts_b = path_b.split("/") if path_b else []
        common = []
        for a, b in zip(parts_a, parts_b):
            if a != b:
                break
            common.append(a)
        return self.ensure("/".join(common))

    def fenced_ancestor(self, path: str) -> "Module | None":
        """The nearest enclosing module bound to a fence region, if any.

        When nested modules are fenced the innermost fence governs the cell,
        matching the contest semantics where region constraints do not nest.
        """
        module = self._by_name.get(path)
        while module is not None:
            if module.region is not None:
                return module
            module = module.parent
        return None
