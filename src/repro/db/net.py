"""Nets and pins."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class PinDirection(Enum):
    """Signal direction of a pin, as recorded in Bookshelf ``.nets``."""

    INPUT = "I"
    OUTPUT = "O"
    BIDIR = "B"

    @staticmethod
    def from_string(text: str) -> "PinDirection":
        token = text.strip().upper().rstrip(":")
        if token in ("I", "INPUT"):
            return PinDirection.INPUT
        if token in ("O", "OUTPUT"):
            return PinDirection.OUTPUT
        if token in ("B", "BIDIR", "INOUT"):
            return PinDirection.BIDIR
        raise ValueError(f"unknown pin direction {text!r}")


@dataclass
class Pin:
    """A net connection point on a node.

    ``dx``/``dy`` are the offset of the pin from the node *centre* in the
    ``N`` orientation, per the Bookshelf convention.  The oriented offset is
    computed on demand so candidate rotations never mutate the netlist.
    """

    node: int  # index into Design.nodes
    dx: float = 0.0
    dy: float = 0.0
    direction: PinDirection = PinDirection.BIDIR
    net: int = -1  # index into Design.nets, set on add


@dataclass
class Net:
    """A multi-pin net with an optional weight."""

    name: str
    pins: list = field(default_factory=list)
    weight: float = 1.0
    index: int = -1  # position in Design.nets, set on add

    @property
    def degree(self) -> int:
        return len(self.pins)
