"""Nodes: standard cells, macros, fixed blockages, terminals, fillers."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.geometry import Orientation, Rect


class NodeKind(Enum):
    """What a node is, which determines how each stage may treat it."""

    CELL = "cell"  # movable standard cell
    MACRO = "macro"  # movable macro block (placeable, rotatable)
    FIXED = "fixed"  # fixed macro / placement blockage
    TERMINAL = "terminal"  # fixed I/O pad (occupies area)
    TERMINAL_NI = "terminal_ni"  # fixed pin with no placement footprint
    FILLER = "filler"  # whitespace filler inserted by the placer

    @property
    def is_movable(self) -> bool:
        return self in (NodeKind.CELL, NodeKind.MACRO, NodeKind.FILLER)

    @property
    def is_fixed(self) -> bool:
        return not self.is_movable

    @property
    def blocks_placement(self) -> bool:
        """Whether the node's footprint excludes other nodes."""
        return self is not NodeKind.TERMINAL_NI


@dataclass
class Node:
    """A placeable (or fixed) rectangular object.

    ``x``/``y`` are the lower-left corner of the *oriented* outline;
    ``width``/``height`` are the dimensions in the ``N`` orientation.  Use
    :attr:`placed_width`/:attr:`placed_height` for the outline actually
    occupied on the die.
    """

    name: str
    width: float
    height: float
    kind: NodeKind = NodeKind.CELL
    x: float = 0.0
    y: float = 0.0
    orientation: Orientation = Orientation.N
    region: int | None = None  # fence region id, if constrained
    module: str | None = None  # hierarchy module path, if any
    index: int = -1  # position in Design.nodes, set on add
    pins: list = field(default_factory=list)  # Pin objects, set by Design

    # Backref to the owning Design (class attribute, not a dataclass
    # field), set by ``Design.add_node``.  Geometry writes notify it so
    # the design's cached array views (``pull_centers``, ``pin_arrays``)
    # invalidate no matter which code path moved the node.
    _design = None

    def __setattr__(self, name: str, value) -> None:
        object.__setattr__(self, name, value)
        if name in ("x", "y", "width", "height"):
            d = self._design
            if d is not None:
                d._positions_version += 1
        elif name == "orientation":
            d = self._design
            if d is not None:
                d._positions_version += 1
                d._topology_version += 1

    @property
    def is_movable(self) -> bool:
        return self.kind.is_movable

    @property
    def is_macro(self) -> bool:
        return self.kind in (NodeKind.MACRO, NodeKind.FIXED)

    @property
    def placed_width(self) -> float:
        """Outline width on the die under the current orientation."""
        if self.orientation.swaps_dimensions:
            return self.height
        return self.width

    @property
    def placed_height(self) -> float:
        """Outline height on the die under the current orientation."""
        if self.orientation.swaps_dimensions:
            return self.width
        return self.height

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def rect(self) -> Rect:
        """Current outline."""
        return Rect.from_size(self.x, self.y, self.placed_width, self.placed_height)

    @property
    def cx(self) -> float:
        """Centre x."""
        return self.x + self.placed_width / 2.0

    @property
    def cy(self) -> float:
        """Centre y."""
        return self.y + self.placed_height / 2.0

    def move_center_to(self, cx: float, cy: float) -> None:
        """Place the node so its centre is at ``(cx, cy)``."""
        self.x = cx - self.placed_width / 2.0
        self.y = cy - self.placed_height / 2.0
