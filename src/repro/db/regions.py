"""Fence regions: the physical footprint of hierarchy constraints.

A fence region constrains every member cell to lie inside the union of its
rectangles.  NTUplace4h treats one design-hierarchy module (or a contest
``Region``) as one fence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Point, Rect


@dataclass
class Region:
    """A fence region (union of axis-aligned rectangles)."""

    name: str
    rects: list = field(default_factory=list)
    index: int = -1

    @property
    def area(self) -> float:
        return sum(r.area for r in self.rects)

    @property
    def bounding_box(self) -> Rect:
        if not self.rects:
            raise ValueError(f"region {self.name!r} has no rectangles")
        box = self.rects[0]
        for r in self.rects[1:]:
            box = box.union(r)
        return box

    def contains_point(self, p: Point) -> bool:
        return any(r.contains_point(p) for r in self.rects)

    def contains_rect(self, rect: Rect) -> bool:
        """Whether ``rect`` fits inside a single member rectangle.

        Unions of rectangles are not merged, so a cell straddling two
        touching member rects is conservatively reported outside.
        """
        return any(r.contains_rect(rect) for r in self.rects)

    def clamp_point(self, p: Point) -> Point:
        """Nearest point of the region to ``p`` (by Euclidean distance)."""
        if not self.rects:
            raise ValueError(f"region {self.name!r} has no rectangles")
        best = None
        best_dist = float("inf")
        for r in self.rects:
            candidate = r.clamp_point(p)
            dist = (candidate - p).norm()
            if dist < best_dist:
                best, best_dist = candidate, dist
        return best

    def clamp_rect_origin(self, rect: Rect) -> Point:
        """Lower-left position keeping ``rect`` inside the nearest member rect."""
        if not self.rects:
            raise ValueError(f"region {self.name!r} has no rectangles")
        best = None
        best_dist = float("inf")
        for r in self.rects:
            origin = r.clamp_rect_origin(rect)
            dist = abs(origin.x - rect.xl) + abs(origin.y - rect.yl)
            if dist < best_dist:
                best, best_dist = origin, dist
        return best
