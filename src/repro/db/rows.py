"""Placement rows (Bookshelf ``.scl``)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Rect


@dataclass
class Row:
    """A horizontal standard-cell row made of uniform sites."""

    y: float
    height: float
    site_width: float
    x_min: float
    num_sites: int
    index: int = -1

    @property
    def x_max(self) -> float:
        return self.x_min + self.site_width * self.num_sites

    @property
    def rect(self) -> Rect:
        return Rect(self.x_min, self.y, self.x_max, self.y + self.height)

    def snap_x(self, x: float) -> float:
        """Nearest site boundary at or left of ``x``, clamped into the row."""
        site = round((x - self.x_min) / self.site_width)
        site = max(0, min(self.num_sites, site))
        return self.x_min + site * self.site_width
