"""Design statistics — the rows of the paper's benchmark table."""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.node import NodeKind


@dataclass
class DesignStats:
    """Summary statistics of one design."""

    name: str
    num_cells: int
    num_macros: int
    num_fixed: int
    num_terminals: int
    num_nets: int
    num_pins: int
    num_regions: int
    num_modules: int
    utilization: float
    macro_area_fraction: float
    avg_net_degree: float
    max_net_degree: int

    def as_row(self) -> dict:
        """Table-friendly dict, in benchmark-table column order."""
        return {
            "design": self.name,
            "#cells": self.num_cells,
            "#macros": self.num_macros,
            "#fixed": self.num_fixed,
            "#terminals": self.num_terminals,
            "#nets": self.num_nets,
            "#pins": self.num_pins,
            "#fences": self.num_regions,
            "#modules": self.num_modules,
            "util": round(self.utilization, 3),
            "macro_area%": round(100.0 * self.macro_area_fraction, 1),
            "avg_deg": round(self.avg_net_degree, 2),
            "max_deg": self.max_net_degree,
        }


def compute_stats(design) -> DesignStats:
    """Compute :class:`DesignStats` for ``design``."""
    kinds = {}
    for node in design.nodes:
        kinds[node.kind] = kinds.get(node.kind, 0) + 1
    movable_area = design.movable_area()
    macro_area = sum(
        n.area for n in design.nodes if n.kind is NodeKind.MACRO
    )
    degrees = [net.degree for net in design.nets]
    return DesignStats(
        name=design.name,
        num_cells=kinds.get(NodeKind.CELL, 0),
        num_macros=kinds.get(NodeKind.MACRO, 0),
        num_fixed=kinds.get(NodeKind.FIXED, 0),
        num_terminals=kinds.get(NodeKind.TERMINAL, 0)
        + kinds.get(NodeKind.TERMINAL_NI, 0),
        num_nets=len(design.nets),
        num_pins=design.num_pins,
        num_regions=len(design.regions),
        num_modules=max(0, len(design.hierarchy.modules()) - 1),
        utilization=design.utilization(),
        macro_area_fraction=(macro_area / movable_area) if movable_area else 0.0,
        avg_net_degree=(sum(degrees) / len(degrees)) if degrees else 0.0,
        max_net_degree=max(degrees) if degrees else 0,
    )
