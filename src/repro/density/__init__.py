"""Bin-density model for analytical global placement.

``BellDensity`` implements the NTUplace-lineage bell-shaped potential: each
node spreads its area over nearby bins with a smooth, twice-differentiable
kernel; the penalty is the squared deviation of every bin's potential from
its share of the free space.  ``density_overflow`` is the exact-overlap
report metric used for convergence decisions and result tables.
"""

from repro.density.bell import BellDensity, bell_kernel
from repro.density.overflow import density_map, density_overflow

__all__ = ["BellDensity", "bell_kernel", "density_map", "density_overflow"]
