"""The bell-shaped density potential and its analytic gradient.

For a node of width ``w`` and a bin of width ``wb``, the one-dimensional
kernel over the centre distance ``d`` is::

    p(d) = 1 - a*d^2                     for 0 <= d <= w/2 + wb
         = b*(d - (w/2 + 2*wb))^2        for w/2 + wb <= d <= w/2 + 2*wb
         = 0                             beyond

    a = 4 / ((w + 2*wb) * (w + 4*wb))
    b = 2 / (wb * (w + 4*wb))

which is continuous and continuously differentiable at both joints.  A
node's bin potential is the product of the x and y kernels, normalized so
its total mass equals the node area; the placement objective adds
``sum_b (phi_b - target_b)^2`` as a penalty.

Nodes whose kernel support spans few bins ("small": standard cells) are
processed with fixed-size vectorized window sweeps; macros take a per-node
sliced path.  Fixed objects enter through the *target*: their exact overlap
is subtracted from each bin's free capacity.

Hot-path layout: this is the single most evaluated kernel of global
placement (every CG line-search probe computes one potential and one
gradient), so the optimized path (the default) keeps all window-sweep
intermediates in preallocated buffers, scatters the potential with
``np.bincount`` over flattened bin indices (bit-identical to
``np.add.at``, several times faster), precomputes the per-node kernel
coefficients once, and walks large nodes with plain-slice views and a
lean scalar-coefficient kernel.  ``BellDensity(..., reference=True)``
keeps the original allocating implementation verbatim as the golden
baseline; ``tests/test_gp_perf_equiv.py`` asserts both modes agree to the
last bit.
"""

from __future__ import annotations

import numpy as np

from repro.grids import BinGrid

# Window sweeps cost O(K^2) vectorized passes; nodes needing more go to the
# per-node path.
_MAX_WINDOW = 8


def bell_kernel(d, w, wb):
    """The 1-D bell kernel ``p`` and derivative ``dp/dd`` at distances ``d``.

    ``d`` may be signed; the kernel is even and the derivative returned is
    with respect to the *signed* distance (node centre minus bin centre).
    """
    d = np.asarray(d, dtype=float)
    w = np.asarray(w, dtype=float)
    sign = np.sign(d)
    ad = np.abs(d)
    r1 = w / 2.0 + wb
    r2 = w / 2.0 + 2.0 * wb
    a = 4.0 / ((w + 2.0 * wb) * (w + 4.0 * wb))
    b = 2.0 / (wb * (w + 4.0 * wb))
    inner = ad <= r1
    outer = (ad > r1) & (ad <= r2)
    p = np.zeros_like(ad)
    dp = np.zeros_like(ad)
    p = np.where(inner, 1.0 - a * ad * ad, p)
    dp = np.where(inner, -2.0 * a * ad, dp)
    p = np.where(outer, b * (ad - r2) ** 2, p)
    dp = np.where(outer, 2.0 * b * (ad - r2), dp)
    return p, dp * sign


class BellDensity:
    """Vectorized bell-shape density potential over a :class:`BinGrid`."""

    def __init__(
        self,
        grid: BinGrid,
        widths: np.ndarray,
        heights: np.ndarray,
        movable_mask: np.ndarray,
        fixed_rects=(),
        target_density: float | None = None,
        target_scale: np.ndarray | None = None,
        reference: bool = False,
    ):
        """``target_scale`` (optional, per bin in [0, 1]) modulates how much
        cell area each bin should attract — the whitespace-reservation
        hook: bins over routing-starved regions get a scale below 1 so
        the placer leaves room for wires there.  ``reference=True`` keeps
        the original (pre-overhaul) evaluation path verbatim."""
        self.grid = grid
        self.widths = np.asarray(widths, dtype=float)
        self.heights = np.asarray(heights, dtype=float)
        self.movable = np.asarray(movable_mask, dtype=bool)
        self.num_nodes = len(self.widths)
        self.reference = bool(reference)
        # Effective spreading areas; congestion inflation overwrites these.
        self.areas = self.widths * self.heights
        # Free capacity per bin after fixed objects.
        base = grid.zeros()
        for xl, yl, xh, yh in fixed_rects:
            from repro.geometry import Rect

            if xh > xl and yh > yl:
                grid.add_rect(base, Rect(xl, yl, xh, yh))
        self.base = base
        self.free = np.maximum(grid.bin_area - base, 0.0)
        self.target_density = target_density
        if target_scale is not None:
            scale = np.asarray(target_scale, dtype=float)
            if scale.shape != self.free.shape:
                raise ValueError("target_scale must match the grid shape")
            self.free = self.free * np.clip(scale, 0.0, 1.0)
        self._split_small_large()
        self._target_cache = None
        self._probe = None

    # ------------------------------------------------------------------
    def _split_small_large(self):
        wb, hb = self.grid.bin_w, self.grid.bin_h
        span_x = np.ceil((self.widths + 4.0 * wb) / wb).astype(int) + 1
        span_y = np.ceil((self.heights + 4.0 * hb) / hb).astype(int) + 1
        movable_idx = np.flatnonzero(self.movable)
        small = movable_idx[
            (span_x[movable_idx] <= _MAX_WINDOW) & (span_y[movable_idx] <= _MAX_WINDOW)
        ]
        large = movable_idx[
            (span_x[movable_idx] > _MAX_WINDOW) | (span_y[movable_idx] > _MAX_WINDOW)
        ]
        self._small = small
        self._large = large
        if len(small):
            self._kx = int(span_x[small].max())
            self._ky = int(span_y[small].max())
        else:
            self._kx = self._ky = 0
        # Optimized-path precomputation: node-constant kernel coefficients
        # for the fused x|y window batch (columns ``0:kx`` carry the x-axis
        # coefficients, ``kx:kx+ky`` the y-axis ones, so one kernel batch
        # covers both axes) and the stacked coefficient columns of the
        # batched large-node path.
        if len(small) and not self.reference:
            w = self.widths[small][:, None]
            h = self.heights[small][:, None]
            self._sm_rx = w / 2.0 + 2.0 * wb
            self._sm_ry = h / 2.0 + 2.0 * hb
            kx, ky = self._kx, self._ky
            kt = kx + ky
            n = len(small)

            def fused(colx, coly):
                arr = np.empty((n, kt))
                arr[:, :kx] = colx
                arr[:, kx:] = coly
                return arr

            ax = 4.0 / ((w + 2.0 * wb) * (w + 4.0 * wb))
            bx = 2.0 / (wb * (w + 4.0 * wb))
            ay = 4.0 / ((h + 2.0 * hb) * (h + 4.0 * hb))
            by = 2.0 / (hb * (h + 4.0 * hb))
            self._sm_r1 = fused(w / 2.0 + wb, h / 2.0 + hb)
            self._sm_r2 = fused(w / 2.0 + 2.0 * wb, h / 2.0 + 2.0 * hb)
            self._sm_a = fused(ax, ay)
            self._sm_b = fused(bx, by)
            self._sm_m2a = fused(-2.0 * ax, -2.0 * ay)
            self._sm_b2 = fused(2.0 * bx, 2.0 * by)
        self._lg_idx = large
        if len(large) and not self.reference:
            wl = self.widths[large]
            hl = self.heights[large]
            self._lg_rx = wl / 2.0 + 2.0 * wb
            self._lg_ry = hl / 2.0 + 2.0 * hb
            w = wl[:, None]
            h = hl[:, None]
            self._lg_r1x = w / 2.0 + wb
            self._lg_r2x = w / 2.0 + 2.0 * wb
            self._lg_ax = 4.0 / ((w + 2.0 * wb) * (w + 4.0 * wb))
            self._lg_bx = 2.0 / (wb * (w + 4.0 * wb))
            self._lg_m2ax = -2.0 * self._lg_ax
            self._lg_b2x = 2.0 * self._lg_bx
            self._lg_r1y = h / 2.0 + hb
            self._lg_r2y = h / 2.0 + 2.0 * hb
            self._lg_ay = 4.0 / ((h + 2.0 * hb) * (h + 4.0 * hb))
            self._lg_by = 2.0 / (hb * (h + 4.0 * hb))
            self._lg_m2ay = -2.0 * self._lg_ay
            self._lg_b2y = 2.0 * self._lg_by
        self._bufs: dict = {}
        self._aranges: dict = {}
        self._areas_small = None

    def set_areas(self, areas: np.ndarray) -> None:
        """Override spreading areas (congestion-driven cell inflation)."""
        self.areas = np.asarray(areas, dtype=float)
        self._target_cache = None
        self._areas_small = None

    def target(self) -> np.ndarray:
        """Per-bin target potential.

        Free space is filled uniformly at the design's average utilization
        (or the user's ``target_density`` if that is higher), so total
        target mass is at least the total movable mass.
        """
        if self._target_cache is not None:
            return self._target_cache
        total_free = float(np.sum(self.free))
        total_area = float(np.sum(self.areas[self.movable]))
        t_auto = total_area / total_free if total_free > 0 else 1.0
        t = t_auto if self.target_density is None else max(
            min(self.target_density, 1.0), t_auto
        )
        self._target_cache = t * self.free
        return self._target_cache

    # ------------------------------------------------------------------
    # buffer management (optimized path)
    # ------------------------------------------------------------------
    def _buf(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        buf = self._bufs.get(name)
        if buf is None or buf.shape != tuple(shape):
            buf = np.empty(shape, dtype=dtype)
            self._bufs[name] = buf
        return buf

    def _arange(self, n: int) -> np.ndarray:
        rng = self._aranges.get(n)
        if rng is None:
            rng = np.arange(n, dtype=np.int64)
            self._aranges[n] = rng
        return rng

    def _bell_batch(self, d, r1, r2, a, m2a, b, b2, p, dp, prefix):
        """Buffered batched kernel; bit-identical to :func:`bell_kernel`."""
        shape = d.shape
        sgn = self._buf(prefix + "_sgn", shape)
        ad = self._buf(prefix + "_ad", shape)
        q = self._buf(prefix + "_q", shape)
        m1 = self._buf(prefix + "_m1", shape, dtype=bool)
        m2 = self._buf(prefix + "_m2", shape, dtype=bool)
        np.sign(d, out=sgn)
        np.abs(d, out=ad)
        # inner piece: p = 1 - a*ad*ad, dp = (-2a)*ad
        np.less_equal(ad, r1, out=m1)
        np.multiply(a, ad, out=p)
        p *= ad
        np.subtract(1.0, p, out=p)
        np.multiply(m2a, ad, out=dp)
        np.logical_not(m1, out=m2)
        np.copyto(p, 0.0, where=m2)
        np.copyto(dp, 0.0, where=m2)
        # outer piece: p = b*(ad - r2)^2, dp = (2b)*(ad - r2)
        np.greater(ad, r1, out=m1)
        np.less_equal(ad, r2, out=m2)
        np.logical_and(m1, m2, out=m1)
        np.subtract(ad, r2, out=q)
        np.multiply(q, q, out=ad)              # ad now scratch
        np.multiply(b, ad, out=ad)
        np.copyto(p, ad, where=m1)
        np.multiply(b2, q, out=q)
        np.copyto(dp, q, where=m1)
        dp *= sgn

    # ------------------------------------------------------------------
    def _small_window(self, cx: np.ndarray, cy: np.ndarray):
        """Window tables and per-bin contributions for this instance's
        small nodes.

        Every operation is per-node-row independent, so an instance
        carrying only a contiguous *chunk* of the small nodes (see
        ``repro.parallel.gp``) computes rows bit-identical to the ones
        the full instance would.  Returns
        ``(flat, px, dpx, py, dpy, norm, contrib)``; the caller owns the
        scatter/reduction of ``contrib`` into the field.
        """
        grid = self.grid
        idx = self._small
        n = len(idx)
        kx, ky = self._kx, self._ky
        wb, hb = grid.bin_w, grid.bin_h
        u = self._buf("u", (n, 1))
        v = self._buf("v", (n, 1))
        np.take(cx, idx, out=u[:, 0])
        np.take(cy, idx, out=v[:, 0])
        # ix0 = ceil((u - rx - xl)/wb - 0.5), per node
        t = self._buf("t", (n, 1))
        np.subtract(u, self._sm_rx, out=t)
        t -= grid.area.xl
        t /= wb
        t -= 0.5
        np.ceil(t, out=t)
        ix0 = self._buf("ix0", (n, 1), dtype=np.int64)
        np.copyto(ix0, t, casting="unsafe")
        np.subtract(v, self._sm_ry, out=t)
        t -= grid.area.yl
        t /= hb
        t -= 0.5
        np.ceil(t, out=t)
        iy0 = self._buf("iy0", (n, 1), dtype=np.int64)
        np.copyto(iy0, t, casting="unsafe")
        ix_all = self._buf("ix_all", (n, kx), dtype=np.int64)
        iy_all = self._buf("iy_all", (n, ky), dtype=np.int64)
        np.add(ix0, self._arange(kx), out=ix_all)
        np.add(iy0, self._arange(ky), out=iy_all)
        # bin centres, then signed distances, then kernels; the x and y
        # windows share one fused (n, kx+ky) batch so the kernel's op
        # sequence runs once instead of per axis.
        kt = kx + ky
        d_all = self._buf("d_all", (n, kt))
        dx = d_all[:, :kx]
        dy = d_all[:, kx:]
        np.add(ix_all, 0.5, out=dx)
        dx *= wb
        dx += grid.area.xl                 # bin_cx
        np.subtract(u, dx, out=dx)         # u - bin_cx
        np.add(iy_all, 0.5, out=dy)
        dy *= hb
        dy += grid.area.yl
        np.subtract(v, dy, out=dy)
        p_all = self._buf("p_all", (n, kt))
        dp_all = self._buf("dp_all", (n, kt))
        self._bell_batch(
            d_all, self._sm_r1, self._sm_r2, self._sm_a, self._sm_m2a,
            self._sm_b, self._sm_b2, p_all, dp_all, "k",
        )
        px = p_all[:, :kx]
        dpx = dp_all[:, :kx]
        py = p_all[:, kx:]
        dpy = dp_all[:, kx:]
        # zero window columns that fall off the grid
        mvx = self._buf("kx_m1", (n, kx), dtype=bool)
        mvy = self._buf("ky_m1", (n, ky), dtype=bool)
        np.less(ix_all, 0, out=mvx)
        np.greater_equal(ix_all, grid.nx, out=self._buf("kx_m2", (n, kx), dtype=bool))
        np.logical_or(mvx, self._bufs["kx_m2"], out=mvx)
        np.copyto(px, 0.0, where=mvx)
        np.copyto(dpx, 0.0, where=mvx)
        np.less(iy_all, 0, out=mvy)
        np.greater_equal(iy_all, grid.ny, out=self._buf("ky_m2", (n, ky), dtype=bool))
        np.logical_or(mvy, self._bufs["ky_m2"], out=mvy)
        np.copyto(py, 0.0, where=mvy)
        np.copyto(dpy, 0.0, where=mvy)
        # normalization: area / (Sx * Sy), guarded
        sum_px = self._buf("sum_px", (n,))
        sum_py = self._buf("sum_py", (n,))
        px.sum(axis=1, out=sum_px)
        py.sum(axis=1, out=sum_py)
        mass = self._buf("mass", (n,))
        np.multiply(sum_px, sum_py, out=mass)
        if self._areas_small is None:
            self._areas_small = self.areas[self._small]
        norm = self._buf("norm", (n,))
        np.maximum(mass, 1e-30, out=norm)
        np.divide(self._areas_small, norm, out=norm)
        mnz = self._buf("mnz", (n,), dtype=bool)
        np.less_equal(mass, 0.0, out=mnz)
        np.copyto(norm, 0.0, where=mnz)
        # One flattened bincount instead of Kx*Ky scatter passes.
        np.clip(ix_all, 0, grid.nx - 1, out=ix_all)
        np.clip(iy_all, 0, grid.ny - 1, out=iy_all)
        ix_all *= grid.ny
        flat = self._buf("flat", (n, kx, ky), dtype=np.int64)
        np.add(ix_all[:, :, None], iy_all[:, None, :], out=flat)
        t2 = self._buf("t2", (n, kx))
        np.multiply(norm[:, None], px, out=t2)
        contrib = self._buf("contrib", (n, kx, ky))
        np.multiply(t2[:, :, None], py[:, None, :], out=contrib)
        return flat, px, dpx, py, dpy, norm, contrib

    def potential(self, cx: np.ndarray, cy: np.ndarray):
        """The bin potential field and the per-node kernel tables.

        Returns ``(phi, small_tables, large_tables)``; the tables carry
        everything the gradient pass needs so kernels are evaluated once.
        """
        if self.reference:
            return self._potential_reference(cx, cy)
        grid = self.grid
        small_tables = None
        phi = None
        if len(self._small):
            flat, px, dpx, py, dpy, norm, contrib = self._small_window(cx, cy)
            phi = np.bincount(
                flat.reshape(-1), weights=contrib.reshape(-1),
                minlength=grid.nx * grid.ny,
            ).reshape(grid.nx, grid.ny)
            small_tables = (self._small, flat, px, dpx, py, dpy, norm)
        if phi is None:
            phi = grid.zeros()
        return phi, small_tables, self._large_batch(phi, cx, cy)

    def _large_batch(self, phi, cx, cy):
        """Batched large-node kernels, accumulated into ``phi`` in order.

        Bounds, bin centres, and both 1-D kernels are evaluated for all
        large nodes in one padded batch (per-node coefficient columns, rows
        padded to the widest window; padding is never read because every
        consumer works on exact-length row views).  The per-node sums,
        normalization, and ``phi`` scatter keep the original sequential
        per-node order and arithmetic, so the field and the returned
        tables are bit-identical to the per-node loop.
        """
        idxl = self._lg_idx
        large_tables = []
        if not len(idxl):
            return large_tables
        grid = self.grid
        wb, hb = grid.bin_w, grid.bin_h
        u = cx[idxl]
        v = cy[idxl]
        ix0 = np.maximum(
            0, np.ceil((u - self._lg_rx - grid.area.xl) / wb - 0.5).astype(np.int64)
        )
        ix1 = np.minimum(
            grid.nx - 1,
            np.floor((u + self._lg_rx - grid.area.xl) / wb - 0.5).astype(np.int64),
        )
        iy0 = np.maximum(
            0, np.ceil((v - self._lg_ry - grid.area.yl) / hb - 0.5).astype(np.int64)
        )
        iy1 = np.minimum(
            grid.ny - 1,
            np.floor((v + self._lg_ry - grid.area.yl) / hb - 0.5).astype(np.int64),
        )
        valid = (ix1 >= ix0) & (iy1 >= iy0)
        if not valid.any():
            return large_tables
        full = bool(valid.all())
        sub = None if full else np.flatnonzero(valid)

        def take(a):
            return a if full else a[sub]

        uv = take(u)[:, None]
        vv = take(v)[:, None]
        ix0v, ix1v = take(ix0), take(ix1)
        iy0v, iy1v = take(iy0), take(iy1)
        lxv = ix1v - ix0v + 1
        lyv = iy1v - iy0v + 1
        m = len(ix0v)
        Lx = int(lxv.max())
        Ly = int(lyv.max())
        slx = ix0v[:, None] + self._arange(Lx)
        sly = iy0v[:, None] + self._arange(Ly)
        dx = grid.area.xl + (slx + 0.5) * wb
        np.subtract(uv, dx, out=dx)
        dy = grid.area.yl + (sly + 0.5) * hb
        np.subtract(vv, dy, out=dy)
        px = self._buf("lg_px", (m, Lx))
        dpx = self._buf("lg_dpx", (m, Lx))
        py = self._buf("lg_py", (m, Ly))
        dpy = self._buf("lg_dpy", (m, Ly))
        self._bell_batch(
            dx, take(self._lg_r1x), take(self._lg_r2x), take(self._lg_ax),
            take(self._lg_m2ax), take(self._lg_bx), take(self._lg_b2x),
            px, dpx, "lgx",
        )
        self._bell_batch(
            dy, take(self._lg_r1y), take(self._lg_r2y), take(self._lg_ay),
            take(self._lg_m2ay), take(self._lg_by), take(self._lg_b2y),
            py, dpy, "lgy",
        )
        nodes = (idxl if full else idxl[sub]).tolist()
        ix0l, ix1l = ix0v.tolist(), ix1v.tolist()
        iy0l, iy1l = iy0v.tolist(), iy1v.tolist()
        lxl, lyl = lxv.tolist(), lyv.tolist()
        areas = self.areas
        for j in range(m):
            lx = lxl[j]
            ly = lyl[j]
            pxr = px[j, :lx]
            pyr = py[j, :ly]
            s_px = float(pxr.sum())
            s_py = float(pyr.sum())
            mass = s_px * s_py
            if mass <= 0:
                continue
            i = nodes[j]
            norm = areas[i] / mass
            a0, a1, b0, b1 = ix0l[j], ix1l[j], iy0l[j], iy1l[j]
            phi[a0 : a1 + 1, b0 : b1 + 1] += norm * np.outer(pxr, pyr)
            dpxr = dpx[j, :lx]
            dpyr = dpy[j, :ly]
            large_tables.append(
                (
                    i, a0, a1, b0, b1, pxr, dpxr, pyr, dpyr, norm,
                    s_px, s_py, float(dpxr.sum()), float(dpyr.sum()),
                )
            )
        return large_tables

    def _potential_reference(self, cx: np.ndarray, cy: np.ndarray):
        """The original allocating potential evaluation, verbatim."""
        grid = self.grid
        phi = grid.zeros()
        small_tables = None
        if len(self._small):
            idx = self._small
            u = cx[idx]
            v = cy[idx]
            w = self.widths[idx]
            h = self.heights[idx]
            wb, hb = grid.bin_w, grid.bin_h
            rx = w / 2.0 + 2.0 * wb
            ry = h / 2.0 + 2.0 * hb
            ix0 = np.ceil((u - rx - grid.area.xl) / wb - 0.5).astype(np.int64)
            iy0 = np.ceil((v - ry - grid.area.yl) / hb - 0.5).astype(np.int64)
            ks = np.arange(self._kx)
            ls = np.arange(self._ky)
            ix_all = ix0[:, None] + ks[None, :]
            iy_all = iy0[:, None] + ls[None, :]
            bin_cx = grid.area.xl + (ix_all + 0.5) * wb
            bin_cy = grid.area.yl + (iy_all + 0.5) * hb
            px, dpx = bell_kernel(u[:, None] - bin_cx, w[:, None], wb)
            py, dpy = bell_kernel(v[:, None] - bin_cy, h[:, None], hb)
            valid_x = (ix_all >= 0) & (ix_all < grid.nx)
            valid_y = (iy_all >= 0) & (iy_all < grid.ny)
            px = np.where(valid_x, px, 0.0)
            dpx = np.where(valid_x, dpx, 0.0)
            py = np.where(valid_y, py, 0.0)
            dpy = np.where(valid_y, dpy, 0.0)
            sum_px = px.sum(axis=1)
            sum_py = py.sum(axis=1)
            mass = sum_px * sum_py
            norm = np.where(mass > 0, self.areas[idx] / np.maximum(mass, 1e-30), 0.0)
            # One flattened scatter instead of Kx*Ky passes.
            flat = (
                np.clip(ix_all, 0, grid.nx - 1)[:, :, None] * grid.ny
                + np.clip(iy_all, 0, grid.ny - 1)[:, None, :]
            )
            contrib = (norm[:, None] * px)[:, :, None] * py[:, None, :]
            np.add.at(phi.reshape(-1), flat.reshape(-1), contrib.reshape(-1))
            small_tables = (idx, flat, px, dpx, py, dpy, norm)
        large_tables = []
        for i in self._large:
            entry = self._large_node_kernel(i, cx[i], cy[i])
            if entry is None:
                continue
            sl_x, sl_y, px, dpx, py, dpy, norm = entry
            phi[np.ix_(sl_x, sl_y)] += norm * np.outer(px, py)
            large_tables.append((i, sl_x, sl_y, px, dpx, py, dpy, norm))
        return phi, small_tables, large_tables

    def _large_node_kernel(self, i: int, u: float, v: float):
        grid = self.grid
        wb, hb = grid.bin_w, grid.bin_h
        w, h = self.widths[i], self.heights[i]
        rx = w / 2.0 + 2.0 * wb
        ry = h / 2.0 + 2.0 * hb
        ix0 = max(0, int(np.ceil((u - rx - grid.area.xl) / wb - 0.5)))
        ix1 = min(grid.nx - 1, int(np.floor((u + rx - grid.area.xl) / wb - 0.5)))
        iy0 = max(0, int(np.ceil((v - ry - grid.area.yl) / hb - 0.5)))
        iy1 = min(grid.ny - 1, int(np.floor((v + ry - grid.area.yl) / hb - 0.5)))
        if ix1 < ix0 or iy1 < iy0:
            return None
        sl_x = np.arange(ix0, ix1 + 1)
        sl_y = np.arange(iy0, iy1 + 1)
        bin_cx = grid.area.xl + (sl_x + 0.5) * wb
        bin_cy = grid.area.yl + (sl_y + 0.5) * hb
        px, dpx = bell_kernel(u - bin_cx, w, wb)
        py, dpy = bell_kernel(v - bin_cy, h, hb)
        mass = px.sum() * py.sum()
        if mass <= 0:
            return None
        norm = self.areas[i] / mass
        return sl_x, sl_y, px, dpx, py, dpy, norm

    # ------------------------------------------------------------------
    def value_grad(self, cx: np.ndarray, cy: np.ndarray):
        """Penalty ``sum_b (phi_b - target_b)^2`` and its node gradient."""
        if self.reference:
            return self._value_grad_reference(cx, cy)
        phi, small_tables, large_tables = self.potential(cx, cy)
        psi = phi - self.target()
        value = float(np.sum(psi * psi))
        grad_x, grad_y = self._grad_from_tables(psi, small_tables, large_tables)
        return value, grad_x, grad_y

    def value_probe(self, cx: np.ndarray, cy: np.ndarray) -> float:
        """Penalty value only, stashing tables for :meth:`finish_grad`.

        With :meth:`finish_grad` this splits one ``value_grad`` into the
        cheap half the line search always needs and the gradient half
        only accepted points need; both halves run the same ops as
        ``value_grad``, so the split pair is bit-identical to it.  In
        reference mode it evaluates ``value_grad`` and caches the result.
        """
        if self.reference:
            value, gx, gy = self.value_grad(cx, cy)
            self._probe = ("full", gx, gy)
            return value
        phi, small_tables, large_tables = self.potential(cx, cy)
        psi = phi - self.target()
        self._probe = ("split", psi, small_tables, large_tables)
        return float(np.sum(psi * psi))

    def finish_grad(self):
        """Gradients of the last :meth:`value_probe` point."""
        if self._probe[0] == "full":
            return self._probe[1], self._probe[2]
        _, psi, small_tables, large_tables = self._probe
        return self._grad_from_tables(psi, small_tables, large_tables)

    def _small_grad(self, psi, small_tables):
        """Per-node small gradient rows ``(t1x, t1y)`` from window tables.

        Row-independent like :meth:`_small_window`, so chunk instances
        (``repro.parallel.gp``) produce bit-identical rows; the caller
        scatters them into the full gradient vectors.
        """
        _idx, flat, px, dpx, py, dpy, norm = small_tables
        n, kx, ky = flat.shape
        field = self._buf("field", (n, kx, ky))
        np.take(psi.reshape(-1), flat, out=field)   # one gather
        fy = self._buf("fy", (n, kx, ky))
        np.multiply(field, py[:, None, :], out=fy)
        t3 = self._buf("t3", (n, kx, ky))
        gx = self._buf("gx", (n,))
        gy = self._buf("gy", (n,))
        gpp = self._buf("gpp", (n,))
        np.multiply(fy, dpx[:, :, None], out=t3)
        t3.sum(axis=(1, 2), out=gx)
        np.multiply(fy, px[:, :, None], out=t3)
        t3.sum(axis=(1, 2), out=gpp)
        np.multiply(field, px[:, :, None], out=t3)
        t3 *= dpy[:, None, :]
        t3.sum(axis=(1, 2), out=gy)
        sum_px = self._buf("g_sum_px", (n,))
        sum_py = self._buf("g_sum_py", (n,))
        px.sum(axis=1, out=sum_px)
        np.maximum(sum_px, 1e-30, out=sum_px)
        py.sum(axis=1, out=sum_py)
        np.maximum(sum_py, 1e-30, out=sum_py)
        sum_dpx = self._buf("sum_dpx", (n,))
        sum_dpy = self._buf("sum_dpy", (n,))
        dpx.sum(axis=1, out=sum_dpx)
        dpy.sum(axis=1, out=sum_dpy)
        # grad = 2*norm*(g - gpp*sum_dp/sum_p), assembled in buffers
        n2 = self._buf("n2", (n,))
        np.multiply(2.0, norm, out=n2)
        t1x = self._buf("t1x", (n,))
        np.multiply(gpp, sum_dpx, out=t1x)
        t1x /= sum_px
        np.subtract(gx, t1x, out=t1x)
        t1x *= n2
        t1y = self._buf("t1y", (n,))
        np.multiply(gpp, sum_dpy, out=t1y)
        t1y /= sum_py
        np.subtract(gy, t1y, out=t1y)
        t1y *= n2
        return t1x, t1y

    def _grad_from_tables(self, psi, small_tables, large_tables):
        grad_x = np.zeros(self.num_nodes)
        grad_y = np.zeros(self.num_nodes)
        # The kernel mass sum_k p(k) varies with a node's phase relative to
        # the bin grid, so the normalization N = area / (Sx * Sy) is itself
        # position dependent; including dN makes the gradient exact.
        if small_tables is not None:
            idx = small_tables[0]
            t1x, t1y = self._small_grad(psi, small_tables)
            grad_x[idx] = t1x
            grad_y[idx] = t1y
        # Kernel sums were already taken in the potential pass; ``@`` is
        # left-associative, so sharing ``px @ field`` between the gpp and
        # grad_y contractions reproduces the original products exactly.
        for i, ix0, ix1, iy0, iy1, px, dpx, py, dpy, norm, s_px, s_py, s_dpx, s_dpy in large_tables:
            field = psi[ix0 : ix1 + 1, iy0 : iy1 + 1].copy()
            t = px @ field
            gpp = float(t @ py)
            sum_px = max(s_px, 1e-30)
            sum_py = max(s_py, 1e-30)
            grad_x[i] = 2.0 * norm * (
                float(dpx @ field @ py) - gpp * s_dpx / sum_px
            )
            grad_y[i] = 2.0 * norm * (
                float(t @ dpy) - gpp * s_dpy / sum_py
            )
        return grad_x, grad_y

    def _value_grad_reference(self, cx: np.ndarray, cy: np.ndarray):
        """The original allocating gradient evaluation, verbatim."""
        phi, small_tables, large_tables = self._potential_reference(cx, cy)
        psi = phi - self.target()
        value = float(np.sum(psi * psi))
        grad_x = np.zeros(self.num_nodes)
        grad_y = np.zeros(self.num_nodes)
        # The kernel mass sum_k p(k) varies with a node's phase relative to
        # the bin grid, so the normalization N = area / (Sx * Sy) is itself
        # position dependent; including dN makes the gradient exact.
        if small_tables is not None:
            idx, flat, px, dpx, py, dpy, norm = small_tables
            field = psi.reshape(-1)[flat]  # (n, Kx, Ky), one gather
            fy = field * py[:, None, :]
            gx = (fy * dpx[:, :, None]).sum(axis=(1, 2))
            gpp = (fy * px[:, :, None]).sum(axis=(1, 2))
            gy = (field * px[:, :, None] * dpy[:, None, :]).sum(axis=(1, 2))
            sum_px = np.maximum(px.sum(axis=1), 1e-30)
            sum_py = np.maximum(py.sum(axis=1), 1e-30)
            sum_dpx = dpx.sum(axis=1)
            sum_dpy = dpy.sum(axis=1)
            grad_x[idx] = 2.0 * norm * (gx - gpp * sum_dpx / sum_px)
            grad_y[idx] = 2.0 * norm * (gy - gpp * sum_dpy / sum_py)
        for i, sl_x, sl_y, px, dpx, py, dpy, norm in large_tables:
            field = psi[np.ix_(sl_x, sl_y)]
            gpp = float(px @ field @ py)
            sum_px = max(float(px.sum()), 1e-30)
            sum_py = max(float(py.sum()), 1e-30)
            grad_x[i] = 2.0 * norm * (
                float(dpx @ field @ py) - gpp * float(dpx.sum()) / sum_px
            )
            grad_y[i] = 2.0 * norm * (
                float(px @ field @ dpy) - gpp * float(dpy.sum()) / sum_py
            )
        return value, grad_x, grad_y

    def value(self, cx: np.ndarray, cy: np.ndarray) -> float:
        phi, _, _ = self.potential(cx, cy)
        psi = phi - self.target()
        return float(np.sum(psi * psi))
