"""The bell-shaped density potential and its analytic gradient.

For a node of width ``w`` and a bin of width ``wb``, the one-dimensional
kernel over the centre distance ``d`` is::

    p(d) = 1 - a*d^2                     for 0 <= d <= w/2 + wb
         = b*(d - (w/2 + 2*wb))^2        for w/2 + wb <= d <= w/2 + 2*wb
         = 0                             beyond

    a = 4 / ((w + 2*wb) * (w + 4*wb))
    b = 2 / (wb * (w + 4*wb))

which is continuous and continuously differentiable at both joints.  A
node's bin potential is the product of the x and y kernels, normalized so
its total mass equals the node area; the placement objective adds
``sum_b (phi_b - target_b)^2`` as a penalty.

Nodes whose kernel support spans few bins ("small": standard cells) are
processed with fixed-size vectorized window sweeps; macros take a per-node
sliced path.  Fixed objects enter through the *target*: their exact overlap
is subtracted from each bin's free capacity.
"""

from __future__ import annotations

import numpy as np

from repro.grids import BinGrid

# Window sweeps cost O(K^2) vectorized passes; nodes needing more go to the
# per-node path.
_MAX_WINDOW = 8


def bell_kernel(d, w, wb):
    """The 1-D bell kernel ``p`` and derivative ``dp/dd`` at distances ``d``.

    ``d`` may be signed; the kernel is even and the derivative returned is
    with respect to the *signed* distance (node centre minus bin centre).
    """
    d = np.asarray(d, dtype=float)
    w = np.asarray(w, dtype=float)
    sign = np.sign(d)
    ad = np.abs(d)
    r1 = w / 2.0 + wb
    r2 = w / 2.0 + 2.0 * wb
    a = 4.0 / ((w + 2.0 * wb) * (w + 4.0 * wb))
    b = 2.0 / (wb * (w + 4.0 * wb))
    inner = ad <= r1
    outer = (ad > r1) & (ad <= r2)
    p = np.zeros_like(ad)
    dp = np.zeros_like(ad)
    p = np.where(inner, 1.0 - a * ad * ad, p)
    dp = np.where(inner, -2.0 * a * ad, dp)
    p = np.where(outer, b * (ad - r2) ** 2, p)
    dp = np.where(outer, 2.0 * b * (ad - r2), dp)
    return p, dp * sign


class BellDensity:
    """Vectorized bell-shape density potential over a :class:`BinGrid`."""

    def __init__(
        self,
        grid: BinGrid,
        widths: np.ndarray,
        heights: np.ndarray,
        movable_mask: np.ndarray,
        fixed_rects=(),
        target_density: float | None = None,
        target_scale: np.ndarray | None = None,
    ):
        """``target_scale`` (optional, per bin in [0, 1]) modulates how much
        cell area each bin should attract — the whitespace-reservation
        hook: bins over routing-starved regions get a scale below 1 so
        the placer leaves room for wires there."""
        self.grid = grid
        self.widths = np.asarray(widths, dtype=float)
        self.heights = np.asarray(heights, dtype=float)
        self.movable = np.asarray(movable_mask, dtype=bool)
        self.num_nodes = len(self.widths)
        # Effective spreading areas; congestion inflation overwrites these.
        self.areas = self.widths * self.heights
        # Free capacity per bin after fixed objects.
        base = grid.zeros()
        for xl, yl, xh, yh in fixed_rects:
            from repro.geometry import Rect

            if xh > xl and yh > yl:
                grid.add_rect(base, Rect(xl, yl, xh, yh))
        self.base = base
        self.free = np.maximum(grid.bin_area - base, 0.0)
        self.target_density = target_density
        if target_scale is not None:
            scale = np.asarray(target_scale, dtype=float)
            if scale.shape != self.free.shape:
                raise ValueError("target_scale must match the grid shape")
            self.free = self.free * np.clip(scale, 0.0, 1.0)
        self._split_small_large()
        self._target_cache = None

    # ------------------------------------------------------------------
    def _split_small_large(self):
        wb, hb = self.grid.bin_w, self.grid.bin_h
        span_x = np.ceil((self.widths + 4.0 * wb) / wb).astype(int) + 1
        span_y = np.ceil((self.heights + 4.0 * hb) / hb).astype(int) + 1
        movable_idx = np.flatnonzero(self.movable)
        small = movable_idx[
            (span_x[movable_idx] <= _MAX_WINDOW) & (span_y[movable_idx] <= _MAX_WINDOW)
        ]
        large = movable_idx[
            (span_x[movable_idx] > _MAX_WINDOW) | (span_y[movable_idx] > _MAX_WINDOW)
        ]
        self._small = small
        self._large = large
        if len(small):
            self._kx = int(span_x[small].max())
            self._ky = int(span_y[small].max())
        else:
            self._kx = self._ky = 0

    def set_areas(self, areas: np.ndarray) -> None:
        """Override spreading areas (congestion-driven cell inflation)."""
        self.areas = np.asarray(areas, dtype=float)
        self._target_cache = None

    def target(self) -> np.ndarray:
        """Per-bin target potential.

        Free space is filled uniformly at the design's average utilization
        (or the user's ``target_density`` if that is higher), so total
        target mass is at least the total movable mass.
        """
        if self._target_cache is not None:
            return self._target_cache
        total_free = float(np.sum(self.free))
        total_area = float(np.sum(self.areas[self.movable]))
        t_auto = total_area / total_free if total_free > 0 else 1.0
        t = t_auto if self.target_density is None else max(
            min(self.target_density, 1.0), t_auto
        )
        self._target_cache = t * self.free
        return self._target_cache

    # ------------------------------------------------------------------
    def potential(self, cx: np.ndarray, cy: np.ndarray):
        """The bin potential field and the per-node kernel tables.

        Returns ``(phi, small_tables, large_tables)``; the tables carry
        everything the gradient pass needs so kernels are evaluated once.
        """
        grid = self.grid
        phi = grid.zeros()
        small_tables = None
        if len(self._small):
            idx = self._small
            u = cx[idx]
            v = cy[idx]
            w = self.widths[idx]
            h = self.heights[idx]
            wb, hb = grid.bin_w, grid.bin_h
            rx = w / 2.0 + 2.0 * wb
            ry = h / 2.0 + 2.0 * hb
            ix0 = np.ceil((u - rx - grid.area.xl) / wb - 0.5).astype(np.int64)
            iy0 = np.ceil((v - ry - grid.area.yl) / hb - 0.5).astype(np.int64)
            ks = np.arange(self._kx)
            ls = np.arange(self._ky)
            ix_all = ix0[:, None] + ks[None, :]
            iy_all = iy0[:, None] + ls[None, :]
            bin_cx = grid.area.xl + (ix_all + 0.5) * wb
            bin_cy = grid.area.yl + (iy_all + 0.5) * hb
            px, dpx = bell_kernel(u[:, None] - bin_cx, w[:, None], wb)
            py, dpy = bell_kernel(v[:, None] - bin_cy, h[:, None], hb)
            valid_x = (ix_all >= 0) & (ix_all < grid.nx)
            valid_y = (iy_all >= 0) & (iy_all < grid.ny)
            px = np.where(valid_x, px, 0.0)
            dpx = np.where(valid_x, dpx, 0.0)
            py = np.where(valid_y, py, 0.0)
            dpy = np.where(valid_y, dpy, 0.0)
            sum_px = px.sum(axis=1)
            sum_py = py.sum(axis=1)
            mass = sum_px * sum_py
            norm = np.where(mass > 0, self.areas[idx] / np.maximum(mass, 1e-30), 0.0)
            # One flattened scatter instead of Kx*Ky passes.
            flat = (
                np.clip(ix_all, 0, grid.nx - 1)[:, :, None] * grid.ny
                + np.clip(iy_all, 0, grid.ny - 1)[:, None, :]
            )
            contrib = (norm[:, None] * px)[:, :, None] * py[:, None, :]
            np.add.at(phi.reshape(-1), flat.reshape(-1), contrib.reshape(-1))
            small_tables = (idx, flat, px, dpx, py, dpy, norm)
        large_tables = []
        for i in self._large:
            entry = self._large_node_kernel(i, cx[i], cy[i])
            if entry is None:
                continue
            sl_x, sl_y, px, dpx, py, dpy, norm = entry
            phi[np.ix_(sl_x, sl_y)] += norm * np.outer(px, py)
            large_tables.append((i, sl_x, sl_y, px, dpx, py, dpy, norm))
        return phi, small_tables, large_tables

    def _large_node_kernel(self, i: int, u: float, v: float):
        grid = self.grid
        wb, hb = grid.bin_w, grid.bin_h
        w, h = self.widths[i], self.heights[i]
        rx = w / 2.0 + 2.0 * wb
        ry = h / 2.0 + 2.0 * hb
        ix0 = max(0, int(np.ceil((u - rx - grid.area.xl) / wb - 0.5)))
        ix1 = min(grid.nx - 1, int(np.floor((u + rx - grid.area.xl) / wb - 0.5)))
        iy0 = max(0, int(np.ceil((v - ry - grid.area.yl) / hb - 0.5)))
        iy1 = min(grid.ny - 1, int(np.floor((v + ry - grid.area.yl) / hb - 0.5)))
        if ix1 < ix0 or iy1 < iy0:
            return None
        sl_x = np.arange(ix0, ix1 + 1)
        sl_y = np.arange(iy0, iy1 + 1)
        bin_cx = grid.area.xl + (sl_x + 0.5) * wb
        bin_cy = grid.area.yl + (sl_y + 0.5) * hb
        px, dpx = bell_kernel(u - bin_cx, w, wb)
        py, dpy = bell_kernel(v - bin_cy, h, hb)
        mass = px.sum() * py.sum()
        if mass <= 0:
            return None
        norm = self.areas[i] / mass
        return sl_x, sl_y, px, dpx, py, dpy, norm

    # ------------------------------------------------------------------
    def value_grad(self, cx: np.ndarray, cy: np.ndarray):
        """Penalty ``sum_b (phi_b - target_b)^2`` and its node gradient."""
        phi, small_tables, large_tables = self.potential(cx, cy)
        psi = phi - self.target()
        value = float(np.sum(psi * psi))
        grad_x = np.zeros(self.num_nodes)
        grad_y = np.zeros(self.num_nodes)
        grid = self.grid
        # The kernel mass sum_k p(k) varies with a node's phase relative to
        # the bin grid, so the normalization N = area / (Sx * Sy) is itself
        # position dependent; including dN makes the gradient exact.
        if small_tables is not None:
            idx, flat, px, dpx, py, dpy, norm = small_tables
            field = psi.reshape(-1)[flat]  # (n, Kx, Ky), one gather
            fy = field * py[:, None, :]
            gx = (fy * dpx[:, :, None]).sum(axis=(1, 2))
            gpp = (fy * px[:, :, None]).sum(axis=(1, 2))
            gy = (field * px[:, :, None] * dpy[:, None, :]).sum(axis=(1, 2))
            sum_px = np.maximum(px.sum(axis=1), 1e-30)
            sum_py = np.maximum(py.sum(axis=1), 1e-30)
            sum_dpx = dpx.sum(axis=1)
            sum_dpy = dpy.sum(axis=1)
            grad_x[idx] = 2.0 * norm * (gx - gpp * sum_dpx / sum_px)
            grad_y[idx] = 2.0 * norm * (gy - gpp * sum_dpy / sum_py)
        for i, sl_x, sl_y, px, dpx, py, dpy, norm in large_tables:
            field = psi[np.ix_(sl_x, sl_y)]
            gpp = float(px @ field @ py)
            sum_px = max(float(px.sum()), 1e-30)
            sum_py = max(float(py.sum()), 1e-30)
            grad_x[i] = 2.0 * norm * (
                float(dpx @ field @ py) - gpp * float(dpx.sum()) / sum_px
            )
            grad_y[i] = 2.0 * norm * (
                float(px @ field @ dpy) - gpp * float(dpy.sum()) / sum_py
            )
        return value, grad_x, grad_y

    def value(self, cx: np.ndarray, cy: np.ndarray) -> float:
        phi, _, _ = self.potential(cx, cy)
        psi = phi - self.target()
        return float(np.sum(psi * psi))
