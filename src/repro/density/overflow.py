"""Exact-overlap density maps and the density-overflow report metric."""

from __future__ import annotations

import numpy as np

from repro.grids import BinGrid


def density_map(design, grid: BinGrid | None = None, nx: int = 64, ny: int = 64):
    """Exact movable-area density per bin, as a fraction of bin free space.

    Returns ``(grid, density)`` where ``density[ix, iy]`` is movable area
    in the bin divided by its free (non-fixed) capacity.
    """
    if grid is None:
        grid = BinGrid(design.core, nx, ny)
    usage = grid.zeros()
    blocked = grid.zeros()
    for node in design.nodes:
        r = node.rect
        if node.is_movable:
            grid.add_rect(usage, r)
        elif node.kind.blocks_placement:
            grid.add_rect(blocked, r)
    free = np.maximum(grid.bin_area - blocked, 1e-12)
    return grid, usage / free


def density_overflow(design, target_density: float = 1.0, nx: int = 64, ny: int = 64) -> float:
    """Total density overflow, normalized by total movable area.

    ``sum_b max(0, usage_b - target * free_b) / movable_area`` — the
    convergence criterion of global placement and a column of the result
    tables.  Zero means every bin respects the density target.
    """
    grid = BinGrid(design.core, nx, ny)
    usage = grid.zeros()
    blocked = grid.zeros()
    movable_area = 0.0
    for node in design.nodes:
        r = node.rect
        if node.is_movable:
            grid.add_rect(usage, r)
            movable_area += node.area
        elif node.kind.blocks_placement:
            grid.add_rect(blocked, r)
    if movable_area <= 0:
        return 0.0
    free = np.maximum(grid.bin_area - blocked, 0.0)
    over = np.maximum(usage - target_density * free, 0.0)
    return float(np.sum(over) / movable_area)
