"""Detailed placement: legality-preserving local refinement.

Standard passes from the NTUplace lineage, each gated so congestion does
not regress when the flow runs routability-aware:

* **global swap** — exchange same-width cells across the die when that
  reduces HPWL;
* **vertical swap** — a restricted global swap between adjacent rows;
* **local reordering** — optimal permutation of small windows of
  consecutive cells within a sub-row;
* **independent-set matching** — assignment (Hungarian) of equal-width
  cells to each other's slots, solved exactly per batch.

All passes operate on the legalized placement and keep it legal: moves
only exchange occupied slots of equal footprint or repack within one
sub-row span.
"""

from repro.dp.engine import DetailedPlacer, DPConfig, DPReport
from repro.dp.swap import global_swap_pass, vertical_swap_pass
from repro.dp.reorder import local_reorder_pass
from repro.dp.matching import matching_pass
from repro.dp.hpwl_delta import IncrementalHPWL
from repro.dp.spreading import congestion_spread_pass

__all__ = [
    "DPConfig",
    "DPReport",
    "DetailedPlacer",
    "IncrementalHPWL",
    "congestion_spread_pass",
    "global_swap_pass",
    "local_reorder_pass",
    "matching_pass",
    "vertical_swap_pass",
]
