"""The detailed-placement engine: pass scheduling and congestion gating."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.dp.hpwl_delta import IncrementalHPWL
from repro.dp.matching import matching_pass
from repro.dp.reorder import local_reorder_pass
from repro.dp.swap import global_swap_pass, vertical_swap_pass
from repro.obs import get_tracer
from repro.route.rudy import rudy_map


@dataclass
class DPConfig:
    """Knobs of :class:`DetailedPlacer`."""

    rounds: int = 2
    global_swap: bool = True
    vertical_swap: bool = True
    local_reorder: bool = True
    matching: bool = True
    reorder_window: int = 3
    swap_candidates: int = 8
    matching_batch: int = 24
    # Congestion gating: moves into tiles whose estimated congestion
    # exceeds the threshold are rejected (requires design.routing).
    congestion_aware: bool = True
    congestion_gate_threshold: float = 0.9
    # Congestion-driven spreading: evacuate cells from hot tiles into
    # cool whitespace after the wirelength passes (congestion_aware only).
    congestion_spread: bool = True
    spread_threshold: float = 0.9
    spread_max_moves: int = 200
    min_gain_per_round: float = 1e-6
    # Parity knob with the other stage configs (FlowConfig.workers
    # propagates here).  The DP move passes are inherently sequential —
    # every accepted move changes the scores of its neighbours — so they
    # always run single-process; the knob exists so flow-level worker
    # plumbing need not special-case this stage.
    workers: int = 1
    # Parity with the other stage configs' REPRO_WORKERS pinning knob.
    workers_pinned: bool = False
    # Golden mode: run the original per-pin scoring loops (kept verbatim
    # in IncrementalHPWL) instead of the batched NumPy hot paths.  Results
    # are bit-identical either way — CI and the equivalence tests assert
    # it — so this exists to prove that, and to debug any future drift.
    reference: bool = False


@dataclass
class DPReport:
    """Outcome of detailed placement."""

    hpwl_before: float = 0.0
    hpwl_after: float = 0.0
    passes: list = field(default_factory=list)  # (name, accepted, gain)
    runtime_seconds: float = 0.0
    budget_exhausted: bool = False  # stage watchdog expired between rounds

    @property
    def improvement(self) -> float:
        if self.hpwl_before <= 0:
            return 0.0
        return (self.hpwl_before - self.hpwl_after) / self.hpwl_before

    @property
    def telemetry(self) -> dict:
        """Column-oriented per-pass series (HPWL deltas + accept counts)."""
        return {
            "pass": [p[0] for p in self.passes],
            "accepted": [p[1] for p in self.passes],
            "hpwl_delta": [-p[2] for p in self.passes],  # negative = improved
        }


class DetailedPlacer:
    """Runs swap / reorder / matching rounds on a legalized design."""

    def __init__(self, config: DPConfig | None = None):
        self.config = config or DPConfig()

    def run(self, design, submap, *, watchdog=None) -> DPReport:
        """Improve ``design`` in place; ``watchdog`` (optional
        :class:`repro.resilience.StageWatchdog`) stops cleanly between
        rounds when the stage budget runs out."""
        cfg = self.config
        tracer = get_tracer()
        t0 = time.perf_counter()
        report = DPReport(hpwl_before=design.hpwl())
        inc = IncrementalHPWL(design, reference=cfg.reference)
        gate = (
            self._make_gate(design, reference=cfg.reference)
            if cfg.congestion_aware
            else None
        )
        pass_t0 = time.perf_counter()

        def note(name: str, accepted: int, gain: float) -> float:
            nonlocal pass_t0
            step = len(report.passes)
            report.passes.append((name, accepted, gain))
            tracer.metrics.record("dp.hpwl_delta", step, -gain)
            tracer.metrics.record("dp.accepted", step, accepted)
            now = time.perf_counter()
            tracer.metrics.record("dp.pass_seconds", step, now - pass_t0)
            pass_t0 = now
            return gain

        for rnd in range(cfg.rounds):
            if watchdog is not None and watchdog.expired():
                report.budget_exhausted = True
                tracer.event("watchdog.expired", round=rnd, **watchdog.describe())
                break
            with tracer.span(f"round[{rnd}]"):
                round_gain = 0.0
                if cfg.global_swap:
                    with tracer.span("global_swap"):
                        acc, gain = global_swap_pass(
                            design,
                            inc,
                            candidates_per_cell=cfg.swap_candidates,
                            gate=gate,
                        )
                    round_gain += note("global_swap", acc, gain)
                if cfg.vertical_swap:
                    with tracer.span("vertical_swap"):
                        acc, gain = vertical_swap_pass(design, inc, gate=gate)
                    round_gain += note("vertical_swap", acc, gain)
                if cfg.local_reorder:
                    # Swap passes move cells between rows; refresh membership.
                    with tracer.span("local_reorder"):
                        submap.rebuild_cells(design)
                        acc, gain = local_reorder_pass(
                            design, inc, submap, window=cfg.reorder_window
                        )
                    round_gain += note("local_reorder", acc, gain)
                if cfg.matching:
                    with tracer.span("matching"):
                        acc, gain = matching_pass(
                            design, inc, batch_size=cfg.matching_batch, gate=gate
                        )
                    round_gain += note("matching", acc, gain)
            if round_gain < cfg.min_gain_per_round * max(report.hpwl_before, 1.0):
                break
        if (
            cfg.congestion_aware
            and cfg.congestion_spread
            and design.routing is not None
            and not report.budget_exhausted
        ):
            from repro.dp.spreading import congestion_spread_pass

            with tracer.span("congestion_spread"):
                moves, delta = congestion_spread_pass(
                    design,
                    submap,
                    inc,
                    threshold=cfg.spread_threshold,
                    max_moves=cfg.spread_max_moves,
                )
            note("congestion_spread", moves, -delta)
        report.hpwl_after = design.hpwl()
        report.runtime_seconds = time.perf_counter() - t0
        return report

    def _make_gate(self, design, *, reference: bool = False):
        """Reject moves whose destination tile is congested (estimated)."""
        if design.routing is None:
            return None
        grid = design.routing.grid
        arrays = design.pin_arrays()
        cx, cy = design.pull_centers()
        demand = rudy_map(arrays, cx, cy, grid)
        supply = (
            design.routing.hcap * grid.bin_h + design.routing.vcap * grid.bin_w
        ) / grid.bin_area
        with np.errstate(divide="ignore", invalid="ignore"):
            cong = np.where(supply > 0, demand / np.maximum(supply, 1e-12), 0.0)
        threshold = self.config.congestion_gate_threshold

        if reference:

            def gate(moves) -> bool:
                for idx, nx, ny in moves:
                    sx, sy = grid.index_of(
                        design.nodes[idx].cx, design.nodes[idx].cy
                    )
                    dx, dy = grid.index_of(nx, ny)
                    dest = cong[int(dx), int(dy)]
                    src = cong[int(sx), int(sy)]
                    if dest > threshold and dest > src + 0.05:
                        return False
                return True

            return gate

        # Scalar tile lookup: identical arithmetic to BinGrid.index_of
        # (floor + clamp on the same float64 expressions) without the
        # per-move ndarray round trips.
        xl0 = grid.area.xl
        yl0 = grid.area.yl
        bw = grid.bin_w
        bh = grid.bin_h
        nx_hi = grid.nx - 1
        ny_hi = grid.ny - 1
        floor = math.floor
        nodes = design.nodes
        cong_list = cong.tolist()

        def gate(moves) -> bool:
            for idx, nx, ny in moves:
                node = nodes[idx]
                sx = min(max(floor((node.cx - xl0) / bw), 0), nx_hi)
                sy = min(max(floor((node.cy - yl0) / bh), 0), ny_hi)
                dx = min(max(floor((nx - xl0) / bw), 0), nx_hi)
                dy = min(max(floor((ny - yl0) / bh), 0), ny_hi)
                dest = cong_list[dx][dy]
                if dest > threshold and dest > cong_list[sx][sy] + 0.05:
                    return False
            return True

        return gate
