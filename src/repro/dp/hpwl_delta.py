"""Incremental HPWL bookkeeping for detailed placement.

Detailed placement evaluates millions of candidate moves; recomputing the
whole wirelength each time would dominate runtime.  ``IncrementalHPWL``
keeps per-net pin coordinates and bounding boxes and answers "what would
the HPWL delta be if these nodes moved to these centres" in time
proportional to the number of pins on the affected nets.

Two code paths live side by side, selected by ``reference``:

* ``reference=True`` — the original per-pin Python loops, kept as the
  golden baseline.
* the default — the same bookkeeping on the CSR node→net / node→pin
  incidence from :meth:`Design.node_incidence`, with dirty-net pin
  gathers, ``np.minimum/maximum.reduceat`` bounding boxes, and a batched
  :meth:`score_moves` that prices every candidate move set of a pass in
  one NumPy evaluation.

Both modes honour one summation contract so their results are
*bit-identical*: a delta is the sum of per-net terms
``w · ((xh'−xl') + (yh'−yl') − before)`` accumulated sequentially over
the affected nets in ascending net order.  Per-net bounds are pure
min/max reductions, which are associativity-insensitive, so the
vectorized reductions reproduce the scalar comparison loops bit for bit;
only the accumulation order of the final sum matters, and both paths fix
it the same way.
"""

from __future__ import annotations

import numpy as np


def _multi_arange(starts, counts):
    """``np.concatenate([np.arange(s, s+c) ...])`` without the Python loop.

    Every ``counts`` entry must be positive — filter zero-length segments
    before calling so the output segments stay aligned with the input.
    """
    counts = np.asarray(counts, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    if total <= 128:
        # Python range expansion beats the cumsum setup for tiny batches.
        return np.array(
            [
                i
                for s, c in zip(starts.tolist(), counts.tolist())
                for i in range(s, s + c)
            ],
            dtype=np.int64,
        )
    out = np.ones(total, dtype=np.int64)
    ends = np.cumsum(counts)
    out[0] = starts[0]
    if len(starts) > 1:
        out[ends[:-1]] = starts[1:] - (starts[:-1] + counts[:-1]) + 1
    return np.cumsum(out)


class IncrementalHPWL:
    """Maintains per-net bounding boxes under node moves."""

    def __init__(self, design, *, reference: bool = False):
        self.design = design
        self.reference = bool(reference)
        arrays = design.pin_arrays()
        self.arrays = arrays
        cx, cy = design.pull_centers()
        self.cx = cx
        self.cy = cy
        self.px = cx[arrays.pin_node] + arrays.pin_dx
        self.py = cy[arrays.pin_node] + arrays.pin_dy
        self.net_ptr = arrays.net_ptr
        self.weights = arrays.net_weight
        # Node→net / node→pin incidence from the flat pin table (never
        # from the Python pin objects, which can diverge after mutation).
        incidence = design.node_incidence()
        self._nn_ptr = incidence.node_net_ptr
        self._nn_ids = incidence.node_net_ids
        self._np_ptr = incidence.node_pin_ptr
        self._np_ids = incidence.node_pin_ids
        self.node_nets = [
            self._nn_ids[self._nn_ptr[i] : self._nn_ptr[i + 1]].tolist()
            for i in range(len(design.nodes))
        ]
        self._node_pins = [
            self._np_ids[self._np_ptr[i] : self._np_ptr[i + 1]].tolist()
            for i in range(len(design.nodes))
        ]
        self._net_deg = np.diff(self.net_ptr)
        self._deg_list = self._net_deg.tolist()
        self._pin_net = np.repeat(
            np.arange(arrays.num_nets, dtype=np.int64), self._net_deg
        )
        # Lazy per-node cache of (pins on >=2-pin nets, their offsets):
        # the dirty-pin set every scored move of that node rewrites.
        self._dirty_cache: list = [None] * len(design.nodes)
        # Cached per-net bounding boxes make the "before" side of every
        # delta O(1); they are refreshed on apply_moves.
        n = arrays.num_nets
        self._bb = np.zeros((n, 4))  # xl, xh, yl, yh
        if n:
            if self.reference:
                for net in range(n):
                    self._refresh_bbox(net)
            else:
                self._refresh_bboxes(np.arange(n, dtype=np.int64))

    # ------------------------------------------------------------------
    # bounding-box maintenance
    # ------------------------------------------------------------------
    def _refresh_bbox(self, net: int) -> None:
        start = int(self.net_ptr[net])
        stop = int(self.net_ptr[net + 1])
        if stop - start == 0:
            return
        px = self.px[start:stop]
        py = self.py[start:stop]
        self._bb[net, 0] = px.min()
        self._bb[net, 1] = px.max()
        self._bb[net, 2] = py.min()
        self._bb[net, 3] = py.max()

    def _refresh_bboxes(self, nets) -> None:
        """Vectorized bbox refresh for many nets (skips 0-pin nets)."""
        nets = np.asarray(nets, dtype=np.int64)
        if nets.size <= 8:
            # Slice min/max per net beats the reduceat setup for the
            # handful of nets a single accepted move touches.
            for net in nets.tolist():
                self._refresh_bbox(net)
            return
        deg = self._net_deg[nets]
        nets = nets[deg > 0]
        if not nets.size:
            return
        deg = self._net_deg[nets]
        pins = _multi_arange(self.net_ptr[nets], deg)
        bounds = np.zeros(len(nets), dtype=np.int64)
        np.cumsum(deg[:-1], out=bounds[1:])
        self._bb[nets, 0] = np.minimum.reduceat(self.px[pins], bounds)
        self._bb[nets, 1] = np.maximum.reduceat(self.px[pins], bounds)
        self._bb[nets, 2] = np.minimum.reduceat(self.py[pins], bounds)
        self._bb[nets, 3] = np.maximum.reduceat(self.py[pins], bounds)

    # ------------------------------------------------------------------
    def net_hpwl(self, net: int) -> float:
        if self._net_deg[net] < 2:
            return 0.0
        bb = self._bb[net]
        return float(self.weights[net] * ((bb[1] - bb[0]) + (bb[3] - bb[2])))

    def total(self) -> float:
        return float(
            sum(self.net_hpwl(n) for n in range(self.arrays.num_nets))
        )

    # ------------------------------------------------------------------
    # move pricing
    # ------------------------------------------------------------------
    def _affected_nets(self, node_indices) -> np.ndarray:
        """Sorted unique nets touching any of ``node_indices``."""
        if not len(node_indices):
            return np.empty(0, dtype=np.int64)
        if len(node_indices) == 1:
            i = node_indices[0]
            return np.asarray(
                self._nn_ids[self._nn_ptr[i] : self._nn_ptr[i + 1]],
                dtype=np.int64,
            )
        # Sorted set union over the per-node (already sorted, unique)
        # Python lists — same result as np.unique over the concatenated
        # CSR slices, but far cheaper for the tiny sets DP passes score.
        merged = set()
        for i in node_indices:
            merged.update(self.node_nets[i])
        return np.array(sorted(merged), dtype=np.int64)

    def _dirty_of(self, idx: int):
        """``idx``'s pins on >=2-pin nets, with their offsets (cached).

        Within any scored pin segment whose nets include all of ``idx``'s
        >=2-pin nets, exactly these pins take new coordinates when ``idx``
        moves.
        """
        got = self._dirty_cache[idx]
        if got is None:
            ids = self._np_ids[self._np_ptr[idx] : self._np_ptr[idx + 1]]
            if ids.size:
                ids = ids[self._net_deg[self._pin_net[ids]] >= 2]
            got = self._dirty_cache[idx] = (
                ids,
                self.arrays.pin_dx[ids],
                self.arrays.pin_dy[ids],
            )
        return got

    def delta_for_moves(self, moves) -> float:
        """HPWL change if each ``(node_index, new_cx, new_cy)`` applied.

        Evaluates affected nets exactly (handles several nodes on one
        net).  Does not mutate state.
        """
        if self.reference:
            return self._delta_for_moves_reference(moves)
        if not moves:
            return 0.0
        nets = self._affected_nets([idx for idx, _, _ in moves])
        nets = nets[self._net_deg[nets] >= 2]
        if not nets.size:
            return 0.0
        deg = self._net_deg[nets]
        pins = _multi_arange(self.net_ptr[nets], deg)
        bpx = self.px[pins]
        bpy = self.py[pins]
        for idx, nx, ny in moves:
            # ``pins`` is strictly increasing (ranges of ascending nets)
            # and covers every >=2-pin net of the moved nodes.
            dirty, ddx, ddy = self._dirty_of(idx)
            if dirty.size:
                pos = pins.searchsorted(dirty)
                bpx[pos] = nx + ddx
                bpy[pos] = ny + ddy
        bounds = np.zeros(len(nets), dtype=np.int64)
        np.cumsum(deg[:-1], out=bounds[1:])
        xl = np.minimum.reduceat(bpx, bounds)
        xh = np.maximum.reduceat(bpx, bounds)
        yl = np.minimum.reduceat(bpy, bounds)
        yh = np.maximum.reduceat(bpy, bounds)
        bb = self._bb[nets]
        before = (bb[:, 1] - bb[:, 0]) + (bb[:, 3] - bb[:, 2])
        terms = self.weights[nets] * (((xh - xl) + (yh - yl)) - before)
        delta = 0.0
        for t in terms.tolist():  # sequential, ascending net order
            delta += t
        return float(delta)

    def _delta_for_moves_reference(self, moves) -> float:
        nets = {n for idx, _, _ in moves for n in self.node_nets[idx]}
        new_pos = {idx: (nx, ny) for idx, nx, ny in moves}
        pin_node = self.arrays.pin_node
        pin_dx = self.arrays.pin_dx
        pin_dy = self.arrays.pin_dy
        delta = 0.0
        for n in sorted(nets):  # ascending net order: the summation contract
            start = int(self.net_ptr[n])
            stop = int(self.net_ptr[n + 1])
            if stop - start < 2:
                continue
            bb = self._bb[n]
            before = (bb[1] - bb[0]) + (bb[3] - bb[2])
            xl = xh = yl = yh = None
            for k in range(start, stop):
                nd = int(pin_node[k])
                pos = new_pos.get(nd)
                if pos is None:
                    x = self.px[k]
                    y = self.py[k]
                else:
                    x = pos[0] + pin_dx[k]
                    y = pos[1] + pin_dy[k]
                if xl is None:
                    xl = xh = x
                    yl = yh = y
                else:
                    if x < xl:
                        xl = x
                    elif x > xh:
                        xh = x
                    if y < yl:
                        yl = y
                    elif y > yh:
                        yh = y
            delta += self.weights[n] * ((xh - xl) + (yh - yl) - before)
        return float(delta)

    def score_moves(self, move_sets) -> np.ndarray:
        """Batched :meth:`delta_for_moves` over many candidate move sets.

        ``move_sets`` is a sequence of move lists; the result is one
        delta per set, bit-identical to pricing each set on its own.
        Nothing is mutated, so callers may score speculative candidates
        freely and apply only the winner.
        """
        if self.reference:
            return np.array(
                [self.delta_for_moves(ms) for ms in move_sets], dtype=float
            )
        n_sets = len(move_sets)
        if n_sets == 0:
            return np.zeros(0)
        if n_sets > 1 and all(len(ms) == 1 for ms in move_sets):
            first = move_sets[0][0][0]
            if all(ms[0][0] == first for ms in move_sets):
                return self._score_single_node(
                    first,
                    [(ms[0][1], ms[0][2]) for ms in move_sets],
                )
        return self._score_general(move_sets)

    def _score_single_node(self, idx: int, targets) -> np.ndarray:
        """All candidate targets of one node, priced in one sweep.

        Per affected net we pre-reduce the *other* pins' extremes and the
        node's own pin-offset extremes; each target's bounds are then two
        min/max ops per axis instead of a pin rescan.  Exact because
        rounding is monotone: ``min_k fl(tx+dx_k) == fl(tx + min_k dx_k)``.
        """
        nets = self._affected_nets([idx])
        nets = nets[self._net_deg[nets] >= 2]
        n_t = len(targets)
        if not nets.size:
            return np.zeros(n_t)
        deg = self._net_deg[nets]
        pins = _multi_arange(self.net_ptr[nets], deg)
        gnode = self.arrays.pin_node[pins]
        own = gnode == idx
        bounds = np.zeros(len(nets), dtype=np.int64)
        np.cumsum(deg[:-1], out=bounds[1:])
        inf = np.inf
        px = self.px[pins]
        py = self.py[pins]
        oth_xl = np.minimum.reduceat(np.where(own, inf, px), bounds)
        oth_xh = np.maximum.reduceat(np.where(own, -inf, px), bounds)
        oth_yl = np.minimum.reduceat(np.where(own, inf, py), bounds)
        oth_yh = np.maximum.reduceat(np.where(own, -inf, py), bounds)
        dx = self.arrays.pin_dx[pins]
        dy = self.arrays.pin_dy[pins]
        own_dx_lo = np.minimum.reduceat(np.where(own, dx, inf), bounds)
        own_dx_hi = np.maximum.reduceat(np.where(own, dx, -inf), bounds)
        own_dy_lo = np.minimum.reduceat(np.where(own, dy, inf), bounds)
        own_dy_hi = np.maximum.reduceat(np.where(own, dy, -inf), bounds)
        tx = np.array([t[0] for t in targets], dtype=float)[:, None]
        ty = np.array([t[1] for t in targets], dtype=float)[:, None]
        xl = np.minimum(oth_xl[None, :], tx + own_dx_lo[None, :])
        xh = np.maximum(oth_xh[None, :], tx + own_dx_hi[None, :])
        yl = np.minimum(oth_yl[None, :], ty + own_dy_lo[None, :])
        yh = np.maximum(oth_yh[None, :], ty + own_dy_hi[None, :])
        bb = self._bb[nets]
        before = (bb[:, 1] - bb[:, 0]) + (bb[:, 3] - bb[:, 2])
        terms = self.weights[nets][None, :] * (
            ((xh - xl) + (yh - yl)) - before[None, :]
        )
        out = np.zeros(n_t)
        for j in range(len(nets)):  # sequential, ascending net order
            out = out + terms[:, j]
        return out

    def _score_general(self, move_sets) -> np.ndarray:
        n_sets = len(move_sets)
        deg_list = self._deg_list
        node_nets = self.node_nets
        # Per-set affected nets (sorted, >= 2 pins) via Python set unions
        # of the per-node net lists — the sets are tiny, so this beats
        # the array machinery by a wide margin.
        nets_lists = []
        for ms in move_sets:
            if len(ms) == 1:
                merged = node_nets[ms[0][0]]
            else:
                u = set()
                for idx, _, _ in ms:
                    u.update(node_nets[idx])
                merged = sorted(u)
            nets_lists.append([n for n in merged if deg_list[n] >= 2])
        counts = [len(l) for l in nets_lists]
        if not any(counts):
            return np.zeros(n_sets)
        nets_all = np.array(
            [n for l in nets_lists for n in l], dtype=np.int64
        )
        deg = self._net_deg[nets_all]
        pins = _multi_arange(self.net_ptr[nets_all], deg)
        bpx = self.px[pins]
        bpy = self.py[pins]
        # Net → pin segment starts.  Each set's pins are one contiguous,
        # strictly increasing slice (ranges of ascending nets), so a
        # moved node's dirty pins — all its >=2-pin-net pins, which the
        # set's net union necessarily covers — locate by searchsorted.
        pin_cum = np.zeros(len(nets_all) + 1, dtype=np.int64)
        np.cumsum(deg, out=pin_cum[1:])
        net_pos = 0
        for s, ms in enumerate(move_sets):
            c = counts[s]
            if not c:
                continue
            a = int(pin_cum[net_pos])
            b = int(pin_cum[net_pos + c])
            net_pos += c
            seg = pins[a:b]
            for idx, nx, ny in ms:
                dirty, ddx, ddy = self._dirty_of(idx)
                if dirty.size:
                    pos = a + seg.searchsorted(dirty)
                    bpx[pos] = nx + ddx
                    bpy[pos] = ny + ddy
        bounds = pin_cum[:-1]
        xl = np.minimum.reduceat(bpx, bounds)
        xh = np.maximum.reduceat(bpx, bounds)
        yl = np.minimum.reduceat(bpy, bounds)
        yh = np.maximum.reduceat(bpy, bounds)
        bb = self._bb[nets_all]
        before = (bb[:, 1] - bb[:, 0]) + (bb[:, 3] - bb[:, 2])
        terms = (
            self.weights[nets_all] * (((xh - xl) + (yh - yl)) - before)
        ).tolist()
        # Sequential per-set accumulation in ascending net order: nets of
        # one set are contiguous and sorted, so a linear walk suffices.
        out = [0.0] * n_sets
        net_pos = 0
        for s in range(n_sets):
            acc = 0.0
            for j in range(net_pos, net_pos + counts[s]):
                acc += terms[j]
            out[s] = acc
            net_pos += counts[s]
        return np.array(out)

    # ------------------------------------------------------------------
    def apply_moves(self, moves) -> None:
        """Commit moves: update cached coordinates and the design nodes."""
        if self.reference:
            self._apply_moves_reference(moves)
            return
        if not moves:
            return
        # Commit lists are tiny (1-3 moves), so per-pin scalar writes and
        # per-net slice refreshes beat array temporaries.  The float64
        # expressions match the reference update exactly.
        pin_dx = self.arrays.pin_dx
        pin_dy = self.arrays.pin_dy
        px = self.px
        py = self.py
        for idx, ncx, ncy in moves:
            node = self.design.nodes[idx]
            node.move_center_to(ncx, ncy)
            self.cx[idx] = ncx
            self.cy[idx] = ncy
            for k in self._node_pins[idx]:
                px[k] = ncx + pin_dx[k]
                py[k] = ncy + pin_dy[k]
        if len(moves) == 1:
            for n in self.node_nets[moves[0][0]]:
                self._refresh_bbox(n)
        else:
            self._refresh_bboxes(
                self._affected_nets([idx for idx, _, _ in moves])
            )

    def _apply_moves_reference(self, moves) -> None:
        for idx, ncx, ncy in moves:
            node = self.design.nodes[idx]
            node.move_center_to(ncx, ncy)
            self.cx[idx] = ncx
            self.cy[idx] = ncy
        pin_node = self.arrays.pin_node
        nets = sorted({n for idx, _, _ in moves for n in self.node_nets[idx]})
        moved = {idx for idx, _, _ in moves}
        for n in nets:
            start = int(self.net_ptr[n])
            stop = int(self.net_ptr[n + 1])
            for k in range(start, stop):
                nd = int(pin_node[k])
                if nd in moved:
                    self.px[k] = self.cx[nd] + self.arrays.pin_dx[k]
                    self.py[k] = self.cy[nd] + self.arrays.pin_dy[k]
            self._refresh_bbox(n)

    # ------------------------------------------------------------------
    def optimal_region(self, idx: int):
        """The median window of ``idx``'s nets — the classic optimal
        region a cell would move to if nets were the only force.

        Returns ``(x_lo, x_hi, y_lo, y_hi)`` from the medians of the other
        pins' bounding coordinates, or ``None`` for unconnected cells.
        """
        xs_lo, xs_hi, ys_lo, ys_hi = [], [], [], []
        for n in self.node_nets[idx]:
            start = int(self.net_ptr[n])
            stop = int(self.net_ptr[n + 1])
            nodes = self.arrays.pin_node[start:stop]
            mask = nodes != idx
            if not mask.any():
                continue
            px = self.px[start:stop][mask]
            py = self.py[start:stop][mask]
            xs_lo.append(px.min())
            xs_hi.append(px.max())
            ys_lo.append(py.min())
            ys_hi.append(py.max())
        if not xs_lo:
            return None
        return (
            float(np.median(xs_lo)),
            float(np.median(xs_hi)),
            float(np.median(ys_lo)),
            float(np.median(ys_hi)),
        )

    def optimal_regions(self, cells) -> dict:
        """Median windows for many cells at once.

        Returns ``{node_index: region-or-None}`` for every index in
        ``cells``.  The batched path masks each cell's own pins to ±inf,
        reduces other-pin extremes per (cell, net) pair with ``reduceat``,
        and takes group medians by sorting within cell segments — all
        bit-identical to calling :meth:`optimal_region` per cell, which is
        exactly what reference mode does.
        """
        cells = [int(c) for c in cells]
        if self.reference or len(cells) <= 1:
            return {c: self.optimal_region(c) for c in cells}
        cells_arr = np.asarray(cells, dtype=np.int64)
        nn_counts = self._nn_ptr[cells_arr + 1] - self._nn_ptr[cells_arr]
        has_nets = nn_counts > 0
        out = {c: None for c in cells}
        if not has_nets.any():
            return out
        pos_with = np.flatnonzero(has_nets)
        pair_pos = np.repeat(pos_with, nn_counts[pos_with])
        pair_nets = self._nn_ids[
            _multi_arange(self._nn_ptr[cells_arr[pos_with]], nn_counts[pos_with])
        ].astype(np.int64)
        deg = self._net_deg[pair_nets]
        exp_pins = _multi_arange(self.net_ptr[pair_nets], deg)
        exp_pair = np.repeat(np.arange(len(pair_nets)), deg)
        self_mask = (
            self.arrays.pin_node[exp_pins] == cells_arr[pair_pos][exp_pair]
        )
        vx = self.px[exp_pins]
        vy = self.py[exp_pins]
        bounds = np.zeros(len(pair_nets), dtype=np.int64)
        np.cumsum(deg[:-1], out=bounds[1:])
        inf = np.inf
        p_xl = np.minimum.reduceat(np.where(self_mask, inf, vx), bounds)
        p_xh = np.maximum.reduceat(np.where(self_mask, -inf, vx), bounds)
        p_yl = np.minimum.reduceat(np.where(self_mask, inf, vy), bounds)
        p_yh = np.maximum.reduceat(np.where(self_mask, -inf, vy), bounds)
        valid = np.isfinite(p_xl)  # nets whose pins are all on the cell drop
        if not valid.any():
            return out
        vcell = pair_pos[valid]
        counts = np.bincount(vcell, minlength=len(cells))
        starts = np.zeros(len(cells), dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        lo = starts + (counts - 1) // 2
        hi = starts + counts // 2
        nonzero = counts > 0
        lo_nz = lo[nonzero]
        hi_nz = hi[nonzero]

        def _group_median(vals):
            sv = vals[np.lexsort((vals, vcell))]
            # (a+b)/2 of the two middle order statistics == np.median.
            return (sv[lo_nz] + sv[hi_nz]) / 2.0

        med_xl = _group_median(p_xl[valid])
        med_xh = _group_median(p_xh[valid])
        med_yl = _group_median(p_yl[valid])
        med_yh = _group_median(p_yh[valid])
        for j, pos in enumerate(np.flatnonzero(nonzero).tolist()):
            out[cells[pos]] = (
                float(med_xl[j]),
                float(med_xh[j]),
                float(med_yl[j]),
                float(med_yh[j]),
            )
        return out
