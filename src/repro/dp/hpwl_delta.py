"""Incremental HPWL bookkeeping for detailed placement.

Detailed placement evaluates millions of candidate moves; recomputing the
whole wirelength each time would dominate runtime.  ``IncrementalHPWL``
keeps per-net pin coordinates and bounding boxes and answers "what would
the HPWL delta be if these nodes moved to these centres" in time
proportional to the number of pins on the affected nets.
"""

from __future__ import annotations

import numpy as np


class IncrementalHPWL:
    """Maintains per-net bounding boxes under node moves."""

    def __init__(self, design):
        self.design = design
        arrays = design.pin_arrays()
        self.arrays = arrays
        cx, cy = design.pull_centers()
        self.cx = cx
        self.cy = cy
        self.px = cx[arrays.pin_node] + arrays.pin_dx
        self.py = cy[arrays.pin_node] + arrays.pin_dy
        self.net_ptr = arrays.net_ptr
        self.weights = arrays.net_weight
        # nets touching each node
        self.node_nets = [sorted({p.net for p in n.pins}) for n in design.nodes]
        self._net_pin_slices = [
            slice(int(self.net_ptr[i]), int(self.net_ptr[i + 1]))
            for i in range(arrays.num_nets)
        ]
        # Cached per-net bounding boxes make the "before" side of every
        # delta O(1); they are refreshed on apply_moves.
        n = arrays.num_nets
        self._bb = np.zeros((n, 4))  # xl, xh, yl, yh
        for net in range(n):
            self._refresh_bbox(net)

    def _refresh_bbox(self, net: int) -> None:
        sl = self._net_pin_slices[net]
        if sl.stop - sl.start == 0:
            return
        px = self.px[sl]
        py = self.py[sl]
        self._bb[net, 0] = px.min()
        self._bb[net, 1] = px.max()
        self._bb[net, 2] = py.min()
        self._bb[net, 3] = py.max()

    # ------------------------------------------------------------------
    def net_hpwl(self, net: int) -> float:
        sl = self._net_pin_slices[net]
        if sl.stop - sl.start < 2:
            return 0.0
        bb = self._bb[net]
        return float(self.weights[net] * ((bb[1] - bb[0]) + (bb[3] - bb[2])))

    def total(self) -> float:
        return float(
            sum(self.net_hpwl(n) for n in range(self.arrays.num_nets))
        )

    def delta_for_moves(self, moves) -> float:
        """HPWL change if each ``(node_index, new_cx, new_cy)`` applied.

        Evaluates affected nets exactly (handles several nodes on one
        net).  Does not mutate state.
        """
        nets = {n for idx, _, _ in moves for n in self.node_nets[idx]}
        new_pos = {idx: (nx, ny) for idx, nx, ny in moves}
        pin_node = self.arrays.pin_node
        pin_dx = self.arrays.pin_dx
        pin_dy = self.arrays.pin_dy
        delta = 0.0
        for n in nets:
            sl = self._net_pin_slices[n]
            count = sl.stop - sl.start
            if count < 2:
                continue
            bb = self._bb[n]
            before = (bb[1] - bb[0]) + (bb[3] - bb[2])
            xl = xh = yl = yh = None
            for k in range(sl.start, sl.stop):
                nd = int(pin_node[k])
                pos = new_pos.get(nd)
                if pos is None:
                    x = self.px[k]
                    y = self.py[k]
                else:
                    x = pos[0] + pin_dx[k]
                    y = pos[1] + pin_dy[k]
                if xl is None:
                    xl = xh = x
                    yl = yh = y
                else:
                    if x < xl:
                        xl = x
                    elif x > xh:
                        xh = x
                    if y < yl:
                        yl = y
                    elif y > yh:
                        yh = y
            delta += self.weights[n] * ((xh - xl) + (yh - yl) - before)
        return float(delta)

    def apply_moves(self, moves) -> None:
        """Commit moves: update cached coordinates and the design nodes."""
        for idx, ncx, ncy in moves:
            node = self.design.nodes[idx]
            node.move_center_to(ncx, ncy)
            self.cx[idx] = ncx
            self.cy[idx] = ncy
        pin_node = self.arrays.pin_node
        nets = sorted({n for idx, _, _ in moves for n in self.node_nets[idx]})
        moved = {idx for idx, _, _ in moves}
        for n in nets:
            sl = self._net_pin_slices[n]
            nodes = pin_node[sl]
            for k, nd in enumerate(nodes):
                nd = int(nd)
                if nd in moved:
                    self.px[sl.start + k] = self.cx[nd] + self.arrays.pin_dx[sl.start + k]
                    self.py[sl.start + k] = self.cy[nd] + self.arrays.pin_dy[sl.start + k]
            self._refresh_bbox(n)

    def optimal_region(self, idx: int):
        """The median window of ``idx``'s nets — the classic optimal
        region a cell would move to if nets were the only force.

        Returns ``(x_lo, x_hi, y_lo, y_hi)`` from the medians of the other
        pins' bounding coordinates, or ``None`` for unconnected cells.
        """
        xs_lo, xs_hi, ys_lo, ys_hi = [], [], [], []
        for n in self.node_nets[idx]:
            sl = self._net_pin_slices[n]
            nodes = self.arrays.pin_node[sl]
            mask = nodes != idx
            if not mask.any():
                continue
            px = self.px[sl][mask]
            py = self.py[sl][mask]
            xs_lo.append(px.min())
            xs_hi.append(px.max())
            ys_lo.append(py.min())
            ys_hi.append(py.max())
        if not xs_lo:
            return None
        return (
            float(np.median(xs_lo)),
            float(np.median(xs_hi)),
            float(np.median(ys_lo)),
            float(np.median(ys_hi)),
        )
