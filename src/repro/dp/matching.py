"""Independent-set matching: exact batch re-assignment of equal cells.

Classic NTUplace detailed-placement move: collect a *net-independent* set
of same-footprint cells (no two share a net, so their HPWL contributions
are separable), build the cost matrix of every cell in every member's
slot, and solve the assignment exactly (Hungarian via SciPy).  The
result can only improve HPWL, by optimality of the assignment.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.db import NodeKind
from repro.dp.hpwl_delta import IncrementalHPWL


def _independent_batches(design, inc, cells, batch_size: int):
    """Greedy partition into net-independent batches of equal footprint."""
    by_key = {}
    site = design.site_width
    for idx in cells:
        node = design.nodes[idx]
        # Exact integer site-width key (matches _SlotIndex bucketing).
        key = (round(node.placed_width / site), node.region)
        by_key.setdefault(key, []).append(idx)
    for key, group in by_key.items():
        used_nets = set()
        batch = []
        for idx in group:
            nets = inc.node_nets[idx]
            if any(n in used_nets for n in nets):
                continue
            batch.append(idx)
            used_nets.update(nets)
            if len(batch) == batch_size:
                yield batch
                batch = []
                used_nets = set()
        if len(batch) >= 2:
            yield batch


def matching_pass(
    design, inc: IncrementalHPWL, *, batch_size: int = 24, gate=None
) -> tuple:
    """One matching pass; returns ``(#cells moved, HPWL gain)``."""
    cells = [
        n.index
        for n in design.nodes
        if n.is_movable and n.kind is NodeKind.CELL
    ]
    moved = 0
    gain = 0.0
    for batch in _independent_batches(design, inc, cells, batch_size):
        slots = [
            (design.nodes[i].cx, design.nodes[i].cy) for i in batch
        ]
        k = len(batch)
        cost = np.zeros((k, k))
        for a in range(k):
            # All of cell a's candidate slots priced in one batched call
            # (the diagonal stays 0, as the scalar loop left it).
            others = [b for b in range(k) if b != a]
            row = inc.score_moves(
                [[(batch[a], slots[b][0], slots[b][1])] for b in others]
            )
            cost[a, others] = row
        rows, cols = linear_sum_assignment(cost)
        moves = [
            (batch[a], slots[b][0], slots[b][1])
            for a, b in zip(rows, cols)
            if a != b
        ]
        if not moves:
            continue
        if gate is not None and not gate(moves):
            continue
        # Verify the combined move actually helps (independence makes the
        # per-cell sum exact, but cheap paranoia beats silent regressions).
        delta = inc.delta_for_moves(moves)
        if delta < -1e-9:
            inc.apply_moves(moves)
            moved += len(moves)
            gain -= delta
    return moved, gain
