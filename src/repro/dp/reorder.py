"""Local reordering: optimal permutation of small windows within a sub-row."""

from __future__ import annotations

from itertools import permutations

from repro.dp.hpwl_delta import IncrementalHPWL


def local_reorder_pass(
    design, inc: IncrementalHPWL, submap, *, window: int = 3
) -> tuple:
    """Slide a ``window``-cell window along every sub-row, trying all
    orders of the windowed cells (packed left, preserving total span).

    Returns ``(#accepted, HPWL gain)``.  Legality is preserved: the
    permuted cells are repacked from the window's original left edge and
    their total width is unchanged.
    """
    accepted = 0
    gain = 0.0
    for sr in submap.subrows:
        ids = sorted(sr.cells, key=lambda i: design.nodes[i].x)
        sr.cells = ids
        if len(ids) < 2:
            continue
        for start in range(0, len(ids) - 1):
            group = ids[start : start + window]
            if len(group) < 2:
                continue
            nodes = [design.nodes[i] for i in group]
            left = min(n.x for n in nodes)
            move_sets = []
            for perm in permutations(group):
                if list(perm) == group:
                    continue
                x = left
                moves = []
                for i in perm:
                    node = design.nodes[i]
                    moves.append(
                        (i, x + node.placed_width / 2.0, node.y + node.placed_height / 2.0)
                    )
                    x += node.placed_width
                move_sets.append(moves)
            # One batched pricing of every non-identity permutation; the
            # winner selection walks them in generation order, exactly as
            # the one-at-a-time loop did.
            deltas = inc.score_moves(move_sets)
            best_delta = 0.0
            best_moves = None
            for moves, delta in zip(move_sets, deltas):
                delta = float(delta)
                if delta < best_delta - 1e-9:
                    best_delta = delta
                    best_moves = moves
            if best_moves is not None:
                inc.apply_moves(best_moves)
                accepted += 1
                gain -= best_delta
                # Keep the order list consistent with new x positions.
                ids[start : start + window] = sorted(
                    group, key=lambda i: design.nodes[i].x
                )
        sr.cells = sorted(ids, key=lambda i: design.nodes[i].x)
    return accepted, gain
