"""Congestion-driven cell spreading (post-legalization refinement).

The last routability lever in the flow: after legalization, cells
sitting in tiles whose estimated congestion exceeds a threshold are
evacuated into nearby whitespace in cooler tiles, preserving legality
exactly (cells move into verified sub-row gaps).  HPWL is allowed to
degrade by a bounded amount per move — trading wirelength for
routability is the point.

Two code paths live side by side, selected by ``inc.reference``: the
original per-object scan (kept verbatim as the golden baseline) and a
hot path that caches sub-row free intervals (invalidated only for the
two sub-rows an accepted move touches), resolves each cell's owning
sub-row through per-sub-row membership sets, and maps coordinates to
congestion tiles with scalar arithmetic instead of ndarray round trips.
Both paths visit candidates in the same order and compare with the same
scalar semantics, so the chosen moves are bit-identical.
"""

from __future__ import annotations

import math

import numpy as np

from repro.db import NodeKind
from repro.route.rudy import rudy_map


def _free_intervals(design, sr):
    """Maximal free intervals of a sub-row, from its current cells."""
    cells = sorted(sr.cells, key=lambda i: design.nodes[i].x)
    out = []
    cursor = sr.x_min
    for idx in cells:
        node = design.nodes[idx]
        if node.x > cursor + 1e-9:
            out.append((cursor, node.x))
        cursor = max(cursor, node.x + node.placed_width)
    if cursor < sr.x_max - 1e-9:
        out.append((cursor, sr.x_max))
    return out


def congestion_spread_pass(
    design,
    submap,
    inc=None,
    *,
    threshold: float = 0.9,
    max_moves: int = 200,
    max_distance: float | None = None,
    hpwl_slack: float = 0.002,
) -> tuple:
    """Move cells out of congested tiles into cool whitespace.

    Returns ``(moves_made, hpwl_delta)``.  ``hpwl_slack`` bounds the
    acceptable HPWL increase per move as a fraction of total HPWL.
    ``inc`` is an optional shared :class:`~repro.dp.IncrementalHPWL`.
    """
    if design.routing is None:
        return 0, 0.0
    from repro.dp.hpwl_delta import IncrementalHPWL

    if inc is None:
        inc = IncrementalHPWL(design)
    if inc.reference:
        return _spread_reference(
            design,
            submap,
            inc,
            threshold=threshold,
            max_moves=max_moves,
            max_distance=max_distance,
            hpwl_slack=hpwl_slack,
        )
    grid = design.routing.grid
    arrays = design.pin_arrays()
    cx, cy = design.pull_centers()
    demand = rudy_map(arrays, cx, cy, grid)
    supply = (
        design.routing.hcap * grid.bin_h + design.routing.vcap * grid.bin_w
    ) / grid.bin_area
    with np.errstate(divide="ignore", invalid="ignore"):
        cong = np.where(supply > 0, demand / np.maximum(supply, 1e-12), 0.0)

    if max_distance is None:
        max_distance = 0.25 * max(design.core.width, design.core.height)
    hpwl_budget = hpwl_slack * max(design.hpwl(), 1.0)

    submap.rebuild_cells(design)

    # Scalar tile lookup: same floor + clamp arithmetic as
    # BinGrid.index_of, minus the ndarray round trips.
    xl0 = grid.area.xl
    yl0 = grid.area.yl
    bw = grid.bin_w
    bh = grid.bin_h
    nx_hi = grid.nx - 1
    ny_hi = grid.ny - 1
    floor = math.floor
    cong_list = cong.tolist()

    def tile_cong(x, y) -> float:
        ix = min(max(floor((x - xl0) / bw), 0), nx_hi)
        iy = min(max(floor((y - yl0) / bh), 0), ny_hi)
        return cong_list[ix][iy]

    # Hot cells, hottest tiles first, low pin count first (cheap to move).
    hot_cells = []
    for node in design.nodes:
        if not node.is_movable or node.kind is not NodeKind.CELL:
            continue
        c = tile_cong(node.cx, node.cy)
        if c > threshold:
            hot_cells.append((-c, len(node.pins), node.index))
    hot_cells.sort()

    # O(1) membership per sub-row replaces the `idx in sr.cells` list
    # scans; the lookup order over the region's sub-rows is unchanged.
    member_sets: dict = {}

    def members_of(sr):
        key = id(sr)
        got = member_sets.get(key)
        if got is None:
            got = member_sets[key] = set(sr.cells)
        return got

    # Free intervals are recomputed only for the two sub-rows an accepted
    # move touches; every other row's gaps are provably unchanged.
    interval_cache: dict = {}

    def intervals_of(sr):
        key = id(sr)
        got = interval_cache.get(key)
        if got is None:
            got = interval_cache[key] = _free_intervals(design, sr)
        return got

    cool = threshold * 0.9
    moves = 0
    total_delta = 0.0
    for _, _, idx in hot_cells:
        if moves >= max_moves:
            break
        node = design.nodes[idx]
        src_sr = None
        for sr in submap.for_region(node.region):
            if idx in members_of(sr):
                src_sr = sr
                break
        if src_sr is None:
            continue
        nx0 = node.x
        ny0 = node.y
        ncx0 = node.cx
        ncy0 = node.cy
        pw = node.placed_width
        ph = node.placed_height
        best = None
        best_cost = float("inf")
        for sr in submap.for_region(node.region):
            if abs(sr.y - ny0) > max_distance:
                continue
            for lo, hi in intervals_of(sr):
                if hi - lo < pw - 1e-9:
                    continue
                # Candidate x nearest to the cell inside the gap.
                x = min(max(nx0, lo), hi - pw)
                x = sr.snap_x(x, pw)
                if x < lo - 1e-9 or x + pw > hi + 1e-9:
                    continue
                ncx = x + pw / 2.0
                ncy = sr.y + ph / 2.0
                if tile_cong(ncx, ncy) > cool:
                    continue  # destination must actually be cooler
                dist = abs(ncx - ncx0) + abs(ncy - ncy0)
                if dist > max_distance or dist < 1e-9:
                    continue
                if dist < best_cost:
                    best_cost = dist
                    best = (sr, x, ncx, ncy)
        if best is None:
            continue
        sr, x, ncx, ncy = best
        delta = inc.delta_for_moves([(idx, ncx, ncy)])
        if delta > hpwl_budget:
            continue
        inc.apply_moves([(idx, ncx, ncy)])
        src_sr.cells.remove(idx)
        members_of(src_sr).discard(idx)
        sr.cells.append(idx)
        members_of(sr).add(idx)
        interval_cache.pop(id(src_sr), None)
        interval_cache.pop(id(sr), None)
        moves += 1
        total_delta += delta
    return moves, total_delta


def _spread_reference(
    design,
    submap,
    inc,
    *,
    threshold: float,
    max_moves: int,
    max_distance: float | None,
    hpwl_slack: float,
) -> tuple:
    """The original per-object spreading loop (golden baseline)."""
    grid = design.routing.grid
    arrays = design.pin_arrays()
    cx, cy = design.pull_centers()
    demand = rudy_map(arrays, cx, cy, grid)
    supply = (
        design.routing.hcap * grid.bin_h + design.routing.vcap * grid.bin_w
    ) / grid.bin_area
    with np.errstate(divide="ignore", invalid="ignore"):
        cong = np.where(supply > 0, demand / np.maximum(supply, 1e-12), 0.0)

    if max_distance is None:
        max_distance = 0.25 * max(design.core.width, design.core.height)
    hpwl_budget = hpwl_slack * max(design.hpwl(), 1.0)

    submap.rebuild_cells(design)

    def tile_of(x, y):
        ix, iy = grid.index_of(x, y)
        return int(ix), int(iy)

    # Hot cells, hottest tiles first, low pin count first (cheap to move).
    hot_cells = []
    for node in design.nodes:
        if not node.is_movable or node.kind is not NodeKind.CELL:
            continue
        ix, iy = tile_of(node.cx, node.cy)
        if cong[ix, iy] > threshold:
            hot_cells.append((-cong[ix, iy], len(node.pins), node.index))
    hot_cells.sort()

    moves = 0
    total_delta = 0.0
    for _, _, idx in hot_cells:
        if moves >= max_moves:
            break
        node = design.nodes[idx]
        src_sr = None
        for sr in submap.for_region(node.region):
            if idx in sr.cells:
                src_sr = sr
                break
        if src_sr is None:
            continue
        best = None
        best_cost = float("inf")
        for sr in submap.for_region(node.region):
            if abs(sr.y - node.y) > max_distance:
                continue
            for lo, hi in _free_intervals(design, sr):
                if hi - lo < node.placed_width - 1e-9:
                    continue
                # Candidate x nearest to the cell inside the gap.
                x = min(max(node.x, lo), hi - node.placed_width)
                x = sr.snap_x(x, node.placed_width)
                if x < lo - 1e-9 or x + node.placed_width > hi + 1e-9:
                    continue
                ncx = x + node.placed_width / 2.0
                ncy = sr.y + node.placed_height / 2.0
                tix, tiy = tile_of(ncx, ncy)
                if cong[tix, tiy] > threshold * 0.9:
                    continue  # destination must actually be cooler
                dist = abs(ncx - node.cx) + abs(ncy - node.cy)
                if dist > max_distance or dist < 1e-9:
                    continue
                if dist < best_cost:
                    best_cost = dist
                    best = (sr, x, ncx, ncy)
        if best is None:
            continue
        sr, x, ncx, ncy = best
        delta = inc.delta_for_moves([(idx, ncx, ncy)])
        if delta > hpwl_budget:
            continue
        inc.apply_moves([(idx, ncx, ncy)])
        src_sr.cells.remove(idx)
        sr.cells.append(idx)
        moves += 1
        total_delta += delta
    return moves, total_delta
