"""Congestion-driven cell spreading (post-legalization refinement).

The last routability lever in the flow: after legalization, cells
sitting in tiles whose estimated congestion exceeds a threshold are
evacuated into nearby whitespace in cooler tiles, preserving legality
exactly (cells move into verified sub-row gaps).  HPWL is allowed to
degrade by a bounded amount per move — trading wirelength for
routability is the point.
"""

from __future__ import annotations

import numpy as np

from repro.db import NodeKind
from repro.route.rudy import rudy_map


def _free_intervals(design, sr):
    """Maximal free intervals of a sub-row, from its current cells."""
    cells = sorted(sr.cells, key=lambda i: design.nodes[i].x)
    out = []
    cursor = sr.x_min
    for idx in cells:
        node = design.nodes[idx]
        if node.x > cursor + 1e-9:
            out.append((cursor, node.x))
        cursor = max(cursor, node.x + node.placed_width)
    if cursor < sr.x_max - 1e-9:
        out.append((cursor, sr.x_max))
    return out


def congestion_spread_pass(
    design,
    submap,
    inc=None,
    *,
    threshold: float = 0.9,
    max_moves: int = 200,
    max_distance: float | None = None,
    hpwl_slack: float = 0.002,
) -> tuple:
    """Move cells out of congested tiles into cool whitespace.

    Returns ``(moves_made, hpwl_delta)``.  ``hpwl_slack`` bounds the
    acceptable HPWL increase per move as a fraction of total HPWL.
    ``inc`` is an optional shared :class:`~repro.dp.IncrementalHPWL`.
    """
    if design.routing is None:
        return 0, 0.0
    from repro.dp.hpwl_delta import IncrementalHPWL

    if inc is None:
        inc = IncrementalHPWL(design)
    grid = design.routing.grid
    arrays = design.pin_arrays()
    cx, cy = design.pull_centers()
    demand = rudy_map(arrays, cx, cy, grid)
    supply = (
        design.routing.hcap * grid.bin_h + design.routing.vcap * grid.bin_w
    ) / grid.bin_area
    with np.errstate(divide="ignore", invalid="ignore"):
        cong = np.where(supply > 0, demand / np.maximum(supply, 1e-12), 0.0)

    if max_distance is None:
        max_distance = 0.25 * max(design.core.width, design.core.height)
    hpwl_budget = hpwl_slack * max(design.hpwl(), 1.0)

    submap.rebuild_cells(design)

    def tile_of(x, y):
        ix, iy = grid.index_of(x, y)
        return int(ix), int(iy)

    # Hot cells, hottest tiles first, low pin count first (cheap to move).
    hot_cells = []
    for node in design.nodes:
        if not node.is_movable or node.kind is not NodeKind.CELL:
            continue
        ix, iy = tile_of(node.cx, node.cy)
        if cong[ix, iy] > threshold:
            hot_cells.append((-cong[ix, iy], len(node.pins), node.index))
    hot_cells.sort()

    moves = 0
    total_delta = 0.0
    for _, _, idx in hot_cells:
        if moves >= max_moves:
            break
        node = design.nodes[idx]
        src_sr = None
        for sr in submap.for_region(node.region):
            if idx in sr.cells:
                src_sr = sr
                break
        if src_sr is None:
            continue
        best = None
        best_cost = float("inf")
        for sr in submap.for_region(node.region):
            if abs(sr.y - node.y) > max_distance:
                continue
            for lo, hi in _free_intervals(design, sr):
                if hi - lo < node.placed_width - 1e-9:
                    continue
                # Candidate x nearest to the cell inside the gap.
                x = min(max(node.x, lo), hi - node.placed_width)
                x = sr.snap_x(x, node.placed_width)
                if x < lo - 1e-9 or x + node.placed_width > hi + 1e-9:
                    continue
                ncx = x + node.placed_width / 2.0
                ncy = sr.y + node.placed_height / 2.0
                tix, tiy = tile_of(ncx, ncy)
                if cong[tix, tiy] > threshold * 0.9:
                    continue  # destination must actually be cooler
                dist = abs(ncx - node.cx) + abs(ncy - node.cy)
                if dist > max_distance or dist < 1e-9:
                    continue
                if dist < best_cost:
                    best_cost = dist
                    best = (sr, x, ncx, ncy)
        if best is None:
            continue
        sr, x, ncx, ncy = best
        delta = inc.delta_for_moves([(idx, ncx, ncy)])
        if delta > hpwl_budget:
            continue
        inc.apply_moves([(idx, ncx, ncy)])
        src_sr.cells.remove(idx)
        sr.cells.append(idx)
        moves += 1
        total_delta += delta
    return moves, total_delta
