"""Global and vertical swap passes.

Each standard cell is driven toward its *optimal region* (the median box
of its nets); a same-footprint cell already sitting there is the swap
partner.  Swapping equal-width cells between their slots preserves
legality exactly, including fence domains (partners must share the fence
region id).

The sweep prices every candidate pairing of a cell in one batched
:meth:`IncrementalHPWL.score_moves` call and computes all optimal
regions at pass start (one vectorized median evaluation instead of one
per cell).  Candidate positions are read from mirror arrays refreshed
from the design after every committed swap, so scoring sees exactly what
re-reading the nodes would — bit for bit.  ``_SlotIndex`` buckets by
exact integer site-width keys (``round(placed_width / site_width)``)
rather than ``round(width, 6)`` floats, so near-equal widths can't land
in different buckets on different platforms; reference mode keeps the
original sorted-list/bisect construction, the default builds the same
ordering with one global ``np.lexsort`` and ``searchsorted`` lookups.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.db import NodeKind
from repro.dp.hpwl_delta import IncrementalHPWL


class _SlotIndex:
    """Same-footprint candidate lookup, bucketed by (width-key, region).

    Buckets are kept sorted by (cx, cy, index) at pass start; lookups
    bisect to the query abscissa and scan outward, so a pass costs
    O(n * (log n + k)) instead of the naive O(n^2).  Bucket *positions*
    go slightly stale as swaps commit — harmless, since candidates are
    scored from the live mirror arrays, which :meth:`note_moved` refreshes
    from the design after every accepted swap.
    """

    def __init__(self, design, cells, *, reference: bool = False):
        self.design = design
        self.reference = bool(reference)
        num = len(design.nodes)
        # Live position mirrors: always equal to node.cx/node.cy/node.y.
        self.mx = [0.0] * num
        self.my = [0.0] * num
        self.ny = [0.0] * num
        self._key_of = {}
        site = design.site_width
        entries = []  # (wkey, region-id, cx, cy, idx) per cell
        regions = []
        region_ids: dict = {}
        for idx in cells:
            node = design.nodes[idx]
            cx = node.cx
            cy = node.cy
            self.mx[idx] = cx
            self.my[idx] = cy
            self.ny[idx] = node.y
            region = node.region
            rid = region_ids.get(region)
            if rid is None:
                rid = region_ids[region] = len(regions)
                regions.append(region)
            wkey = round(node.placed_width / site)
            self._key_of[idx] = (wkey, rid)
            entries.append((wkey, rid, cx, cy, idx))
        self.buckets = {}
        if not entries:
            return
        if self.reference:
            grouped: dict = {}
            for wkey, rid, cx, cy, idx in entries:
                grouped.setdefault((wkey, rid), []).append((cx, cy, idx))
            for key, bucket in grouped.items():
                bucket.sort()
                self.buckets[key] = (
                    [e[0] for e in bucket],
                    [e[2] for e in bucket],
                    None,
                )
            return
        wk = np.array([e[0] for e in entries], dtype=np.int64)
        rid_a = np.array([e[1] for e in entries], dtype=np.int64)
        cx_a = np.array([e[2] for e in entries])
        cy_a = np.array([e[3] for e in entries])
        id_a = np.array([e[4] for e in entries], dtype=np.int64)
        # Global sort: bucket keys first, then the reference tuple order
        # (cx, cy, idx) within each bucket.
        order = np.lexsort((id_a, cy_a, cx_a, rid_a, wk))
        wk = wk[order]
        rid_a = rid_a[order]
        cx_s = cx_a[order]
        id_s = id_a[order]
        cuts = np.flatnonzero((wk[1:] != wk[:-1]) | (rid_a[1:] != rid_a[:-1])) + 1
        starts = np.concatenate(([0], cuts, [len(wk)]))
        for a, b in zip(starts[:-1], starts[1:]):
            a = int(a)
            b = int(b)
            key = (int(wk[a]), int(rid_a[a]))
            xs_arr = cx_s[a:b]
            self.buckets[key] = (xs_arr.tolist(), id_s[a:b].tolist(), xs_arr)

    def note_moved(self, idx: int) -> None:
        """Refresh the mirrors of ``idx`` from the design after a move."""
        node = self.design.nodes[idx]
        self.mx[idx] = node.cx
        self.my[idx] = node.cy
        self.ny[idx] = node.y

    def candidates(self, idx: int, x: float, y: float, k: int, *, rows=None):
        """Up to ``k`` same-footprint cells nearest to ``(x, y)``.

        ``rows`` restricts partners to given y coordinates (vertical swap).
        """
        entry = self.buckets.get(self._key_of.get(idx))
        if not entry:
            return []
        xs, ids, xs_arr = entry
        if xs_arr is None:
            pos = bisect.bisect_left(xs, x)
        else:
            pos = int(xs_arr.searchsorted(x, side="left"))
        mx = self.mx
        my = self.my
        ny = self.ny
        n_ids = len(ids)
        inf = float("inf")
        # Scan outward in x, keeping the k best by full manhattan metric.
        # xs is sorted and pos is the bisect-left split, so the gaps are
        # xs[hi] - x on the right and x - xs[lo] on the left (no abs).
        scored = []
        lo, hi = pos - 1, pos
        gap_hi = xs[hi] - x if hi < n_ids else inf
        gap_lo = x - xs[lo] if lo >= 0 else inf
        worst = inf
        probe_budget = max(4 * k, 16)
        while probe_budget > 0 and (lo >= 0 or hi < n_ids):
            if gap_hi <= gap_lo:
                cand = ids[hi]
                hi += 1
                gap_hi = xs[hi] - x if hi < n_ids else inf
            else:
                cand = ids[lo]
                lo -= 1
                gap_lo = x - xs[lo] if lo >= 0 else inf
            probe_budget -= 1
            if cand == idx:
                continue
            if rows is not None and round(ny[cand], 6) not in rows:
                continue
            dist = abs(mx[cand] - x) + abs(my[cand] - y)
            if dist < worst or len(scored) < k:
                scored.append((dist, cand))
                scored.sort()
                if len(scored) > k:
                    scored.pop()
                worst = scored[-1][0]
            # Early exit: once the x gap alone exceeds the worst kept
            # distance, nothing further out can improve.
            if len(scored) == k:
                next_gap = gap_hi if gap_hi < gap_lo else gap_lo
                if next_gap > worst:
                    break
        return [c for _, c in scored]


def _swap_sweep(
    design,
    inc: IncrementalHPWL,
    *,
    candidates_per_cell: int,
    rows_for,
    gate=None,
) -> tuple:
    """One sweep of swap attempts; returns (#accepted, HPWL gain)."""
    cells = [
        n.index
        for n in design.nodes
        if n.is_movable and n.kind is NodeKind.CELL
    ]
    # All optimal regions come from the pass-start placement: one batched
    # median evaluation (reference mode computes the same values with the
    # per-cell loop).
    regions = inc.optimal_regions(cells)
    index = _SlotIndex(design, cells, reference=inc.reference)
    site = design.site_width
    mx = index.mx
    my = index.my
    accepted = 0
    gain = 0.0
    for idx in cells:
        region = regions[idx]
        if region is None:
            continue
        x_lo, x_hi, y_lo, y_hi = region
        cx = mx[idx]
        cy = my[idx]
        tx = min(max(cx, x_lo), x_hi)
        ty = min(max(cy, y_lo), y_hi)
        if abs(tx - cx) + abs(ty - cy) < site:
            continue  # already in its optimal region
        rows = rows_for(index.ny[idx]) if rows_for else None
        cands = index.candidates(idx, tx, ty, candidates_per_cell, rows=rows)
        if not cands:
            continue
        move_sets = [[(idx, mx[c], my[c]), (c, cx, cy)] for c in cands]
        deltas = inc.score_moves(move_sets)
        for j, other_idx in enumerate(cands):
            moves = move_sets[j]
            if gate is not None and not gate(moves):
                continue
            if deltas[j] < -1e-9:
                inc.apply_moves(moves)
                index.note_moved(idx)
                index.note_moved(other_idx)
                accepted += 1
                gain -= float(deltas[j])
                break
    return accepted, gain


def global_swap_pass(
    design, inc: IncrementalHPWL, *, candidates_per_cell: int = 8, gate=None
) -> tuple:
    """Unrestricted same-footprint swaps toward optimal regions."""
    return _swap_sweep(
        design,
        inc,
        candidates_per_cell=candidates_per_cell,
        rows_for=None,
        gate=gate,
    )


def vertical_swap_pass(
    design, inc: IncrementalHPWL, *, candidates_per_cell: int = 4, gate=None
) -> tuple:
    """Swaps restricted to the rows adjacent to each cell's own."""
    row_h = design.row_height

    def rows_for(y):
        return {round(y + row_h, 6), round(y - row_h, 6)}

    return _swap_sweep(
        design,
        inc,
        candidates_per_cell=candidates_per_cell,
        rows_for=rows_for,
        gate=gate,
    )
