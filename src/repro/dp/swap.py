"""Global and vertical swap passes.

Each standard cell is driven toward its *optimal region* (the median box
of its nets); a same-footprint cell already sitting there is the swap
partner.  Swapping equal-width cells between their slots preserves
legality exactly, including fence domains (partners must share the fence
region id).
"""

from __future__ import annotations

from repro.db import NodeKind
from repro.dp.hpwl_delta import IncrementalHPWL


class _SlotIndex:
    """Same-footprint candidate lookup, bucketed by (width, region).

    Buckets are kept sorted by x at pass start; lookups bisect to the
    query abscissa and scan outward, so a pass costs O(n * (log n + k))
    instead of the naive O(n^2).  Positions in the index go slightly
    stale as swaps commit — harmless, since candidates are re-read from
    the design when scoring.
    """

    def __init__(self, design, cells):
        import bisect

        self._bisect = bisect
        self.design = design
        self.buckets = {}
        for idx in cells:
            node = design.nodes[idx]
            key = (round(node.placed_width, 6), node.region)
            self.buckets.setdefault(key, []).append((node.cx, node.cy, idx))
        for bucket in self.buckets.values():
            bucket.sort()
        self._keys = {
            key: [e[0] for e in bucket] for key, bucket in self.buckets.items()
        }

    def candidates(self, node, x: float, y: float, k: int, *, rows=None):
        """Up to ``k`` same-footprint cells nearest to ``(x, y)``.

        ``rows`` restricts partners to given y coordinates (vertical swap).
        """
        key = (round(node.placed_width, 6), node.region)
        bucket = self.buckets.get(key)
        if not bucket:
            return []
        xs = self._keys[key]
        pos = self._bisect.bisect_left(xs, x)
        # Scan outward in x, keeping the k best by full manhattan metric.
        scored = []
        lo, hi = pos - 1, pos
        worst = float("inf")
        probe_budget = max(4 * k, 16)
        while probe_budget > 0 and (lo >= 0 or hi < len(bucket)):
            if hi < len(bucket) and (lo < 0 or abs(xs[hi] - x) <= abs(xs[lo] - x)):
                cx0, cy0, idx = bucket[hi]
                hi += 1
            else:
                cx0, cy0, idx = bucket[lo]
                lo -= 1
            probe_budget -= 1
            if idx == node.index:
                continue
            other = self.design.nodes[idx]
            if rows is not None and round(other.y, 6) not in rows:
                continue
            dist = abs(other.cx - x) + abs(other.cy - y)
            if dist < worst or len(scored) < k:
                scored.append((dist, idx))
                scored.sort()
                if len(scored) > k:
                    scored.pop()
                worst = scored[-1][0]
            # Early exit: once the x gap alone exceeds the worst kept
            # distance, nothing further out can improve.
            if len(scored) == k:
                next_gap = min(
                    abs(xs[hi] - x) if hi < len(bucket) else float("inf"),
                    abs(xs[lo] - x) if lo >= 0 else float("inf"),
                )
                if next_gap > worst:
                    break
        return [idx for _, idx in scored]


def _swap_sweep(
    design,
    inc: IncrementalHPWL,
    *,
    candidates_per_cell: int,
    rows_for,
    gate=None,
) -> tuple:
    """One sweep of swap attempts; returns (#accepted, HPWL gain)."""
    cells = [
        n.index
        for n in design.nodes
        if n.is_movable and n.kind is NodeKind.CELL
    ]
    index = _SlotIndex(design, cells)
    accepted = 0
    gain = 0.0
    for idx in cells:
        node = design.nodes[idx]
        region = inc.optimal_region(idx)
        if region is None:
            continue
        x_lo, x_hi, y_lo, y_hi = region
        tx = min(max(node.cx, x_lo), x_hi)
        ty = min(max(node.cy, y_lo), y_hi)
        if abs(tx - node.cx) + abs(ty - node.cy) < design.site_width:
            continue  # already in its optimal region
        rows = rows_for(node) if rows_for else None
        for other_idx in index.candidates(node, tx, ty, candidates_per_cell, rows=rows):
            other = design.nodes[other_idx]
            moves = [
                (idx, other.cx, other.cy),
                (other_idx, node.cx, node.cy),
            ]
            if gate is not None and not gate(moves):
                continue
            delta = inc.delta_for_moves(moves)
            if delta < -1e-9:
                inc.apply_moves(moves)
                accepted += 1
                gain -= delta
                break
    return accepted, gain


def global_swap_pass(
    design, inc: IncrementalHPWL, *, candidates_per_cell: int = 8, gate=None
) -> tuple:
    """Unrestricted same-footprint swaps toward optimal regions."""
    return _swap_sweep(
        design,
        inc,
        candidates_per_cell=candidates_per_cell,
        rows_for=None,
        gate=gate,
    )


def vertical_swap_pass(
    design, inc: IncrementalHPWL, *, candidates_per_cell: int = 4, gate=None
) -> tuple:
    """Swaps restricted to the rows adjacent to each cell's own."""
    row_h = design.row_height

    def rows_for(node):
        return {round(node.y + row_h, 6), round(node.y - row_h, 6)}

    return _swap_sweep(
        design,
        inc,
        candidates_per_cell=candidates_per_cell,
        rows_for=rows_for,
        gate=gate,
    )
