"""End-to-end placement flows.

``NTUplace4H`` is the paper's flow: hierarchy-aware routability-driven
global placement, mid-flow macro legalization, cell-only refinement,
fence-aware legalization, congestion-gated detailed placement, and
router-based scoring.  ``wirelength_driven_flow`` is the same engine with
every routability lever off — the paper's own primary baseline.
"""

from repro.flow.config import FlowConfig
from repro.flow.ntuplace4h import FlowResult, NTUplace4H, wirelength_driven_flow

__all__ = ["FlowConfig", "FlowResult", "NTUplace4H", "wirelength_driven_flow"]
