"""Flow-level configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dp import DPConfig
from repro.gp import GPConfig
from repro.legal import LegalConfig


@dataclass
class FlowConfig:
    """Configuration of the full NTUplace4h-style flow."""

    gp: GPConfig = field(default_factory=GPConfig)
    dp: DPConfig = field(default_factory=DPConfig)
    legal: LegalConfig = field(default_factory=LegalConfig)
    # Cell-only GP refinement after mid-flow macro legalization.
    refine_after_macro_legal: bool = True
    refine_outer_iterations: int = 16
    run_dp: bool = True
    macro_channel: float = 0.0  # clearance reserved around macros
    # Congestion-driven net weighting between GP and the refinement pass
    # (extension lever; complements cell inflation).
    net_weighting: bool = False
    net_weighting_strength: float = 1.0
    net_weighting_max: float = 4.0
    # Timing-driven net weighting (extension; repro.timing STA).
    timing_weighting: bool = False
    timing_weighting_strength: float = 2.0
    timing_weighting_max: float = 5.0
    # Evaluation router settings (see docs/performance.md for tuning).
    route_sweeps: int = 2
    route_maze_rounds: int = 3
    route_max_maze_nets: int = 1500  # per-round cap on maze reroutes
    # 1 = incremental cost refresh after every rip/commit (exact);
    # k > 1 = full cost rebuild every k reroutes (faster, coarser).
    route_cost_refresh: int = 1

    # Multi-core execution (repro.parallel): worker processes shared by
    # the GP density/wirelength evaluations, the legalization row/domain
    # loops, and the router's rip-up searches.  1 = serial (the
    # REPRO_WORKERS env var can override it), 0 = one per CPU.  The
    # value propagates to any sub-config (gp/legal) still at its own
    # default, so an explicit per-stage setting wins.  ``deterministic``
    # mirrors GPConfig.deterministic: True keeps placements bit-identical
    # for any worker count, False lets GP workers pre-reduce their shard
    # (reproducible per worker count only).
    workers: int = 1
    # True = ``workers`` is exact for every stage: the REPRO_WORKERS env
    # var is never consulted.  The serve job engine always pins, so N
    # concurrent jobs on one host use exactly the workers they were
    # given instead of each fanning out to every core.
    workers_pinned: bool = False
    deterministic: bool = True

    # Resilience (see docs/robustness.md).
    # Validate the design at flow entry and refuse to run on fatal issues.
    validate_input: bool = True
    # Repair fixable issues in place (zero-area cells, stray pins, empty
    # nets, fence rects outside the core, off-chip terminals).
    sanitize: bool = True
    # Write a resumable checkpoint.json here after every completed stage.
    checkpoint_dir: str | None = None
    # Soft per-stage time budgets in seconds, keyed by stage name
    # ("gp", "legal", "dp", "route"); missing/None = unlimited.  Stages
    # wind down at their next loop boundary and the flow result is
    # marked degraded.
    stage_budget: dict = field(default_factory=dict)
    # Observability (see docs/observability.md).
    # Append a run-history record here after every run() (the CLI's
    # --runs-dir / the REPRO_RUNS_DIR environment variable feed this).
    runs_dir: str | None = None

    @staticmethod
    def wirelength_only() -> "FlowConfig":
        """The paper's baseline: identical flow, routability levers off."""
        cfg = FlowConfig()
        cfg.gp.routability = False
        cfg.dp.congestion_aware = False
        return cfg
