"""The NTUplace4h flow orchestrator."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.db import Design
from repro.dp import DetailedPlacer
from repro.flow.config import FlowConfig
from repro.gp import GlobalPlacer, GPConfig
from repro.legal import Legalizer, legalize_macros
from repro.obs import get_tracer
from repro.route import GlobalRouter, scaled_hpwl


@dataclass
class FlowResult:
    """Everything the result tables need about one flow run."""

    design_name: str
    hpwl_gp: float = 0.0
    hpwl_legal: float = 0.0
    hpwl_final: float = 0.0
    rc: float = 0.0
    scaled_hpwl: float = 0.0
    total_overflow: float = 0.0
    peak_congestion: float = 0.0
    legal: bool = False
    stage_seconds: dict = field(default_factory=dict)
    gp_report: object = None
    legal_result: object = None
    dp_report: object = None
    route_result: object = None

    @property
    def runtime_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    @property
    def telemetry(self) -> dict:
        """Per-stage iteration series gathered from the stage reports."""
        out = {"stage_seconds": dict(self.stage_seconds)}
        if self.gp_report is not None:
            out["gp"] = self.gp_report.telemetry
        if self.dp_report is not None:
            out["dp"] = self.dp_report.telemetry
        if self.route_result is not None:
            out["route"] = {"overflow_per_round": list(self.route_result.overflow_per_round)}
        return out

    def as_row(self) -> dict:
        return {
            "design": self.design_name,
            "HPWL": round(self.hpwl_final, 0),
            "RC": round(self.rc, 4),
            "sHPWL": round(self.scaled_hpwl, 0),
            "overflow": round(self.total_overflow, 1),
            "peak": round(self.peak_congestion, 2),
            "legal": "yes" if self.legal else "NO",
            "time_s": round(self.runtime_seconds, 1),
        }


class NTUplace4H:
    """Routability-driven placement flow for hierarchical mixed-size designs."""

    def __init__(self, config: FlowConfig | None = None):
        self.config = config or FlowConfig()

    def run(self, design: Design, *, route: bool = True) -> FlowResult:
        """Place ``design`` end to end; optionally score it by routing.

        Reported HPWL always uses the design's *original* net weights —
        the flow's own weighting levers (congestion/timing) change the
        optimization objective, not the scoring metric.
        """
        cfg = self.config
        tracer = get_tracer()
        result = FlowResult(design_name=design.name)
        score_weights = [net.weight for net in design.nets]

        def scored_hpwl() -> float:
            import numpy as np

            from repro.wirelength import hpwl_per_net

            arrays = design.pin_arrays()
            cx, cy = design.pull_centers()
            return float(
                np.dot(score_weights, hpwl_per_net(arrays, cx, cy))
            )

        with tracer.span("flow", design=design.name):
            t = time.perf_counter()
            with tracer.span("gp"):
                gp_report = GlobalPlacer(cfg.gp).place(design)
            result.stage_seconds["global_place"] = time.perf_counter() - t
            result.gp_report = gp_report
            result.hpwl_gp = scored_hpwl()

            t = time.perf_counter()
            with tracer.span("macro_legal_refine"):
                if cfg.timing_weighting:
                    from repro.timing import apply_timing_net_weights

                    apply_timing_net_weights(
                        design,
                        strength=cfg.timing_weighting_strength,
                        max_weight=cfg.timing_weighting_max,
                    )
                if cfg.net_weighting and design.routing is not None:
                    from repro.gp import (
                        CongestionInflator,
                        apply_congestion_net_weights,
                    )

                    estimator = CongestionInflator(design)
                    cmap = estimator.congestion_map(
                        design.pin_arrays(), *design.pull_centers()
                    )
                    apply_congestion_net_weights(
                        design,
                        cmap,
                        strength=cfg.net_weighting_strength,
                        max_weight=cfg.net_weighting_max,
                    )
                legalize_macros(design, channel=cfg.macro_channel)
                if cfg.refine_after_macro_legal and design.macro_mask().any():
                    refine_cfg = GPConfig(**vars(cfg.gp))
                    refine_cfg.freeze_macros = True
                    refine_cfg.clustering = False
                    refine_cfg.max_outer_iterations = cfg.refine_outer_iterations
                    refiner = GlobalPlacer(refine_cfg)
                    refiner.metric_prefix = "gp.refine"
                    with tracer.span("refine"):
                        refiner.place(design, warm_start=True)
            result.stage_seconds["macro_legal_refine"] = time.perf_counter() - t

            t = time.perf_counter()
            with tracer.span("legal"):
                legal_result = Legalizer(
                    macro_channel=cfg.macro_channel
                ).legalize(design)
            result.stage_seconds["legalize"] = time.perf_counter() - t
            result.legal_result = legal_result
            result.hpwl_legal = scored_hpwl()

            if cfg.run_dp:
                t = time.perf_counter()
                with tracer.span("dp"):
                    dp_report = DetailedPlacer(cfg.dp).run(
                        design, legal_result.submap
                    )
                result.stage_seconds["detailed_place"] = time.perf_counter() - t
                result.dp_report = dp_report

            result.hpwl_final = scored_hpwl()
            result.legal = legal_result.report.ok

            if route and design.routing is not None:
                t = time.perf_counter()
                with tracer.span("route"):
                    router = GlobalRouter(
                        design.routing,
                        sweeps=cfg.route_sweeps,
                        maze_rounds=cfg.route_maze_rounds,
                        max_maze_nets=cfg.route_max_maze_nets,
                        cost_refresh=cfg.route_cost_refresh,
                    )
                    rr = router.route(design)
                result.stage_seconds["route"] = time.perf_counter() - t
                result.route_result = rr
                result.rc = rr.metrics.rc
                result.total_overflow = rr.metrics.total_overflow
                result.peak_congestion = rr.metrics.peak_congestion
                result.scaled_hpwl = scaled_hpwl(result.hpwl_final, result.rc)
            else:
                result.scaled_hpwl = result.hpwl_final
        return result


def wirelength_driven_flow() -> NTUplace4H:
    """The flow with all routability machinery disabled (baseline)."""
    return NTUplace4H(FlowConfig.wirelength_only())
