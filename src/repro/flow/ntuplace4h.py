"""The NTUplace4h flow orchestrator.

Besides the happy path (GP -> macro legal + refine -> legalization ->
DP -> routing), the flow carries the resilience machinery of
``repro.resilience`` (see ``docs/robustness.md``):

* designs are validated (and optionally sanitized) at entry;
* every stage is wrapped so failures degrade instead of crash — GP falls
  back to the spread initial placement, legalization retries in
  Tetris-only mode, routing falls back to RUDY-estimated congestion
  metrics — with machine-readable reasons on ``FlowResult.degradation``;
* per-stage soft time budgets (``FlowConfig.stage_budget``) wind stages
  down cooperatively at loop boundaries;
* after each completed stage a checkpoint can be written
  (``FlowConfig.checkpoint_dir``) and a later ``run(resume_from=...)``
  continues bit-identically, skipping completed stages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.db import Design
from repro.dp import DetailedPlacer
from repro.flow.config import FlowConfig
from repro.gp import GlobalPlacer, GPConfig
from repro.gp.initial import initial_placement
from repro.legal import Legalizer, legalize_macros
from repro.legal.subrows import SubRowMap
from repro.obs import get_logger, get_tracer
from repro.resilience import (
    DesignValidationError,
    FlowCheckpoint,
    StageWatchdog,
    load_checkpoint,
    maybe_raise,
    save_checkpoint,
    validate_design,
)
from repro.route import GlobalRouter, RouteTimeout, scaled_hpwl

_log = get_logger("flow")

#: Stage names in execution order (checkpoints record the completed prefix).
FLOW_STAGES = ("gp", "macro_legal_refine", "legal", "dp", "route")

# Scalar FlowResult fields persisted in checkpoints.
_RESULT_SCALARS = (
    "hpwl_gp",
    "hpwl_legal",
    "hpwl_final",
    "rc",
    "scaled_hpwl",
    "total_overflow",
    "peak_congestion",
    "legal",
    "degraded",
)


@dataclass
class FlowResult:
    """Everything the result tables need about one flow run."""

    design_name: str
    hpwl_gp: float = 0.0
    hpwl_legal: float = 0.0
    hpwl_final: float = 0.0
    rc: float = 0.0
    scaled_hpwl: float = 0.0
    total_overflow: float = 0.0
    peak_congestion: float = 0.0
    legal: bool = False
    stage_seconds: dict = field(default_factory=dict)
    gp_report: object = None
    legal_result: object = None
    dp_report: object = None
    route_result: object = None
    # Run-history registry id (set when FlowConfig.runs_dir records it).
    run_id: str | None = None
    # Resilience bookkeeping.
    degraded: bool = False
    degradation: list = field(default_factory=list)  # machine-readable reasons
    validation: object = None        # ValidationReport from flow entry
    resumed_stages: list = field(default_factory=list)  # skipped via resume
    restored_telemetry: dict = field(default_factory=dict)  # from checkpoint

    @property
    def runtime_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    @property
    def telemetry(self) -> dict:
        """Per-stage iteration series gathered from the stage reports.

        On a resumed run the series of skipped stages come from the
        checkpoint (``restored_telemetry``); stages that ran in this
        process overwrite their own sections.
        """
        out = dict(self.restored_telemetry)
        seconds = dict(out.get("stage_seconds", {}))
        seconds.update(self.stage_seconds)
        out["stage_seconds"] = seconds
        if self.gp_report is not None:
            out["gp"] = self.gp_report.telemetry
        if self.dp_report is not None:
            out["dp"] = self.dp_report.telemetry
        if self.route_result is not None:
            out["route"] = {
                "overflow_per_round": list(self.route_result.overflow_per_round)
            }
        resilience = dict(out.get("resilience", {}))
        resilience["degraded"] = self.degraded
        resilience["degradation"] = [dict(d) for d in self.degradation]
        if self.gp_report is not None:
            resilience["guard_rollbacks"] = self.gp_report.guard_rollbacks
            resilience["guard_events"] = list(self.gp_report.guard_events)
        out["resilience"] = resilience
        return out

    def as_row(self) -> dict:
        return {
            "design": self.design_name,
            "HPWL": round(self.hpwl_final, 0),
            "RC": round(self.rc, 4),
            "sHPWL": round(self.scaled_hpwl, 0),
            "overflow": round(self.total_overflow, 1),
            "peak": round(self.peak_congestion, 2),
            "legal": "yes" if self.legal else "NO",
            "degraded": "yes" if self.degraded else "",
            "time_s": round(self.runtime_seconds, 1),
        }


class NTUplace4H:
    """Routability-driven placement flow for hierarchical mixed-size designs."""

    def __init__(self, config: FlowConfig | None = None):
        self.config = config or FlowConfig()

    # ------------------------------------------------------------------
    def run(
        self,
        design: Design,
        *,
        route: bool = True,
        resume_from: str | None = None,
    ) -> FlowResult:
        """Place ``design`` end to end; optionally score it by routing.

        Reported HPWL always uses the design's *original* net weights —
        the flow's own weighting levers (congestion/timing) change the
        optimization objective, not the scoring metric.

        ``resume_from`` names a checkpoint directory (or file) written by
        a previous run with ``FlowConfig.checkpoint_dir`` set; completed
        stages are skipped and the flow continues bit-identically from
        the checkpointed state.
        """
        cfg = self.config
        # Propagate the flow-level parallelism knobs to sub-configs left
        # at their defaults (an explicit per-stage setting wins).
        if cfg.workers != 1:
            if cfg.gp.workers == 1:
                cfg.gp.workers = cfg.workers
            if cfg.legal.workers == 1:
                cfg.legal.workers = cfg.workers
            if cfg.dp.workers == 1:
                cfg.dp.workers = cfg.workers
        if cfg.workers_pinned:
            # Pinned counts are exact everywhere: no stage may widen
            # itself from REPRO_WORKERS (multi-job hosts rely on this).
            cfg.gp.workers_pinned = True
            cfg.legal.workers_pinned = True
            cfg.dp.workers_pinned = True
        if not cfg.deterministic and cfg.gp.deterministic:
            cfg.gp.deterministic = False
        tracer = get_tracer()
        # One metrics registry per run: back-to-back runs under the same
        # tracer must not accumulate each other's series (streamed
        # samples already forwarded to sinks are unaffected).
        tracer.fresh_metrics()
        result = FlowResult(design_name=design.name)

        # Validation runs before checkpoint restore so a resumed run sees
        # the same (sanitized) topology the checkpoint was written against.
        if cfg.validate_input:
            with tracer.span("validate"):
                vreport = validate_design(design, sanitize=cfg.sanitize)
                result.validation = vreport
                if not vreport.ok:
                    raise DesignValidationError(vreport)
            if not vreport.clean:
                _log.warning(
                    "design %s: %s", design.name, vreport.summary()
                )
                tracer.event("flow.validation", **vreport.counts())

        completed: list = []
        score_weights = [net.weight for net in design.nets]
        if resume_from is not None:
            ckpt = load_checkpoint(resume_from)
            ckpt.apply(design)
            completed = list(ckpt.completed)
            if ckpt.score_weights:
                score_weights = [float(w) for w in ckpt.score_weights]
            self._restore_result(result, ckpt.result)
            result.resumed_stages = list(completed)
            result.restored_telemetry = dict(ckpt.telemetry)
            _log.info(
                "resuming %s after stages: %s", design.name, ", ".join(completed)
            )

        def scored_hpwl() -> float:
            import numpy as np

            from repro.wirelength import hpwl_per_net

            arrays = design.pin_arrays()
            cx, cy = design.pull_centers()
            return float(
                np.dot(score_weights, hpwl_per_net(arrays, cx, cy))
            )

        def degrade(stage: str, reason: str, **detail) -> None:
            entry = {"stage": stage, "reason": reason}
            entry.update(detail)
            result.degraded = True
            result.degradation.append(entry)
            tracer.event("flow.degraded", **entry)
            # Post-mortem context: any attached flight recorder dumps
            # its last-N records the moment the flow degrades.
            tracer.dump_flight_recorders(reason=f"{stage}:{reason}")
            _log.warning(
                "flow degraded at %s (%s) %s", stage, reason, detail or ""
            )

        def save_stage(stage: str) -> None:
            completed.append(stage)
            if cfg.checkpoint_dir is None:
                return
            ckpt = FlowCheckpoint.capture(
                design,
                completed=completed,
                score_weights=score_weights,
                result=self._result_state(result),
                telemetry=result.telemetry,
                config=cfg,
            )
            try:
                save_checkpoint(ckpt, cfg.checkpoint_dir)
            except Exception as exc:
                # A checkpoint that cannot be written must not kill the
                # run — resume just won't include this stage.
                degrade(
                    "checkpoint",
                    "io_error",
                    stage_completed=stage,
                    error=f"{type(exc).__name__}: {exc}",
                )

        with tracer.span("flow", design=design.name):
            # -- global placement ---------------------------------------
            if "gp" not in completed:
                t = time.perf_counter()
                watchdog = StageWatchdog("gp", cfg.stage_budget.get("gp"))
                try:
                    maybe_raise("raise.gp")
                    with tracer.span("gp"):
                        gp_report = GlobalPlacer(cfg.gp).place(
                            design, watchdog=watchdog
                        )
                    result.gp_report = gp_report
                    if gp_report.budget_exhausted:
                        degrade("gp", "budget_exhausted", **watchdog.describe())
                    if gp_report.guard_exhausted:
                        degrade(
                            "gp",
                            "numerical_guard_exhausted",
                            rollbacks=gp_report.guard_rollbacks,
                        )
                    elif gp_report.guard_rollbacks:
                        # Recovered, but the trajectory was perturbed: flag
                        # the result so downstream consumers know.
                        degrade(
                            "gp",
                            "numerical_recovery",
                            rollbacks=gp_report.guard_rollbacks,
                        )
                except Exception as exc:
                    degrade(
                        "gp", "exception", error=f"{type(exc).__name__}: {exc}"
                    )
                    # Fallback: the deterministic spread initial placement
                    # gives legalization something sane to work with.
                    with tracer.span("gp_fallback"):
                        initial_placement(design, seed=cfg.gp.seed)
                result.stage_seconds["global_place"] = time.perf_counter() - t
                result.hpwl_gp = scored_hpwl()
                save_stage("gp")

            # -- macro legalization + cell-only refinement --------------
            if "macro_legal_refine" not in completed:
                t = time.perf_counter()
                try:
                    maybe_raise("raise.refine")
                    with tracer.span("macro_legal_refine"):
                        self._macro_legal_refine(design)
                except Exception as exc:
                    # Keep the GP placement; the legalization stage runs
                    # its own macro pass, so the flow can still finish.
                    degrade(
                        "macro_legal_refine",
                        "exception",
                        error=f"{type(exc).__name__}: {exc}",
                    )
                result.stage_seconds["macro_legal_refine"] = (
                    time.perf_counter() - t
                )
                save_stage("macro_legal_refine")

            # -- legalization -------------------------------------------
            legal_result = None
            if "legal" not in completed:
                t = time.perf_counter()
                watchdog = StageWatchdog("legal", cfg.stage_budget.get("legal"))
                try:
                    maybe_raise("raise.legal")
                    with tracer.span("legal"):
                        legal_result = Legalizer(
                            cfg.legal,
                            macro_channel=cfg.macro_channel,
                        ).legalize(design)
                except Exception as exc:
                    degrade(
                        "legal",
                        "exception",
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    try:
                        with tracer.span("legal_fallback"):
                            legal_result = Legalizer(
                                cfg.legal,
                                macro_channel=cfg.macro_channel,
                                tetris_only=True,
                            ).legalize(design)
                        degrade("legal", "tetris_fallback")
                    except Exception as exc2:
                        degrade(
                            "legal",
                            "fallback_failed",
                            error=f"{type(exc2).__name__}: {exc2}",
                        )
                        legal_result = None
                if watchdog.expired():
                    degrade("legal", "budget_exhausted", **watchdog.describe())
                result.stage_seconds["legalize"] = time.perf_counter() - t
                result.legal_result = legal_result
                result.hpwl_legal = scored_hpwl()
                result.legal = bool(
                    legal_result is not None and legal_result.report.ok
                )
                save_stage("legal")

            # -- detailed placement -------------------------------------
            if cfg.run_dp and "dp" not in completed:
                submap = (
                    legal_result.submap if legal_result is not None else None
                )
                if submap is None and not self._legal_stage_failed(result):
                    # Resumed past legalization: the sub-row map rebuilds
                    # bit-identically from the legalized macro positions.
                    submap = SubRowMap(design)
                if submap is None:
                    degrade("dp", "skipped_no_legal_placement")
                else:
                    t = time.perf_counter()
                    watchdog = StageWatchdog("dp", cfg.stage_budget.get("dp"))
                    try:
                        maybe_raise("raise.dp")
                        with tracer.span("dp"):
                            dp_report = DetailedPlacer(cfg.dp).run(
                                design, submap, watchdog=watchdog
                            )
                        result.dp_report = dp_report
                        if dp_report.budget_exhausted:
                            degrade(
                                "dp", "budget_exhausted", **watchdog.describe()
                            )
                    except Exception as exc:
                        # Keep the legalized placement.
                        degrade(
                            "dp",
                            "exception",
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    result.stage_seconds["detailed_place"] = (
                        time.perf_counter() - t
                    )
                save_stage("dp")

            # -- routing / scoring --------------------------------------
            if "route" not in completed:
                result.hpwl_final = scored_hpwl()
                if route and design.routing is not None:
                    t = time.perf_counter()
                    watchdog = StageWatchdog(
                        "route", cfg.stage_budget.get("route")
                    )
                    metrics = None
                    try:
                        maybe_raise("raise.route")
                        with tracer.span("route"):
                            router = GlobalRouter(
                                design.routing,
                                sweeps=cfg.route_sweeps,
                                maze_rounds=cfg.route_maze_rounds,
                                max_maze_nets=cfg.route_max_maze_nets,
                                cost_refresh=cfg.route_cost_refresh,
                                workers=cfg.workers,
                                workers_pinned=cfg.workers_pinned,
                            )
                            rr = router.route(
                                design, should_stop=watchdog.expired
                            )
                        result.route_result = rr
                        metrics = rr.metrics
                    except RouteTimeout as exc:
                        degrade(
                            "route",
                            "budget_exhausted",
                            phase=exc.phase,
                            rounds_done=exc.rounds_done,
                            **watchdog.describe(),
                        )
                        metrics = self._estimated_metrics(design, degrade)
                    except Exception as exc:
                        degrade(
                            "route",
                            "exception",
                            error=f"{type(exc).__name__}: {exc}",
                        )
                        metrics = self._estimated_metrics(design, degrade)
                    if metrics is not None:
                        result.rc = metrics.rc
                        result.total_overflow = metrics.total_overflow
                        result.peak_congestion = metrics.peak_congestion
                        result.scaled_hpwl = scaled_hpwl(
                            result.hpwl_final, result.rc
                        )
                    else:
                        result.scaled_hpwl = result.hpwl_final
                    result.stage_seconds["route"] = time.perf_counter() - t
                else:
                    result.scaled_hpwl = result.hpwl_final
                save_stage("route")
        if cfg.runs_dir:
            try:
                from repro.obs.runs import record_flow_run

                result.run_id = record_flow_run(cfg.runs_dir, result, cfg)
            except Exception as exc:
                # A registry that cannot be written must not kill the run.
                _log.warning(
                    "run-history record failed (%s: %s)",
                    type(exc).__name__,
                    exc,
                )
        return result

    # ------------------------------------------------------------------
    def _macro_legal_refine(self, design: Design) -> None:
        """Net weighting, macro legalization, and the cell-only refine GP."""
        cfg = self.config
        tracer = get_tracer()
        if cfg.timing_weighting:
            from repro.timing import apply_timing_net_weights

            apply_timing_net_weights(
                design,
                strength=cfg.timing_weighting_strength,
                max_weight=cfg.timing_weighting_max,
            )
        if cfg.net_weighting and design.routing is not None:
            from repro.gp import (
                CongestionInflator,
                apply_congestion_net_weights,
            )

            estimator = CongestionInflator(design)
            cmap = estimator.congestion_map(
                design.pin_arrays(), *design.pull_centers()
            )
            apply_congestion_net_weights(
                design,
                cmap,
                strength=cfg.net_weighting_strength,
                max_weight=cfg.net_weighting_max,
            )
        legalize_macros(design, channel=cfg.macro_channel)
        if cfg.refine_after_macro_legal and design.macro_mask().any():
            refine_cfg = GPConfig(**vars(cfg.gp))
            refine_cfg.freeze_macros = True
            refine_cfg.clustering = False
            refine_cfg.max_outer_iterations = cfg.refine_outer_iterations
            refiner = GlobalPlacer(refine_cfg)
            refiner.metric_prefix = "gp.refine"
            with tracer.span("refine"):
                refiner.place(design, warm_start=True)

    @staticmethod
    def _legal_stage_failed(result: FlowResult) -> bool:
        """Whether legalization (including the Tetris fallback) failed."""
        return any(
            d.get("stage") == "legal" and d.get("reason") == "fallback_failed"
            for d in result.degradation
        )

    @staticmethod
    def _estimated_metrics(design: Design, degrade):
        """RUDY-based congestion metrics as the routing fallback."""
        from repro.route import rudy_congestion_metrics

        try:
            with get_tracer().span("route_fallback"):
                return rudy_congestion_metrics(design)
        except Exception as exc:
            degrade(
                "route",
                "fallback_failed",
                error=f"{type(exc).__name__}: {exc}",
            )
            return None

    # -- checkpoint (de)hydration --------------------------------------
    @staticmethod
    def _result_state(result: FlowResult) -> dict:
        state = {k: getattr(result, k) for k in _RESULT_SCALARS}
        state["stage_seconds"] = dict(result.stage_seconds)
        state["degradation"] = [dict(d) for d in result.degradation]
        return state

    @staticmethod
    def _restore_result(result: FlowResult, state: dict) -> None:
        for key in _RESULT_SCALARS:
            if key in state:
                setattr(result, key, state[key])
        result.stage_seconds.update(state.get("stage_seconds", {}))
        result.degradation = [dict(d) for d in state.get("degradation", [])]
        result.degraded = bool(state.get("degraded", False))


def wirelength_driven_flow() -> NTUplace4H:
    """The flow with all routability machinery disabled (baseline)."""
    return NTUplace4H(FlowConfig.wirelength_only())
