"""Planar geometry primitives shared by every placement subsystem.

The coordinate convention follows Bookshelf: ``x`` grows to the right,
``y`` grows upward, and a node's position is the coordinate of its
lower-left corner.
"""

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.orientation import (
    Orientation,
    compose,
    invert,
    transform_offset,
    transform_size,
)

__all__ = [
    "Point",
    "Rect",
    "Orientation",
    "compose",
    "invert",
    "transform_offset",
    "transform_size",
]
