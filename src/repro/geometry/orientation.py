"""The eight Bookshelf/LEF-DEF placement orientations.

A macro may be rotated by multiples of 90 degrees and optionally mirrored.
The names follow the Bookshelf ``.pl`` convention: ``N`` (north, identity),
``W``/``S``/``E`` are successive 90-degree counter-clockwise rotations, and
``FN``/``FW``/``FS``/``FE`` are those composed with a flip about the y axis
(applied first).

Pin offsets in the design database are stored relative to the node *centre*
in the ``N`` orientation; :func:`transform_offset` maps them to the oriented
frame, so the placer can evaluate candidate rotations without mutating the
netlist.
"""

from __future__ import annotations

from enum import Enum


class Orientation(Enum):
    """Placement orientation of a node."""

    N = "N"
    W = "W"
    S = "S"
    E = "E"
    FN = "FN"
    FW = "FW"
    FS = "FS"
    FE = "FE"

    @property
    def is_flipped(self) -> bool:
        """Whether the orientation includes a mirror about the y axis."""
        return self.value.startswith("F")

    @property
    def rotation(self) -> int:
        """Counter-clockwise rotation in quarter turns (0..3)."""
        return "NWSE".index(self.value[-1])

    @property
    def swaps_dimensions(self) -> bool:
        """Whether width and height exchange under this orientation."""
        return self.rotation % 2 == 1

    @staticmethod
    def from_string(text: str) -> "Orientation":
        """Parse a Bookshelf orientation token (case-insensitive)."""
        try:
            return Orientation(text.strip().upper())
        except ValueError as exc:
            raise ValueError(f"unknown orientation {text!r}") from exc


# The rotation part of each orientation as a 2x2 matrix (row-major a,b,c,d
# for [[a, b], [c, d]]), counter-clockwise.
_ROTATIONS = {
    0: (1.0, 0.0, 0.0, 1.0),
    1: (0.0, -1.0, 1.0, 0.0),
    2: (-1.0, 0.0, 0.0, -1.0),
    3: (0.0, 1.0, -1.0, 0.0),
}


def transform_offset(dx: float, dy: float, orient: Orientation) -> tuple:
    """Map a centre-relative pin offset from ``N`` into ``orient``.

    The flip (about the y axis, i.e. ``x -> -x``) is applied before the
    rotation, matching LEF/DEF semantics.
    """
    if orient.is_flipped:
        dx = -dx
    a, b, c, d = _ROTATIONS[orient.rotation]
    return (a * dx + b * dy, c * dx + d * dy)


def transform_size(width: float, height: float, orient: Orientation) -> tuple:
    """Bounding-box dimensions of a ``width x height`` node under ``orient``."""
    if orient.swaps_dimensions:
        return (height, width)
    return (width, height)


def compose(first: Orientation, then: Orientation) -> Orientation:
    """Orientation equivalent to applying ``first`` and then ``then``."""
    flip = first.is_flipped ^ then.is_flipped
    if then.is_flipped:
        # Flipping conjugates the rotation group: F . R(k) = R(-k) . F.
        rot = (then.rotation - first.rotation) % 4
    else:
        rot = (then.rotation + first.rotation) % 4
    name = ("F" if flip else "") + "NWSE"[rot]
    return Orientation(name)


def invert(orient: Orientation) -> Orientation:
    """The orientation that undoes ``orient``."""
    if orient.is_flipped:
        return orient  # flips composed with their own rotation self-invert
    name = "NWSE"[(-orient.rotation) % 4]
    return Orientation(name)
