"""An immutable 2-D point with the small vector algebra placement needs."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """A point (or displacement vector) in the placement plane."""

    x: float = 0.0
    y: float = 0.0

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scale: float) -> "Point":
        return Point(self.x * scale, self.y * scale)

    __rmul__ = __mul__

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def __iter__(self):
        yield self.x
        yield self.y

    def dot(self, other: "Point") -> float:
        """Scalar product with ``other``."""
        return self.x * other.x + self.y * other.y

    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def manhattan(self, other: "Point") -> float:
        """L1 distance to ``other`` — the natural routing distance."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def as_tuple(self) -> tuple:
        return (self.x, self.y)
