"""Axis-aligned rectangles: node outlines, fences, bins, routing tiles."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point


@dataclass(frozen=True)
class Rect:
    """A closed axis-aligned rectangle ``[xl, xh] x [yl, yh]``.

    Degenerate rectangles (zero width or height) are permitted; they arise
    naturally as the bounding box of a single pin.  Construction validates
    that the bounds are ordered.
    """

    xl: float
    yl: float
    xh: float
    yh: float

    def __post_init__(self):
        if self.xh < self.xl or self.yh < self.yl:
            raise ValueError(
                f"malformed rect: ({self.xl}, {self.yl}, {self.xh}, {self.yh})"
            )

    @staticmethod
    def from_size(xl: float, yl: float, width: float, height: float) -> "Rect":
        """Build a rect from its lower-left corner and dimensions."""
        return Rect(xl, yl, xl + width, yl + height)

    @staticmethod
    def bounding(points) -> "Rect":
        """Bounding box of an iterable of :class:`Point`.  Raises on empty."""
        pts = list(points)
        if not pts:
            raise ValueError("bounding box of no points")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    @property
    def width(self) -> float:
        return self.xh - self.xl

    @property
    def height(self) -> float:
        return self.yh - self.yl

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.xl + self.xh) / 2.0, (self.yl + self.yh) / 2.0)

    @property
    def ll(self) -> Point:
        return Point(self.xl, self.yl)

    @property
    def ur(self) -> Point:
        return Point(self.xh, self.yh)

    def contains_point(self, p: Point, *, strict: bool = False) -> bool:
        """Whether ``p`` lies inside (``strict`` excludes the boundary)."""
        if strict:
            return self.xl < p.x < self.xh and self.yl < p.y < self.yh
        return self.xl <= p.x <= self.xh and self.yl <= p.y <= self.yh

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` is entirely inside this rectangle."""
        return (
            self.xl <= other.xl
            and self.yl <= other.yl
            and other.xh <= self.xh
            and other.yh <= self.yh
        )

    def intersects(self, other: "Rect", *, strict: bool = True) -> bool:
        """Whether the rectangles overlap.

        With ``strict`` (default) shared edges do not count as overlap —
        the relevant notion for placement legality.
        """
        if strict:
            return (
                self.xl < other.xh
                and other.xl < self.xh
                and self.yl < other.yh
                and other.yl < self.yh
            )
        return (
            self.xl <= other.xh
            and other.xl <= self.xh
            and self.yl <= other.yh
            and other.yl <= self.yh
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlap rectangle, or ``None`` when disjoint."""
        xl = max(self.xl, other.xl)
        yl = max(self.yl, other.yl)
        xh = min(self.xh, other.xh)
        yh = min(self.yh, other.yh)
        if xh < xl or yh < yl:
            return None
        return Rect(xl, yl, xh, yh)

    def overlap_area(self, other: "Rect") -> float:
        """Area of the overlap with ``other`` (0 when disjoint)."""
        w = min(self.xh, other.xh) - max(self.xl, other.xl)
        h = min(self.yh, other.yh) - max(self.yl, other.yl)
        if w <= 0.0 or h <= 0.0:
            return 0.0
        return w * h

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both."""
        return Rect(
            min(self.xl, other.xl),
            min(self.yl, other.yl),
            max(self.xh, other.xh),
            max(self.yh, other.yh),
        )

    def inflated(self, dx: float, dy: float | None = None) -> "Rect":
        """Grow (or shrink, for negative amounts) each side."""
        if dy is None:
            dy = dx
        return Rect(self.xl - dx, self.yl - dy, self.xh + dx, self.yh + dy)

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.xl + dx, self.yl + dy, self.xh + dx, self.yh + dy)

    def moved_to(self, x: float, y: float) -> "Rect":
        """Same size, lower-left corner at ``(x, y)``."""
        return Rect(x, y, x + self.width, y + self.height)

    def clamp_point(self, p: Point) -> Point:
        """Nearest point of the rectangle to ``p``."""
        return Point(
            min(max(p.x, self.xl), self.xh),
            min(max(p.y, self.yl), self.yh),
        )

    def clamp_rect_origin(self, other: "Rect") -> Point:
        """Lower-left position nearest ``other``'s that keeps it inside.

        When ``other`` is larger than this rectangle along an axis the
        result centres it on that axis instead.
        """
        if other.width <= self.width:
            x = min(max(other.xl, self.xl), self.xh - other.width)
        else:
            x = self.center.x - other.width / 2.0
        if other.height <= self.height:
            y = min(max(other.yl, self.yl), self.yh - other.height)
        else:
            y = self.center.y - other.height / 2.0
        return Point(x, y)

    def half_perimeter(self) -> float:
        """HPWL contribution of this rectangle as a net bounding box."""
        return self.width + self.height
