"""Routability-driven analytical global placement (the paper's core).

``GlobalPlacer`` minimizes ``WL(x, y) + lambda * density(x, y)`` with a
weighted-average wirelength model and a bell-shaped density potential,
growing ``lambda`` until the placement is spread.  Routability enters
through periodic congestion estimation and cell inflation; hierarchy
enters through fence-region penalties and hierarchy-respecting
clustering; mixed-size support through simultaneous macro placement and
orientation optimization.
"""

from repro.gp.config import GPConfig
from repro.gp.placer import GlobalPlacer, GPReport, IterationStats
from repro.gp.initial import initial_placement
from repro.gp.fence import FencePenalty, fence_violation, project_into_fences
from repro.gp.inflation import CongestionInflator
from repro.gp.orient import optimize_macro_orientations
from repro.gp.clustering import ClusteredDesign, cluster_design
from repro.gp.net_weighting import apply_congestion_net_weights, congestion_over_boxes

__all__ = [
    "ClusteredDesign",
    "CongestionInflator",
    "apply_congestion_net_weights",
    "congestion_over_boxes",
    "FencePenalty",
    "GPConfig",
    "GPReport",
    "GlobalPlacer",
    "IterationStats",
    "cluster_design",
    "fence_violation",
    "initial_placement",
    "optimize_macro_orientations",
    "project_into_fences",
]
