"""Hierarchy-aware netlist clustering (the multilevel V-cycle's downward leg).

Best-choice greedy clustering on connectivity weight ``sum 1/(deg-1)``
over shared nets, with the paper's hierarchical restriction: two cells
may merge only if they belong to the same hierarchy *leaf module* (hence
automatically the same fence region).  Macros, fixed nodes and terminals
are never clustered.

The coarse design reuses the original rows, regions, routing spec and
core; coarse nets keep one pin per touched cluster and drop nets fully
absorbed by a cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db import Design, Net, Node, NodeKind, Pin

# Nets wider than this contribute negligible pairwise weight; skip them.
_MAX_CLIQUE_NET = 16


@dataclass
class ClusteredDesign:
    """Result of one clustering level."""

    original: Design
    coarse: Design
    assignment: np.ndarray  # original node index -> coarse node index

    def transfer_positions(self) -> None:
        """Copy coarse centres (and macro orientations) to the original."""
        for node in self.original.nodes:
            coarse_node = self.coarse.nodes[int(self.assignment[node.index])]
            if node.is_movable:
                node.move_center_to(coarse_node.cx, coarse_node.cy)
                if node.kind is NodeKind.MACRO:
                    self.original.set_orientation(node, coarse_node.orientation)


def _pair_weights(design: Design):
    """Sparse connectivity weights between clusterable cells."""
    weights = {}
    for net in design.nets:
        deg = net.degree
        if deg < 2 or deg > _MAX_CLIQUE_NET:
            continue
        w = net.weight / (deg - 1)
        members = [
            p.node
            for p in net.pins
            if design.nodes[p.node].kind is NodeKind.CELL
        ]
        members = sorted(set(members))
        for a_i in range(len(members)):
            for b_i in range(a_i + 1, len(members)):
                key = (members[a_i], members[b_i])
                weights[key] = weights.get(key, 0.0) + w
    return weights


def cluster_design(
    design: Design, *, ratio: float = 0.35, max_cluster_cells: int | None = None
) -> ClusteredDesign:
    """Cluster ``design`` down to about ``ratio * #cells`` clusters."""
    num_nodes = len(design.nodes)
    cells = [n.index for n in design.nodes if n.kind is NodeKind.CELL]
    target_clusters = max(1, int(len(cells) * ratio))
    if max_cluster_cells is None:
        max_cluster_cells = max(2, int(np.ceil(2.0 / max(ratio, 1e-6))))

    weights = _pair_weights(design)
    # Union-find over cells.
    parent = np.arange(num_nodes, dtype=np.int64)

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = int(parent[a])
        return a

    sizes = {c: 1 for c in cells}
    modules = {c: design.nodes[c].module for c in cells}
    merges_needed = len(cells) - target_clusters
    merged = 0
    # Heaviest pairs first (best-choice flavour without the heap churn).
    for (a, b), _w in sorted(weights.items(), key=lambda kv: -kv[1]):
        if merged >= merges_needed:
            break
        ra, rb = find(a), find(b)
        if ra == rb:
            continue
        if modules[ra] != modules[rb]:
            continue  # the hierarchical restriction
        if sizes[ra] + sizes[rb] > max_cluster_cells:
            continue
        parent[rb] = ra
        sizes[ra] += sizes.pop(rb)
        modules.pop(rb)
        merged += 1

    # ---------------------------------------------------------- rebuild
    coarse = Design(design.name + "_coarse", core=design.core)
    coarse.routing = design.routing
    for row in design.rows:
        coarse.add_row(type(row)(row.y, row.height, row.site_width, row.x_min, row.num_sites))
    for region in design.regions:
        coarse.add_region(type(region)(region.name, list(region.rects)))

    assignment = np.full(num_nodes, -1, dtype=np.int64)
    root_to_coarse = {}
    # Non-cell nodes carry over one-to-one.
    for node in design.nodes:
        if node.kind is NodeKind.CELL:
            continue
        clone = coarse.add_node(
            Node(
                name=node.name,
                width=node.width,
                height=node.height,
                kind=node.kind,
                x=node.x,
                y=node.y,
                orientation=node.orientation,
                region=node.region,
                module=node.module,
            )
        )
        assignment[node.index] = clone.index
    # Clusters: area-preserving single-row pseudo cells.
    row_h = design.row_height
    groups = {}
    for c in cells:
        groups.setdefault(find(c), []).append(c)
    for root, group in sorted(groups.items()):
        area = sum(design.nodes[i].area for i in group)
        first = design.nodes[group[0]]
        clone = coarse.add_node(
            Node(
                name=f"clu_{root}",
                width=area / row_h,
                height=row_h,
                kind=NodeKind.CELL,
                region=first.region,
                module=first.module,
            )
        )
        root_to_coarse[root] = clone.index
        for i in group:
            assignment[i] = clone.index
    # Nets.
    for net in design.nets:
        seen = set()
        pins = []
        for p in net.pins:
            coarse_idx = int(assignment[p.node])
            node = design.nodes[p.node]
            if node.kind is NodeKind.CELL:
                if coarse_idx in seen:
                    continue
                seen.add(coarse_idx)
                pins.append(Pin(node=coarse_idx))
            else:
                pins.append(Pin(node=coarse_idx, dx=p.dx, dy=p.dy, direction=p.direction))
        touched = {p.node for p in pins}
        if len(touched) < 2:
            continue
        coarse.add_net(Net(name=net.name, pins=pins, weight=net.weight))
    return ClusteredDesign(original=design, coarse=coarse, assignment=assignment)
