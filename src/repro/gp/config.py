"""Configuration of the global placer."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class GPConfig:
    """All knobs of :class:`repro.gp.GlobalPlacer`.

    Defaults reproduce the paper's flow: WA wirelength, routability
    machinery on, hierarchy-aware clustering on for large designs.
    """

    # Wirelength model: "wa" (paper) or "lse" (baseline for Table 4).
    wirelength_model: str = "wa"
    # Smoothing parameter as a multiple of the density bin width.
    gamma_factor: float = 4.0
    # Anneal gamma by this factor every outer iteration (1.0 = fixed).
    gamma_decay: float = 0.98

    # Density grid: about one bin per `bins_per_node` movable nodes.
    target_bins: int | None = None  # explicit bin count overrides sizing
    target_density: float | None = None  # None: average utilization

    # Penalty schedule.
    lambda_initial_ratio: float = 0.12  # lambda0 * |grad D| ~ ratio * |grad WL|
    lambda_growth: float = 1.9
    max_outer_iterations: int = 40
    inner_iterations: int = 24
    overflow_target: float = 0.06  # stop when density overflow falls below

    # Step control (multiples of bin width).
    step_init_bins: float = 6.0
    step_max_bins: float = 12.0

    # Routability.
    routability: bool = True
    inflation_start_overflow: float = 0.45  # begin inflating once spread enough
    inflation_interval: int = 2  # outer iterations between congestion updates
    inflation_exponent: float = 1.4
    inflation_max: float = 2.5  # per-cell area cap
    inflation_total_max: float = 1.25  # total inflated area cap vs original
    congestion_threshold: float = 0.8  # inflate cells above this utilization
    # "rudy" (no routing), "router" (look-ahead route every round), or
    # "hybrid" (learned predictor + periodic router, repro.predict).
    congestion_estimator: str = "rudy"
    # Hybrid estimator: model artifact path (None = packaged default),
    # real-router cadence, and the mean |predicted - routed| drift over
    # hot tiles beyond which the loop falls back to the router.  The
    # tolerance sits well above a healthy model's hot-tile error
    # (~0.3-0.5) — it catches gross breakdown (stale artifact,
    # out-of-distribution design), not routine prediction noise.
    predict_model: str | None = None
    predict_router_interval: int = 4
    predict_drift_tol: float = 0.75
    # Whitespace reservation: scale each density bin's target by its
    # relative routing supply, so starved regions attract fewer cells.
    whitespace_reservation: bool = True
    reservation_floor: float = 0.6  # minimum target scale over starved bins

    # Hierarchy / fences.
    fence_weight_initial_ratio: float = 0.5  # relative to wirelength gradient
    fence_weight_growth: float = 1.6

    # Mixed-size.
    optimize_orientations: bool = True
    orientation_interval: int = 6  # outer iterations between passes
    # Treat movable macros as fixed obstacles (the cell-only GP phase run
    # after mid-flow macro legalization).
    freeze_macros: bool = False

    # Clustering (multilevel V-cycle).
    clustering: bool = True
    cluster_min_nodes: int = 3000  # skip clustering below this size
    cluster_ratio: float = 0.35  # target clusters / cells
    cluster_max_levels: int = 2  # how deep the V-cycle may recurse
    coarse_iteration_fraction: float = 0.5  # share of outers at coarse level

    # Resilience (repro.resilience.guards): NaN/Inf and divergence
    # detection on the outer loop with rollback to the last good iterate
    # plus step/smoothing backoff.  The guard never perturbs a healthy
    # trajectory (the golden-equivalence tests pin this); it only decides
    # what to do when an iteration is already poisoned.
    numerical_guard: bool = True
    guard_max_retries: int = 3
    guard_divergence_ratio: float = 20.0
    guard_divergence_patience: int = 2
    guard_backoff: float = 0.5
    guard_gamma_inflate: float = 2.0

    # Multi-core execution (repro.parallel): number of worker processes
    # for the density/wirelength evaluations.  1 = serial (the default;
    # the REPRO_WORKERS env var can override it), 0 = one per CPU.
    # ``deterministic=True`` keeps every floating-point reduction in the
    # parent in serial order, so placements are bit-identical to
    # workers=1 for any worker count; False lets workers pre-reduce
    # their shard (reproducible per worker count only).
    workers: int = 1
    # Pin the worker count to ``workers`` exactly: never consult the
    # REPRO_WORKERS env var.  Job engines running several flows on one
    # host set this so per-job counts stay explicit and concurrent jobs
    # cannot oversubscribe cores (see resolve_workers(env=...)).
    workers_pinned: bool = False
    deterministic: bool = True

    # Misc.
    seed: int = 7
    verbose: bool = False
    # Golden-equivalence mode: run the original (pre-overhaul) wirelength,
    # density, CG, and objective-assembly implementations verbatim.  The
    # optimized default must produce bit-identical objective values,
    # gradients, and final placements; tests and bench_gp_perf.py assert it.
    reference: bool = False
