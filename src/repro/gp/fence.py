"""Fence-region handling during and after global placement.

During the analytical phase fenced cells feel a quadratic pull toward the
nearest interior point of their region — a soft constraint whose weight
grows with the density penalty, so cells drift in as the placement
spreads.  After the phase, :func:`project_into_fences` snaps any remaining
offender hard inside (legalization keeps them there).
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Point


class FencePenalty:
    """Quadratic distance-to-fence penalty, vectorized per region."""

    def __init__(self, design):
        self.design = design
        self.num_nodes = len(design.nodes)
        # Per region: member node indices and their half-sizes.
        self.groups = []
        region_members = {}
        for node in design.nodes:
            if node.region is not None and node.is_movable:
                region_members.setdefault(node.region, []).append(node.index)
        for rid, members in sorted(region_members.items()):
            region = design.regions[rid]
            idx = np.asarray(members, dtype=np.int64)
            hw = np.array([design.nodes[i].placed_width / 2 for i in members])
            hh = np.array([design.nodes[i].placed_height / 2 for i in members])
            self.groups.append((region, idx, hw, hh))

    @property
    def active(self) -> bool:
        return bool(self.groups)

    def targets(self, cx: np.ndarray, cy: np.ndarray):
        """Nearest in-fence centre for every fenced node.

        Shrinks each member rectangle by the cell's half-size so the
        *outline*, not just the centre, ends up inside.  Returns
        ``(idx, tx, ty)`` concatenated over regions.
        """
        all_idx, all_tx, all_ty = [], [], []
        for region, idx, hw, hh in self.groups:
            tx = np.empty(len(idx))
            ty = np.empty(len(idx))
            best = np.full(len(idx), np.inf)
            for rect in region.rects:
                # Candidate clamp against this member rect, vectorized.
                lo_x = np.minimum(rect.xl + hw, rect.xh - hw)
                hi_x = np.maximum(rect.xl + hw, rect.xh - hw)
                lo_y = np.minimum(rect.yl + hh, rect.yh - hh)
                hi_y = np.maximum(rect.yl + hh, rect.yh - hh)
                cand_x = np.clip(cx[idx], lo_x, hi_x)
                cand_y = np.clip(cy[idx], lo_y, hi_y)
                dist = (cand_x - cx[idx]) ** 2 + (cand_y - cy[idx]) ** 2
                better = dist < best
                tx[better] = cand_x[better]
                ty[better] = cand_y[better]
                best[better] = dist[better]
            all_idx.append(idx)
            all_tx.append(tx)
            all_ty.append(ty)
        return (
            np.concatenate(all_idx),
            np.concatenate(all_tx),
            np.concatenate(all_ty),
        )

    def value_grad(self, cx: np.ndarray, cy: np.ndarray):
        """``sum ||c - t||^2`` over fenced nodes and its gradient."""
        grad_x = np.zeros(self.num_nodes)
        grad_y = np.zeros(self.num_nodes)
        if not self.groups:
            return 0.0, grad_x, grad_y
        idx, tx, ty = self.targets(cx, cy)
        dx = cx[idx] - tx
        dy = cy[idx] - ty
        value = float(np.sum(dx * dx + dy * dy))
        grad_x[idx] = 2.0 * dx
        grad_y[idx] = 2.0 * dy
        return value, grad_x, grad_y

    def value(self, cx: np.ndarray, cy: np.ndarray) -> float:
        return self.value_grad(cx, cy)[0]


def fence_violation(design) -> tuple:
    """(#fenced cells outside their region, total outside distance).

    The compliance metric plotted by the fence figure.
    """
    count = 0
    total = 0.0
    for node in design.nodes:
        if node.region is None or not node.is_movable:
            continue
        region = design.regions[node.region]
        if region.contains_rect(node.rect):
            continue
        count += 1
        p = region.clamp_point(Point(node.cx, node.cy))
        total += (Point(node.cx, node.cy) - p).norm()
    return count, total


def project_into_fences(design) -> int:
    """Hard-snap every fenced movable node inside its region.

    Returns the number of nodes moved.  Uses the member rectangle whose
    clamp displaces the node least.
    """
    moved = 0
    for node in design.nodes:
        if node.region is None or not node.is_movable:
            continue
        region = design.regions[node.region]
        rect = node.rect
        if region.contains_rect(rect):
            continue
        origin = region.clamp_rect_origin(rect)
        node.x, node.y = origin.x, origin.y
        moved += 1
    return moved
