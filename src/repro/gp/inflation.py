"""Congestion-driven cell inflation.

The paper's routability lever: cells sitting in congested tiles have
their *spreading* area (the area the density model uses — physical sizes
are untouched) multiplied by a factor growing with local congestion, so
the density penalty itself pushes logic out of routing hotspots and
reserves whitespace for wires.

Congestion is estimated without routing: RUDY wire demand plus a weighted
pin-density term, divided by the tile's routing supply from the design's
:class:`~repro.route.RoutingSpec`.  (The evaluation router is reserved
for scoring; the in-loop estimate must be cheap.)
"""

from __future__ import annotations

import numpy as np

from repro.route.rudy import pin_density_map, rudy_map


class CongestionInflator:
    """Maintains per-node inflated areas across placement iterations."""

    def __init__(
        self,
        design,
        *,
        exponent: float = 1.4,
        max_inflation: float = 2.5,
        total_max: float = 1.25,
        threshold: float = 0.8,
        pin_weight: float = 0.5,
        wire_width: float = 1.0,
        estimator: str = "rudy",
        reference: bool = False,
    ):
        if design.routing is None:
            raise ValueError("congestion inflation requires design.routing")
        if estimator not in ("rudy", "router"):
            raise ValueError(f"unknown congestion estimator {estimator!r}")
        self.design = design
        self.spec = design.routing
        self.exponent = exponent
        self.max_inflation = max_inflation
        self.total_max = total_max
        self.threshold = threshold
        self.pin_weight = pin_weight
        self.wire_width = wire_width
        self.estimator = estimator
        self.reference = bool(reference)
        w, h = design.placed_sizes()
        self.base_areas = w * h
        self.factors = np.ones(len(design.nodes))
        grid = self.spec.grid
        # Per-tile supply density: tracks crossing the tile per unit area.
        self.supply = (
            (self.spec.hcap * grid.bin_h + self.spec.vcap * grid.bin_w)
            / grid.bin_area
        )
        # Average pin demand contribution, calibrated once per design.
        self._pin_norm = None
        # Look-ahead router, built lazily and reused across calls so the
        # decomposition memo stays warm between placement iterations.
        self._lookahead_router = None

    def congestion_map(self, arrays, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        """Estimated demand/supply per routing tile.

        With ``estimator="router"`` a fast pattern-only global route of
        the current positions supplies the map (the paper's look-ahead
        routing); the default RUDY estimate is cheaper and sufficient on
        the bundled suite.
        """
        if self.estimator == "router":
            return self._router_map(arrays, cx, cy)
        grid = self.spec.grid
        demand = rudy_map(
            arrays, cx, cy, grid, wire_width=self.wire_width, reference=self.reference
        )
        pins = pin_density_map(arrays, cx, cy, grid)
        if self._pin_norm is None:
            mean_pin = float(pins.mean())
            mean_demand = float(demand.mean())
            self._pin_norm = (
                mean_demand / mean_pin if mean_pin > 0 else 0.0
            )
        demand = demand + self.pin_weight * self._pin_norm * pins
        with np.errstate(divide="ignore", invalid="ignore"):
            cong = np.where(self.supply > 0, demand / np.maximum(self.supply, 1e-12), 0.0)
        return cong

    def _router_map(self, arrays, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        """Look-ahead routing: one pattern-only route, tile congestion."""
        from repro.route.router import GlobalRouter

        if self._lookahead_router is None:
            self._lookahead_router = GlobalRouter(
                self.spec, sweeps=1, z_refine=False, maze_rounds=0
            )
        result = self._lookahead_router.route(arrays=arrays, cx=cx, cy=cy)
        return result.congestion_map()

    def update(self, arrays, cx: np.ndarray, cy: np.ndarray, movable_mask) -> np.ndarray:
        """Recompute inflation factors; returns new spreading areas.

        Factors are monotone non-decreasing across calls (the classic
        ratchet that prevents oscillation), bounded per cell and in total.
        """
        grid = self.spec.grid
        cong = self.congestion_map(arrays, cx, cy)
        local = grid.bilinear_sample(cong, cx, cy)
        over = np.maximum(local / self.threshold, 1.0)
        new_factor = np.minimum(over**self.exponent, self.max_inflation)
        self.factors = np.maximum(self.factors, np.where(movable_mask, new_factor, 1.0))
        # Respect the whitespace budget: scale back excess uniformly.
        base_total = float(self.base_areas[movable_mask].sum())
        inflated_total = float(
            (self.base_areas * self.factors)[movable_mask].sum()
        )
        budget = self.total_max * base_total
        if inflated_total > budget and inflated_total > base_total:
            # Shrink the inflation *excess* to fit the budget.
            excess = self.factors - 1.0
            scale = (budget - base_total) / (inflated_total - base_total)
            self.factors = 1.0 + excess * max(0.0, scale)
        return self.base_areas * self.factors

    @property
    def mean_inflation(self) -> float:
        return float(self.factors.mean())
