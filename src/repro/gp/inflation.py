"""Congestion-driven cell inflation.

The paper's routability lever: cells sitting in congested tiles have
their *spreading* area (the area the density model uses — physical sizes
are untouched) multiplied by a factor growing with local congestion, so
the density penalty itself pushes logic out of routing hotspots and
reserves whitespace for wires.

Three congestion estimators feed the loop:

* ``"rudy"`` — RUDY wire demand plus a weighted pin-density term over
  the tile's routing supply; no routing, cheapest, the default.
* ``"router"`` — one pattern-only look-ahead route per round (the
  paper's look-ahead routing); most faithful, dominates GP wall time.
* ``"hybrid"`` — the learned predictor (:mod:`repro.predict`) answers
  every round, the real router only every ``router_interval``-th round
  plus a final check; measured drift between the two beyond
  ``drift_tol`` permanently falls the loop back to the router.
"""

from __future__ import annotations

import numpy as np

from repro.obs import get_tracer
from repro.resilience.faults import check_fault
from repro.route.rudy import pin_density_map, rudy_map

#: Metric namespace for the estimator counters/series below.
_METRIC = "gp.inflation"


class CongestionInflator:
    """Maintains per-node inflated areas across placement iterations."""

    def __init__(
        self,
        design,
        *,
        exponent: float = 1.4,
        max_inflation: float = 2.5,
        total_max: float = 1.25,
        threshold: float = 0.8,
        pin_weight: float = 0.5,
        wire_width: float = 1.0,
        estimator: str = "rudy",
        predict_model: str | None = None,
        router_interval: int = 4,
        drift_tol: float = 0.75,
        reference: bool = False,
    ):
        if design.routing is None:
            raise ValueError("congestion inflation requires design.routing")
        if estimator not in ("rudy", "router", "hybrid"):
            raise ValueError(f"unknown congestion estimator {estimator!r}")
        self.design = design
        self.spec = design.routing
        self.exponent = exponent
        self.max_inflation = max_inflation
        self.total_max = total_max
        self.threshold = threshold
        self.pin_weight = pin_weight
        self.wire_width = wire_width
        self.estimator = estimator
        self.predict_model = predict_model
        self.router_interval = max(1, int(router_interval))
        self.drift_tol = float(drift_tol)
        self.reference = bool(reference)
        w, h = design.placed_sizes()
        self.base_areas = w * h
        self.factors = np.ones(len(design.nodes))
        grid = self.spec.grid
        # Per-tile supply density and the per-design pin calibration are
        # shared through ``design.congestion_calibration``: every
        # inflator bound to this design (flat GP, post-macro refinement,
        # net weighting) reuses the one-time computation, and the flow
        # checkpoints the dict so a resumed run restores the exact
        # doubles instead of recomputing them.
        cal = getattr(design, "congestion_calibration", None)
        if not isinstance(cal, dict):
            cal = {}
            design.congestion_calibration = cal
        supply = cal.get("supply")
        if supply is not None and np.shape(supply) == (grid.nx, grid.ny):
            self.supply = np.asarray(supply, dtype=float)
        else:
            # Tracks crossing the tile per unit area.
            self.supply = (
                (self.spec.hcap * grid.bin_h + self.spec.vcap * grid.bin_w)
                / grid.bin_area
            )
            cal["supply"] = self.supply
        # Average pin demand contribution, calibrated once per design
        # (only valid for the wire width it was measured with).
        self._pin_norm = None
        if cal.get("pin_norm") is not None and cal.get("wire_width") == wire_width:
            self._pin_norm = float(cal["pin_norm"])
        # Look-ahead router, built lazily and reused across calls so the
        # decomposition memo stays warm between placement iterations.
        self._lookahead_router = None
        # Learned predictor state (estimator="hybrid").
        self._predictor = None
        self._extractor = None
        self._round = 0
        self.hybrid_stats = {
            "predictor_rounds": 0,
            "router_rounds": 0,
            "fallback_round": None,
            "final_drift": None,
        }
        # Reused scratch grids for the RUDY estimate (allocated lazily;
        # the golden reference path keeps the original allocating code).
        self._rudy_buf = None
        self._pin_buf = None
        self._pin_term = None
        self._supply_floor = None
        self._supply_zero = None

    # ------------------------------------------------------------------
    # estimators
    # ------------------------------------------------------------------
    def congestion_map(self, arrays, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        """Estimated demand/supply per routing tile.

        With ``estimator="router"`` a fast pattern-only global route of
        the current positions supplies the map (the paper's look-ahead
        routing); ``"hybrid"`` serves the learned prediction with
        periodic router rounds; the default RUDY estimate is cheaper and
        sufficient on the bundled suite.  The returned array may be a
        reused buffer — treat it as read-only and consumed before the
        next call.
        """
        if self.estimator == "router":
            return self._router_map(arrays, cx, cy)
        if self.estimator == "hybrid":
            return self._hybrid_map(arrays, cx, cy)
        return self._rudy_map(arrays, cx, cy)

    def _rudy_map(self, arrays, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        grid = self.spec.grid
        if self.reference:
            # Original allocating path, kept verbatim for golden mode.
            demand = rudy_map(
                arrays, cx, cy, grid, wire_width=self.wire_width, reference=True
            )
            pins = pin_density_map(arrays, cx, cy, grid)
            self._calibrate(demand, pins)
            demand = demand + self.pin_weight * self._pin_norm * pins
            with np.errstate(divide="ignore", invalid="ignore"):
                cong = np.where(
                    self.supply > 0, demand / np.maximum(self.supply, 1e-12), 0.0
                )
            return cong
        if self._rudy_buf is None:
            self._rudy_buf = grid.zeros()
            self._pin_buf = grid.zeros()
            self._pin_term = grid.zeros()
            self._supply_floor = np.maximum(self.supply, 1e-12)
            self._supply_zero = ~(self.supply > 0)
        demand = rudy_map(
            arrays, cx, cy, grid, wire_width=self.wire_width, out=self._rudy_buf
        )
        pins = pin_density_map(arrays, cx, cy, grid, out=self._pin_buf)
        self._calibrate(demand, pins)
        # In-place assembly, term-for-term identical to the reference
        # expression: (scalar * pins) added to demand, then the masked
        # divide by the floored supply.
        np.multiply(pins, self.pin_weight * self._pin_norm, out=self._pin_term)
        demand += self._pin_term
        with np.errstate(divide="ignore", invalid="ignore"):
            np.divide(demand, self._supply_floor, out=demand)
        np.copyto(demand, 0.0, where=self._supply_zero)
        return demand

    def _calibrate(self, demand: np.ndarray, pins: np.ndarray) -> None:
        if self._pin_norm is not None:
            return
        mean_pin = float(pins.mean())
        mean_demand = float(demand.mean())
        self._pin_norm = mean_demand / mean_pin if mean_pin > 0 else 0.0
        cal = self.design.congestion_calibration
        cal["pin_norm"] = self._pin_norm
        cal["wire_width"] = self.wire_width

    def _router_map(self, arrays, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        """Look-ahead routing: one pattern-only route, tile congestion."""
        from repro.route.router import GlobalRouter

        if self._lookahead_router is None:
            self._lookahead_router = GlobalRouter(
                self.spec, sweeps=1, z_refine=False, maze_rounds=0
            )
        result = self._lookahead_router.route(arrays=arrays, cx=cx, cy=cy)
        return result.congestion_map()

    # -- hybrid (learned predictor + periodic router) -------------------
    def _predict_map(self, arrays, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        if self._predictor is None:
            from repro.predict import FeatureExtractor, load_predictor

            self._predictor = load_predictor(self.predict_model)
            self._extractor = FeatureExtractor(
                self.spec, wire_width=self.wire_width
            )
        X = self._extractor.compute(arrays, cx, cy)
        pred = self._predictor.predict(X)
        fault = check_fault("predict.drift")
        if fault is not None:
            # Chaos drill: poison the prediction so the drift detector
            # must notice and fall back (value = added congestion).
            pred = pred + (10.0 if fault.value is None else float(fault.value))
        grid = self.spec.grid
        return pred.reshape(grid.nx, grid.ny)

    def _drift(self, predicted: np.ndarray, routed: np.ndarray) -> float:
        """Mean |predicted - routed| over tiles either map calls hot."""
        hot = (routed >= self.threshold) | (predicted >= self.threshold)
        if not hot.any():
            return 0.0
        return float(np.abs(predicted - routed)[hot].mean())

    @property
    def fallback_active(self) -> bool:
        return self.hybrid_stats["fallback_round"] is not None

    def _hybrid_map(self, arrays, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        tracer = get_tracer()
        metrics = tracer.metrics
        rnd = self._round
        self._round += 1
        if self.fallback_active:
            self.hybrid_stats["router_rounds"] += 1
            metrics.counter(_METRIC + ".router_rounds").inc()
            with tracer.span("lookahead_route"):
                return self._router_map(arrays, cx, cy)
        if rnd % self.router_interval == 0:
            # Router round: serve the routed truth and measure how far
            # the predictor would have been from it.
            with tracer.span("lookahead_route"):
                routed = self._router_map(arrays, cx, cy)
            with tracer.span("predict"):
                predicted = self._predict_map(arrays, cx, cy)
            drift = self._drift(predicted, routed)
            self.hybrid_stats["router_rounds"] += 1
            metrics.counter(_METRIC + ".router_rounds").inc()
            metrics.record(_METRIC + ".drift", rnd, drift)
            if drift > self.drift_tol:
                self.hybrid_stats["fallback_round"] = rnd
                metrics.counter(_METRIC + ".drift_fallbacks").inc()
                tracer.event(
                    "inflation.drift_fallback",
                    round=rnd,
                    drift=drift,
                    tolerance=self.drift_tol,
                )
            return routed
        with tracer.span("predict"):
            predicted = self._predict_map(arrays, cx, cy)
        self.hybrid_stats["predictor_rounds"] += 1
        metrics.counter(_METRIC + ".predictor_rounds").inc()
        return predicted

    @property
    def wants_final_check(self) -> bool:
        """Whether the placer should run one last router validation."""
        return (
            self.estimator == "hybrid"
            and self.hybrid_stats["predictor_rounds"] > 0
            and not self.fallback_active
        )

    def final_router_check(self, arrays, cx: np.ndarray, cy: np.ndarray) -> float:
        """One real route at the final positions; records residual drift.

        The hybrid loop may have ratcheted on predictions between router
        rounds — this closes the loop with the ground truth so the run
        record carries the realized prediction error.
        """
        tracer = get_tracer()
        with tracer.span("lookahead_route"):
            routed = self._router_map(arrays, cx, cy)
        with tracer.span("predict"):
            predicted = self._predict_map(arrays, cx, cy)
        drift = self._drift(predicted, routed)
        self.hybrid_stats["final_drift"] = drift
        tracer.metrics.record(_METRIC + ".final_drift", self._round, drift)
        tracer.event("inflation.final_check", drift=drift)
        return drift

    # ------------------------------------------------------------------
    def update(self, arrays, cx: np.ndarray, cy: np.ndarray, movable_mask) -> np.ndarray:
        """Recompute inflation factors; returns new spreading areas.

        Factors are monotone non-decreasing across calls (the classic
        ratchet that prevents oscillation), bounded per cell and in total.
        """
        grid = self.spec.grid
        cong = self.congestion_map(arrays, cx, cy)
        local = grid.bilinear_sample(cong, cx, cy)
        over = np.maximum(local / self.threshold, 1.0)
        new_factor = np.minimum(over**self.exponent, self.max_inflation)
        self.factors = np.maximum(self.factors, np.where(movable_mask, new_factor, 1.0))
        # Respect the whitespace budget: scale back excess uniformly.
        base_total = float(self.base_areas[movable_mask].sum())
        inflated_total = float(
            (self.base_areas * self.factors)[movable_mask].sum()
        )
        budget = self.total_max * base_total
        if inflated_total > budget and inflated_total > base_total:
            # Shrink the inflation *excess* to fit the budget.
            excess = self.factors - 1.0
            scale = (budget - base_total) / (inflated_total - base_total)
            self.factors = 1.0 + excess * max(0.0, scale)
        return self.base_areas * self.factors

    @property
    def mean_inflation(self) -> float:
        return float(self.factors.mean())
