"""Initial placement for global placement.

Movable nodes start near the centroid of the fixed pins they connect to
(terminals pull their logic toward the right edge of the die), falling
back to the core centre, with a small deterministic jitter to break the
symmetry the nonlinear objective cannot.  Fenced cells start inside their
fence.  Macros are spread on a coarse grid so their density kernels do
not stack.
"""

from __future__ import annotations

import numpy as np

from repro.db import Design, NodeKind


def initial_placement(design: Design, seed: int = 7) -> None:
    """Mutates ``design`` in place."""
    rng = np.random.default_rng(seed)
    core = design.core
    center = core.center
    jitter_x = 0.02 * core.width
    jitter_y = 0.02 * core.height

    # Centroid of fixed pins per node, one connectivity hop.
    fixed_pull = {}
    for net in design.nets:
        fixed_positions = [
            (design.nodes[p.node].cx, design.nodes[p.node].cy)
            for p in net.pins
            if not design.nodes[p.node].is_movable
        ]
        if not fixed_positions:
            continue
        fx = sum(p[0] for p in fixed_positions) / len(fixed_positions)
        fy = sum(p[1] for p in fixed_positions) / len(fixed_positions)
        for p in net.pins:
            node = design.nodes[p.node]
            if node.is_movable:
                sx, sy, c = fixed_pull.get(p.node, (0.0, 0.0, 0))
                fixed_pull[p.node] = (sx + fx, sy + fy, c + 1)

    macros = [n for n in design.nodes if n.kind is NodeKind.MACRO]
    _spread_macros(design, macros, rng)

    for node in design.nodes:
        if not node.is_movable or node.kind is NodeKind.MACRO:
            continue
        if node.index in fixed_pull:
            sx, sy, c = fixed_pull[node.index]
            # Blend toward the centre: fixed pins should bias, not pin.
            tx = 0.5 * (sx / c) + 0.5 * center.x
            ty = 0.5 * (sy / c) + 0.5 * center.y
        else:
            tx, ty = center.x, center.y
        tx += float(rng.uniform(-jitter_x, jitter_x))
        ty += float(rng.uniform(-jitter_y, jitter_y))
        if node.region is not None:
            region = design.regions[node.region]
            p = region.clamp_point(type(center)(tx, ty))
            tx, ty = p.x, p.y
        node.move_center_to(tx, ty)
        _clamp_into_core(node, core)


def _spread_macros(design: Design, macros, rng) -> None:
    """Distribute macros over a coarse grid away from fixed blockages."""
    if not macros:
        return
    core = design.core
    k = int(np.ceil(np.sqrt(len(macros))))
    slots = []
    for i in range(k):
        for j in range(k):
            slots.append(
                (
                    core.xl + (i + 0.5) * core.width / k,
                    core.yl + (j + 0.5) * core.height / k,
                )
            )
    order = rng.permutation(len(slots))
    for node, s in zip(macros, order):
        x, y = slots[int(s)]
        node.move_center_to(x, y)
        _clamp_into_core(node, core)


def _clamp_into_core(node, core) -> None:
    origin = core.clamp_rect_origin(node.rect)
    node.x, node.y = origin.x, origin.y
