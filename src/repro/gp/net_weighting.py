"""Congestion-driven net weighting.

A complementary routability lever to cell inflation: nets whose bounding
boxes cross congested tiles get their weights raised, so the wirelength
objective itself preferentially shortens (and thereby re-routes) the
wires feeding hotspots.  Applied between placement passes — weights are
netlist state, so the caller re-runs (or warm-continues) the placer
afterwards.
"""

from __future__ import annotations

import numpy as np

from repro.wirelength.hpwl import net_bounding_boxes


def congestion_over_boxes(design, congestion: np.ndarray) -> np.ndarray:
    """Mean congestion seen by each net's bounding box.

    ``congestion`` is a per-tile map over ``design.routing.grid``.
    Returns one value per net (0 for degenerate nets).
    """
    if design.routing is None:
        raise ValueError("net weighting requires design.routing")
    grid = design.routing.grid
    arrays = design.pin_arrays()
    cx, cy = design.pull_centers()
    xl, yl, xh, yh = net_bounding_boxes(arrays, cx, cy)
    counts = np.diff(arrays.net_ptr)
    out = np.zeros(arrays.num_nets)
    for n in np.flatnonzero(counts >= 2):
        ix0, iy0 = grid.index_of(xl[n], yl[n])
        ix1, iy1 = grid.index_of(xh[n], yh[n])
        window = congestion[int(ix0) : int(ix1) + 1, int(iy0) : int(iy1) + 1]
        if window.size:
            out[n] = float(window.mean())
    return out


def apply_congestion_net_weights(
    design,
    congestion: np.ndarray,
    *,
    threshold: float = 0.8,
    strength: float = 1.0,
    max_weight: float = 4.0,
) -> int:
    """Raise weights of nets over congested tiles; returns nets touched.

    ``new_weight = min(max_weight, weight * (1 + strength * max(0,
    c/threshold - 1)))`` with ``c`` the mean congestion over the net's
    box.  Monotone (weights never decrease), so repeated application
    ratchets like cell inflation.
    """
    levels = congestion_over_boxes(design, congestion)
    touched = 0
    for net, c in zip(design.nets, levels):
        over = max(0.0, c / threshold - 1.0)
        if over <= 0:
            continue
        new_weight = min(max_weight, net.weight * (1.0 + strength * over))
        if new_weight > net.weight:
            net.weight = new_weight
            touched += 1
    if touched:
        design._topology_version += 1  # invalidate cached pin arrays
    return touched
