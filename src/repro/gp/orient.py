"""Macro orientation optimization.

The unified mixed-size placement paper introduces *rotation* and
*flipping* forces that steer each macro toward the orientation its net
connections prefer.  This module implements the discrete equivalent used
at the end of (and periodically during) global placement: for every
movable macro, evaluate the exact HPWL of its incident nets under all
eight orientations about its current centre and commit the best.  With
macros' neighbours fixed, this *is* the optimum of the rotation force's
objective, without the soft-force machinery.
"""

from __future__ import annotations

from repro.db import Design, NodeKind
from repro.geometry import Orientation, transform_offset


def incident_nets(design: Design, node) -> list:
    """Indices of nets touching ``node``."""
    return sorted({pin.net for pin in node.pins})


def _net_hpwl_with_orientation(design, net, macro_index, orient) -> float:
    """HPWL of ``net`` if the macro took ``orient`` (about its centre)."""
    macro = design.nodes[macro_index]
    xs, ys = [], []
    for pin in net.pins:
        node = design.nodes[pin.node]
        if pin.node == macro_index:
            dx, dy = transform_offset(pin.dx, pin.dy, orient)
        else:
            dx, dy = transform_offset(pin.dx, pin.dy, node.orientation)
        xs.append(node.cx + dx)
        ys.append(node.cy + dy)
    if not xs:
        return 0.0
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def best_orientation(design: Design, node, candidates=None):
    """The orientation minimizing incident HPWL and its cost.

    Only 90-degree-compatible candidates are considered by default (all
    eight orientations; square macros gain from every one, non-square
    macros from rotations too since placement is still global/overlappy).
    """
    if candidates is None:
        candidates = list(Orientation)
    nets = incident_nets(design, node)
    best = node.orientation
    best_cost = float("inf")
    for orient in candidates:
        cost = sum(
            design.nets[n].weight
            * _net_hpwl_with_orientation(design, design.nets[n], node.index, orient)
            for n in nets
        )
        if cost < best_cost - 1e-12:
            best_cost = cost
            best = orient
    return best, best_cost


def optimize_macro_orientations(
    design: Design, *, allow_rotation: bool = True, allow_flip: bool = True
) -> int:
    """One orientation pass over every movable macro.

    Returns the number of macros whose orientation changed.  Rotations
    swap the outline about the centre; the caller re-pulls positions
    afterwards (pin caches invalidate automatically).
    """
    candidates = []
    for orient in Orientation:
        if not allow_rotation and orient.rotation != 0:
            continue
        if not allow_flip and orient.is_flipped:
            continue
        candidates.append(orient)
    changed = 0
    for node in design.nodes:
        if node.kind is not NodeKind.MACRO:
            continue
        best, _ = best_orientation(design, node, candidates)
        if best is not node.orientation:
            design.set_orientation(node, best)
            changed += 1
    return changed
