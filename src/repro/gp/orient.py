"""Macro orientation optimization.

The unified mixed-size placement paper introduces *rotation* and
*flipping* forces that steer each macro toward the orientation its net
connections prefer.  This module implements the discrete equivalent used
at the end of (and periodically during) global placement: for every
movable macro, evaluate the exact HPWL of its incident nets under all
eight orientations about its current centre and commit the best.  With
macros' neighbours fixed, this *is* the optimum of the rotation force's
objective, without the soft-force machinery.
"""

from __future__ import annotations

import numpy as np

from repro.db import Design, NodeKind
from repro.geometry import Orientation, transform_offset


def incident_nets(design: Design, node) -> list:
    """Indices of nets touching ``node``."""
    return sorted({pin.net for pin in node.pins})


def _net_hpwl_with_orientation(design, net, macro_index, orient) -> float:
    """HPWL of ``net`` if the macro took ``orient`` (about its centre)."""
    macro = design.nodes[macro_index]
    xs, ys = [], []
    for pin in net.pins:
        node = design.nodes[pin.node]
        if pin.node == macro_index:
            dx, dy = transform_offset(pin.dx, pin.dy, orient)
        else:
            dx, dy = transform_offset(pin.dx, pin.dy, node.orientation)
        xs.append(node.cx + dx)
        ys.append(node.cy + dy)
    if not xs:
        return 0.0
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def best_orientation(design: Design, node, candidates=None):
    """The orientation minimizing incident HPWL and its cost.

    Only 90-degree-compatible candidates are considered by default (all
    eight orientations; square macros gain from every one, non-square
    macros from rotations too since placement is still global/overlappy).
    """
    if candidates is None:
        candidates = list(Orientation)
    nets = incident_nets(design, node)
    best = node.orientation
    best_cost = float("inf")
    for orient in candidates:
        cost = sum(
            design.nets[n].weight
            * _net_hpwl_with_orientation(design, design.nets[n], node.index, orient)
            for n in nets
        )
        if cost < best_cost - 1e-12:
            best_cost = cost
            best = orient
    return best, best_cost


def _best_orientation_fast(design: Design, node, candidates):
    """Vectorized :func:`best_orientation`; identical decisions.

    Pin coordinates of the macro's incident nets are gathered once
    (neighbours do not move between candidates), each candidate only
    refreshes the macro's own pins, and the per-net extrema come from one
    ``reduceat`` pass.  Every per-pin coordinate is produced by the same
    scalar arithmetic as the loop version, and the cost is accumulated in
    the same net order, so the candidate comparisons see the same values.
    """
    nets = incident_nets(design, node)
    if not nets:
        # Zero incident cost: the loop version commits the first candidate.
        return (candidates[0], 0.0) if candidates else (node.orientation, float("inf"))
    macro_index = node.index
    ucx, ucy = node.cx, node.cy
    starts = []
    weights = []
    fx, fy = [], []
    self_slots = []
    k = 0
    for n in nets:
        net = design.nets[n]
        starts.append(k)
        weights.append(net.weight)
        for pin in net.pins:
            if pin.node == macro_index:
                self_slots.append((k, pin.dx, pin.dy))
                fx.append(0.0)
                fy.append(0.0)
            else:
                other = design.nodes[pin.node]
                dx, dy = transform_offset(pin.dx, pin.dy, other.orientation)
                fx.append(other.cx + dx)
                fy.append(other.cy + dy)
            k += 1
    px = np.array(fx)
    py = np.array(fy)
    starts = np.array(starts, dtype=np.int64)
    num_nets = len(nets)
    best = node.orientation
    best_cost = float("inf")
    for orient in candidates:
        for slot, pdx, pdy in self_slots:
            dx, dy = transform_offset(pdx, pdy, orient)
            px[slot] = ucx + dx
            py[slot] = ucy + dy
        hp = (
            np.maximum.reduceat(px, starts) - np.minimum.reduceat(px, starts)
        ) + (np.maximum.reduceat(py, starts) - np.minimum.reduceat(py, starts))
        cost = 0.0
        for j in range(num_nets):
            cost += weights[j] * float(hp[j])
        if cost < best_cost - 1e-12:
            best_cost = cost
            best = orient
    return best, best_cost


def optimize_macro_orientations(
    design: Design,
    *,
    allow_rotation: bool = True,
    allow_flip: bool = True,
    reference: bool = False,
) -> int:
    """One orientation pass over every movable macro.

    Returns the number of macros whose orientation changed.  Rotations
    swap the outline about the centre; the caller re-pulls positions
    afterwards (pin caches invalidate automatically).  ``reference=True``
    evaluates candidates with the original per-pin loop; the default uses
    the vectorized evaluation, which commits the same orientations.
    """
    candidates = []
    for orient in Orientation:
        if not allow_rotation and orient.rotation != 0:
            continue
        if not allow_flip and orient.is_flipped:
            continue
        candidates.append(orient)
    evaluate = best_orientation if reference else _best_orientation_fast
    changed = 0
    for node in design.nodes:
        if node.kind is not NodeKind.MACRO:
            continue
        best, _ = evaluate(design, node, candidates)
        if best is not node.orientation:
            design.set_orientation(node, best)
            changed += 1
    return changed
