"""The routability-driven analytical global placer (NTUplace4h core loop).

Minimizes ``WL + lambda * density (+ mu * fence)`` by projected nonlinear
conjugate gradient, doubling ``lambda`` each outer iteration until the
density overflow target is met.  Routability-driven cell inflation and
macro orientation passes interleave with the outer iterations; an
optional hierarchy-aware clustering V-cycle accelerates large designs.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field

import numpy as np

from repro.db import Design, NodeKind
from repro.density import BellDensity
from repro.gp.clustering import cluster_design
from repro.gp.config import GPConfig
from repro.gp.fence import FencePenalty, project_into_fences
from repro.gp.inflation import CongestionInflator
from repro.gp.initial import initial_placement
from repro.gp.orient import optimize_macro_orientations
from repro.grids import BinGrid
from repro.obs import configure_logging, get_logger, get_tracer
from repro.optim import minimize_cg
from repro.parallel import resolve_workers
from repro.resilience.faults import check_fault, fault_armed
from repro.resilience.guards import NumericalGuard, all_finite
from repro.wirelength import hpwl as exact_hpwl
from repro.wirelength import make_model

_log = get_logger("gp")


@dataclass
class IterationStats:
    """One outer iteration of the GP loop (one row of the Fig-1 curves)."""

    outer: int
    hpwl: float
    smooth_wl: float
    density: float
    overflow: float
    lam: float
    mean_inflation: float
    fence: float = 0.0
    gamma: float = 0.0     # WA/LSE smoothing parameter this iteration
    step: float = 0.0      # last accepted CG line-search step (die units)
    cg_iters: int = 0      # inner CG iterations spent this outer iteration


@dataclass
class GPReport:
    """Outcome of :meth:`GlobalPlacer.place`."""

    iterations: list = field(default_factory=list)
    final_hpwl: float = 0.0
    final_overflow: float = 0.0
    runtime_seconds: float = 0.0
    coarse_iterations: list = field(default_factory=list)
    orientation_changes: int = 0
    fence_projected: int = 0
    guard_rollbacks: int = 0        # numerical-guard recoveries taken
    guard_events: list = field(default_factory=list)  # GuardEvent dicts
    guard_exhausted: bool = False   # retries ran out; kept last-good state
    budget_exhausted: bool = False  # stage watchdog expired mid-descent
    inflation: dict = field(default_factory=dict)  # hybrid-estimator stats

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def telemetry(self) -> dict:
        """Column-oriented per-outer-iteration series (plot-ready)."""
        its = self.iterations
        return {
            "outer": [s.outer for s in its],
            "hpwl": [s.hpwl for s in its],
            "overflow": [s.overflow for s in its],
            "lam": [s.lam for s in its],
            "gamma": [s.gamma for s in its],
            "step": [s.step for s in its],
            "cg_iters": [s.cg_iters for s in its],
            "mean_inflation": [s.mean_inflation for s in its],
            "fence": [s.fence for s in its],
        }


class GlobalPlacer:
    """Analytical global placement over a :class:`~repro.db.Design`."""

    # Namespace for this placer's metric series ("gp.hpwl", ...).  The
    # coarse V-cycle and the flow's post-macro refinement pass override
    # it so their samples don't interleave with the main trajectory.
    metric_prefix = "gp"

    def __init__(self, config: GPConfig | None = None):
        self.config = config or GPConfig()
        self._cleanups: list = []

    # ------------------------------------------------------------------
    def place(
        self, design: Design, *, warm_start: bool = False, watchdog=None
    ) -> GPReport:
        """Run global placement, mutating node positions in ``design``.

        ``watchdog`` is an optional :class:`repro.resilience.StageWatchdog`;
        when its budget expires the outer loop winds down at the next
        iteration boundary and the report is marked ``budget_exhausted``.
        """
        cfg = self.config
        if cfg.verbose:
            configure_logging(logging.INFO)
        tracer = get_tracer()
        t0 = time.perf_counter()
        report = GPReport()
        movable = design.movable_indices()
        if len(movable) == 0:
            report.runtime_seconds = time.perf_counter() - t0
            return report

        if not warm_start:
            with tracer.span("initial"):
                initial_placement(design, seed=cfg.seed)

        if (
            cfg.clustering
            and cfg.cluster_max_levels > 0
            and len(movable) >= cfg.cluster_min_nodes
        ):
            with tracer.span("coarse", level=cfg.cluster_max_levels):
                clustered = cluster_design(design, ratio=cfg.cluster_ratio)
                coarse_placer = GlobalPlacer(self._coarse_config())
                coarse_placer.metric_prefix = self.metric_prefix + ".coarse"
                coarse_report = coarse_placer.place(clustered.coarse)
                # Surface the deepest level's trajectory for inspection.
                report.coarse_iterations = (
                    coarse_report.coarse_iterations or coarse_report.iterations
                )
                clustered.transfer_positions()

        # Parallel-execution resources (worker pool + shared memory)
        # registered by _place_flat; released here even when the descent
        # raises or a watchdog expires so no segments leak.
        self._cleanups: list = []
        try:
            flat = self._place_flat(
                design,
                report,
                warm=bool(report.coarse_iterations) or warm_start,
                watchdog=watchdog,
            )
        finally:
            for cleanup in self._cleanups:
                try:
                    cleanup()
                except Exception:  # cleanup must never mask the descent
                    pass
            self._cleanups = []
        report.final_hpwl = design.hpwl()
        report.final_overflow = flat
        report.runtime_seconds = time.perf_counter() - t0
        return report

    def _coarse_config(self) -> GPConfig:
        cfg = self.config
        coarse = GPConfig(**vars(cfg))
        # Recurse while levels remain; each level halves the budget and
        # relaxes the spreading target (fine levels do the precise work).
        coarse.cluster_max_levels = cfg.cluster_max_levels - 1
        coarse.max_outer_iterations = max(
            4, int(cfg.max_outer_iterations * cfg.coarse_iteration_fraction)
        )
        coarse.optimize_orientations = cfg.optimize_orientations
        coarse.overflow_target = max(cfg.overflow_target, 0.15)
        return coarse

    # ------------------------------------------------------------------
    def _place_flat(
        self, design: Design, report: GPReport, warm: bool, watchdog=None
    ) -> float:
        cfg = self.config
        core = design.core
        movable_mask = design.movable_mask()
        if cfg.freeze_macros:
            movable_mask &= ~design.macro_mask()
        mov = np.flatnonzero(movable_mask)
        m = len(mov)
        if m == 0:
            return self._overflow_design(design)

        grid = self._density_grid(design, len(mov))
        fixed_rects = [
            (n.rect.xl, n.rect.yl, n.rect.xh, n.rect.yh)
            for n in design.nodes
            if n.kind.is_fixed and n.kind.blocks_placement
        ]
        if cfg.freeze_macros:
            fixed_rects += [
                (n.rect.xl, n.rect.yl, n.rect.xh, n.rect.yh)
                for n in design.nodes
                if n.kind is NodeKind.MACRO
            ]

        cx, cy = design.pull_centers()
        widths, heights = design.placed_sizes()
        target_scale = None
        if cfg.routability and cfg.whitespace_reservation and design.routing is not None:
            target_scale = self._reservation_scale(design, grid, cfg.reservation_floor)
        density = BellDensity(
            grid,
            widths,
            heights,
            movable_mask,
            fixed_rects=fixed_rects,
            target_density=cfg.target_density,
            target_scale=target_scale,
            reference=cfg.reference,
        )
        fence = FencePenalty(design)
        inflator = None
        if cfg.routability and design.routing is not None:
            inflator = CongestionInflator(
                design,
                exponent=cfg.inflation_exponent,
                max_inflation=cfg.inflation_max,
                total_max=cfg.inflation_total_max,
                threshold=cfg.congestion_threshold,
                estimator=cfg.congestion_estimator,
                predict_model=cfg.predict_model,
                router_interval=cfg.predict_router_interval,
                drift_tol=cfg.predict_drift_tol,
                reference=cfg.reference,
            )

        gamma = cfg.gamma_factor * max(grid.bin_w, grid.bin_h)
        arrays = design.pin_arrays(reference=cfg.reference)
        wl_model = make_model(
            cfg.wirelength_model,
            arrays,
            len(design.nodes),
            gamma,
            reference=cfg.reference,
        )

        # Multi-core density/wirelength evaluation.  The facades are
        # drop-ins: with deterministic=True every reduction happens in
        # the parent in serial order, so the descent below is bit-
        # identical to workers=1 (reference mode always stays serial —
        # the golden paths never fork).
        workers = (
            1
            if cfg.reference
            else resolve_workers(cfg.workers, env=not cfg.workers_pinned)
        )
        if workers > 1:
            from repro.parallel.gp import ParallelGP

            par_gp = ParallelGP.create(
                density,
                wl_model,
                workers=workers,
                deterministic=cfg.deterministic,
                kind=cfg.wirelength_model.lower(),
            )
            if par_gp is not None:
                self._cleanups.append(par_gp.close)
                density = par_gp.density
                wl_model = par_gp.wl_model

        # Bounds for the projection (centre coordinates).
        half_w = widths[mov] / 2.0
        half_h = heights[mov] / 2.0
        lo_x = core.xl + half_w
        hi_x = np.maximum(core.xh - half_w, lo_x)
        lo_y = core.yl + half_h
        hi_y = np.maximum(core.yh - half_h, lo_y)

        state = {"lam": None, "mu": None}

        def pack() -> np.ndarray:
            return np.concatenate([cx[mov], cy[mov]])

        def unpack(v: np.ndarray) -> None:
            cx[mov] = v[:m]
            cy[mov] = v[m:]

        if cfg.reference:
            # The original objective assembly, kept verbatim: fresh copies
            # in the projection, full-size gradient temporaries, and a
            # concatenate per evaluation.
            def project(v: np.ndarray) -> np.ndarray:
                out = v.copy()
                out[:m] = np.clip(out[:m], lo_x, hi_x)
                out[m:] = np.clip(out[m:], lo_y, hi_y)
                return out

            def objective(v: np.ndarray):
                unpack(v)
                wl_v, wl_gx, wl_gy = wl_model.value_grad(cx, cy)
                d_v, d_gx, d_gy = density.value_grad(cx, cy)
                f = wl_v + state["lam"] * d_v
                gx = wl_gx + state["lam"] * d_gx
                gy = wl_gy + state["lam"] * d_gy
                if fence.active:
                    f_v, f_gx, f_gy = fence.value_grad(cx, cy)
                    f += state["mu"] * f_v
                    gx += state["mu"] * f_gx
                    gy += state["mu"] * f_gy
                return f, np.concatenate([gx[mov], gy[mov]])
        else:
            # Optimized assembly: clip in place (the CG owns its trial
            # buffers), gather movable gradients straight into one reused
            # output vector.  Arithmetic matches the reference term by
            # term, so values and gradients are bit-identical.
            g_buf = np.empty(2 * m)
            t_mov = np.empty(m)

            def project(v: np.ndarray) -> np.ndarray:
                np.clip(v[:m], lo_x, hi_x, out=v[:m])
                np.clip(v[m:], lo_y, hi_y, out=v[m:])
                return v

            def objective(v: np.ndarray):
                unpack(v)
                wl_v, wl_gx, wl_gy = wl_model.value_grad(cx, cy)
                d_v, d_gx, d_gy = density.value_grad(cx, cy)
                lam = state["lam"]
                f = wl_v + lam * d_v
                gx = g_buf[:m]
                gy = g_buf[m:]
                np.take(wl_gx, mov, out=gx)
                np.take(d_gx, mov, out=t_mov)
                np.multiply(t_mov, lam, out=t_mov)
                gx += t_mov
                np.take(wl_gy, mov, out=gy)
                np.take(d_gy, mov, out=t_mov)
                np.multiply(t_mov, lam, out=t_mov)
                gy += t_mov
                if fence.active:
                    f_v, f_gx, f_gy = fence.value_grad(cx, cy)
                    mu = state["mu"]
                    f += mu * f_v
                    np.take(f_gx, mov, out=t_mov)
                    np.multiply(t_mov, mu, out=t_mov)
                    gx += t_mov
                    np.take(f_gy, mov, out=t_mov)
                    np.multiply(t_mov, mu, out=t_mov)
                    gy += t_mov
                return f, g_buf

            # Value/gradient split for the CG line search: rejected trial
            # points only pay for the value half; the gradient of an
            # accepted point is finished from the models' stashed tables
            # with the same op sequence as ``objective``, so the split is
            # bit-identical to a full evaluation.
            fence_cache = [None, None]

            def probe(v: np.ndarray) -> float:
                unpack(v)
                wl_v = wl_model.value_probe(cx, cy)
                d_v = density.value_probe(cx, cy)
                f = wl_v + state["lam"] * d_v
                if fence.active:
                    f_v, f_gx, f_gy = fence.value_grad(cx, cy)
                    f += state["mu"] * f_v
                    fence_cache[0] = f_gx
                    fence_cache[1] = f_gy
                return f

            def finish_grad() -> np.ndarray:
                wl_gx, wl_gy = wl_model.finish_grad()
                d_gx, d_gy = density.finish_grad()
                lam = state["lam"]
                gx = g_buf[:m]
                gy = g_buf[m:]
                np.take(wl_gx, mov, out=gx)
                np.take(d_gx, mov, out=t_mov)
                np.multiply(t_mov, lam, out=t_mov)
                gx += t_mov
                np.take(wl_gy, mov, out=gy)
                np.take(d_gy, mov, out=t_mov)
                np.multiply(t_mov, lam, out=t_mov)
                gy += t_mov
                if fence.active:
                    mu = state["mu"]
                    np.take(fence_cache[0], mov, out=t_mov)
                    np.multiply(t_mov, mu, out=t_mov)
                    gx += t_mov
                    np.take(fence_cache[1], mov, out=t_mov)
                    np.multiply(t_mov, mu, out=t_mov)
                    gy += t_mov
                return g_buf

            objective.probe = probe
            objective.finish_grad = finish_grad

        if fault_armed("gp.nan_gradient"):
            # Deterministic NaN poisoning: the hit index counts full
            # objective evaluations inside the CG.  The wrapper carries no
            # probe/finish_grad attributes, so the CG falls back to full
            # evaluations while the fault is armed — the poison cannot be
            # skipped by the value-only line-search path.
            inner_objective = objective

            def objective(v: np.ndarray):
                f, g = inner_objective(v)
                if check_fault("gp.nan_gradient") is not None:
                    return float("nan"), np.full_like(g, np.nan)
                return f, g

        guard = None
        if cfg.numerical_guard:
            guard = NumericalGuard(
                max_retries=cfg.guard_max_retries,
                divergence_ratio=cfg.guard_divergence_ratio,
                divergence_patience=cfg.guard_divergence_patience,
                backoff=cfg.guard_backoff,
                gamma_inflate=cfg.guard_gamma_inflate,
            )

        # -- initialize the penalty weights from the gradient balance.
        _, wl_gx, wl_gy = wl_model.value_grad(cx, cy)
        _, d_gx, d_gy = density.value_grad(cx, cy)
        wl_norm = float(np.abs(wl_gx[mov]).sum() + np.abs(wl_gy[mov]).sum())
        d_norm = float(np.abs(d_gx[mov]).sum() + np.abs(d_gy[mov]).sum())
        state["lam"] = cfg.lambda_initial_ratio * wl_norm / max(d_norm, 1e-12)
        if fence.active:
            _, f_gx, f_gy = fence.value_grad(cx, cy)
            f_norm = float(np.abs(f_gx[mov]).sum() + np.abs(f_gy[mov]).sum())
            # When every fenced cell already sits inside its region the
            # fence gradient vanishes; floor the normalizer at the
            # gradient a one-bin displacement of all fenced cells would
            # produce, so mu stays finite and the penalty merely *keeps*
            # cells in rather than walling off the line search.
            n_fenced = sum(
                1 for n in design.nodes if n.region is not None and n.is_movable
            )
            floor = 2.0 * max(grid.bin_w, grid.bin_h) * max(n_fenced, 1)
            state["mu"] = cfg.fence_weight_initial_ratio * wl_norm / max(f_norm, floor)
        else:
            state["mu"] = 0.0

        step_init = cfg.step_init_bins * max(grid.bin_w, grid.bin_h)
        step_max = cfg.step_max_bins * max(grid.bin_w, grid.bin_h)
        overflow = self._overflow(
            design, density, cx, cy, widths, heights, mov, reference=cfg.reference
        )
        v = project(pack())
        unpack(v)
        if guard is not None:
            # Seed the rollback target with the pre-descent state so even
            # a poisoned first iteration has somewhere to return to.  The
            # infinite HPWL keeps the divergence tracker disarmed until a
            # real iteration commits.
            guard.commit(
                v,
                gamma=wl_model.gamma,
                step_init=step_init,
                step_max=step_max,
                hpwl=float("inf"),
            )

        tracer = get_tracer()
        metrics = tracer.metrics
        prefix = self.metric_prefix
        for outer in range(cfg.max_outer_iterations):
            with tracer.span(f"iter[{outer}]"):
                if (
                    inflator is not None
                    and overflow <= cfg.inflation_start_overflow
                    and outer % cfg.inflation_interval == 0
                ):
                    with tracer.span("inflation"):
                        areas = inflator.update(arrays, cx, cy, movable_mask)
                        density.set_areas(areas)
                if (
                    cfg.optimize_orientations
                    and not cfg.freeze_macros
                    and outer > 0
                    and outer % cfg.orientation_interval == 0
                ):
                    with tracer.span("orientation"):
                        changed = self._orientation_pass(design, cx, cy)
                    report.orientation_changes += changed
                    if changed:
                        arrays = design.pin_arrays(reference=cfg.reference)
                        if cfg.reference:
                            wl_model = make_model(
                                cfg.wirelength_model,
                                arrays,
                                len(design.nodes),
                                wl_model.gamma,
                                reference=True,
                            )
                        else:
                            # Orientation changes swap pin offsets but keep
                            # the topology: reuse the CSR compaction.
                            wl_model.rebind(arrays)

                with tracer.span("cg"):
                    result = minimize_cg(
                        objective,
                        v,
                        max_iter=cfg.inner_iterations,
                        step_init=step_init,
                        step_max=step_max,
                        project=project,
                        reference=cfg.reference,
                    )
                v = result.x
                unpack(v)
                with tracer.span("gradient"):
                    overflow = self._overflow(
                        design, density, cx, cy, widths, heights, mov,
                        reference=cfg.reference,
                    )
                    wl_exact = exact_hpwl(arrays, cx, cy)
                if guard is not None:
                    poisoned = result.nonfinite or not all_finite(wl_exact, overflow)
                    if poisoned or guard.diverged(wl_exact):
                        reason = "nonfinite" if poisoned else "divergence"
                        detail = (
                            f"f={result.value} |g|={result.grad_norm}"
                            if poisoned
                            else f"hpwl={wl_exact}"
                        )
                        snap = guard.recover(outer, reason, detail)
                        metrics.counter(prefix + ".guard.rollbacks").inc()
                        tracer.event(
                            "guard.rollback",
                            outer=outer,
                            reason=reason,
                            recovered=snap is not None,
                        )
                        _log.warning(
                            "[%s %s] outer=%d %s detected; %s",
                            prefix,
                            design.name,
                            outer,
                            reason,
                            "rolling back" if snap is not None else "retries exhausted",
                        )
                        if snap is None:
                            # No snapshot or retries exhausted: keep the
                            # best state we have and stop cleanly.
                            report.guard_exhausted = True
                            if guard.last_good is not None:
                                v = np.array(guard.last_good.v, copy=True)
                                unpack(v)
                                wl_model.gamma = guard.last_good.gamma
                                overflow = self._overflow(
                                    design, density, cx, cy, widths, heights,
                                    mov, reference=cfg.reference,
                                )
                            break
                        v = np.array(snap.v, copy=True)
                        unpack(v)
                        step_init = snap.step_init
                        step_max = snap.step_max
                        wl_model.gamma = snap.gamma
                        overflow = self._overflow(
                            design, density, cx, cy, widths, heights, mov,
                            reference=cfg.reference,
                        )
                        continue  # retry from the snapshot, same lam/mu
                stats = IterationStats(
                    outer=outer,
                    hpwl=wl_exact,
                    smooth_wl=wl_model.value(cx, cy),
                    density=density.value(cx, cy),
                    overflow=overflow,
                    lam=state["lam"],
                    mean_inflation=inflator.mean_inflation if inflator else 1.0,
                    fence=fence.value(cx, cy) if fence.active else 0.0,
                    gamma=wl_model.gamma,
                    step=result.final_step,
                    cg_iters=result.iterations,
                )
                report.iterations.append(stats)
                metrics.record(prefix + ".hpwl", outer, wl_exact)
                metrics.record(prefix + ".overflow", outer, overflow)
                metrics.record(prefix + ".lam", outer, state["lam"])
                metrics.record(prefix + ".gamma", outer, wl_model.gamma)
                metrics.record(prefix + ".step", outer, result.final_step)
                metrics.record(prefix + ".cg_iters", outer, result.iterations)
                if self.config.verbose or _log.isEnabledFor(logging.DEBUG):
                    _log.log(
                        logging.INFO if self.config.verbose else logging.DEBUG,
                        "[%s %s] outer=%3d hpwl=%12.1f ovfl=%6.3f lam=%9.2e",
                        prefix,
                        design.name,
                        outer,
                        wl_exact,
                        overflow,
                        state["lam"],
                    )
                if guard is not None:
                    guard.commit(
                        v,
                        gamma=wl_model.gamma,
                        step_init=step_init,
                        step_max=step_max,
                        hpwl=wl_exact,
                    )
            if watchdog is not None and watchdog.expired():
                report.budget_exhausted = True
                tracer.event("watchdog.expired", outer=outer, **watchdog.describe())
                _log.warning(
                    "[%s %s] stage budget expired after outer=%d; winding down",
                    prefix,
                    design.name,
                    outer,
                )
                break
            if overflow <= cfg.overflow_target:
                break
            state["lam"] *= cfg.lambda_growth
            if fence.active:
                state["mu"] *= cfg.fence_weight_growth
            if cfg.gamma_decay < 1.0:
                wl_model.gamma = max(
                    wl_model.gamma * cfg.gamma_decay, 0.5 * min(grid.bin_w, grid.bin_h)
                )

        if guard is not None:
            report.guard_rollbacks += guard.rollbacks
            report.guard_events += [e.as_dict() for e in guard.events]
        if inflator is not None:
            if inflator.wants_final_check:
                # Hybrid estimator: close the loop with one real route at
                # the final positions so the run record carries the
                # realized prediction error.
                with tracer.span("inflation"):
                    inflator.final_router_check(arrays, cx, cy)
            if inflator.estimator == "hybrid":
                report.inflation = dict(inflator.hybrid_stats)
        design.push_centers(cx, cy, indices=mov)
        if cfg.optimize_orientations and not cfg.freeze_macros:
            report.orientation_changes += optimize_macro_orientations(
                design, reference=cfg.reference
            )
        report.fence_projected = project_into_fences(design)
        return overflow

    @staticmethod
    def _overflow_design(design: Design) -> float:
        from repro.density import density_overflow

        return density_overflow(design)

    # ------------------------------------------------------------------
    def _orientation_pass(self, design: Design, cx, cy) -> int:
        """Run an orientation pass at the current (array) positions."""
        design.push_centers(cx, cy)
        changed = optimize_macro_orientations(design, reference=self.config.reference)
        if changed:
            ncx, ncy = design.pull_centers()
            cx[:] = ncx
            cy[:] = ncy
        return changed

    @staticmethod
    def _reservation_scale(design: Design, grid: BinGrid, floor: float) -> np.ndarray:
        """Per-density-bin target scale from relative routing supply.

        Bins whose local track supply falls below the die's typical
        supply get proportionally smaller density targets (never below
        ``floor``), reserving whitespace for wires over starved regions —
        the whitespace-reservation mechanism of the paper's stage 1.
        """
        spec = design.routing
        rgrid = spec.grid
        supply = (spec.hcap * rgrid.bin_h + spec.vcap * rgrid.bin_w) / rgrid.bin_area
        median = float(np.median(supply)) if supply.size else 1.0
        if median <= 0:
            return np.ones((grid.nx, grid.ny))
        bx = grid.centers_x()
        by = grid.centers_y()
        xx, yy = np.meshgrid(bx, by, indexing="ij")
        local = rgrid.bilinear_sample(supply, xx.ravel(), yy.ravel()).reshape(
            grid.nx, grid.ny
        )
        # Only clearly starved bins (below 80% of typical supply) give up
        # target capacity; ordinary supply variation is left alone so the
        # reservation does not tax wirelength die-wide.
        scale = np.clip(local / (0.8 * median), floor, 1.0)
        # Feasibility guard: the scaled free space must still hold every
        # movable object with slack, or the density target becomes
        # unsatisfiable and the outer loop can never converge.
        movable = design.movable_area()
        core_area = design.core.area
        fixed = design.fixed_area_in_core()
        free_total = max(core_area - fixed, 1e-12)
        scaled_total = float(scale.mean()) * free_total
        need = 1.1 * movable
        if scaled_total < need and scaled_total > 0:
            # Blend back toward 1 just enough to restore slack.
            deficit = (need - scaled_total) / max(free_total - scaled_total, 1e-12)
            blend = min(1.0, deficit)
            scale = scale + blend * (1.0 - scale)
        return scale

    def _density_grid(self, design: Design, num_movable: int) -> BinGrid:
        cfg = self.config
        if cfg.target_bins is not None:
            bins = cfg.target_bins
        else:
            # ~ sqrt(n) bins per axis, clamped to a practical range.
            per_axis = int(np.sqrt(max(num_movable, 1)))
            per_axis = max(16, min(per_axis, 96))
            bins = per_axis * per_axis
        return BinGrid.with_bin_target(design.core, bins)

    @staticmethod
    def _overflow(
        design, density: BellDensity, cx, cy, widths, heights, mov, reference=False
    ) -> float:
        """Exact-overlap density overflow at the current array positions.

        Uses physical (non-inflated) areas against the free capacity of
        the density grid.
        """
        grid = density.grid
        xl = cx[mov] - widths[mov] / 2.0
        xh = cx[mov] + widths[mov] / 2.0
        yl = cy[mov] - heights[mov] / 2.0
        yh = cy[mov] + heights[mov] / 2.0
        usage = grid.rasterize_rects(xl, yl, xh, yh, reference=reference)
        total = float((widths[mov] * heights[mov]).sum())
        if total <= 0:
            return 0.0
        over = np.maximum(usage - density.free, 0.0)
        return float(over.sum() / total)


def place(design: Design, config: GPConfig | None = None) -> GPReport:
    """Convenience function: global-place ``design`` with ``config``."""
    return GlobalPlacer(config).place(design)
