"""Uniform bin grids used for density, congestion and routing maps."""

from repro.grids.bins import BinGrid

__all__ = ["BinGrid"]
