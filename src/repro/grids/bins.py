"""A uniform rectangular grid over a region of the die.

The same structure backs density bins in global placement, RUDY maps, and
the tiles of the evaluation global router.  All maps are ``(nx, ny)``
float64 arrays indexed ``[ix, iy]`` with ``ix`` horizontal.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Rect


class BinGrid:
    """An ``nx`` x ``ny`` uniform grid covering ``area``."""

    def __init__(self, area: Rect, nx: int, ny: int):
        if nx <= 0 or ny <= 0:
            raise ValueError("grid dimensions must be positive")
        if area.width <= 0 or area.height <= 0:
            raise ValueError("grid area must have positive extent")
        self.area = area
        self.nx = int(nx)
        self.ny = int(ny)
        self.bin_w = area.width / nx
        self.bin_h = area.height / ny

    @staticmethod
    def with_bin_target(area: Rect, target_bins: int) -> "BinGrid":
        """A roughly square grid with about ``target_bins`` bins."""
        aspect = area.width / area.height
        nx = max(1, int(round(np.sqrt(target_bins * aspect))))
        ny = max(1, int(round(target_bins / nx)))
        return BinGrid(area, nx, ny)

    @property
    def num_bins(self) -> int:
        return self.nx * self.ny

    @property
    def bin_area(self) -> float:
        return self.bin_w * self.bin_h

    def zeros(self) -> np.ndarray:
        return np.zeros((self.nx, self.ny))

    # ------------------------------------------------------------------
    # coordinate mapping
    # ------------------------------------------------------------------
    def index_of(self, x, y):
        """Bin indices containing point(s) ``(x, y)``, clamped to the grid."""
        ix = np.clip(
            np.floor((np.asarray(x) - self.area.xl) / self.bin_w).astype(np.int64),
            0,
            self.nx - 1,
        )
        iy = np.clip(
            np.floor((np.asarray(y) - self.area.yl) / self.bin_h).astype(np.int64),
            0,
            self.ny - 1,
        )
        return ix, iy

    def bin_rect(self, ix: int, iy: int) -> Rect:
        xl = self.area.xl + ix * self.bin_w
        yl = self.area.yl + iy * self.bin_h
        return Rect(xl, yl, xl + self.bin_w, yl + self.bin_h)

    def centers_x(self) -> np.ndarray:
        """x coordinate of each column's bin centres, shape ``(nx,)``."""
        return self.area.xl + (np.arange(self.nx) + 0.5) * self.bin_w

    def centers_y(self) -> np.ndarray:
        """y coordinate of each row's bin centres, shape ``(ny,)``."""
        return self.area.yl + (np.arange(self.ny) + 0.5) * self.bin_h

    # ------------------------------------------------------------------
    # rasterization
    # ------------------------------------------------------------------
    def add_rect(self, grid: np.ndarray, rect: Rect, value: float = 1.0) -> None:
        """Accumulate ``value`` x (overlap area) of ``rect`` into ``grid``.

        The contribution to each bin is the exact geometric overlap, so
        integrating ``grid`` recovers ``value * rect.area`` (clipped to the
        grid region).
        """
        xl = max(rect.xl, self.area.xl)
        yl = max(rect.yl, self.area.yl)
        xh = min(rect.xh, self.area.xh)
        yh = min(rect.yh, self.area.yh)
        if xh <= xl or yh <= yl:
            return
        ix0 = int((xl - self.area.xl) / self.bin_w)
        iy0 = int((yl - self.area.yl) / self.bin_h)
        ix1 = min(self.nx - 1, int(np.ceil((xh - self.area.xl) / self.bin_w)) - 1)
        iy1 = min(self.ny - 1, int(np.ceil((yh - self.area.yl) / self.bin_h)) - 1)
        ix0 = min(ix0, self.nx - 1)
        iy0 = min(iy0, self.ny - 1)
        # Per-column and per-row clipped extents, combined by outer product.
        cols = np.arange(ix0, ix1 + 1)
        rows = np.arange(iy0, iy1 + 1)
        col_lo = self.area.xl + cols * self.bin_w
        row_lo = self.area.yl + rows * self.bin_h
        wx = np.minimum(col_lo + self.bin_w, xh) - np.maximum(col_lo, xl)
        wy = np.minimum(row_lo + self.bin_h, yh) - np.maximum(row_lo, yl)
        grid[ix0 : ix1 + 1, iy0 : iy1 + 1] += value * np.outer(
            np.maximum(wx, 0.0), np.maximum(wy, 0.0)
        )

    def rasterize_rects(
        self, xl, yl, xh, yh, values=None, *, reference: bool = False, out=None
    ) -> np.ndarray:
        """Exact-overlap rasterization of many rectangles, vectorized.

        Rectangle ``i`` contributes ``values[i] * overlap_area`` to each
        bin it touches (``values`` default 1, i.e. pure area — the same
        semantics as :meth:`add_rect`).

        The default path expands each rectangle's exact bin window (ragged,
        no padding to the largest span), orders the entries the way the
        original window sweep visited them, and scatters with one
        ``np.bincount`` — bit-identical output, but the work is the number
        of touched bins rather than ``num_rects x max_span^2``, so one
        macro no longer drags every standard cell through its full sweep.
        ``reference=True`` runs the original sweep verbatim.

        ``out`` supplies a caller-owned ``(nx, ny)`` accumulator that is
        zeroed and reused instead of allocating a fresh grid — a zeroed
        buffer is indistinguishable from ``zeros()``, so results stay
        bit-identical.  The returned array is ``out`` itself.
        """
        xl = np.asarray(xl, dtype=float)
        yl = np.asarray(yl, dtype=float)
        xh = np.asarray(xh, dtype=float)
        yh = np.asarray(yh, dtype=float)
        vals = np.ones_like(xl) if values is None else np.asarray(values, dtype=float)
        if out is None:
            grid = self.zeros()
        else:
            if out.shape != (self.nx, self.ny):
                raise ValueError(
                    f"out has shape {out.shape}, grid is ({self.nx}, {self.ny})"
                )
            grid = out
            grid.fill(0.0)
        if len(xl) == 0:
            return grid
        cxl = np.clip(xl, self.area.xl, self.area.xh)
        cyl = np.clip(yl, self.area.yl, self.area.yh)
        cxh = np.clip(xh, self.area.xl, self.area.xh)
        cyh = np.clip(yh, self.area.yl, self.area.yh)
        areas = (cxh - cxl) * (cyh - cyl)
        keep = areas > 0
        if not keep.any():
            return grid
        cxl, cyl, cxh, cyh, dens = (
            cxl[keep],
            cyl[keep],
            cxh[keep],
            cyh[keep],
            vals[keep],
        )
        ix0 = np.floor((cxl - self.area.xl) / self.bin_w).astype(np.int64)
        iy0 = np.floor((cyl - self.area.yl) / self.bin_h).astype(np.int64)
        ix0 = np.clip(ix0, 0, self.nx - 1)
        iy0 = np.clip(iy0, 0, self.ny - 1)
        if not reference:
            return self._rasterize_entries(grid, cxl, cyl, cxh, cyh, dens, ix0, iy0)
        span_x = int(np.max(np.ceil((cxh - self.area.xl) / self.bin_w) - ix0)) + 1
        span_y = int(np.max(np.ceil((cyh - self.area.yl) / self.bin_h) - iy0)) + 1
        span_x = max(1, min(span_x, self.nx + 1))
        span_y = max(1, min(span_y, self.ny + 1))
        for kx in range(span_x):
            ix = ix0 + kx
            in_x = ix < self.nx
            bxl = self.area.xl + ix * self.bin_w
            wx = np.minimum(bxl + self.bin_w, cxh) - np.maximum(bxl, cxl)
            wx = np.maximum(wx, 0.0)
            for ky in range(span_y):
                iy = iy0 + ky
                in_y = iy < self.ny
                byl = self.area.yl + iy * self.bin_h
                wy = np.minimum(byl + self.bin_h, cyh) - np.maximum(byl, cyl)
                wy = np.maximum(wy, 0.0)
                mass = dens * wx * wy
                ok = in_x & in_y & (mass > 0)
                if ok.any():
                    np.add.at(grid, (ix[ok], iy[ok]), mass[ok])
        return grid

    def _rasterize_entries(self, grid, cxl, cyl, cxh, cyh, dens, ix0, iy0):
        """Ragged per-rect window expansion with sweep-ordered scatter.

        The reference sweep accumulates each bin's contributions in
        lexicographic ``(kx, ky, rect)`` order (window offset major, rect
        index minor).  Expanding exact windows enumerates entries in
        ``(rect, kx, ky)`` order instead, so a stable sort on ``(kx, ky)``
        restores the sweep order before the sequential ``np.bincount``
        scatter — making the result bit-identical, not merely close.
        """
        # Exact per-rect window lengths: the covered bins are
        # ix0 .. ceil((cxh - xl)/bw) - 1, all inside the grid.
        lx = np.ceil((cxh - self.area.xl) / self.bin_w).astype(np.int64) - ix0
        ly = np.ceil((cyh - self.area.yl) / self.bin_h).astype(np.int64) - iy0
        np.clip(lx, 1, self.nx - ix0, out=lx)
        np.clip(ly, 1, self.ny - iy0, out=ly)
        num = len(lx)
        total = int((lx * ly).sum())
        # Work factors over window *columns* (rect, kx) and window *rows*
        # (rect, ky): the x extent of an entry depends only on its column
        # and the y extent only on its row, so both overlap terms are
        # computed once per column/row and expanded to entries by repeat
        # and gather — the per-entry float expressions are elementwise
        # identical to evaluating them on the flat entry list, and the
        # enumeration stays lexicographic (rect, kx, ky).
        row_start = np.zeros(num, dtype=np.int64)
        np.cumsum(lx[:-1], out=row_start[1:])
        row_rid = np.repeat(np.arange(num, dtype=np.int64), lx)
        row_kx = np.arange(int(lx.sum()), dtype=np.int64) - row_start[row_rid]
        row_ix = ix0[row_rid] + row_kx
        bxl = self.area.xl + row_ix * self.bin_w
        wx = np.minimum(bxl + self.bin_w, cxh[row_rid]) - np.maximum(bxl, cxl[row_rid])
        wx = np.maximum(wx, 0.0)
        mass_col = dens[row_rid] * wx
        col_start = np.zeros(num, dtype=np.int64)
        np.cumsum(ly[:-1], out=col_start[1:])
        col_rid = np.repeat(np.arange(num, dtype=np.int64), ly)
        col_ky = np.arange(int(ly.sum()), dtype=np.int64) - col_start[col_rid]
        byl = self.area.yl + (iy0[col_rid] + col_ky) * self.bin_h
        wy_row = np.minimum(byl + self.bin_h, cyh[col_rid]) - np.maximum(byl, cyl[col_rid])
        wy_row = np.maximum(wy_row, 0.0)
        # Expand columns to entries: each (rect, kx) column spans its
        # rect's ly bins with ky = 0..ly-1 in order.
        ly_col = ly[row_rid]
        entry_start = np.zeros(len(ly_col), dtype=np.int64)
        np.cumsum(ly_col[:-1], out=entry_start[1:])
        ky = np.arange(total, dtype=np.int64) - np.repeat(entry_start, ly_col)
        mass = np.repeat(mass_col, ly_col)
        mass *= wy_row[np.repeat(col_start[row_rid], ly_col) + ky]
        # The sweep drops mass <= 0 entries; adding an exact +0.0 instead
        # is a no-op on the (never negative-zero) accumulator.
        np.copyto(mass, 0.0, where=mass <= 0.0)
        flat = np.repeat(row_ix * self.ny + iy0[row_rid], ly_col) + ky
        key = np.repeat(row_kx * int(ly.max()), ly_col) + ky
        # Same key values sort to the same stable permutation in any
        # dtype; 16-bit keys take numpy's radix path (~7x faster).
        key_max = int((lx.max() - 1) * ly.max() + ly.max() - 1)
        if key_max < np.iinfo(np.int16).max:
            key = key.astype(np.int16)
        elif key_max < np.iinfo(np.int32).max:
            key = key.astype(np.int32)
        order = np.argsort(key, kind="stable")
        out = np.bincount(flat[order], weights=mass[order], minlength=self.nx * self.ny)
        grid += out.reshape(self.nx, self.ny)
        return grid

    def rasterize_rects_multi(self, xl, yl, xh, yh, values, outs=None):
        """Rasterize the *same* rectangles with several value vectors.

        The geometry work — clipping, per-rect bin-window expansion,
        overlap widths — is computed once and shared; each value vector
        then costs one gather + one ``bincount``.  The congestion
        feature extractor uses this to build its five net-box maps for
        roughly the price of one :meth:`rasterize_rects` call.

        Entries accumulate in natural ``(rect, kx, ky)`` order, which is
        deterministic for fixed input, but *not* the golden sweep order
        of :meth:`rasterize_rects` — use that method on bit-exactness-
        constrained paths.  ``outs`` optionally supplies one reusable
        ``(nx, ny)`` buffer per value vector; returns the list of grids.
        """
        xl = np.asarray(xl, dtype=float)
        yl = np.asarray(yl, dtype=float)
        xh = np.asarray(xh, dtype=float)
        yh = np.asarray(yh, dtype=float)
        values = [np.asarray(v, dtype=float) for v in values]
        if outs is None:
            outs = [None] * len(values)
        if len(outs) != len(values):
            raise ValueError(f"{len(values)} value vectors, {len(outs)} outs")
        grids = []
        for out in outs:
            if out is None:
                grids.append(self.zeros())
            else:
                if out.shape != (self.nx, self.ny):
                    raise ValueError(
                        f"out has shape {out.shape}, grid is ({self.nx}, {self.ny})"
                    )
                out.fill(0.0)
                grids.append(out)
        if len(xl) == 0:
            return grids
        cxl = np.clip(xl, self.area.xl, self.area.xh)
        cyl = np.clip(yl, self.area.yl, self.area.yh)
        cxh = np.clip(xh, self.area.xl, self.area.xh)
        cyh = np.clip(yh, self.area.yl, self.area.yh)
        keep = (cxh - cxl) * (cyh - cyl) > 0
        if not keep.any():
            return grids
        cxl, cyl, cxh, cyh = cxl[keep], cyl[keep], cxh[keep], cyh[keep]
        ix0 = np.clip(
            np.floor((cxl - self.area.xl) / self.bin_w).astype(np.int64),
            0, self.nx - 1,
        )
        iy0 = np.clip(
            np.floor((cyl - self.area.yl) / self.bin_h).astype(np.int64),
            0, self.ny - 1,
        )
        lx = np.ceil((cxh - self.area.xl) / self.bin_w).astype(np.int64) - ix0
        ly = np.ceil((cyh - self.area.yl) / self.bin_h).astype(np.int64) - iy0
        np.clip(lx, 1, self.nx - ix0, out=lx)
        np.clip(ly, 1, self.ny - iy0, out=ly)
        num = len(lx)
        total = int((lx * ly).sum())
        # Window columns (rect, kx): x overlap width per covered column.
        row_start = np.zeros(num, dtype=np.int64)
        np.cumsum(lx[:-1], out=row_start[1:])
        row_rid = np.repeat(np.arange(num, dtype=np.int64), lx)
        row_kx = np.arange(int(lx.sum()), dtype=np.int64) - row_start[row_rid]
        row_ix = ix0[row_rid] + row_kx
        bxl = self.area.xl + row_ix * self.bin_w
        wx = np.minimum(bxl + self.bin_w, cxh[row_rid]) - np.maximum(bxl, cxl[row_rid])
        wx = np.maximum(wx, 0.0)
        # Window rows (rect, ky): y overlap width per covered row.
        col_start = np.zeros(num, dtype=np.int64)
        np.cumsum(ly[:-1], out=col_start[1:])
        col_rid = np.repeat(np.arange(num, dtype=np.int64), ly)
        col_ky = np.arange(int(ly.sum()), dtype=np.int64) - col_start[col_rid]
        byl = self.area.yl + (iy0[col_rid] + col_ky) * self.bin_h
        wy_row = np.minimum(byl + self.bin_h, cyh[col_rid]) - np.maximum(byl, cyl[col_rid])
        wy_row = np.maximum(wy_row, 0.0)
        # Expand columns to entries and pre-gather the per-entry y widths
        # and flat bin indices — shared by every value vector.
        ly_col = ly[row_rid]
        entry_start = np.zeros(len(ly_col), dtype=np.int64)
        np.cumsum(ly_col[:-1], out=entry_start[1:])
        ky = np.arange(total, dtype=np.int64) - np.repeat(entry_start, ly_col)
        wy_entries = wy_row[np.repeat(col_start[row_rid], ly_col) + ky]
        flat = np.repeat(row_ix * self.ny + iy0[row_rid], ly_col) + ky
        nb = self.nx * self.ny
        for grid, vals in zip(grids, values):
            mass = np.repeat(vals[keep][row_rid] * wx, ly_col)
            mass *= wy_entries
            grid += np.bincount(flat, weights=mass, minlength=nb).reshape(
                self.nx, self.ny
            )
        return grids

    def bilinear_sample(self, grid: np.ndarray, x, y):
        """Bilinear interpolation of ``grid`` (values at bin centres)."""
        fx = (np.asarray(x) - self.area.xl) / self.bin_w - 0.5
        fy = (np.asarray(y) - self.area.yl) / self.bin_h - 0.5
        fx = np.clip(fx, 0.0, self.nx - 1.0)
        fy = np.clip(fy, 0.0, self.ny - 1.0)
        ix = np.minimum(fx.astype(np.int64), self.nx - 2) if self.nx > 1 else np.zeros_like(fx, dtype=np.int64)
        iy = np.minimum(fy.astype(np.int64), self.ny - 2) if self.ny > 1 else np.zeros_like(fy, dtype=np.int64)
        tx = fx - ix
        ty = fy - iy
        ix1 = np.minimum(ix + 1, self.nx - 1)
        iy1 = np.minimum(iy + 1, self.ny - 1)
        return (
            grid[ix, iy] * (1 - tx) * (1 - ty)
            + grid[ix1, iy] * tx * (1 - ty)
            + grid[ix, iy1] * (1 - tx) * ty
            + grid[ix1, iy1] * tx * ty
        )
