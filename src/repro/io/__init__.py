"""Bookshelf-format I/O.

Reads and writes the academic placement interchange format (``.aux``,
``.nodes``, ``.nets``, ``.wts``, ``.pl``, ``.scl``) plus the routing
resource file (``.route``, ISPD/ICCAD global-routing dialect, aggregated
over layers) — so the contest benchmarks the paper used drop into this
reproduction unchanged once obtained.

Two documented extensions carry what standard Bookshelf cannot:

* ``.regions`` — fence regions and node membership;
* ``.hier`` — design-hierarchy module path per node.

A design written by :func:`write_bookshelf` and read back by
:func:`read_bookshelf` round-trips exactly (the property the tests pin).
"""

from repro.io.reader import read_aux, read_bookshelf
from repro.io.writer import write_bookshelf
from repro.io.placement import apply_pl, write_pl

__all__ = ["apply_pl", "read_aux", "read_bookshelf", "write_bookshelf", "write_pl"]
