"""Placement-only exchange: standalone ``.pl`` read/write.

The common experiment loop — generate or load a benchmark once, place it
many ways, compare — needs placements checkpointed without rewriting the
whole benchmark.  ``write_pl``/``apply_pl`` do exactly that, matching
nodes by name so a ``.pl`` from any tool speaking Bookshelf applies.
"""

from __future__ import annotations

import os

from repro.db import Design, NodeKind
from repro.geometry import Orientation


def write_pl(design: Design, path: str) -> None:
    """Write the current placement as a Bookshelf ``.pl`` file."""
    with open(path, "w") as f:
        f.write("UCLA pl 1.0\n\n")
        for n in design.nodes:
            suffix = ""
            if n.kind is NodeKind.TERMINAL_NI:
                suffix = " /FIXED_NI"
            elif n.kind.is_fixed:
                suffix = " /FIXED"
            f.write(
                f"{n.name} {n.x:.6f} {n.y:.6f} : {n.orientation.value}{suffix}\n"
            )


def apply_pl(design: Design, path: str, *, strict: bool = True) -> int:
    """Apply positions/orientations from a ``.pl`` file; returns nodes set.

    With ``strict`` (default) an unknown node name raises
    :class:`ValueError` naming the file, line number, and offending
    line; otherwise the line is skipped (useful for partial
    checkpoints).  Fixed nodes are never moved — their lines are
    validated but ignored.
    """
    applied = 0
    fname = os.path.basename(path)
    with open(path) as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line or line.startswith("UCLA"):
                continue
            parts = line.replace(":", " ").split()
            if len(parts) < 3:
                continue
            name = parts[0]
            if not design.has_node(name):
                if strict:
                    raise ValueError(
                        f"{fname}:{lineno}: .pl references unknown node "
                        f"{name!r} (line: {line!r})"
                    )
                continue
            node = design.node(name)
            if not node.is_movable:
                continue
            try:
                node.x = float(parts[1])
                node.y = float(parts[2])
                if len(parts) > 3 and not parts[3].startswith("/"):
                    design.set_orientation(node, Orientation.from_string(parts[3]))
                    node.x = float(parts[1])
                    node.y = float(parts[2])
            except ValueError as exc:
                raise ValueError(
                    f"{fname}:{lineno}: {exc} (line: {line!r})"
                ) from None
            applied += 1
    design._topology_version += 1
    return applied
