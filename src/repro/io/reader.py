"""Bookshelf reader.

Every malformed line raises :class:`ValueError` carrying the file name
and line number (``design.nodes:12: ...``) so a broken benchmark points
at the offending line instead of a bare traceback deep in the parser.
"""

from __future__ import annotations

import os

import numpy as np

from repro.db import Design, Net, Node, NodeKind, Pin, PinDirection, Region, Row
from repro.geometry import Orientation, Rect
from repro.grids import BinGrid
from repro.route import RoutingSpec


def read_aux(path: str) -> dict:
    """Parse an ``.aux`` file into ``{extension: absolute path}``."""
    directory = os.path.dirname(os.path.abspath(path))
    with open(path) as f:
        content = f.read()
    _, _, files = content.partition(":")
    out = {}
    for token in files.split():
        ext = token.rsplit(".", 1)[-1].lower()
        out[ext] = os.path.join(directory, token)
    return out


def read_bookshelf(aux_path: str, name: str | None = None) -> Design:
    """Load a full Bookshelf benchmark from its ``.aux`` file."""
    files = read_aux(aux_path)
    if name is None:
        name = os.path.splitext(os.path.basename(aux_path))[0]
    design = Design(name)
    _read_nodes(design, files["nodes"])
    if "hier" in files:
        _read_hier(design, files["hier"])
    weights = _read_wts(files["wts"]) if "wts" in files else {}
    _read_nets(design, files["nets"], weights)
    _read_scl(design, files["scl"])
    # Bookshelf has no explicit movable-macro marker; the accepted
    # convention is that a movable node taller than a row is a macro.
    if design.rows:
        row_h = design.row_height
        for node in design.nodes:
            if node.kind is NodeKind.CELL and node.height > 1.5 * row_h:
                node.kind = NodeKind.MACRO
    if "pl" in files:
        _read_pl(design, files["pl"])
    if "route" in files:
        design.routing = _read_route(files["route"])
    if "regions" in files:
        _read_regions(design, files["regions"])
    return design


def _data_lines(path: str):
    """Yield ``(lineno, line)`` for non-comment data lines (1-based)."""
    with open(path) as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line or line.startswith("UCLA"):
                continue
            yield lineno, line


def _line_error(path: str, lineno: int, line: str, why: str) -> ValueError:
    return ValueError(f"{os.path.basename(path)}:{lineno}: {why} (line: {line!r})")


def _read_nodes(design: Design, path: str) -> None:
    for lineno, line in _data_lines(path):
        if line.startswith(("NumNodes", "NumTerminals")):
            continue
        parts = line.split()
        try:
            if len(parts) < 3:
                raise ValueError("expected 'name width height [terminal]'")
            nm, w, h = parts[0], float(parts[1]), float(parts[2])
            kind = NodeKind.CELL
            if len(parts) > 3:
                tag = parts[3].lower()
                if tag == "terminal":
                    kind = NodeKind.FIXED
                elif tag == "terminal_ni":
                    kind = NodeKind.TERMINAL_NI
            design.add_node(Node(name=nm, width=w, height=h, kind=kind))
        except ValueError as exc:
            raise _line_error(path, lineno, line, str(exc)) from None


def _read_hier(design: Design, path: str) -> None:
    for lineno, line in _data_lines(path):
        if line.startswith("hier"):
            continue
        try:
            nm, module = line.split()
            node = design.node(nm)
        except KeyError:
            raise _line_error(path, lineno, line, "unknown node") from None
        except ValueError:
            raise _line_error(path, lineno, line, "expected 'node module'") from None
        node.module = module
        design.hierarchy.assign_cell(node.index, module)


def _read_wts(path: str) -> dict:
    out = {}
    for lineno, line in _data_lines(path):
        parts = line.split()
        if len(parts) == 2:
            try:
                out[parts[0]] = float(parts[1])
            except ValueError:
                raise _line_error(path, lineno, line, "bad net weight") from None
    return out


def _read_nets(design: Design, path: str, weights: dict) -> None:
    net = None
    for lineno, line in _data_lines(path):
        if line.startswith(("NumNets", "NumPins")):
            continue
        if line.startswith("NetDegree"):
            if net is not None:
                design.add_net(net)
            _, _, rest = line.partition(":")
            parts = rest.split()
            net_name = parts[1] if len(parts) > 1 else f"net{design.num_nets}"
            net = Net(name=net_name, weight=weights.get(net_name, 1.0))
            continue
        if net is None:
            raise _line_error(path, lineno, line, "pin line before NetDegree")
        parts = line.replace(":", " ").split()
        try:
            node = design.node(parts[0])
            direction = (
                PinDirection.from_string(parts[1])
                if len(parts) > 1
                else PinDirection.BIDIR
            )
            dx = float(parts[2]) if len(parts) > 2 else 0.0
            dy = float(parts[3]) if len(parts) > 3 else 0.0
        except KeyError:
            raise _line_error(path, lineno, line, "pin on unknown node") from None
        except ValueError as exc:
            raise _line_error(path, lineno, line, str(exc)) from None
        net.pins.append(Pin(node=node.index, dx=dx, dy=dy, direction=direction))
    if net is not None:
        design.add_net(net)


def _read_scl(design: Design, path: str) -> None:
    current = {}
    for lineno, line in _data_lines(path):
        if line.startswith("NumRows"):
            continue
        if line.startswith("CoreRow"):
            current = {}
            continue
        if line.startswith("End"):
            try:
                design.add_row(
                    Row(
                        y=current["coordinate"],
                        height=current["height"],
                        site_width=current.get("sitewidth", 1.0),
                        x_min=current["subroworigin"],
                        num_sites=int(current["numsites"]),
                    )
                )
            except KeyError as exc:
                raise _line_error(
                    path, lineno, line, f"CoreRow missing {exc.args[0]!r}"
                ) from None
            except (TypeError, ValueError) as exc:
                raise _line_error(path, lineno, line, str(exc)) from None
            continue
        # "Key : value" pairs; SubrowOrigin lines carry two pairs.
        tokens = line.replace(":", " : ").split()
        k = 0
        while k + 2 < len(tokens) or (k + 2 == len(tokens) and tokens[k + 1] == ":"):
            if k + 2 >= len(tokens):
                break
            key = tokens[k].lower()
            value = tokens[k + 2]
            try:
                current[key] = float(value)
            except ValueError:
                current[key] = value
            k += 3
    design.core = design.core  # force row-derived core computation check


def _read_pl(design: Design, path: str) -> None:
    for lineno, line in _data_lines(path):
        parts = line.replace(":", " ").split()
        if len(parts) < 3:
            continue
        try:
            node = design.node(parts[0])
            node.x = float(parts[1])
            node.y = float(parts[2])
            if len(parts) > 3:
                node.orientation = Orientation.from_string(parts[3])
        except KeyError:
            raise _line_error(path, lineno, line, "unknown node") from None
        except ValueError as exc:
            raise _line_error(path, lineno, line, str(exc)) from None


def _read_route(path: str):
    grid_dims = None
    origin = (0.0, 0.0)
    tile = (1.0, 1.0)
    hcap = vcap = 0.0
    adjustments = []
    in_adjust = False
    for lineno, line in _data_lines(path):
        if line.startswith("route"):
            continue
        try:
            if in_adjust:
                i, j, h, v = line.split()
                adjustments.append((int(i), int(j), float(h), float(v)))
                continue
            key, _, rest = line.partition(":")
            key = key.strip().lower()
            vals = rest.split()
            if key == "grid":
                grid_dims = (int(vals[0]), int(vals[1]))
            elif key == "gridorigin":
                origin = (float(vals[0]), float(vals[1]))
            elif key == "tilesize":
                tile = (float(vals[0]), float(vals[1]))
            elif key == "horizontalcapacity":
                hcap = sum(float(v) for v in vals)
            elif key == "verticalcapacity":
                vcap = sum(float(v) for v in vals)
            elif key == "numcapacityadjustments":
                in_adjust = int(vals[0]) > 0
        except (ValueError, IndexError) as exc:
            raise _line_error(path, lineno, line, str(exc)) from None
    if grid_dims is None:
        raise ValueError(f"no Grid line in {os.path.basename(path)}")
    nx, ny = grid_dims
    area = Rect(
        origin[0], origin[1], origin[0] + nx * tile[0], origin[1] + ny * tile[1]
    )
    spec = RoutingSpec(
        BinGrid(area, nx, ny),
        np.full((nx, ny), hcap),
        np.full((nx, ny), vcap),
    )
    for i, j, h, v in adjustments:
        spec.hcap[i, j] = h
        spec.vcap[i, j] = v
    return spec


def _read_regions(design: Design, path: str) -> None:
    lines = list(_data_lines(path))
    k = 0
    regions_by_name = {}
    fname = os.path.basename(path)
    while k < len(lines):
        lineno, line = lines[k]
        if line.startswith(("regions", "NumRegions", "NumMembers")):
            k += 1
            continue
        if line.startswith("Region"):
            try:
                _, name, count = line.split()
                rects = []
                for _ in range(int(count)):
                    k += 1
                    if k >= len(lines):
                        raise ValueError("truncated Region rect list")
                    rect_lineno, rect_line = lines[k]
                    try:
                        xl, yl, xh, yh = (float(v) for v in rect_line.split())
                    except ValueError:
                        raise _line_error(
                            path, rect_lineno, rect_line, "expected 'xl yl xh yh'"
                        ) from None
                    rects.append(Rect(xl, yl, xh, yh))
            except ValueError as exc:
                if str(exc).startswith(f"{fname}:"):
                    raise
                raise _line_error(path, lineno, line, str(exc)) from None
            region = design.add_region(Region(name=name, rects=rects))
            regions_by_name[name] = region
            k += 1
            continue
        parts = line.split()
        if len(parts) == 2 and parts[0] != "Region":
            try:
                node = design.node(parts[0])
                node.region = regions_by_name[parts[1]].index
            except KeyError as exc:
                raise _line_error(
                    path, lineno, line, f"unknown name {exc.args[0]!r}"
                ) from None
        k += 1
