"""Bookshelf reader."""

from __future__ import annotations

import os

import numpy as np

from repro.db import Design, Net, Node, NodeKind, Pin, PinDirection, Region, Row
from repro.geometry import Orientation, Rect
from repro.grids import BinGrid
from repro.route import RoutingSpec


def read_aux(path: str) -> dict:
    """Parse an ``.aux`` file into ``{extension: absolute path}``."""
    directory = os.path.dirname(os.path.abspath(path))
    with open(path) as f:
        content = f.read()
    _, _, files = content.partition(":")
    out = {}
    for token in files.split():
        ext = token.rsplit(".", 1)[-1].lower()
        out[ext] = os.path.join(directory, token)
    return out


def read_bookshelf(aux_path: str, name: str | None = None) -> Design:
    """Load a full Bookshelf benchmark from its ``.aux`` file."""
    files = read_aux(aux_path)
    if name is None:
        name = os.path.splitext(os.path.basename(aux_path))[0]
    design = Design(name)
    _read_nodes(design, files["nodes"])
    if "hier" in files:
        _read_hier(design, files["hier"])
    weights = _read_wts(files["wts"]) if "wts" in files else {}
    _read_nets(design, files["nets"], weights)
    _read_scl(design, files["scl"])
    # Bookshelf has no explicit movable-macro marker; the accepted
    # convention is that a movable node taller than a row is a macro.
    if design.rows:
        row_h = design.row_height
        for node in design.nodes:
            if node.kind is NodeKind.CELL and node.height > 1.5 * row_h:
                node.kind = NodeKind.MACRO
    if "pl" in files:
        _read_pl(design, files["pl"])
    if "route" in files:
        design.routing = _read_route(files["route"])
    if "regions" in files:
        _read_regions(design, files["regions"])
    return design


def _data_lines(path: str):
    with open(path) as f:
        for raw in f:
            line = raw.split("#", 1)[0].strip()
            if not line or line.startswith("UCLA"):
                continue
            yield line


def _read_nodes(design: Design, path: str) -> None:
    for line in _data_lines(path):
        if line.startswith(("NumNodes", "NumTerminals")):
            continue
        parts = line.split()
        nm, w, h = parts[0], float(parts[1]), float(parts[2])
        kind = NodeKind.CELL
        if len(parts) > 3:
            tag = parts[3].lower()
            if tag == "terminal":
                kind = NodeKind.FIXED
            elif tag == "terminal_ni":
                kind = NodeKind.TERMINAL_NI
        design.add_node(Node(name=nm, width=w, height=h, kind=kind))


def _read_hier(design: Design, path: str) -> None:
    for line in _data_lines(path):
        if line.startswith("hier"):
            continue
        nm, module = line.split()
        node = design.node(nm)
        node.module = module
        design.hierarchy.assign_cell(node.index, module)


def _read_wts(path: str) -> dict:
    out = {}
    for line in _data_lines(path):
        parts = line.split()
        if len(parts) == 2:
            out[parts[0]] = float(parts[1])
    return out


def _read_nets(design: Design, path: str, weights: dict) -> None:
    net = None
    for line in _data_lines(path):
        if line.startswith(("NumNets", "NumPins")):
            continue
        if line.startswith("NetDegree"):
            if net is not None:
                design.add_net(net)
            _, _, rest = line.partition(":")
            parts = rest.split()
            net_name = parts[1] if len(parts) > 1 else f"net{design.num_nets}"
            net = Net(name=net_name, weight=weights.get(net_name, 1.0))
            continue
        if net is None:
            raise ValueError(f"pin line before NetDegree in {path}: {line!r}")
        parts = line.replace(":", " ").split()
        node = design.node(parts[0])
        direction = PinDirection.from_string(parts[1]) if len(parts) > 1 else PinDirection.BIDIR
        dx = float(parts[2]) if len(parts) > 2 else 0.0
        dy = float(parts[3]) if len(parts) > 3 else 0.0
        net.pins.append(Pin(node=node.index, dx=dx, dy=dy, direction=direction))
    if net is not None:
        design.add_net(net)


def _read_scl(design: Design, path: str) -> None:
    current = {}
    for line in _data_lines(path):
        if line.startswith("NumRows"):
            continue
        if line.startswith("CoreRow"):
            current = {}
            continue
        if line.startswith("End"):
            design.add_row(
                Row(
                    y=current["coordinate"],
                    height=current["height"],
                    site_width=current.get("sitewidth", 1.0),
                    x_min=current["subroworigin"],
                    num_sites=int(current["numsites"]),
                )
            )
            continue
        # "Key : value" pairs; SubrowOrigin lines carry two pairs.
        tokens = line.replace(":", " : ").split()
        k = 0
        while k + 2 < len(tokens) or (k + 2 == len(tokens) and tokens[k + 1] == ":"):
            if k + 2 >= len(tokens):
                break
            key = tokens[k].lower()
            value = tokens[k + 2]
            try:
                current[key] = float(value)
            except ValueError:
                current[key] = value
            k += 3
    design.core = design.core  # force row-derived core computation check


def _read_pl(design: Design, path: str) -> None:
    for line in _data_lines(path):
        parts = line.replace(":", " ").split()
        if len(parts) < 3:
            continue
        node = design.node(parts[0])
        node.x = float(parts[1])
        node.y = float(parts[2])
        if len(parts) > 3:
            node.orientation = Orientation.from_string(parts[3])


def _read_route(path: str):
    grid_dims = None
    origin = (0.0, 0.0)
    tile = (1.0, 1.0)
    hcap = vcap = 0.0
    adjustments = []
    in_adjust = False
    for line in _data_lines(path):
        if line.startswith("route"):
            continue
        if in_adjust:
            i, j, h, v = line.split()
            adjustments.append((int(i), int(j), float(h), float(v)))
            continue
        key, _, rest = line.partition(":")
        key = key.strip().lower()
        vals = rest.split()
        if key == "grid":
            grid_dims = (int(vals[0]), int(vals[1]))
        elif key == "gridorigin":
            origin = (float(vals[0]), float(vals[1]))
        elif key == "tilesize":
            tile = (float(vals[0]), float(vals[1]))
        elif key == "horizontalcapacity":
            hcap = sum(float(v) for v in vals)
        elif key == "verticalcapacity":
            vcap = sum(float(v) for v in vals)
        elif key == "numcapacityadjustments":
            in_adjust = int(vals[0]) > 0
    if grid_dims is None:
        raise ValueError(f"no Grid line in {path}")
    nx, ny = grid_dims
    area = Rect(
        origin[0], origin[1], origin[0] + nx * tile[0], origin[1] + ny * tile[1]
    )
    spec = RoutingSpec(
        BinGrid(area, nx, ny),
        np.full((nx, ny), hcap),
        np.full((nx, ny), vcap),
    )
    for i, j, h, v in adjustments:
        spec.hcap[i, j] = h
        spec.vcap[i, j] = v
    return spec


def _read_regions(design: Design, path: str) -> None:
    lines = list(_data_lines(path))
    k = 0
    regions_by_name = {}
    while k < len(lines):
        line = lines[k]
        if line.startswith(("regions", "NumRegions", "NumMembers")):
            k += 1
            continue
        if line.startswith("Region"):
            _, name, count = line.split()
            rects = []
            for r in range(int(count)):
                k += 1
                xl, yl, xh, yh = (float(v) for v in lines[k].split())
                rects.append(Rect(xl, yl, xh, yh))
            region = design.add_region(Region(name=name, rects=rects))
            regions_by_name[name] = region
            k += 1
            continue
        parts = line.split()
        if len(parts) == 2 and parts[0] != "Region":
            node = design.node(parts[0])
            node.region = regions_by_name[parts[1]].index
        k += 1
