"""Bookshelf writer."""

from __future__ import annotations

import os

import numpy as np

from repro.db import Design, NodeKind


def write_bookshelf(design: Design, directory: str, basename: str | None = None) -> str:
    """Write ``design`` as a Bookshelf benchmark; returns the .aux path."""
    base = basename or design.name
    os.makedirs(directory, exist_ok=True)

    def path(ext: str) -> str:
        return os.path.join(directory, f"{base}.{ext}")

    _write_nodes(design, path("nodes"))
    _write_nets(design, path("nets"))
    _write_wts(design, path("wts"))
    _write_pl(design, path("pl"))
    _write_scl(design, path("scl"))
    files = [f"{base}.nodes", f"{base}.nets", f"{base}.wts", f"{base}.pl", f"{base}.scl"]
    if design.routing is not None:
        _write_route(design, path("route"))
        files.append(f"{base}.route")
    if design.regions:
        _write_regions(design, path("regions"))
        files.append(f"{base}.regions")
    if any(n.module for n in design.nodes):
        _write_hier(design, path("hier"))
        files.append(f"{base}.hier")
    aux = path("aux")
    with open(aux, "w") as f:
        f.write("RowBasedPlacement : " + " ".join(files) + "\n")
    return aux


def _write_nodes(design: Design, path: str) -> None:
    terminals = sum(1 for n in design.nodes if n.kind.is_fixed)
    with open(path, "w") as f:
        f.write("UCLA nodes 1.0\n\n")
        f.write(f"NumNodes : {len(design.nodes)}\n")
        f.write(f"NumTerminals : {terminals}\n")
        for n in design.nodes:
            tag = ""
            if n.kind is NodeKind.TERMINAL_NI:
                tag = " terminal_NI"
            elif n.kind.is_fixed:
                tag = " terminal"
            f.write(f"   {n.name} {n.width:g} {n.height:g}{tag}\n")


def _write_nets(design: Design, path: str) -> None:
    with open(path, "w") as f:
        f.write("UCLA nets 1.0\n\n")
        f.write(f"NumNets : {len(design.nets)}\n")
        f.write(f"NumPins : {design.num_pins}\n")
        for net in design.nets:
            f.write(f"NetDegree : {net.degree}  {net.name}\n")
            for p in net.pins:
                node = design.nodes[p.node]
                f.write(
                    f"   {node.name} {p.direction.value} : "
                    f"{p.dx:.6g} {p.dy:.6g}\n"
                )


def _write_wts(design: Design, path: str) -> None:
    with open(path, "w") as f:
        f.write("UCLA wts 1.0\n\n")
        for net in design.nets:
            f.write(f"   {net.name} {net.weight:g}\n")


def _write_pl(design: Design, path: str) -> None:
    with open(path, "w") as f:
        f.write("UCLA pl 1.0\n\n")
        for n in design.nodes:
            suffix = ""
            if n.kind is NodeKind.TERMINAL_NI:
                suffix = " /FIXED_NI"
            elif n.kind.is_fixed:
                suffix = " /FIXED"
            f.write(
                f"{n.name} {n.x:.6f} {n.y:.6f} : {n.orientation.value}{suffix}\n"
            )


def _write_scl(design: Design, path: str) -> None:
    with open(path, "w") as f:
        f.write("UCLA scl 1.0\n\n")
        f.write(f"NumRows : {len(design.rows)}\n\n")
        for row in design.rows:
            f.write("CoreRow Horizontal\n")
            f.write(f"  Coordinate    : {row.y:.6f}\n")
            f.write(f"  Height        : {row.height:g}\n")
            f.write(f"  Sitewidth     : {row.site_width:g}\n")
            f.write(f"  Sitespacing   : {row.site_width:g}\n")
            f.write("  Siteorient    : N\n")
            f.write("  Sitesymmetry  : Y\n")
            f.write(
                f"  SubrowOrigin  : {row.x_min:.6f}  NumSites : {row.num_sites}\n"
            )
            f.write("End\n")


def _write_route(design: Design, path: str) -> None:
    spec = design.routing
    grid = spec.grid
    with open(path, "w") as f:
        f.write("route 1.0\n\n")
        num_layers = max(1, len(spec.layers))
        f.write(f"Grid : {grid.nx} {grid.ny} {num_layers}\n")
        f.write(f"GridOrigin : {grid.area.xl:.6f} {grid.area.yl:.6f}\n")
        f.write(f"TileSize : {grid.bin_w:.6f} {grid.bin_h:.6f}\n")
        # Uniform part = per-axis maxima; deviations follow as adjustments.
        h_base = float(spec.hcap.max()) if spec.hcap.size else 0.0
        v_base = float(spec.vcap.max()) if spec.vcap.size else 0.0
        if spec.layers:
            # Per-layer breakdown, scaled so the listed layers sum to the
            # aggregate maxima (the reader sums multi-valued lines back).
            h_layers = [l.capacity for l in spec.layers if l.direction == "H"]
            v_layers = [l.capacity for l in spec.layers if l.direction == "V"]
            h_scale = h_base / sum(h_layers) if sum(h_layers) > 0 else 0.0
            v_scale = v_base / sum(v_layers) if sum(v_layers) > 0 else 0.0
            f.write(
                "HorizontalCapacity : "
                + " ".join(f"{c * h_scale:.6f}" for c in h_layers)
                + "\n"
            )
            f.write(
                "VerticalCapacity : "
                + " ".join(f"{c * v_scale:.6f}" for c in v_layers)
                + "\n"
            )
        else:
            f.write(f"HorizontalCapacity : {h_base:.6f}\n")
            f.write(f"VerticalCapacity : {v_base:.6f}\n")
        adjust = []
        for i in range(grid.nx):
            for j in range(grid.ny):
                if not np.isclose(spec.hcap[i, j], h_base) or not np.isclose(
                    spec.vcap[i, j], v_base
                ):
                    adjust.append(
                        f"   {i} {j} {spec.hcap[i, j]:.6f} {spec.vcap[i, j]:.6f}\n"
                    )
        f.write(f"NumCapacityAdjustments : {len(adjust)}\n")
        f.writelines(adjust)


def _write_regions(design: Design, path: str) -> None:
    with open(path, "w") as f:
        f.write("regions 1.0\n")
        f.write(f"NumRegions : {len(design.regions)}\n")
        for region in design.regions:
            f.write(f"Region {region.name} {len(region.rects)}\n")
            for r in region.rects:
                f.write(f"   {r.xl:.6f} {r.yl:.6f} {r.xh:.6f} {r.yh:.6f}\n")
        members = [
            (n.name, design.regions[n.region].name)
            for n in design.nodes
            if n.region is not None
        ]
        f.write(f"NumMembers : {len(members)}\n")
        for node_name, region_name in members:
            f.write(f"   {node_name} {region_name}\n")


def _write_hier(design: Design, path: str) -> None:
    with open(path, "w") as f:
        f.write("hier 1.0\n")
        for n in design.nodes:
            if n.module:
                f.write(f"   {n.name} {n.module}\n")
