"""Legalization: from an overlapping global placement to a legal one.

Order of operations (mixed-size, fence-aware):

1. :func:`legalize_macros` — movable macros get non-overlapping,
   row-aligned positions near their global-placement locations.
2. :class:`SubRowMap` — rows are fragmented around macro/fixed footprints
   and partitioned into fence domains.
3. :func:`tetris_legalize` — greedy row assignment of standard cells.
4. :func:`abacus_refine` — per-subrow dynamic-programming refinement
   (Abacus) minimizing total squared displacement.
5. :func:`check_legal` — independent legality audit used by tests and the
   flow.
"""

from repro.legal.subrows import SubRow, SubRowMap
from repro.legal.macro_legal import legalize_macros
from repro.legal.tetris import tetris_legalize
from repro.legal.abacus import abacus_refine
from repro.legal.check import LegalityReport, check_legal
from repro.legal.eco import EcoResult, eco_legalize
from repro.legal.fillers import insert_fillers, remove_fillers
from repro.legal.legalizer import LegalConfig, Legalizer

__all__ = [
    "EcoResult",
    "LegalConfig",
    "Legalizer",
    "LegalityReport",
    "eco_legalize",
    "SubRow",
    "SubRowMap",
    "abacus_refine",
    "check_legal",
    "insert_fillers",
    "legalize_macros",
    "remove_fillers",
    "tetris_legalize",
]
