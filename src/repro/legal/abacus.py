"""Abacus: optimal single-row placement refinement by clustering DP.

Within each sub-row (cell-to-row assignment fixed by Tetris), Abacus
places cells in desired-x order minimizing total weighted squared
displacement, by merging cells into clusters whose optimal position is
the weighted mean of member targets (Spindler et al., ISPD'08).
"""

from __future__ import annotations

from repro.legal.subrows import SubRowMap


class _Cluster:
    __slots__ = ("e", "q", "w", "x", "cells")

    def __init__(self):
        self.e = 0.0  # total weight
        self.q = 0.0  # sum of weight * (target - offset-in-cluster)
        self.w = 0.0  # total width
        self.x = 0.0
        self.cells = []

    def add_cell(self, node, target_x: float, weight: float) -> None:
        self.cells.append(node)
        self.q += weight * (target_x - self.w)
        self.e += weight
        self.w += node.placed_width

    def merge_left(self, other: "_Cluster") -> None:
        """Absorb ``self`` into ``other`` (other is to the left)."""
        for node in self.cells:
            other.cells.append(node)
        other.q += self.q - self.e * other.w
        other.e += self.e
        other.w += self.w

    def optimal_x(self, x_min: float, x_max: float) -> float:
        x = self.q / self.e if self.e > 0 else x_min
        return min(max(x, x_min), x_max - self.w)


def abacus_refine(design, submap: SubRowMap, desired_x: dict | None = None) -> float:
    """Refine every sub-row; returns total |x displacement| vs desired.

    ``desired_x`` maps node index to the pre-legalization lower-left x
    (defaults to current positions, i.e. pure re-packing).
    """
    total_disp = 0.0
    for sr in submap.subrows:
        if not sr.cells:
            continue
        nodes = [design.nodes[i] for i in sr.cells]
        targets = {
            n.index: (desired_x.get(n.index, n.x) if desired_x else n.x) for n in nodes
        }
        nodes.sort(key=lambda n: targets[n.index])
        clusters = []
        for node in nodes:
            target = min(max(targets[node.index], sr.x_min), sr.x_max - node.placed_width)
            c = _Cluster()
            c.add_cell(node, target, weight=1.0)
            c.x = c.optimal_x(sr.x_min, sr.x_max)
            clusters.append(c)
            # Collapse overlaps from the right end.
            while len(clusters) >= 2 and clusters[-2].x + clusters[-2].w > clusters[-1].x + 1e-12:
                right = clusters.pop()
                right.merge_left(clusters[-1])
                clusters[-1].x = clusters[-1].optimal_x(sr.x_min, sr.x_max)
        # Write back, site-aligned.
        order = []
        for c in clusters:
            x = c.optimal_x(sr.x_min, sr.x_max)
            for node in c.cells:
                order.append((node, x))
                x += node.placed_width
        cursor = sr.x_min
        for node, x in order:
            x = max(sr.snap_x(x, node.placed_width), cursor)
            node.x = x
            node.y = sr.y
            cursor = x + node.placed_width
            total_disp += abs(x - targets[node.index])
        # The site snap can push the tail past the boundary; repack from
        # the right edge leftward (alignment is preserved because widths
        # are whole sites).
        limit = sr.x_max
        for node, _ in reversed(order):
            x = min(node.x, limit - node.placed_width)
            node.x = max(x, sr.x_min)
            limit = node.x
        sr.cells = [n.index for n, _ in order]
    return total_disp
