"""Abacus: optimal single-row placement refinement by clustering DP.

Within each sub-row (cell-to-row assignment fixed by Tetris), Abacus
places cells in desired-x order minimizing total weighted squared
displacement, by merging cells into clusters whose optimal position is
the weighted mean of member targets (Spindler et al., ISPD'08).

The default path runs the cluster recurrence on flat parallel stacks
(e/q/w/x plus the first-member position of each cluster — membership is
an index *range* over the cells pre-sorted per sub-row), so a collapse
pops scalars instead of concatenating Python lists of node objects.
``reference=True`` keeps the original ``_Cluster``-object implementation
callable as the golden baseline; the recurrence arithmetic is replicated
operation by operation, so both produce bit-identical rows.
"""

from __future__ import annotations

import numpy as np

from repro.legal.subrows import SubRowMap


class _Cluster:
    __slots__ = ("e", "q", "w", "x", "cells")

    def __init__(self):
        self.e = 0.0  # total weight
        self.q = 0.0  # sum of weight * (target - offset-in-cluster)
        self.w = 0.0  # total width
        self.x = 0.0
        self.cells = []

    def add_cell(self, node, target_x: float, weight: float) -> None:
        self.cells.append(node)
        self.q += weight * (target_x - self.w)
        self.e += weight
        self.w += node.placed_width

    def merge_left(self, other: "_Cluster") -> None:
        """Absorb ``self`` into ``other`` (other is to the left)."""
        for node in self.cells:
            other.cells.append(node)
        other.q += self.q - self.e * other.w
        other.e += self.e
        other.w += self.w

    def optimal_x(self, x_min: float, x_max: float) -> float:
        x = self.q / self.e if self.e > 0 else x_min
        return min(max(x, x_min), x_max - self.w)


def _snap_x(x: float, cell_width: float, x_min: float, x_max: float,
            site_width: float) -> float:
    """:meth:`~repro.legal.subrows.SubRow.snap_x`, replicated verbatim
    so the row core below stays a pure function of plain scalars (worker
    processes run it without node/sub-row objects)."""
    x = min(max(x, x_min), x_max - cell_width)
    site = round((x - x_min) / site_width)
    out = x_min + site * site_width
    if out + cell_width > x_max + 1e-9:
        out -= site_width
    return max(out, x_min)


def _refine_row(tgt, widths, x_min: float, x_max: float, site_width: float):
    """The per-row cluster recurrence as a pure function.

    ``tgt``/``widths`` are per-cell lists in the sub-row's current cell
    order.  Returns ``(order, xs_out, disps)``: the target-sorted cell
    order (indices into the input lists), the final lower-left x per
    sorted position, and the pre-repack |displacement| per sorted
    position.  Both the serial loop and the row-parallel path
    (``repro.parallel.legal``) call this exact function, so their rows
    are bit-identical by construction.
    """
    order = np.argsort(np.array(tgt), kind="stable").tolist()
    tgt = [tgt[j] for j in order]
    widths = [widths[j] for j in order]
    n_cells = len(tgt)
    # Cluster stacks: weight, q, width, optimal x, first member index.
    ce: list = []
    cq: list = []
    cw: list = []
    cx: list = []
    cfirst: list = []
    for pos in range(n_cells):
        wd = widths[pos]
        target = min(max(tgt[pos], x_min), x_max - wd)
        # A fresh cluster's add_cell, replicated literally.
        q = 0.0 + 1.0 * (target - 0.0)
        e = 0.0 + 1.0
        w = 0.0 + wd
        x = q / e if e > 0 else x_min
        cq.append(q)
        ce.append(e)
        cw.append(w)
        cx.append(min(max(x, x_min), x_max - w))
        cfirst.append(pos)
        # Collapse overlaps from the right end.
        while len(cx) >= 2 and cx[-2] + cw[-2] > cx[-1] + 1e-12:
            q_r = cq.pop()
            e_r = ce.pop()
            w_r = cw.pop()
            cx.pop()
            cfirst.pop()
            cq[-1] += q_r - e_r * cw[-1]
            ce[-1] += e_r
            cw[-1] += w_r
            x = cq[-1] / ce[-1] if ce[-1] > 0 else x_min
            cx[-1] = min(max(x, x_min), x_max - cw[-1])
    # Write back, site-aligned.
    xs_out = [0.0] * n_cells
    disps = [0.0] * n_cells
    cursor = x_min
    n_clusters = len(cfirst)
    for ci in range(n_clusters):
        x = cq[ci] / ce[ci] if ce[ci] > 0 else x_min
        x = min(max(x, x_min), x_max - cw[ci])
        last = cfirst[ci + 1] if ci + 1 < n_clusters else n_cells
        for pos in range(cfirst[ci], last):
            wd = widths[pos]
            xx = max(_snap_x(x, wd, x_min, x_max, site_width), cursor)
            xs_out[pos] = xx
            cursor = xx + wd
            disps[pos] = abs(xx - tgt[pos])
            x += wd
    # The site snap can push the tail past the boundary; repack from
    # the right edge leftward (alignment is preserved because widths
    # are whole sites).
    limit = x_max
    for pos in range(n_cells - 1, -1, -1):
        x = min(xs_out[pos], limit - widths[pos])
        xs_out[pos] = max(x, x_min)
        limit = xs_out[pos]
    return order, xs_out, disps


def _apply_row(design, sr, order, xs_out) -> None:
    """Write one refined row's positions and cell order back."""
    nodes = [design.nodes[i] for i in sr.cells]
    nodes = [nodes[j] for j in order]
    y = sr.y
    for pos, node in enumerate(nodes):
        node.x = xs_out[pos]
        node.y = y
    sr.cells = [n.index for n in nodes]


def abacus_refine(
    design,
    submap: SubRowMap,
    desired_x: dict | None = None,
    *,
    reference: bool = False,
    pool=None,
) -> float:
    """Refine every sub-row; returns total |x displacement| vs desired.

    ``desired_x`` maps node index to the pre-legalization lower-left x
    (defaults to current positions, i.e. pure re-packing).  ``pool`` (a
    :class:`repro.parallel.WorkerPool`) distributes the independent row
    recurrences across workers; rows are applied in sub-row order, so
    the result — including the returned displacement scalar — is
    bit-identical to the serial path.
    """
    if reference:
        return _refine_reference(design, submap, desired_x)
    if pool is not None:
        from repro.parallel.legal import abacus_refine_parallel

        return abacus_refine_parallel(design, submap, desired_x, pool)
    total_disp = 0.0
    for sr in submap.subrows:
        if not sr.cells:
            continue
        nodes = [design.nodes[i] for i in sr.cells]
        tgt = [
            (desired_x.get(n.index, n.x) if desired_x else n.x) for n in nodes
        ]
        widths = [n.placed_width for n in nodes]
        order, xs_out, disps = _refine_row(
            tgt, widths, sr.x_min, sr.x_max, sr.site_width
        )
        _apply_row(design, sr, order, xs_out)
        # Per-cell accumulation in sorted order — the same additions in
        # the same sequence the pre-refactor inline loop ran.
        for d in disps:
            total_disp += d
    return total_disp


def _refine_reference(design, submap: SubRowMap, desired_x: dict | None) -> float:
    """The original cluster-object implementation (golden baseline)."""
    total_disp = 0.0
    for sr in submap.subrows:
        if not sr.cells:
            continue
        nodes = [design.nodes[i] for i in sr.cells]
        targets = {
            n.index: (desired_x.get(n.index, n.x) if desired_x else n.x) for n in nodes
        }
        nodes.sort(key=lambda n: targets[n.index])
        clusters = []
        for node in nodes:
            target = min(max(targets[node.index], sr.x_min), sr.x_max - node.placed_width)
            c = _Cluster()
            c.add_cell(node, target, weight=1.0)
            c.x = c.optimal_x(sr.x_min, sr.x_max)
            clusters.append(c)
            # Collapse overlaps from the right end.
            while len(clusters) >= 2 and clusters[-2].x + clusters[-2].w > clusters[-1].x + 1e-12:
                right = clusters.pop()
                right.merge_left(clusters[-1])
                clusters[-1].x = clusters[-1].optimal_x(sr.x_min, sr.x_max)
        # Write back, site-aligned.
        order = []
        for c in clusters:
            x = c.optimal_x(sr.x_min, sr.x_max)
            for node in c.cells:
                order.append((node, x))
                x += node.placed_width
        cursor = sr.x_min
        for node, x in order:
            x = max(sr.snap_x(x, node.placed_width), cursor)
            node.x = x
            node.y = sr.y
            cursor = x + node.placed_width
            total_disp += abs(x - targets[node.index])
        # The site snap can push the tail past the boundary; repack from
        # the right edge leftward (alignment is preserved because widths
        # are whole sites).
        limit = sr.x_max
        for node, _ in reversed(order):
            x = min(node.x, limit - node.placed_width)
            node.x = max(x, sr.x_min)
            limit = node.x
        sr.cells = [n.index for n, _ in order]
    return total_disp
