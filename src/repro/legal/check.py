"""Independent legality audit.

Used by tests and the flow after legalization/detailed placement; checks
are written against the design rules directly, not against the
legalizers' internal state, so they catch legalizer bugs.

The default path evaluates core containment, site phase and fence
intrusion as vectorized NumPy predicates over flat coordinate arrays and
only materializes per-node messages for actual violations; the overlap
sweep runs on plain float tuples instead of :class:`Rect` objects.
``reference=True`` runs the original per-object loop, kept verbatim.
Both emit identical reports — every comparison is replicated with the
same scalar semantics, in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.db import Design, NodeKind


@dataclass
class LegalityReport:
    """Violations found by :func:`check_legal` (empty = legal)."""

    violations: list = field(default_factory=list)
    checked_nodes: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return f"legal ({self.checked_nodes} nodes checked)"
        head = "; ".join(self.violations[:5])
        more = f" (+{len(self.violations) - 5} more)" if len(self.violations) > 5 else ""
        return f"{len(self.violations)} violations: {head}{more}"


def check_legal(
    design: Design,
    *,
    tol: float = 1e-6,
    max_violations: int = 200,
    reference: bool = False,
) -> LegalityReport:
    """Audit core containment, row/site alignment, overlaps and fences."""
    if reference:
        return _check_legal_reference(
            design, tol=tol, max_violations=max_violations
        )
    report = LegalityReport()
    core = design.core
    rows_y = {round(r.y, 6) for r in design.rows}
    site = design.site_width

    def add(msg: str) -> bool:
        report.violations.append(msg)
        return len(report.violations) >= max_violations

    movables = [n for n in design.nodes if n.is_movable]
    n_mov = len(movables)
    if n_mov:
        x = np.array([n.x for n in movables])
        y = np.array([n.y for n in movables])
        pw = np.array([n.placed_width for n in movables])
        ph = np.array([n.placed_height for n in movables])
        xh = x + pw
        yh = y + ph
        is_cell = np.array([n.kind is NodeKind.CELL for n in movables])
        m_core = (
            (x < core.xl - tol)
            | (xh > core.xh + tol)
            | (y < core.yl - tol)
            | (yh > core.yh + tol)
        )
        # Row alignment keys use Python round(), exactly like the scalar
        # loop; building the key list is cheap relative to set lookups.
        m_row = np.array(
            [
                bool(c) and round(yv, 6) not in rows_y
                for c, yv in zip(is_cell.tolist(), y.tolist())
            ]
        )
        phase = (x - core.xl) / site
        m_site = is_cell & (np.abs(phase - np.rint(phase)) > 1e-4)
        # Fence checks: fenced nodes go through the original Rect methods
        # (they are few); unfenced intrusion is vectorized per fence rect.
        m_fence = np.zeros(n_mov, dtype=bool)
        fence_of = np.full(n_mov, -1, dtype=np.int64)
        unfenced = np.array([n.region is None for n in movables])
        for pos in np.flatnonzero(~unfenced).tolist():
            node = movables[pos]
            r = node.rect
            region = design.regions[node.region]
            if not region.contains_rect(
                r.inflated(-min(tol, r.width / 2, r.height / 2))
            ):
                m_fence[pos] = True
                fence_of[pos] = node.region
        if design.regions and unfenced.any():
            limit = tol * np.maximum(1.0, pw * ph)
            for region in design.regions:
                hit = np.zeros(n_mov, dtype=bool)
                for fr in region.rects:
                    w_ov = np.minimum(xh, fr.xh) - np.maximum(x, fr.xl)
                    h_ov = np.minimum(yh, fr.yh) - np.maximum(y, fr.yl)
                    ov = np.where((w_ov > 0.0) & (h_ov > 0.0), w_ov * h_ov, 0.0)
                    hit |= ov > limit
                fresh = hit & unfenced & ~m_fence
                m_fence |= fresh
                fence_of[fresh] = region.index
        any_viol = m_core | m_row | m_site | m_fence
        for pos in np.flatnonzero(any_viol).tolist():
            node = movables[pos]
            full = False
            if m_core[pos]:
                full = add(f"{node.name}: outside core")
            if not full and m_row[pos]:
                full = add(f"{node.name}: not row-aligned (y={node.y})")
            if not full and m_site[pos]:
                full = add(f"{node.name}: not site-aligned (x={node.x})")
            if not full and m_fence[pos]:
                region = design.regions[fence_of[pos]]
                if unfenced[pos]:
                    full = add(f"{node.name}: intrudes into fence {region.name}")
                else:
                    full = add(f"{node.name}: outside fence {region.name}")
            if full:
                report.checked_nodes = pos + 1
                return report
    report.checked_nodes = n_mov

    blockers = [
        (float(x[i]), float(y[i]), float(xh[i]), float(yh[i]), movables[i].name)
        for i in range(n_mov)
    ]
    for node in design.nodes:
        if not node.is_movable and node.kind.blocks_placement:
            r = node.rect
            blockers.append((r.xl, r.yl, r.xh, r.yh, node.name))

    # Overlap sweep: sort by xl, compare against active window.
    blockers.sort(key=lambda t: t[0])
    active: list = []
    for bxl, byl, bxh, byh, name in blockers:
        still = []
        for o in active:
            if o[2] > bxl + tol:
                still.append(o)
                if bxl < o[2] and o[0] < bxh and byl < o[3] and o[1] < byh:
                    w = min(bxh, o[2]) - max(bxl, o[0])
                    h = min(byh, o[3]) - max(byl, o[1])
                    if not (w <= 0.0 or h <= 0.0) and w * h > tol:
                        if add(f"overlap: {name} x {o[4]}"):
                            return report
        active = still
        active.append((bxl, byl, bxh, byh, name))
    return report


def _check_legal_reference(
    design: Design, *, tol: float = 1e-6, max_violations: int = 200
) -> LegalityReport:
    """The original per-object audit loop (golden baseline)."""
    report = LegalityReport()
    core = design.core
    rows_y = {round(r.y, 6) for r in design.rows}
    site = design.site_width

    def add(msg: str) -> bool:
        report.violations.append(msg)
        return len(report.violations) >= max_violations

    blockers = []
    for node in design.nodes:
        if not node.is_movable:
            continue
        report.checked_nodes += 1
        r = node.rect
        if (
            r.xl < core.xl - tol
            or r.xh > core.xh + tol
            or r.yl < core.yl - tol
            or r.yh > core.yh + tol
        ):
            if add(f"{node.name}: outside core"):
                return report
        if node.kind is NodeKind.CELL:
            if round(node.y, 6) not in rows_y:
                if add(f"{node.name}: not row-aligned (y={node.y})"):
                    return report
            phase = (node.x - core.xl) / site
            if abs(phase - round(phase)) > 1e-4:
                if add(f"{node.name}: not site-aligned (x={node.x})"):
                    return report
        if node.region is not None:
            region = design.regions[node.region]
            if not region.contains_rect(r.inflated(-min(tol, r.width / 2, r.height / 2))):
                if add(f"{node.name}: outside fence {region.name}"):
                    return report
        else:
            for region in design.regions:
                if any(
                    r.overlap_area(fr) > tol * max(1.0, r.area) for fr in region.rects
                ):
                    if add(f"{node.name}: intrudes into fence {region.name}"):
                        return report
                    break
        blockers.append((r, node.name))
    for node in design.nodes:
        if not node.is_movable and node.kind.blocks_placement:
            blockers.append((node.rect, node.name))

    # Overlap sweep: sort by xl, compare against active window.
    blockers.sort(key=lambda t: t[0].xl)
    active = []
    for rect, name in blockers:
        still = []
        for other, other_name in active:
            if other.xh > rect.xl + tol:
                still.append((other, other_name))
                if rect.intersects(other) and rect.overlap_area(other) > tol:
                    if add(f"overlap: {name} x {other_name}"):
                        return report
        active = still
        active.append((rect, name))
    return report
