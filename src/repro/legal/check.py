"""Independent legality audit.

Used by tests and the flow after legalization/detailed placement; checks
are written against the design rules directly, not against the
legalizers' internal state, so they catch legalizer bugs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db import Design, NodeKind


@dataclass
class LegalityReport:
    """Violations found by :func:`check_legal` (empty = legal)."""

    violations: list = field(default_factory=list)
    checked_nodes: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return f"legal ({self.checked_nodes} nodes checked)"
        head = "; ".join(self.violations[:5])
        more = f" (+{len(self.violations) - 5} more)" if len(self.violations) > 5 else ""
        return f"{len(self.violations)} violations: {head}{more}"


def check_legal(design: Design, *, tol: float = 1e-6, max_violations: int = 200) -> LegalityReport:
    """Audit core containment, row/site alignment, overlaps and fences."""
    report = LegalityReport()
    core = design.core
    rows_y = {round(r.y, 6) for r in design.rows}
    site = design.site_width

    def add(msg: str) -> bool:
        report.violations.append(msg)
        return len(report.violations) >= max_violations

    blockers = []
    for node in design.nodes:
        if not node.is_movable:
            continue
        report.checked_nodes += 1
        r = node.rect
        if (
            r.xl < core.xl - tol
            or r.xh > core.xh + tol
            or r.yl < core.yl - tol
            or r.yh > core.yh + tol
        ):
            if add(f"{node.name}: outside core"):
                return report
        if node.kind is NodeKind.CELL:
            if round(node.y, 6) not in rows_y:
                if add(f"{node.name}: not row-aligned (y={node.y})"):
                    return report
            phase = (node.x - core.xl) / site
            if abs(phase - round(phase)) > 1e-4:
                if add(f"{node.name}: not site-aligned (x={node.x})"):
                    return report
        if node.region is not None:
            region = design.regions[node.region]
            if not region.contains_rect(r.inflated(-min(tol, r.width / 2, r.height / 2))):
                if add(f"{node.name}: outside fence {region.name}"):
                    return report
        else:
            for region in design.regions:
                if any(
                    r.overlap_area(fr) > tol * max(1.0, r.area) for fr in region.rects
                ):
                    if add(f"{node.name}: intrudes into fence {region.name}"):
                        return report
                    break
        blockers.append((r, node.name))
    for node in design.nodes:
        if not node.is_movable and node.kind.blocks_placement:
            blockers.append((node.rect, node.name))

    # Overlap sweep: sort by xl, compare against active window.
    blockers.sort(key=lambda t: t[0].xl)
    active = []
    for rect, name in blockers:
        still = []
        for other, other_name in active:
            if other.xh > rect.xl + tol:
                still.append((other, other_name))
                if rect.intersects(other) and rect.overlap_area(other) > tol:
                    if add(f"overlap: {name} x {other_name}"):
                        return report
        active = still
        active.append((rect, name))
    return report
