"""Incremental (ECO) legalization.

After an engineering change — a handful of cells moved, resized or added
— rerunning full legalization would disturb thousands of placed cells.
``eco_legalize`` re-legalizes *only* the changed cells: each is inserted
into the nearest sub-row gap that accommodates it (its fence domain
respected), leaving every other cell untouched.

Returns per-cell displacements so callers can bound the disturbance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db import Design, NodeKind
from repro.legal.subrows import SubRowMap


@dataclass
class EcoResult:
    """Outcome of one incremental legalization."""

    placed: list = field(default_factory=list)  # (node index, displacement)
    failed: list = field(default_factory=list)  # node indices with no spot

    @property
    def ok(self) -> bool:
        return not self.failed

    @property
    def max_displacement(self) -> float:
        return max((d for _, d in self.placed), default=0.0)

    @property
    def total_displacement(self) -> float:
        return sum(d for _, d in self.placed)


def _free_intervals(design: Design, sr, exclude: set):
    cells = sorted(
        (i for i in sr.cells if i not in exclude),
        key=lambda i: design.nodes[i].x,
    )
    out = []
    cursor = sr.x_min
    for idx in cells:
        node = design.nodes[idx]
        if node.x > cursor + 1e-9:
            out.append((cursor, node.x))
        cursor = max(cursor, node.x + node.placed_width)
    if cursor < sr.x_max - 1e-9:
        out.append((cursor, sr.x_max))
    return out


def eco_legalize(
    design: Design,
    changed: list,
    submap: SubRowMap | None = None,
    *,
    search_radius: float | None = None,
) -> EcoResult:
    """Legalize only ``changed`` (node indices), minimally displacing them.

    The rest of the placement is treated as immovable.  ``search_radius``
    limits the y-distance of candidate sub-rows (default: whole core;
    the nearest feasible gap wins regardless).
    """
    if submap is None:
        submap = SubRowMap(design)
    submap.rebuild_cells(design)
    exclude = set(changed)
    result = EcoResult()
    # Widest first: hardest to seat, and earlier placements only shrink
    # the gap supply.
    order = sorted(
        (i for i in changed if design.nodes[i].is_movable),
        key=lambda i: -design.nodes[i].placed_width,
    )
    if search_radius is None:
        search_radius = design.core.height
    for idx in order:
        node = design.nodes[idx]
        if node.kind not in (NodeKind.CELL, NodeKind.FILLER):
            result.failed.append(idx)  # macros need the macro legalizer
            continue
        best = None
        best_cost = float("inf")
        for sr in submap.for_region(node.region):
            dy = abs(sr.y - node.y)
            if dy > search_radius or dy >= best_cost:
                continue
            for lo, hi in _free_intervals(design, sr, exclude):
                if hi - lo < node.placed_width - 1e-9:
                    continue
                x = min(max(node.x, lo), hi - node.placed_width)
                x = sr.snap_x(x, node.placed_width)
                if x < lo - 1e-9 or x + node.placed_width > hi + 1e-9:
                    continue
                cost = abs(x - node.x) + dy
                if cost < best_cost:
                    best_cost = cost
                    best = (sr, x)
        if best is None:
            result.failed.append(idx)
            continue
        sr, x = best
        disp = abs(x - node.x) + abs(sr.y - node.y)
        node.x = x
        node.y = sr.y
        sr.cells.append(idx)
        exclude.discard(idx)  # now a fixed obstacle for the rest
        result.placed.append((idx, disp))
    return result
