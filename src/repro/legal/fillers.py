"""Filler-cell insertion and removal.

Fillers occupy the whitespace of legalized sub-rows so later incremental
steps (ECO moves, spreading experiments) cannot silently collapse the
gaps the placer left for routability.  They are ordinary movable nodes
of kind :data:`~repro.db.NodeKind.FILLER`, excluded from statistics and
wirelength (no pins), and removable with :func:`remove_fillers`.
"""

from __future__ import annotations

from repro.db import Design, Node, NodeKind
from repro.legal.subrows import SubRowMap


def insert_fillers(
    design: Design,
    submap: SubRowMap | None = None,
    *,
    max_width_sites: int = 16,
    prefix: str = "repro_fill",
) -> int:
    """Fill every sub-row gap with filler cells; returns fillers added.

    Gaps wider than ``max_width_sites`` sites are tiled by several
    fillers so detailed placement can still move them individually.
    """
    if submap is None:
        submap = SubRowMap(design)
        submap.rebuild_cells(design)
    count = 0
    for sr in submap.subrows:
        cells = sorted(sr.cells, key=lambda i: design.nodes[i].x)
        cursor = sr.x_min
        spans = []
        for idx in cells:
            node = design.nodes[idx]
            if node.x > cursor + 1e-9:
                spans.append((cursor, node.x))
            cursor = max(cursor, node.x + node.placed_width)
        if cursor < sr.x_max - 1e-9:
            spans.append((cursor, sr.x_max))
        for lo, hi in spans:
            x = lo
            while hi - x > 1e-9:
                width = min(hi - x, max_width_sites * sr.site_width)
                # Snap the width down to whole sites; drop sub-site slivers.
                sites = int(round(width / sr.site_width))
                if sites < 1:
                    break
                width = sites * sr.site_width
                if x + width > hi + 1e-9:
                    break
                node = design.add_node(
                    Node(
                        name=f"{prefix}_{count}",
                        width=width,
                        height=sr.height,
                        kind=NodeKind.FILLER,
                        x=x,
                        y=sr.y,
                        region=sr.region,
                    )
                )
                sr.cells.append(node.index)
                count += 1
                x += width
    return count


def remove_fillers(design: Design, prefix: str = "repro_fill") -> int:
    """Remove all filler nodes previously inserted; returns count.

    Fillers never carry pins, so the netlist is untouched; node indices
    are recomputed, which invalidates outstanding index-based references
    — call between flow stages, not inside one.
    """
    keep = [n for n in design.nodes if n.kind is not NodeKind.FILLER]
    removed = len(design.nodes) - len(keep)
    if removed == 0:
        return 0
    if any(n.pins for n in design.nodes if n.kind is NodeKind.FILLER):
        raise ValueError("cannot remove fillers that carry pins")
    old_to_new = {}
    design.nodes = []
    design._node_index = {}
    for node in keep:
        old = node.index
        node.index = len(design.nodes)
        design.nodes.append(node)
        design._node_index[node.name] = node.index
        old_to_new[old] = node.index
    for net in design.nets:
        for pin in net.pins:
            pin.node = old_to_new[pin.node]
    # Hierarchy cell lists reference node indices; remap them too.
    for module in design.hierarchy.modules():
        module.cells = [old_to_new[c] for c in module.cells if c in old_to_new]
    design._topology_version += 1
    return removed
