"""The legalization stage orchestrator."""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.db import Design
from repro.legal.abacus import abacus_refine
from repro.legal.check import LegalityReport, check_legal
from repro.legal.macro_legal import legalize_macros
from repro.legal.subrows import SubRowMap
from repro.legal.tetris import tetris_legalize
from repro.obs import get_tracer


@dataclass
class LegalizeResult:
    """Outcome of :meth:`Legalizer.legalize`."""

    submap: SubRowMap
    macros_moved: int
    total_displacement: float
    max_displacement: float
    runtime_seconds: float
    report: LegalityReport

    @property
    def ok(self) -> bool:
        return self.report.ok


class Legalizer:
    """Macro legalization + Tetris + Abacus, with a legality audit."""

    def __init__(
        self,
        *,
        macro_channel: float = 0.0,
        row_probe: int = 24,
        tetris_only: bool = False,
    ):
        self.macro_channel = macro_channel
        self.row_probe = row_probe
        # Fallback mode: skip the Abacus refinement and accept the plain
        # Tetris result.  The flow switches this on when a full
        # legalization attempt fails, trading displacement quality for a
        # placement that is still legal.
        self.tetris_only = tetris_only

    def legalize(self, design: Design) -> LegalizeResult:
        tracer = get_tracer()
        t0 = time.perf_counter()
        desired = {
            n.index: (n.x, n.y) for n in design.nodes if n.is_movable
        }
        with tracer.span("macro_legal"):
            macros_moved = legalize_macros(design, channel=self.macro_channel)
        with tracer.span("tetris"):
            submap = SubRowMap(design)
            tetris_legalize(design, submap, row_probe=self.row_probe)
        if not self.tetris_only:
            with tracer.span("abacus"):
                abacus_refine(design, submap, {i: xy[0] for i, xy in desired.items()})
        total = 0.0
        worst = 0.0
        for node in design.nodes:
            if not node.is_movable:
                continue
            dx0, dy0 = desired[node.index]
            d = abs(node.x - dx0) + abs(node.y - dy0)
            total += d
            worst = max(worst, d)
        with tracer.span("audit"):
            report = check_legal(design)
        tracer.metrics.gauge("legal.total_displacement").set(total)
        tracer.metrics.gauge("legal.max_displacement").set(worst)
        return LegalizeResult(
            submap=submap,
            macros_moved=macros_moved,
            total_displacement=total,
            max_displacement=worst,
            runtime_seconds=time.perf_counter() - t0,
            report=report,
        )
