"""The legalization stage orchestrator."""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.db import Design
from repro.legal.abacus import abacus_refine
from repro.legal.check import LegalityReport, check_legal
from repro.legal.macro_legal import legalize_macros
from repro.legal.subrows import SubRowMap
from repro.legal.tetris import tetris_legalize
from repro.obs import get_tracer
from repro.parallel import resolve_workers


@dataclass
class LegalConfig:
    """Knobs of :class:`Legalizer`."""

    macro_channel: float = 0.0
    row_probe: int = 24
    # Fallback mode: skip the Abacus refinement and accept the plain
    # Tetris result.  The flow switches this on when a full legalization
    # attempt fails, trading displacement quality for a placement that is
    # still legal.
    tetris_only: bool = False
    # Golden mode: run the original per-object Tetris / Abacus / audit
    # implementations (kept verbatim) instead of the array-based hot
    # paths.  Results are bit-identical either way — CI and the
    # equivalence tests assert it.
    reference: bool = False
    # Worker processes for the row-parallel Abacus refinement and the
    # fence-domain-parallel Tetris assignment (repro.parallel.legal).
    # 1 = serial (REPRO_WORKERS env can override), 0 = one per CPU; the
    # parallel paths are bit-identical to serial by construction.
    workers: int = 1
    # True = use ``workers`` exactly, ignoring REPRO_WORKERS (multi-job
    # hosts pin per-job counts so concurrent flows cannot oversubscribe).
    workers_pinned: bool = False


@dataclass
class LegalizeResult:
    """Outcome of :meth:`Legalizer.legalize`."""

    submap: SubRowMap
    macros_moved: int
    total_displacement: float
    max_displacement: float
    runtime_seconds: float
    report: LegalityReport

    @property
    def ok(self) -> bool:
        return self.report.ok


class Legalizer:
    """Macro legalization + Tetris + Abacus, with a legality audit."""

    def __init__(
        self,
        config: LegalConfig | None = None,
        *,
        macro_channel: float | None = None,
        row_probe: int | None = None,
        tetris_only: bool | None = None,
        reference: bool | None = None,
        workers: int | None = None,
    ):
        cfg = config or LegalConfig()
        # Keyword overrides keep the historical constructor working.
        if macro_channel is not None:
            cfg = replace(cfg, macro_channel=macro_channel)
        if row_probe is not None:
            cfg = replace(cfg, row_probe=row_probe)
        if tetris_only is not None:
            cfg = replace(cfg, tetris_only=tetris_only)
        if reference is not None:
            cfg = replace(cfg, reference=reference)
        if workers is not None:
            cfg = replace(cfg, workers=workers)
        self.config = cfg
        self.macro_channel = cfg.macro_channel
        self.row_probe = cfg.row_probe
        self.tetris_only = cfg.tetris_only
        self.reference = cfg.reference
        self.workers = cfg.workers
        self.workers_pinned = cfg.workers_pinned

    def legalize(self, design: Design) -> LegalizeResult:
        tracer = get_tracer()
        t0 = time.perf_counter()
        desired = {
            n.index: (n.x, n.y) for n in design.nodes if n.is_movable
        }
        with tracer.span("macro_legal"):
            macros_moved = legalize_macros(design, channel=self.macro_channel)
        pool = None
        workers = (
            1
            if self.reference
            else resolve_workers(self.workers, env=not self.workers_pinned)
        )
        try:
            with tracer.span("tetris"):
                submap = SubRowMap(design)
                if workers > 1 and len(submap.subrows) >= 2 * workers:
                    from repro.parallel import WorkerPool

                    pool = WorkerPool(workers, label="legal")
                tetris_legalize(
                    design,
                    submap,
                    row_probe=self.row_probe,
                    reference=self.reference,
                    pool=pool,
                )
            if not self.tetris_only:
                with tracer.span("abacus"):
                    abacus_refine(
                        design,
                        submap,
                        {i: xy[0] for i, xy in desired.items()},
                        reference=self.reference,
                        pool=pool,
                    )
        finally:
            if pool is not None:
                pool.close()
        total = 0.0
        worst = 0.0
        for node in design.nodes:
            if not node.is_movable:
                continue
            dx0, dy0 = desired[node.index]
            d = abs(node.x - dx0) + abs(node.y - dy0)
            total += d
            worst = max(worst, d)
        with tracer.span("audit"):
            report = check_legal(design, reference=self.reference)
        tracer.metrics.gauge("legal.total_displacement").set(total)
        tracer.metrics.gauge("legal.max_displacement").set(worst)
        return LegalizeResult(
            submap=submap,
            macros_moved=macros_moved,
            total_displacement=total,
            max_displacement=worst,
            runtime_seconds=time.perf_counter() - t0,
            report=report,
        )
