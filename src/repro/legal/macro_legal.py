"""Macro legalization: overlap-free, grid-aligned macro positions.

Greedy by decreasing area (large macros are hardest to fit): each macro
is snapped to the site/row grid at its global-placement position; if that
overlaps a fixed object or an already-legalized macro, a spiral search
over grid offsets of increasing radius finds the nearest free position.
This is the pragmatic core of what MP-tree-style macro legalizers do at
this scale, and it preserves the global placer's macro arrangement.
"""

from __future__ import annotations

import numpy as np

from repro.db import Design, NodeKind
from repro.geometry import Rect


def _snap(value: float, origin: float, pitch: float) -> float:
    return origin + pitch * round((value - origin) / pitch)


def legalize_macros(
    design: Design, *, max_radius_rows: int = 200, channel: float = 0.0
) -> int:
    """Legalize every movable macro; returns how many had to move.

    ``channel`` reserves a clearance margin around each macro (in die
    units) — the narrow-channel padding that keeps standard-cell and
    routing space between abutting macros.
    """
    core = design.core
    site = design.site_width
    row_h = design.row_height
    obstacles = [
        node.rect
        for node in design.nodes
        if node.kind.is_fixed and node.kind.blocks_placement
    ]
    # Fence interiors are reserved for their member cells; macros that do
    # not belong to a region treat its rectangles as hard obstacles.
    fence_obstacles = {
        region.index: list(region.rects) for region in design.regions
    }
    macros = sorted(
        (n for n in design.nodes if n.kind is NodeKind.MACRO),
        key=lambda n: -n.area,
    )
    moved = 0
    for node in macros:
        blocked = obstacles + [
            r
            for rid, rects in fence_obstacles.items()
            if rid != node.region
            for r in rects
        ]
        placed = _legal_spot(node, core, blocked, site, row_h, max_radius_rows, channel)
        if placed is None:
            # Desperate fallback: clamp into core, accept the overlap; the
            # legality check will flag it rather than silently dropping.
            origin = core.clamp_rect_origin(node.rect)
            node.x, node.y = origin.x, origin.y
        else:
            if abs(placed[0] - node.x) > 1e-9 or abs(placed[1] - node.y) > 1e-9:
                moved += 1
            node.x, node.y = placed
        obstacles.append(node.rect.inflated(channel))
    return moved


def _legal_spot(node, core: Rect, obstacles, site, row_h, max_radius, channel):
    """Nearest grid-aligned, in-core, overlap-free lower-left for ``node``."""
    w, h = node.placed_width, node.placed_height
    x0 = _snap(min(max(node.x, core.xl), core.xh - w), core.xl, site)
    y0 = _snap(min(max(node.y, core.yl), core.yh - h), core.yl, row_h)

    def ok(x, y):
        if x < core.xl - 1e-9 or x + w > core.xh + 1e-9:
            return False
        if y < core.yl - 1e-9 or y + h > core.yh + 1e-9:
            return False
        rect = Rect.from_size(x, y, w, h).inflated(channel)
        return not any(rect.intersects(ob) for ob in obstacles)

    if ok(x0, y0):
        return (x0, y0)
    # Spiral over the ring of radius r (in rows vertically, ~rows in x).
    step_x = max(site, row_h)  # coarse x step keeps the search bounded
    for r in range(1, max_radius + 1):
        candidates = []
        dy = r * row_h
        dxs = np.arange(-r, r + 1) * step_x
        for dx in dxs:
            candidates.append((x0 + dx, y0 + dy))
            candidates.append((x0 + dx, y0 - dy))
        dx = r * step_x
        dys = np.arange(-r + 1, r) * row_h
        for dyy in dys:
            candidates.append((x0 + dx, y0 + dyy))
            candidates.append((x0 - dx, y0 + dyy))
        candidates.sort(key=lambda p: abs(p[0] - node.x) + abs(p[1] - node.y))
        for x, y in candidates:
            x = _snap(x, core.xl, site)
            y = _snap(y, core.yl, row_h)
            if ok(x, y):
                return (x, y)
    return None
