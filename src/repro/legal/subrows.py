"""Sub-rows: placement rows fragmented by obstacles and fence domains.

A sub-row is a maximal obstacle-free interval of a row belonging to one
*fence domain*: either the interior of one fence region (only that
region's cells may use it) or the open area (only unfenced cells).  This
encodes the contest's exclusive-region semantics directly in the data the
legalizers consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.db import Design, NodeKind


@dataclass
class SubRow:
    """An obstacle-free interval of one row, in one fence domain."""

    row_index: int
    y: float
    height: float
    x_min: float
    x_max: float
    site_width: float
    region: int | None = None  # fence region id; None = open area
    cells: list = field(default_factory=list)  # node indices, set by legalizers

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    def snap_x(self, x: float, cell_width: float) -> float:
        """Site-aligned x nearest ``x`` keeping the cell inside."""
        x = min(max(x, self.x_min), self.x_max - cell_width)
        site = round((x - self.x_min) / self.site_width)
        out = self.x_min + site * self.site_width
        if out + cell_width > self.x_max + 1e-9:
            out -= self.site_width
        return max(out, self.x_min)


def _subtract_intervals(intervals, cut_lo: float, cut_hi: float):
    """Remove ``[cut_lo, cut_hi]`` from a list of disjoint intervals."""
    out = []
    for lo, hi in intervals:
        if cut_hi <= lo or cut_lo >= hi:
            out.append((lo, hi))
            continue
        if cut_lo > lo:
            out.append((lo, cut_lo))
        if cut_hi < hi:
            out.append((cut_hi, hi))
    return out


class SubRowMap:
    """All sub-rows of a design, built from its rows, obstacles and fences."""

    def __init__(self, design: Design, min_width: float | None = None):
        self.design = design
        self.subrows: list = []
        min_width = design.site_width if min_width is None else min_width
        obstacles = [
            node.rect
            for node in design.nodes
            if node.kind.blocks_placement
            and (node.kind.is_fixed or node.kind is NodeKind.MACRO)
        ]
        for row in design.rows:
            row_lo, row_hi = row.y, row.y + row.height
            intervals = [(row.x_min, row.x_max)]
            for rect in obstacles:
                if rect.yl < row_hi - 1e-9 and rect.yh > row_lo + 1e-9:
                    intervals = _subtract_intervals(intervals, rect.xl, rect.xh)
            # Partition each interval into fence domains.  Fence regions
            # are assumed mutually disjoint (the generator and Bookshelf
            # benchmarks guarantee this); overlap would make domains
            # ambiguous and is caught by Design.validate elsewhere.
            for lo, hi in intervals:
                pieces = []
                remaining = [(lo, hi)]
                for region in design.regions:
                    for rect in region.rects:
                        if rect.yl >= row_hi - 1e-9 or rect.yh <= row_lo + 1e-9:
                            continue
                        # Only rows fully inside the fence vertically can
                        # host its cells; partially covered rows are lost
                        # to everyone (cells would straddle the boundary).
                        full = rect.yl <= row_lo + 1e-9 and rect.yh >= row_hi - 1e-9
                        new_remaining = []
                        for qlo, qhi in remaining:
                            cl = max(qlo, rect.xl)
                            ch = min(qhi, rect.xh)
                            if ch > cl and full:
                                pieces.append((cl, ch, region.index))
                            new_remaining.extend(
                                _subtract_intervals([(qlo, qhi)], rect.xl, rect.xh)
                            )
                        remaining = new_remaining
                pieces.extend((qlo, qhi, None) for qlo, qhi in remaining)
                for plo, phi, dom in pieces:
                    # Snap onto the *global* site grid (anchored at the
                    # row origin) so cell x positions stay site-aligned
                    # regardless of where obstacles cut the row.
                    sw = row.site_width
                    plo_s = row.x_min + sw * np.ceil((plo - row.x_min) / sw - 1e-9)
                    phi_s = row.x_min + sw * np.floor((phi - row.x_min) / sw + 1e-9)
                    if phi_s - plo_s >= min_width:
                        self.subrows.append(
                            SubRow(
                                row_index=row.index,
                                y=row.y,
                                height=row.height,
                                x_min=plo_s,
                                x_max=phi_s,
                                site_width=sw,
                                region=dom,
                            )
                        )
        self.subrows.sort(key=lambda s: (s.y, s.x_min))
        self._by_region: dict = {}
        for sr in self.subrows:
            self._by_region.setdefault(sr.region, []).append(sr)

    def for_region(self, region: int | None) -> list:
        """Sub-rows a cell of the given fence domain may occupy."""
        return self._by_region.get(region, [])

    def rebuild_cells(self, design: Design) -> None:
        """Re-derive each sub-row's cell list from current positions.

        Needed after passes that move cells between rows (global /
        vertical swap) so row-local algorithms see fresh membership.
        """
        for sr in self.subrows:
            sr.cells.clear()
        index = {}
        for sr in self.subrows:
            index.setdefault(round(sr.y, 6), []).append(sr)
        for node in design.nodes:
            if not node.is_movable or node.kind not in (
                NodeKind.CELL,
                NodeKind.FILLER,
            ):
                continue
            for sr in index.get(round(node.y, 6), []):
                if sr.x_min - 1e-6 <= node.x and node.x + node.placed_width <= sr.x_max + 1e-6:
                    sr.cells.append(node.index)
                    break
        for sr in self.subrows:
            sr.cells.sort(key=lambda i: design.nodes[i].x)

    def total_capacity(self, region: int | None = None) -> float:
        rows = self.subrows if region is Ellipsis else self.for_region(region)
        return sum(sr.width * sr.height for sr in rows)
