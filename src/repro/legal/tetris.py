"""Tetris-style greedy standard-cell legalization.

Cells are processed left-to-right (by global-placement x); each takes the
cheapest feasible position at the current *tail* of a nearby sub-row in
its fence domain.  O(n log n + n * rows-probed), displacement-aware, and
the classical warm start for Abacus refinement.

The default assignment path ranks candidate sub-rows with a vectorized
stable ``argsort`` over per-domain y arrays and keeps tails/stranding
budgets in flat arrays indexed by sub-row sequence number, instead of
re-sorting a Python list of sub-row objects per cell and keying dicts by
``id(sr)``.  ``reference=True`` runs the original per-object loop, kept
verbatim; both produce bit-identical assignments (a stable argsort over
``|sr.y - node.y|`` reproduces Python's stable ``sorted`` exactly, and
every scalar placement expression is unchanged).
"""

from __future__ import annotations

import numpy as np

from repro.db import Design, NodeKind
from repro.legal.subrows import SubRowMap


def tetris_legalize(
    design: Design,
    submap: SubRowMap | None = None,
    *,
    row_probe: int = 24,
    reference: bool = False,
    pool=None,
) -> SubRowMap:
    """Assign every standard cell to a sub-row position.

    Two attempts: the displacement-friendly variant places each cell at
    ``max(tail, desired x)``, which can strand row space and exhaust
    capacity on tight designs; if that happens the assignment is redone
    with pure tail packing, which never strands and succeeds whenever
    per-domain capacity suffices.  (Abacus restores x afterwards either
    way.)  Raises ``RuntimeError`` only on true capacity exhaustion.

    ``pool`` (a :class:`repro.parallel.WorkerPool`) distributes fence
    domains across workers — cells only interact with sub-rows of their
    own domain, so per-domain processing in x order reproduces the
    global x-order loop bit-identically.  Designs with fewer than two
    populated domains fall back to the serial path.
    """
    if submap is None:
        submap = SubRowMap(design)

    def assign(design, submap, row_probe, pack_only):
        if pool is not None and not reference:
            from repro.parallel.legal import tetris_assign_parallel

            got = tetris_assign_parallel(design, submap, row_probe, pack_only, pool)
            if got is not None:
                return got
        serial = _assign_reference if reference else _assign
        return serial(design, submap, row_probe, pack_only)

    snapshot = {
        n.index: (n.x, n.y)
        for n in design.nodes
        if n.is_movable and n.kind in (NodeKind.CELL, NodeKind.FILLER)
    }
    try:
        return assign(design, submap, row_probe, pack_only=False)
    except RuntimeError:
        for idx, (x, y) in snapshot.items():
            design.nodes[idx].x = x
            design.nodes[idx].y = y
        for sr in submap.subrows:
            sr.cells.clear()
        return assign(design, submap, row_probe, pack_only=True)


def _sorted_cells(design: Design):
    cells = [
        n
        for n in design.nodes
        if n.is_movable and n.kind in (NodeKind.CELL, NodeKind.FILLER)
    ]
    cells.sort(key=lambda n: n.x)
    return cells


def _stranding_budgets(submap: SubRowMap, cells) -> dict:
    """Per-sub-row stranding allowance, keyed by ``id(sr)``.

    Placing a cell past a row's tail permanently wastes the gap (cells
    arrive in x order), so each sub-row may strand at most its fair share
    of its fence domain's slack.  Total stranding then never exceeds
    total slack and the assignment stays feasible.
    """
    need: dict = {}
    for n in cells:
        need[n.region] = need.get(n.region, 0.0) + n.placed_width
    fill: dict = {}
    for region, demand in need.items():
        cap = sum(sr.width for sr in submap.for_region(region))
        fill[region] = demand / cap if cap > 0 else 1.0
    return {
        id(sr): max(0.0, sr.width * (1.0 - fill.get(sr.region, 1.0)))
        for sr in submap.subrows
    }


def _assign(design: Design, submap: SubRowMap, row_probe: int, pack_only: bool) -> SubRowMap:
    subrows = submap.subrows
    sid_of = {id(sr): i for i, sr in enumerate(subrows)}
    tails = np.array([sr.x_min for sr in subrows])
    cells = _sorted_cells(design)
    budgets_by_id = _stranding_budgets(submap, cells)
    budgets = np.array([budgets_by_id[id(sr)] for sr in subrows])
    # Per fence domain: the sub-row list (in for_region order, which the
    # widen fallback walks), their sequence ids, and per-row geometry
    # arrays the vectorized probe reads.
    domains: dict = {}

    def domain_of(region):
        got = domains.get(region, None)
        if got is None:
            dom = submap.for_region(region)
            got = domains[region] = (
                dom,
                np.array([sid_of[id(sr)] for sr in dom], dtype=np.int64),
                np.array([sr.y for sr in dom]),
                np.array([sr.x_min for sr in dom]),
                np.array([sr.x_max for sr in dom]),
                np.array([sr.site_width for sr in dom]),
            )
        return got

    inf = float("inf")
    for node in cells:
        dom, sids, dom_ys, dom_xmin, dom_xmax, dom_site = domain_of(node.region)
        if not dom:
            raise RuntimeError(
                f"no sub-rows available for cell {node.name} "
                f"(region {node.region})"
            )
        nx = node.x
        ny = node.y
        w = node.placed_width
        # Probe sub-rows nearest in y first: a stable argsort over the
        # distance array ranks exactly like sorted(..., key=|Δy|).
        ranked = np.argsort(np.abs(dom_ys - ny), kind="stable")
        if len(ranked) > row_probe:
            ranked = ranked[:row_probe]
        # All probed rows priced at once.  Every expression mirrors the
        # scalar reference loop term for term: one-argument ``round`` is
        # round-half-even, i.e. ``np.rint``; ``int(budget / site)``
        # truncates toward zero and budgets never go negative, so
        # ``np.trunc`` matches; min/max map to np.minimum/np.maximum on
        # the same operands in the same order.
        sid_r = sids[ranked]
        tail_r = tails[sid_r]
        if pack_only:
            x = tail_r
        else:
            xmin_r = dom_xmin[ranked]
            xmax_r = dom_xmax[ranked]
            site_r = dom_site[ranked]
            allowed = site_r * np.trunc(budgets[sid_r] / site_r)
            # snap_x, vectorized.
            xs = np.minimum(np.maximum(nx, xmin_r), xmax_r - w)
            snapped = xmin_r + np.rint((xs - xmin_r) / site_r) * site_r
            snapped = np.where(snapped + w > xmax_r + 1e-9, snapped - site_r, snapped)
            snapped = np.maximum(snapped, xmin_r)
            x = np.minimum(np.maximum(tail_r, snapped), tail_r + allowed)
        cost = np.abs(x - nx) + np.abs(dom_ys[ranked] - ny)
        cost = np.where(x + w > dom_xmax[ranked] + 1e-9, inf, cost)
        # argmin returns the first index achieving the minimum, exactly
        # like the sequential strict `cost < best_cost` update.
        j = int(cost.argmin())
        best_cost = float(cost[j])
        if best_cost != inf:
            best = (int(sid_r[j]), float(x[j]))
        else:
            best = None
        if best is None:
            # Widen: any sub-row in the domain with room at its tail.
            for j, sr in enumerate(dom):
                sid = int(sids[j])
                tail = float(tails[sid])
                if tail + w > sr.x_max + 1e-9:
                    continue
                cost = abs(tail - nx) + abs(sr.y - ny)
                if cost < best_cost:
                    best_cost = cost
                    best = (sid, tail)
        if best is None:
            raise RuntimeError(
                f"legalization capacity exhausted placing {node.name}"
            )
        sid, x = best
        sr = subrows[sid]
        node.x = x
        node.y = sr.y
        budgets[sid] -= max(0.0, x - float(tails[sid]))
        tails[sid] = x + w
        sr.cells.append(node.index)
    return submap


def _assign_domain(
    cells,
    dom_ys,
    dom_xmin,
    dom_xmax,
    dom_site,
    budgets,
    row_probe: int,
    pack_only: bool,
):
    """``_assign`` restricted to one fence domain, on plain arrays.

    ``cells`` is a list of ``(x, y, width, name)`` tuples in global-x
    order; the ``dom_*`` arrays describe the domain's sub-rows in
    ``for_region`` order and ``budgets`` their stranding allowances.
    Returns one ``(local_row, x)`` pair per cell.  Cells never read or
    write another domain's tails, so running each domain independently
    reproduces the interleaved global loop bit-identically — every
    pricing expression below mirrors ``_assign`` term for term.  Raises
    ``RuntimeError`` on capacity exhaustion, exactly like ``_assign``.
    """
    dom_ys = np.asarray(dom_ys, dtype=float)
    dom_xmin = np.asarray(dom_xmin, dtype=float)
    dom_xmax = np.asarray(dom_xmax, dtype=float)
    dom_site = np.asarray(dom_site, dtype=float)
    tails = dom_xmin.copy()
    budgets = np.asarray(budgets, dtype=float).copy()
    n_rows = len(dom_ys)
    inf = float("inf")
    out = []
    for nx, ny, w, name in cells:
        if n_rows == 0:
            raise RuntimeError(f"no sub-rows available for cell {name}")
        ranked = np.argsort(np.abs(dom_ys - ny), kind="stable")
        if len(ranked) > row_probe:
            ranked = ranked[:row_probe]
        tail_r = tails[ranked]
        if pack_only:
            x = tail_r
        else:
            xmin_r = dom_xmin[ranked]
            xmax_r = dom_xmax[ranked]
            site_r = dom_site[ranked]
            allowed = site_r * np.trunc(budgets[ranked] / site_r)
            xs = np.minimum(np.maximum(nx, xmin_r), xmax_r - w)
            snapped = xmin_r + np.rint((xs - xmin_r) / site_r) * site_r
            snapped = np.where(snapped + w > xmax_r + 1e-9, snapped - site_r, snapped)
            snapped = np.maximum(snapped, xmin_r)
            x = np.minimum(np.maximum(tail_r, snapped), tail_r + allowed)
        cost = np.abs(x - nx) + np.abs(dom_ys[ranked] - ny)
        cost = np.where(x + w > dom_xmax[ranked] + 1e-9, inf, cost)
        j = int(cost.argmin())
        best_cost = float(cost[j])
        if best_cost != inf:
            best = (int(ranked[j]), float(x[j]))
        else:
            best = None
        if best is None:
            # Widen: any sub-row in the domain with room at its tail.
            for r in range(n_rows):
                tail = float(tails[r])
                if tail + w > float(dom_xmax[r]) + 1e-9:
                    continue
                c = abs(tail - nx) + abs(float(dom_ys[r]) - ny)
                if c < best_cost:
                    best_cost = c
                    best = (r, tail)
        if best is None:
            raise RuntimeError(f"legalization capacity exhausted placing {name}")
        r, x = best
        budgets[r] -= max(0.0, x - float(tails[r]))
        tails[r] = x + w
        out.append((r, x))
    return out


def _assign_reference(
    design: Design, submap: SubRowMap, row_probe: int, pack_only: bool
) -> SubRowMap:
    """The original per-object assignment loop (golden baseline)."""
    tails = {id(sr): sr.x_min for sr in submap.subrows}
    cells = _sorted_cells(design)
    budgets = _stranding_budgets(submap, cells)
    for node in cells:
        domain = submap.for_region(node.region)
        if not domain:
            raise RuntimeError(
                f"no sub-rows available for cell {node.name} "
                f"(region {node.region})"
            )
        # Probe sub-rows nearest in y first.
        ranked = sorted(domain, key=lambda sr: abs(sr.y - node.y))[:row_probe]
        best = None
        best_cost = float("inf")
        w = node.placed_width
        for sr in ranked:
            tail = tails[id(sr)]
            if pack_only:
                x = tail
            else:
                site = sr.site_width
                allowed = site * int(budgets[id(sr)] / site)
                x = min(max(tail, sr.snap_x(node.x, w)), tail + allowed)
            if x + w > sr.x_max + 1e-9:
                continue
            cost = abs(x - node.x) + abs(sr.y - node.y)
            if cost < best_cost:
                best_cost = cost
                best = (sr, x)
        if best is None:
            # Widen: any sub-row in the domain with room at its tail.
            for sr in domain:
                tail = tails[id(sr)]
                if tail + w > sr.x_max + 1e-9:
                    continue
                cost = abs(tail - node.x) + abs(sr.y - node.y)
                if cost < best_cost:
                    best_cost = cost
                    best = (sr, tail)
        if best is None:
            raise RuntimeError(
                f"legalization capacity exhausted placing {node.name}"
            )
        sr, x = best
        node.x = x
        node.y = sr.y
        budgets[id(sr)] -= max(0.0, x - tails[id(sr)])
        tails[id(sr)] = x + w
        sr.cells.append(node.index)
    return submap
