"""Tetris-style greedy standard-cell legalization.

Cells are processed left-to-right (by global-placement x); each takes the
cheapest feasible position at the current *tail* of a nearby sub-row in
its fence domain.  O(n log n + n * rows-probed), displacement-aware, and
the classical warm start for Abacus refinement.
"""

from __future__ import annotations

from repro.db import Design, NodeKind
from repro.legal.subrows import SubRowMap


def tetris_legalize(
    design: Design, submap: SubRowMap | None = None, *, row_probe: int = 24
) -> SubRowMap:
    """Assign every standard cell to a sub-row position.

    Two attempts: the displacement-friendly variant places each cell at
    ``max(tail, desired x)``, which can strand row space and exhaust
    capacity on tight designs; if that happens the assignment is redone
    with pure tail packing, which never strands and succeeds whenever
    per-domain capacity suffices.  (Abacus restores x afterwards either
    way.)  Raises ``RuntimeError`` only on true capacity exhaustion.
    """
    if submap is None:
        submap = SubRowMap(design)
    snapshot = {
        n.index: (n.x, n.y)
        for n in design.nodes
        if n.is_movable and n.kind in (NodeKind.CELL, NodeKind.FILLER)
    }
    try:
        return _assign(design, submap, row_probe, pack_only=False)
    except RuntimeError:
        for idx, (x, y) in snapshot.items():
            design.nodes[idx].x = x
            design.nodes[idx].y = y
        for sr in submap.subrows:
            sr.cells.clear()
        return _assign(design, submap, row_probe, pack_only=True)


def _assign(design: Design, submap: SubRowMap, row_probe: int, pack_only: bool) -> SubRowMap:
    tails = {id(sr): sr.x_min for sr in submap.subrows}
    cells = [
        n
        for n in design.nodes
        if n.is_movable and n.kind in (NodeKind.CELL, NodeKind.FILLER)
    ]
    cells.sort(key=lambda n: n.x)
    # Stranding budget: placing a cell past a row's tail permanently wastes
    # the gap (cells arrive in x order), so each sub-row may strand at most
    # its fair share of its fence domain's slack.  Total stranding then
    # never exceeds total slack and the assignment stays feasible.
    need = {}
    for n in cells:
        need[n.region] = need.get(n.region, 0.0) + n.placed_width
    fill = {}
    for region, demand in need.items():
        cap = sum(sr.width for sr in submap.for_region(region))
        fill[region] = demand / cap if cap > 0 else 1.0
    budgets = {
        id(sr): max(0.0, sr.width * (1.0 - fill.get(sr.region, 1.0)))
        for sr in submap.subrows
    }
    for node in cells:
        domain = submap.for_region(node.region)
        if not domain:
            raise RuntimeError(
                f"no sub-rows available for cell {node.name} "
                f"(region {node.region})"
            )
        # Probe sub-rows nearest in y first.
        ranked = sorted(domain, key=lambda sr: abs(sr.y - node.y))[:row_probe]
        best = None
        best_cost = float("inf")
        w = node.placed_width
        for sr in ranked:
            tail = tails[id(sr)]
            if pack_only:
                x = tail
            else:
                site = sr.site_width
                allowed = site * int(budgets[id(sr)] / site)
                x = min(max(tail, sr.snap_x(node.x, w)), tail + allowed)
            if x + w > sr.x_max + 1e-9:
                continue
            cost = abs(x - node.x) + abs(sr.y - node.y)
            if cost < best_cost:
                best_cost = cost
                best = (sr, x)
        if best is None:
            # Widen: any sub-row in the domain with room at its tail.
            for sr in domain:
                tail = tails[id(sr)]
                if tail + w > sr.x_max + 1e-9:
                    continue
                cost = abs(tail - node.x) + abs(sr.y - node.y)
                if cost < best_cost:
                    best_cost = cost
                    best = (sr, tail)
        if best is None:
            raise RuntimeError(
                f"legalization capacity exhausted placing {node.name}"
            )
        sr, x = best
        node.x = x
        node.y = sr.y
        budgets[id(sr)] -= max(0.0, x - tails[id(sr)])
        tails[id(sr)] = x + w
        sr.cells.append(node.index)
    return submap
