"""Result aggregation and table formatting for the evaluation harness."""

from repro.metrics.report import (
    comparison_table,
    format_table,
    geometric_mean,
    normalize_rows,
)

__all__ = [
    "comparison_table",
    "format_table",
    "geometric_mean",
    "normalize_rows",
]
