"""Plain-text tables in the style of the paper's results section."""

from __future__ import annotations

import math


def format_table(rows, columns=None, title: str | None = None) -> str:
    """Align a list of dict rows into a monospace table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    widths = {
        c: max(len(str(c)), *(len(_fmt(r.get(c, ""))) for r in rows)) for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).rjust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(_fmt(row.get(c, "")).rjust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4g}"
    return str(value)


def geometric_mean(values) -> float:
    """Geometric mean (the paper's normalization convention); skips
    non-positive entries, returns nan when nothing is left."""
    vals = [v for v in values if v and v > 0]
    if not vals:
        return float("nan")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def normalize_rows(rows, key: str, reference: str, by: str = "design"):
    """Add ``key + "_ratio"`` columns normalized to the reference flow.

    ``rows`` are dicts with a ``flow`` field; values of ``key`` are
    divided by the value of the row of the same ``by`` whose ``flow``
    equals ``reference``.
    """
    ref = {
        r[by]: r[key]
        for r in rows
        if r.get("flow") == reference and r.get(key)
    }
    out = []
    for r in rows:
        r = dict(r)
        base = ref.get(r.get(by))
        r[key + "_ratio"] = (r[key] / base) if base else float("nan")
        out.append(r)
    return out


def comparison_table(results_by_flow: dict, title: str | None = None) -> str:
    """Side-by-side table of FlowResults keyed by flow name.

    ``results_by_flow``: ``{flow_name: {design_name: FlowResult}}``.
    Reports HPWL, RC and scaled HPWL per flow with geometric-mean ratios
    against the first flow.
    """
    flows = list(results_by_flow)
    designs = sorted({d for fr in results_by_flow.values() for d in fr})
    rows = []
    for design in designs:
        row = {"design": design}
        for flow in flows:
            res = results_by_flow[flow].get(design)
            if res is None:
                continue
            row[f"{flow}.HPWL"] = round(res.hpwl_final, 0)
            row[f"{flow}.RC"] = round(res.rc, 3)
            row[f"{flow}.sHPWL"] = round(res.scaled_hpwl, 0)
        rows.append(row)
    # Geometric-mean ratio row vs the first flow.
    base = flows[0]
    ratio_row = {"design": f"ratio/gmean vs {base}"}
    for flow in flows:
        for metric, attr in (("sHPWL", "scaled_hpwl"), ("HPWL", "hpwl_final")):
            ratios = []
            for design in designs:
                a = results_by_flow[flow].get(design)
                b = results_by_flow[base].get(design)
                if a and b and getattr(b, attr):
                    ratios.append(getattr(a, attr) / getattr(b, attr))
            if ratios:
                ratio_row[f"{flow}.{metric}"] = round(geometric_mean(ratios), 4)
    rows.append(ratio_row)
    return format_table(rows, title=title)
