"""Observability: tracing, streaming telemetry, profiling, run history.

The flow, placer, legalizer, detailed placer, and router are all
instrumented against this package.  By default the current tracer is a
no-op singleton, so instrumentation is free; install a real
:class:`Tracer` (``with use_tracer(Tracer()): ...``) to capture nested
spans, per-iteration metric series, and log events, then export them
with :func:`write_jsonl` or render :func:`format_trace_summary`.

A tracer is also a live telemetry bus: attach sinks
(:class:`JsonlStreamSink` for ``tail -f``-able traces,
:class:`HeartbeatSink` for progress lines, :class:`CallbackSink` for
in-process subscribers, :class:`FlightRecorder` for crash dumps) with
``tracer.add_sink(...)``.  :mod:`repro.obs.profile` adds per-span
resource deltas and a stdlib sampling profiler;
:mod:`repro.obs.runs` keeps a persistent registry of flow runs
(``repro runs list|show|diff``).

See ``docs/observability.md`` for the API and the JSONL schema.
"""

from repro.obs.bus import (
    EXPORT_TYPES,
    CallbackSink,
    FlightRecorder,
    HeartbeatSink,
    JsonlStreamSink,
    TelemetrySink,
    dumps_record,
    make_meta,
)
from repro.obs.export import (
    SCHEMA_VERSION,
    format_trace_summary,
    iter_records,
    read_jsonl,
    span_rows,
    write_jsonl,
)
from repro.obs.log import TracerEventHandler, configure_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Sample,
)
from repro.obs.profile import SamplingProfiler
from repro.obs.runs import (
    RUN_SCHEMA_VERSION,
    TOLERANCES,
    RunRecord,
    RunRegistry,
    RunRegistryError,
    diff_runs,
    record_flow_run,
)
from repro.obs.schema import (
    SchemaError,
    validate_run_record,
    validate_trace_record,
    validate_trace_records,
)
from repro.obs.tracer import (
    NULL_TRACER,
    Event,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "EXPORT_TYPES",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "RUN_SCHEMA_VERSION",
    "SCHEMA_VERSION",
    "TOLERANCES",
    "CallbackSink",
    "Counter",
    "Event",
    "FlightRecorder",
    "Gauge",
    "HeartbeatSink",
    "Histogram",
    "JsonlStreamSink",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "RunRecord",
    "RunRegistry",
    "RunRegistryError",
    "Sample",
    "SamplingProfiler",
    "SchemaError",
    "Span",
    "TelemetrySink",
    "Tracer",
    "TracerEventHandler",
    "configure_logging",
    "diff_runs",
    "dumps_record",
    "format_trace_summary",
    "get_logger",
    "get_tracer",
    "iter_records",
    "make_meta",
    "read_jsonl",
    "record_flow_run",
    "set_tracer",
    "span_rows",
    "use_tracer",
    "validate_run_record",
    "validate_trace_record",
    "validate_trace_records",
    "write_jsonl",
]
