"""Observability: hierarchical tracing, metrics, logging, JSONL export.

The flow, placer, legalizer, detailed placer, and router are all
instrumented against this package.  By default the current tracer is a
no-op singleton, so instrumentation is free; install a real
:class:`Tracer` (``with use_tracer(Tracer()): ...``) to capture nested
spans, per-iteration metric series, and log events, then export them
with :func:`write_jsonl` or render :func:`format_trace_summary`.

See ``docs/observability.md`` for the API and the JSONL schema.
"""

from repro.obs.export import (
    SCHEMA_VERSION,
    format_trace_summary,
    iter_records,
    read_jsonl,
    span_rows,
    write_jsonl,
)
from repro.obs.log import TracerEventHandler, configure_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Sample,
)
from repro.obs.tracer import (
    NULL_TRACER,
    Event,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "SCHEMA_VERSION",
    "Counter",
    "Event",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "Sample",
    "Span",
    "Tracer",
    "TracerEventHandler",
    "configure_logging",
    "format_trace_summary",
    "get_logger",
    "get_tracer",
    "iter_records",
    "read_jsonl",
    "set_tracer",
    "span_rows",
    "use_tracer",
    "write_jsonl",
]
