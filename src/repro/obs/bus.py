"""The telemetry bus: live subscribers ("sinks") on a :class:`Tracer`.

PR 1's tracer was batch-only — spans buffered in memory, JSONL written
after the flow finished.  A live job server (ROADMAP item 1) needs
telemetry *as it happens*, so the tracer now fans every record out to
attached sinks the moment it is produced:

* ``span_open`` when a span is entered,
* ``span`` when it closes (same payload as batch export),
* ``event`` for point events (including bridged log records),
* ``sample`` for per-iteration metric samples.

Records are plain JSON-serializable dicts — the exact objects batch
export would write — so a streaming file and a batch file contain the
same lines.  Sinks implement three methods (:meth:`TelemetrySink.open`,
:meth:`~TelemetrySink.handle`, :meth:`~TelemetrySink.close`); a sink
that raises is detached after repeated failures rather than killing the
instrumented run.

Provided sinks:

* :class:`JsonlStreamSink` — appends records line-by-line so the trace
  file is ``tail -f``-able mid-run; its final contents match batch
  export record-for-record.
* :class:`HeartbeatSink` — emits a one-line progress beat (stage,
  iteration, elapsed) at a configurable cadence.
* :class:`CallbackSink` — invokes an in-process callback per record;
  the future job engine subscribes through this.
* :class:`FlightRecorder` — a bounded ring buffer holding the last N
  records; :meth:`FlightRecorder.dump` writes them out on crash or
  degradation (the flow triggers it via
  :meth:`Tracer.dump_flight_recorders`).
"""

from __future__ import annotations

import io
import json
import re
import sys
import threading
import time
from collections import deque

from repro.obs.schema import SCHEMA_VERSION

#: Record types that belong in an exported trace file (matches batch
#: export; ``span_open`` is live-progress-only).
EXPORT_TYPES = frozenset({"span", "event", "sample"})

#: Consecutive ``handle`` failures after which a sink is detached.
MAX_SINK_FAILURES = 3


def dumps_record(record: dict) -> str:
    """The one canonical serialization of a record (used everywhere)."""
    return json.dumps(record, sort_keys=True)


def make_meta(meta: dict | None = None) -> dict:
    """A ``meta`` header record carrying the schema version."""
    header = {"type": "meta", "schema": SCHEMA_VERSION}
    if meta:
        header.update(meta)
    return header


class TelemetrySink:
    """Base class for bus subscribers.  All methods are optional."""

    def open(self, meta: dict) -> None:
        """Called once when attached; ``meta`` is the header record."""

    def handle(self, record: dict) -> None:
        """Called for every record the tracer produces."""

    def close(self, snapshot: dict) -> None:
        """Called once on detach; ``snapshot`` is the ``metrics`` record."""


class JsonlStreamSink(TelemetrySink):
    """Streams records to a JSONL file, one line per record, flushed.

    The file is readable while the run is still in flight (``tail -f``,
    partial :func:`~repro.obs.export.read_jsonl`); after ``close`` it
    contains exactly the records batch export would have written — the
    ``meta`` header first, then every span/event/sample in production
    order, then the trailing ``metrics`` snapshot.

    ``include_open=True`` additionally streams ``span_open`` records
    (live progress at the cost of batch-export parity).
    """

    def __init__(self, path, *, include_open: bool = False):
        self.path = str(path)
        self._include_open = include_open
        self._lock = threading.Lock()
        self._fh = open(self.path, "w", encoding="utf-8")
        self.records_written = 0

    def _write(self, record: dict) -> None:
        line = dumps_record(record) + "\n"
        with self._lock:
            if self._fh is None:
                return
            self._fh.write(line)
            self._fh.flush()
            self.records_written += 1

    def open(self, meta: dict) -> None:
        self._write(meta)

    def handle(self, record: dict) -> None:
        rtype = record.get("type")
        if rtype in EXPORT_TYPES or (
            self._include_open and rtype == "span_open"
        ):
            self._write(record)

    def close(self, snapshot: dict) -> None:
        self._write(snapshot)
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


_ITER_RE = re.compile(r"\[(\d+)\]")


class HeartbeatSink(TelemetrySink):
    """Emits a progress line (stage, iteration, elapsed) at a cadence.

    Every record updates the current position (innermost opened span
    path plus the latest ``iter[N]`` index seen); whenever at least
    ``interval`` seconds have passed since the last beat, one line is
    written to ``stream`` (default stderr) or passed to ``emit``.

    ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        interval: float = 5.0,
        *,
        stream: io.TextIOBase | None = None,
        emit=None,
        clock=time.perf_counter,
    ):
        self.interval = float(interval)
        self._stream = stream
        self._emit = emit
        self._clock = clock
        self._lock = threading.Lock()
        self._started = clock()
        self._last_beat = self._started
        self._stage = ""
        self._iteration: int | None = None
        self._records = 0
        self.beats = 0

    def _position(self, record: dict) -> None:
        rtype = record.get("type")
        if rtype in ("span_open", "span"):
            path = record.get("path", "")
            if rtype == "span_open":
                self._stage = path
            else:
                # A close backs out to the parent path.
                self._stage = path.rsplit("/", 1)[0] if "/" in path else ""
            m = None
            for m in _ITER_RE.finditer(path):
                pass
            if m is not None:
                self._iteration = int(m.group(1))

    def handle(self, record: dict) -> None:
        with self._lock:
            self._records += 1
            self._position(record)
            now = self._clock()
            if now - self._last_beat < self.interval:
                return
            self._last_beat = now
            self.beats += 1
            beat = {
                "stage": self._stage,
                "iteration": self._iteration,
                "elapsed_s": round(now - self._started, 3),
                "records": self._records,
            }
        if self._emit is not None:
            self._emit(beat)
            return
        stream = self._stream if self._stream is not None else sys.stderr
        iteration = "" if beat["iteration"] is None else f" iter={beat['iteration']}"
        stream.write(
            f"[heartbeat] stage={beat['stage'] or '-'}{iteration} "
            f"elapsed={beat['elapsed_s']:.1f}s records={beat['records']}\n"
        )
        stream.flush()


class CallbackSink(TelemetrySink):
    """Forwards records to an in-process callback (the job-engine hook).

    ``types`` limits which record types are delivered (``None`` = all,
    including ``span_open``).  The callback receives the record dict;
    it must not mutate it.
    """

    def __init__(self, callback, *, types=None):
        self._callback = callback
        self._types = frozenset(types) if types is not None else None

    def handle(self, record: dict) -> None:
        if self._types is None or record.get("type") in self._types:
            self._callback(record)


class FlightRecorder(TelemetrySink):
    """Bounded ring buffer of the last ``capacity`` records.

    Always armed and nearly free (one deque append per record); on
    crash or watchdog degradation the flow calls
    :meth:`Tracer.dump_flight_recorders`, which invokes :meth:`dump` on
    every attached recorder — the last-N records, a meta header naming
    the reason, and the latest metric values land in a JSONL file for
    post-mortem reading.
    """

    def __init__(self, capacity: int = 512, *, path=None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.path = str(path) if path is not None else None
        self._lock = threading.Lock()
        self._buffer: deque = deque(maxlen=self.capacity)
        self._meta: dict = make_meta()
        self._dumps = 0

    def open(self, meta: dict) -> None:
        self._meta = dict(meta)

    def handle(self, record: dict) -> None:
        with self._lock:
            self._buffer.append(record)

    def records(self) -> list[dict]:
        """The buffered records, oldest first."""
        with self._lock:
            return list(self._buffer)

    def dump(self, path=None, *, reason: str = "") -> str:
        """Write the buffered records as JSONL; returns the path written.

        ``path`` overrides the configured one; with neither set a
        ``flight-<n>.jsonl`` file is written in the working directory.
        Repeated dumps get ``-2``, ``-3``... suffixes so an earlier
        post-mortem is never overwritten.
        """
        with self._lock:
            records = list(self._buffer)
            self._dumps += 1
            seq = self._dumps
        target = str(path) if path is not None else self.path
        if target is None:
            target = "flight.jsonl"
        if seq > 1:
            stem, dot, ext = target.rpartition(".")
            target = f"{stem}-{seq}.{ext}" if dot else f"{target}-{seq}"
        header = dict(self._meta)
        header["reason"] = reason or "dump"
        header["buffered"] = len(records)
        with open(target, "w", encoding="utf-8") as fh:
            fh.write(dumps_record(header) + "\n")
            for record in records:
                fh.write(dumps_record(record) + "\n")
        return target
