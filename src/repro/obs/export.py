"""Structured trace export (JSONL) and plain-text summaries.

One trace file is JSON Lines: the first record is a ``meta`` header,
followed by one record per finished span, per event, per metric sample,
and one trailing ``metrics`` snapshot of the instrument state.  The
schema is versioned (:data:`repro.obs.schema.SCHEMA_VERSION`) and
documented in ``docs/observability.md`` plus the machine-readable
``docs/schemas/trace-records-v2.schema.json``.

Batch export (:func:`write_jsonl`, after the run) and the streaming
:class:`~repro.obs.bus.JsonlStreamSink` (line-by-line, mid-run) write
the same records through the same serializer, so the two files contain
identical lines — only the interleaving differs.
"""

from __future__ import annotations

import json

from repro.metrics.report import format_table
from repro.obs.bus import dumps_record, make_meta
from repro.obs.schema import SCHEMA_VERSION  # re-exported for callers
from repro.obs.tracer import Tracer

__all__ = [
    "SCHEMA_VERSION",
    "format_trace_summary",
    "iter_records",
    "read_jsonl",
    "span_rows",
    "write_jsonl",
]


def iter_records(tracer: Tracer, meta: dict | None = None):
    """Yield the JSON-serializable records of one trace, header first."""
    yield make_meta(meta)
    for span in tracer.finished_spans():
        yield span.as_record()
    for event in tracer.events():
        yield event.as_record()
    for sample in tracer.metrics.samples():
        yield {
            "type": "sample",
            "metric": sample.metric,
            "step": sample.step,
            "value": sample.value,
        }
    yield {"type": "metrics", **tracer.metrics.snapshot()}


def write_jsonl(tracer: Tracer, path, meta: dict | None = None) -> int:
    """Write the trace to ``path`` as JSONL; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in iter_records(tracer, meta):
            fh.write(dumps_record(record) + "\n")
            count += 1
    return count


def read_jsonl(path) -> list[dict]:
    """Parse a trace file back into its records (blank lines skipped).

    A trailing partial line (a streaming write caught mid-record) is
    ignored, so a file being written by a ``JsonlStreamSink`` can be
    read at any moment — every *complete* line is a valid record.
    """
    records = []
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().split("\n")
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # mid-write tail of a live stream
            raise
    return records


def span_rows(tracer: Tracer, max_depth: int | None = None) -> list[dict]:
    """Aggregate finished spans by path into summary-table rows.

    Each row carries call count, total seconds, mean seconds, and the
    share of the run (total of all root spans).  Rows are ordered by
    first appearance in the span tree (roots in start order, children
    under their parent), so the table reads like an indented profile.

    Degenerate traces still produce a well-formed table: an empty trace
    yields no rows; spans closed out of order (e.g. via exceptions
    unwinding through several levels) aggregate by their recorded path;
    duplicate paths recorded at different depths collapse onto the
    shallowest occurrence; and orphan spans whose parent never finished
    are appended at the end rather than silently dropped.
    """
    spans = tracer.finished_spans()
    if max_depth is not None:
        spans = [s for s in spans if s.depth <= max_depth]
    agg: dict[str, dict] = {}
    any_resources = False
    for span in spans:
        row = agg.get(span.path)
        if row is None:
            row = agg[span.path] = {
                "path": span.path,
                "depth": span.depth,
                "calls": 0,
                "total_s": 0.0,
                "start": span.start,
                "cpu_s": 0.0,
            }
        row["calls"] += 1
        row["total_s"] += span.duration
        row["start"] = min(row["start"], span.start)
        # A corrupted stack can record the same path at two depths; the
        # shallowest wins so the row still nests under a real parent.
        row["depth"] = min(row["depth"], span.depth)
        if span.resources is not None:
            any_resources = True
            row["cpu_s"] += span.resources.get("cpu_s", 0.0)
    if not agg:
        return []
    root_total = sum(r["total_s"] for r in agg.values() if r["depth"] == 0)
    rows = sorted(agg.values(), key=lambda r: (r["path"].count("/"), r["start"]))
    # Re-order depth-first: children directly under their parent.
    ordered: list[dict] = []
    placed: set[str] = set()

    def place(prefix: str, depth: int) -> None:
        for row in rows:
            if row["path"] in placed:
                continue
            parent = row["path"].rsplit("/", 1)[0] if "/" in row["path"] else ""
            if row["depth"] == depth and parent == prefix:
                placed.add(row["path"])
                ordered.append(row)
                place(row["path"], depth + 1)

    place("", 0)
    # Orphans: a finished child whose parent never closed (crash, span
    # still open at export time).  Keep them visible, in start order.
    for row in rows:
        if row["path"] not in placed:
            ordered.append(row)
    out = []
    for row in ordered:
        indent = "  " * row["depth"]
        entry = {
            "span": indent + row["path"].rsplit("/", 1)[-1],
            "calls": row["calls"],
            "total_s": round(row["total_s"], 3),
            "mean_s": round(row["total_s"] / max(row["calls"], 1), 4),
            "share": (
                f"{100.0 * row['total_s'] / root_total:.1f}%"
                if root_total > 0
                else "-"
            ),
        }
        if any_resources:
            entry["cpu_s"] = round(row["cpu_s"], 3)
        out.append(entry)
    return out


def format_trace_summary(
    tracer: Tracer,
    *,
    max_depth: int | None = 2,
    title: str = "trace summary",
    profile=None,
) -> str:
    """Stage-breakdown table plus a one-line digest of the metric series.

    ``profile`` (a :class:`~repro.obs.profile.SamplingProfiler`) appends
    its top-functions table when given.
    """
    rows = span_rows(tracer, max_depth)
    if rows:
        parts = [format_table(rows, title=title)]
    else:
        parts = [f"{title}\n(no spans recorded)"]
    sample_counts: dict[str, int] = {}
    last_value: dict[str, float] = {}
    for s in tracer.metrics.samples():
        sample_counts[s.metric] = sample_counts.get(s.metric, 0) + 1
        last_value[s.metric] = s.value
    if sample_counts:
        rows = [
            {
                "metric": name,
                "samples": sample_counts[name],
                "last": round(last_value[name], 6),
            }
            for name in sorted(sample_counts)
        ]
        parts.append(format_table(rows, title="metric series"))
    if profile is not None:
        top = profile.report()
        if top:
            parts.append(
                format_table(
                    top,
                    title=(
                        f"sampling profile ({profile.samples} samples @ "
                        f"{profile.interval * 1000:.1f}ms)"
                    ),
                )
            )
    return "\n\n".join(parts)
