"""Structured trace export (JSONL) and plain-text summaries.

One trace file is JSON Lines: the first record is a ``meta`` header,
followed by one record per finished span, per event, per metric sample,
and one trailing ``metrics`` snapshot of the instrument state.  The
schema is documented in ``docs/observability.md``.
"""

from __future__ import annotations

import json

from repro.metrics.report import format_table
from repro.obs.tracer import Tracer

SCHEMA_VERSION = 1


def iter_records(tracer: Tracer, meta: dict | None = None):
    """Yield the JSON-serializable records of one trace, header first."""
    header = {"type": "meta", "schema": SCHEMA_VERSION}
    if meta:
        header.update(meta)
    yield header
    for span in tracer.finished_spans():
        yield span.as_record()
    for event in tracer.events():
        yield event.as_record()
    for sample in tracer.metrics.samples():
        yield {
            "type": "sample",
            "metric": sample.metric,
            "step": sample.step,
            "value": sample.value,
        }
    yield {"type": "metrics", **tracer.metrics.snapshot()}


def write_jsonl(tracer: Tracer, path, meta: dict | None = None) -> int:
    """Write the trace to ``path`` as JSONL; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in iter_records(tracer, meta):
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
    return count


def read_jsonl(path) -> list[dict]:
    """Parse a trace file back into its records (blank lines skipped)."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def span_rows(tracer: Tracer, max_depth: int | None = None) -> list[dict]:
    """Aggregate finished spans by path into summary-table rows.

    Each row carries call count, total seconds, mean seconds, and the
    share of the run (total of all root spans).  Rows are ordered by
    first appearance in the span tree (roots in start order, children
    under their parent), so the table reads like an indented profile.
    """
    spans = tracer.finished_spans()
    if max_depth is not None:
        spans = [s for s in spans if s.depth <= max_depth]
    agg: dict[str, dict] = {}
    for span in spans:
        row = agg.get(span.path)
        if row is None:
            row = agg[span.path] = {
                "path": span.path,
                "depth": span.depth,
                "calls": 0,
                "total_s": 0.0,
                "start": span.start,
            }
        row["calls"] += 1
        row["total_s"] += span.duration
        row["start"] = min(row["start"], span.start)
    root_total = sum(r["total_s"] for r in agg.values() if r["depth"] == 0)
    rows = sorted(agg.values(), key=lambda r: (r["path"].count("/"), r["start"]))
    # Re-order depth-first: children directly under their parent.
    ordered: list[dict] = []

    def place(prefix: str, depth: int) -> None:
        for row in rows:
            parent = row["path"].rsplit("/", 1)[0] if "/" in row["path"] else ""
            if row["depth"] == depth and parent == prefix:
                ordered.append(row)
                place(row["path"], depth + 1)

    place("", 0)
    out = []
    for row in ordered:
        indent = "  " * row["depth"]
        out.append(
            {
                "span": indent + row["path"].rsplit("/", 1)[-1],
                "calls": row["calls"],
                "total_s": round(row["total_s"], 3),
                "mean_s": round(row["total_s"] / max(row["calls"], 1), 4),
                "share": (
                    f"{100.0 * row['total_s'] / root_total:.1f}%"
                    if root_total > 0
                    else "-"
                ),
            }
        )
    return out


def format_trace_summary(
    tracer: Tracer, *, max_depth: int | None = 2, title: str = "trace summary"
) -> str:
    """Stage-breakdown table plus a one-line digest of the metric series."""
    parts = [format_table(span_rows(tracer, max_depth), title=title)]
    sample_counts: dict[str, int] = {}
    last_value: dict[str, float] = {}
    for s in tracer.metrics.samples():
        sample_counts[s.metric] = sample_counts.get(s.metric, 0) + 1
        last_value[s.metric] = s.value
    if sample_counts:
        rows = [
            {
                "metric": name,
                "samples": sample_counts[name],
                "last": round(last_value[name], 6),
            }
            for name in sorted(sample_counts)
        ]
        parts.append(format_table(rows, title="metric series"))
    return "\n\n".join(parts)
