"""Standard-library logging under the ``repro.*`` namespace, bridged to
the tracer.

Every module logs through :func:`get_logger`; all loggers hang off the
``repro`` root logger so one switch (:func:`configure_logging`, or the
CLI's verbosity flags) controls the whole library.  A
:class:`TracerEventHandler` on the root forwards each emitted record to
the *current* tracer as a ``log`` event, so a traced run captures
exactly what a verbose run would have printed — same switch, two sinks.
"""

from __future__ import annotations

import logging

from repro.obs.tracer import get_tracer

ROOT_LOGGER_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro.`` namespace (idempotent prefixing)."""
    if name != ROOT_LOGGER_NAME and not name.startswith(ROOT_LOGGER_NAME + "."):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return logging.getLogger(name)


class TracerEventHandler(logging.Handler):
    """Mirrors log records into the current tracer as ``log`` events."""

    def emit(self, record: logging.LogRecord) -> None:
        tracer = get_tracer()
        if not tracer.enabled:
            return
        try:
            tracer.event(
                "log",
                level=record.levelname,
                logger=record.name,
                message=record.getMessage(),
            )
        except Exception:
            self.handleError(record)


def configure_logging(
    level: int = logging.INFO, *, stream=None, force: bool = False
) -> logging.Logger:
    """Set up the ``repro`` root logger: stderr output + tracer bridge.

    Idempotent: repeated calls only adjust the level unless ``force``
    re-installs the handlers (used by tests).  Returns the root logger.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    if force:
        for handler in list(root.handlers):
            root.removeHandler(handler)
    if not root.handlers:
        console = logging.StreamHandler(stream)
        console.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        root.addHandler(console)
        root.addHandler(TracerEventHandler())
        root.propagate = False
    root.setLevel(level)
    return root
