"""Metrics primitives: counters, gauges, histograms, and time series.

A :class:`MetricsRegistry` is a named collection of instruments plus a
per-iteration *series* store: ``registry.record("gp.hpwl", step=outer,
value=wl)`` appends one :class:`Sample`, and the GP/DP/router loops use
exactly that to publish their per-iteration trajectories (HPWL,
overflow, penalty weights, pass gains, rip-up rounds).

Like the tracer, the registry has a no-op twin (:data:`NULL_REGISTRY`)
so instrumented code can call it unconditionally; the disabled path
does nothing and allocates nothing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import NamedTuple


class Sample(NamedTuple):
    """One time-series point: metric value at an iteration index."""

    metric: str
    step: int
    value: float


@dataclass
class Counter:
    """Monotonically increasing count (events, accepted moves, ...)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class Gauge:
    """Last-written value (current lambda, current overflow, ...)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)


@dataclass
class Histogram:
    """Fixed-bucket histogram (cumulative-style bucket upper bounds).

    ``buckets`` are inclusive upper bounds in increasing order; one
    implicit overflow bucket catches everything larger.  ``counts`` has
    ``len(buckets) + 1`` entries.
    """

    name: str
    buckets: tuple = DEFAULT_BUCKETS
    counts: list = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self):
        self.buckets = tuple(sorted(float(b) for b in self.buckets))
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named instruments plus per-iteration sample series, thread-safe.

    ``on_sample`` (when set) is invoked with each :class:`Sample` right
    after it is appended — the tracer uses this to stream samples to its
    sinks.  ``reset()`` empties the registry in place; the flow instead
    swaps in a fresh registry per run via ``Tracer.fresh_metrics()`` so
    back-to-back runs never accumulate each other's series.
    """

    enabled = True

    def __init__(self, *, on_sample=None):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._samples: list[Sample] = []
        self.on_sample = on_sample

    def reset(self) -> None:
        """Drop every instrument and sample (explicit re-scoping)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._samples.clear()

    # -- instruments (get-or-create) -----------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name, tuple(buckets))
            return inst

    # -- time series ---------------------------------------------------
    def record(self, metric: str, step: int, value: float) -> None:
        """Append one per-iteration sample to ``metric``'s series."""
        sample = Sample(metric, int(step), float(value))
        with self._lock:
            self._samples.append(sample)
        callback = self.on_sample
        if callback is not None:
            callback(sample)

    def samples(self, metric: str | None = None) -> list[Sample]:
        """All samples (or only ``metric``'s), in recording order."""
        with self._lock:
            if metric is None:
                return list(self._samples)
            return [s for s in self._samples if s.metric == metric]

    def series(self, metric: str) -> list[tuple[int, float]]:
        """``(step, value)`` pairs of one metric, in recording order."""
        return [(s.step, s.value) for s in self.samples(metric)]

    # -- snapshots -----------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict view of every instrument (for export/summaries)."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in self._counters.items()},
                "gauges": {n: g.value for n, g in self._gauges.items()},
                "histograms": {
                    n: {
                        "buckets": list(h.buckets),
                        "counts": list(h.counts),
                        "total": h.total,
                        "count": h.count,
                    }
                    for n, h in self._histograms.items()
                },
            }


class _NullInstrument:
    """Stands in for Counter/Gauge/Histogram when metrics are off."""

    __slots__ = ()
    value = 0.0
    total = 0.0
    count = 0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Disabled registry: accepts every call, records nothing."""

    enabled = False
    on_sample = None

    def reset(self) -> None:
        pass

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def record(self, metric: str, step: int, value: float) -> None:
        pass

    def samples(self, metric: str | None = None) -> list:
        return []

    def series(self, metric: str) -> list:
        return []

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_REGISTRY = NullRegistry()
