"""Resource profiling: per-span RSS/CPU/heap deltas and a sampling profiler.

Two independent, off-by-default mechanisms:

* **Span resources** — ``Tracer(profile_resources=True)`` makes every
  span record a ``resources`` dict at close: CPU seconds consumed while
  the span was open (``time.process_time`` delta, process-wide), the
  resident-set-size delta in KiB (``/proc/self/statm`` where available,
  ``resource.getrusage`` peak-RSS as the fallback), and — when
  :mod:`tracemalloc` is tracing — the Python-heap peak above the
  span-entry level in KiB.  The numbers ride along in ``span`` records
  (batch and streamed alike) and aggregate in
  :func:`~repro.obs.export.format_trace_summary`.

* **Sampling profiler** — :class:`SamplingProfiler` is a stdlib-only
  wall-clock profiler: a daemon thread wakes every ``interval`` seconds,
  reads every thread's current frame via ``sys._current_frames()``, and
  charges the elapsed wall time to the innermost function, keyed by the
  stage the sampled thread is in (the tracer's per-thread span path).
  ``report()`` returns the top functions per stage;
  ``format_trace_summary(tracer, profile=prof)`` and the bench JSONs
  surface it.  Overhead is one frame walk per interval — negligible at
  the default 5 ms — and exactly zero when not started.
"""

from __future__ import annotations

import os
import re
import sys
import threading
import time
import tracemalloc

_PAGE_KB = os.sysconf("SC_PAGE_SIZE") / 1024 if hasattr(os, "sysconf") else 4.0
_STATM = "/proc/self/statm"
_HAS_STATM = os.path.exists(_STATM)


def rss_kb() -> float:
    """Current (or, without /proc, peak) resident set size in KiB."""
    if _HAS_STATM:
        try:
            with open(_STATM, "rb") as fh:
                return int(fh.read().split()[1]) * _PAGE_KB
        except (OSError, ValueError, IndexError):
            pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes.
        return usage / 1024.0 if sys.platform == "darwin" else float(usage)
    except Exception:
        return 0.0


def capture_resources() -> tuple:
    """Span-entry snapshot consumed by :func:`finish_resources`."""
    heap = tracemalloc.get_traced_memory()[0] if tracemalloc.is_tracing() else None
    return (time.process_time(), rss_kb(), heap)


def finish_resources(entry: tuple) -> dict:
    """Resource deltas since ``entry`` (a :func:`capture_resources` value)."""
    cpu0, rss0, heap0 = entry
    out = {
        "cpu_s": round(time.process_time() - cpu0, 6),
        "rss_delta_kb": round(rss_kb() - rss0, 1),
    }
    if heap0 is not None and tracemalloc.is_tracing():
        peak = tracemalloc.get_traced_memory()[1]
        # Peak above the span-entry level; peaks reached before entry
        # clamp to zero.  (reset_peak would be exact but clobbers any
        # enclosing span's measurement.)
        out["tracemalloc_peak_kb"] = round(max(peak - heap0, 0) / 1024.0, 1)
    return out


def _function_key(frame) -> str:
    """``file:function`` with paths shortened to the package-local part."""
    code = frame.f_code
    filename = code.co_filename.replace("\\", "/")
    for marker in ("/site-packages/", "/src/"):
        idx = filename.rfind(marker)
        if idx >= 0:
            filename = filename[idx + len(marker):]
            break
    else:
        parts = filename.rsplit("/", 2)
        filename = "/".join(parts[-2:])
    return f"{filename}:{code.co_name}"


_INDEX_RE = re.compile(r"\[\d+\]")


def _stage_key(path: str, depth: int = 2) -> str:
    """Truncate a span path to its top-level stage (``flow/gp``).

    Iteration indices collapse (``iter[7]/cg`` -> ``iter[*]/cg``) so
    samples aggregate across iterations instead of fragmenting into one
    bucket per loop trip.
    """
    if not path:
        return "(no span)"
    return _INDEX_RE.sub("[*]", "/".join(path.split("/")[:depth]))


class SamplingProfiler:
    """Wall-clock sampling profiler attributing time to functions per stage.

    ``tracer`` (optional) supplies per-thread span paths so samples are
    bucketed by stage; without one, everything lands in ``(no span)``.
    Use as a context manager or via :meth:`start`/:meth:`stop`.
    """

    def __init__(self, tracer=None, *, interval: float = 0.005):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._tracer = tracer
        self.interval = float(interval)
        self._lock = threading.Lock()
        self._counts: dict[tuple[str, str], float] = {}
        self._samples = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.started_at: float | None = None
        self.wall_s = 0.0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self.started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None
        if self.started_at is not None:
            self.wall_s += time.perf_counter() - self.started_at
            self.started_at = None
        self._merge_worker_cpu()

    def _merge_worker_cpu(self) -> None:
        """Fold pool-worker CPU seconds in as ``workers[*]`` rows.

        Child processes are invisible to ``sys._current_frames`` (and to
        the parent's ``time.process_time``); the pools report per-task
        CPU deltas back with every reply, keyed by pool label, and this
        charges them to a synthetic ``workers[*]`` stage so the report
        shows where multi-core time actually went.
        """
        try:
            from repro.parallel import drain_worker_cpu
        except Exception:
            return
        for label, seconds in drain_worker_cpu().items():
            key = ("workers[*]", label)
            with self._lock:
                self._counts[key] = self._counts.get(key, 0.0) + seconds

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- sampling ------------------------------------------------------
    def _loop(self) -> None:
        own = threading.get_ident()
        last = time.perf_counter()
        while not self._stop.wait(self.interval):
            now = time.perf_counter()
            dt = now - last
            last = now
            try:
                frames = sys._current_frames()
            except Exception:
                continue
            tracer = self._tracer
            with self._lock:
                for tid, frame in frames.items():
                    if tid == own:
                        continue
                    path = tracer.thread_path(tid) if tracer is not None else ""
                    key = (_stage_key(path), _function_key(frame))
                    self._counts[key] = self._counts.get(key, 0.0) + dt
                    self._samples += 1

    # -- results -------------------------------------------------------
    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples

    def report(self, top: int = 10) -> list[dict]:
        """The ``top`` most expensive ``(stage, function)`` buckets.

        Rows are sorted by attributed seconds, descending; ``share`` is
        relative to all attributed time.
        """
        with self._lock:
            counts = dict(self._counts)
        total = sum(counts.values())
        rows = []
        for (stage, function), seconds in sorted(
            counts.items(), key=lambda kv: -kv[1]
        )[: max(top, 0)]:
            rows.append(
                {
                    "stage": stage,
                    "function": function,
                    "seconds": round(seconds, 4),
                    "share": f"{100.0 * seconds / total:.1f}%" if total else "-",
                }
            )
        return rows

    def as_record(self, top: int = 10) -> dict:
        """JSON-ready summary for bench emitters (``profile`` section)."""
        return {
            "interval_s": self.interval,
            "samples": self.samples,
            "wall_s": round(self.wall_s, 4),
            "top": self.report(top),
        }
