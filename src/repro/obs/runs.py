"""Persistent run-history registry: one summary record per flow run.

Every completed flow run can append a compact, schema-versioned record
— design, config hash, git revision, per-stage runtimes, quality
metrics (HPWL/overflow/RC), degradation flags, trace path — to a
registry directory (``FlowConfig.runs_dir``, the CLI's ``--runs-dir``,
or the ``REPRO_RUNS_DIR`` environment variable).  Storage is a SQLite
database (``runs.sqlite``) for queries plus an append-only
``runs.jsonl`` mirror for grepping and CI artifacts.

The CLI exposes the registry as ``repro runs list|show|diff``; *diff*
renders per-stage runtime and quality deltas between two runs and
flags regressions using :data:`TOLERANCES` — the same bounds
``benchmarks/check_regression.py`` gates CI with (it imports them from
here), so "regression" means the same thing on a laptop and in CI.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
import uuid
from dataclasses import dataclass, field, is_dataclass

from repro.obs.schema import RUN_SCHEMA_VERSION, validate_run_record

#: Environment variable naming the default registry directory.
ENV_RUNS_DIR = "REPRO_RUNS_DIR"

#: metric name -> (relative tolerance, absolute tolerance); a metric
#: passes if it is within EITHER bound of the baseline value.  This is
#: the canonical copy — ``benchmarks/check_regression.py`` imports it.
TOLERANCES = {
    "hpwl": (0.02, 0.0),
    "overflow": (0.02, 0.02),
    "rc": (0.02, 0.0),
    "total_overflow": (0.02, 1.0),
    "peak_congestion": (0.02, 0.05),
    "vias": (0.02, 0.0),
    "gp_iterations": (0.0, 0.0),
    # Detailed-placement records (BENCH_dp.json): pass structure and
    # accept counts are exact for a given revision; the continuous
    # quality numbers get the usual drift band.
    "dp_improvement": (0.02, 1e-6),
    "dp_accepted": (0.0, 0.0),
    "dp_pass_count": (0.0, 0.0),
    "legal_ok": (0.0, 0.0),
    "max_displacement": (0.02, 0.0),
    # Flow-level run records.
    "hpwl_gp": (0.02, 0.0),
    "hpwl_legal": (0.02, 0.0),
    "hpwl_final": (0.02, 0.0),
    "scaled_hpwl": (0.02, 0.0),
    # Parallel-execution fields (worker-sweep sections of the BENCH
    # records).  Worker count and the bit-identity flag are exact;
    # per-count wall time and speedup are machine-dependent and get a
    # wide-open band so a record that does place them under "metrics"
    # never turns scheduler noise into a gate failure.
    "workers": (0.0, 0.0),
    "parallel_identical": (0.0, 0.0),
    "parallel_wall_s": (1e9, 1e9),
    "parallel_speedup": (1e9, 1e9),
    # Serve load-test records (BENCH_serve.json).  Job accounting is
    # exact — a lost or failed job is a correctness bug, not drift.
    # Requeue/respawn counts depend on where the kill lands and
    # throughput/latency are machine-dependent; wide-open bands keep
    # them in the record as artifacts without gating on them.
    "jobs_submitted": (0.0, 0.0),
    "jobs_done": (0.0, 0.0),
    "jobs_lost": (0.0, 0.0),
    "jobs_failed": (0.0, 0.0),
    "jobs_cancelled": (0.0, 0.0),
    "jobs_requeued": (1e9, 1e9),
    "worker_respawns": (1e9, 1e9),
    "throughput_jobs_per_s": (1e9, 1e9),
    "latency_p50_s": (1e9, 1e9),
    "latency_p95_s": (1e9, 1e9),
    # Chaos-soak records (BENCH_chaos.json).  The invariant metrics are
    # exact zeros regardless of seed — any non-zero is a correctness
    # bug.  The outcome counts (done/failed/cancelled, kills, faults
    # fired) depend on the seed and the timing of the chaos schedule,
    # so they ride along as artifacts with wide-open bands.
    "chaos_invariant_violations": (0.0, 0.0),
    "chaos_lost_jobs": (0.0, 0.0),
    "chaos_duplicate_terminals": (0.0, 0.0),
    "chaos_attempt_regressions": (0.0, 0.0),
    "chaos_orphaned_shm": (0.0, 0.0),
    "chaos_result_mismatches": (0.0, 0.0),
    "chaos_submitted": (1e9, 1e9),
    "chaos_done": (1e9, 1e9),
    "chaos_failed": (1e9, 1e9),
    "chaos_cancelled": (1e9, 1e9),
    "chaos_requeues": (1e9, 1e9),
    "chaos_worker_kills": (1e9, 1e9),
    "chaos_restarts": (1e9, 1e9),
    "chaos_faults_fired": (1e9, 1e9),
    "chaos_store_recoveries": (1e9, 1e9),
    # Learned-congestion-predictor records (BENCH_predict.json).  Round
    # counts and fallbacks are exact for a given revision — a fallback
    # firing mid-bench or a scheduling change is behaviour drift, not
    # noise.  Drift/MSE get a modest absolute band (retraining is seed-
    # deterministic but numerically sensitive to feature-code changes);
    # the hybrid-vs-router quality deltas are gated on an absolute band
    # around zero; the timing ratio rides along ungated.
    "predict_router_rounds": (0.0, 0.0),
    "predict_predictor_rounds": (0.0, 0.0),
    "predict_fallbacks": (0.0, 0.0),
    "predict_train_samples": (0.0, 0.0),
    "predict_final_drift": (0.0, 0.1),
    "predict_val_mse": (0.0, 0.05),
    "predict_hpwl_rel_delta": (0.0, 0.01),
    "predict_overflow_delta": (0.0, 0.02),
    "predict_inflation_speedup": (1e9, 1e9),
}

#: Fallback tolerance for metrics without an explicit entry.
DEFAULT_TOLERANCE = (0.02, 0.0)


def tolerance_for(metric: str) -> tuple[float, float]:
    """The (relative, absolute) drift bounds gating ``metric``."""
    return TOLERANCES.get(metric, DEFAULT_TOLERANCE)


def exceeds_tolerance(metric: str, value: float, baseline: float) -> bool:
    """check_regression semantics: drift beyond BOTH bounds fails."""
    rel_tol, abs_tol = tolerance_for(metric)
    drift = abs(value - baseline)
    return drift > max(rel_tol * abs(baseline), abs_tol)


# ---------------------------------------------------------------------------
# provenance helpers
# ---------------------------------------------------------------------------

def config_hash(config) -> str:
    """Stable short hash of a (possibly nested) config dataclass."""

    def plain(obj):
        if is_dataclass(obj) and not isinstance(obj, type):
            return {k: plain(v) for k, v in sorted(vars(obj).items())}
        if isinstance(obj, dict):
            return {str(k): plain(v) for k, v in sorted(obj.items())}
        if isinstance(obj, (list, tuple)):
            return [plain(v) for v in obj]
        if isinstance(obj, (str, int, float, bool)) or obj is None:
            return obj
        return repr(obj)

    blob = json.dumps(plain(config), sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:12]


def git_revision(start: str = ".") -> str | None:
    """Current git commit hash, resolved by reading ``.git`` directly.

    Walks up from ``start`` to the repository root, follows the
    ``HEAD`` symref through loose and packed refs, and returns ``None``
    when anything is missing — no subprocess, never raises.
    """
    try:
        root = os.path.abspath(start)
        while True:
            git_dir = os.path.join(root, ".git")
            if os.path.isdir(git_dir):
                break
            parent = os.path.dirname(root)
            if parent == root:
                return None
            root = parent
        with open(os.path.join(git_dir, "HEAD"), encoding="utf-8") as fh:
            head = fh.read().strip()
        if not head.startswith("ref:"):
            return head or None
        ref = head.partition(":")[2].strip()
        loose = os.path.join(git_dir, *ref.split("/"))
        if os.path.exists(loose):
            with open(loose, encoding="utf-8") as fh:
                return fh.read().strip() or None
        packed = os.path.join(git_dir, "packed-refs")
        if os.path.exists(packed):
            with open(packed, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if line.endswith(ref) and not line.startswith("#"):
                        return line.split()[0]
        return None
    except OSError:
        return None


# ---------------------------------------------------------------------------
# records
# ---------------------------------------------------------------------------

#: FlowResult quality scalars copied into ``RunRecord.metrics``.
_METRIC_FIELDS = (
    "hpwl_gp",
    "hpwl_legal",
    "hpwl_final",
    "rc",
    "scaled_hpwl",
    "total_overflow",
    "peak_congestion",
)


@dataclass
class RunRecord:
    """One flow run's summary row (see ``docs/schemas/run-record-*``)."""

    run_id: str
    created: float               # unix timestamp
    design: str
    flow: str                    # e.g. "ntuplace4h"
    config_hash: str
    git_rev: str | None = None
    legal: bool = False
    degraded: bool = False
    degradation: list = field(default_factory=list)
    stage_seconds: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    trace_path: str | None = None

    def as_record(self) -> dict:
        return {
            "schema": RUN_SCHEMA_VERSION,
            "run_id": self.run_id,
            "created": self.created,
            "design": self.design,
            "flow": self.flow,
            "config_hash": self.config_hash,
            "git_rev": self.git_rev,
            "legal": self.legal,
            "degraded": self.degraded,
            "degradation": [dict(d) for d in self.degradation],
            "stage_seconds": dict(self.stage_seconds),
            "metrics": dict(self.metrics),
            "trace_path": self.trace_path,
        }

    @staticmethod
    def from_flow(result, config, *, flow: str = "ntuplace4h",
                  trace_path: str | None = None) -> "RunRecord":
        """Build a record from a :class:`FlowResult` and its config."""
        metrics = {
            name: float(getattr(result, name, 0.0)) for name in _METRIC_FIELDS
        }
        metrics["legal_ok"] = float(bool(result.legal))
        return RunRecord(
            run_id=new_run_id(result.design_name),
            created=time.time(),
            design=result.design_name,
            flow=flow,
            config_hash=config_hash(config),
            git_rev=git_revision(),
            legal=bool(result.legal),
            degraded=bool(result.degraded),
            degradation=[dict(d) for d in result.degradation],
            stage_seconds={
                k: float(v) for k, v in result.stage_seconds.items()
            },
            metrics=metrics,
            trace_path=trace_path,
        )


def new_run_id(design: str) -> str:
    """``<design>-<utc stamp>-<nonce>`` — sortable, unique, greppable."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"{design}-{stamp}-{uuid.uuid4().hex[:6]}"


# ---------------------------------------------------------------------------
# storage
# ---------------------------------------------------------------------------

class RunRegistryError(RuntimeError):
    """Lookup or storage failure in the run registry."""


class RunRegistry:
    """SQLite-backed run store with an append-only JSONL mirror."""

    DB_NAME = "runs.sqlite"
    JSONL_NAME = "runs.jsonl"

    def __init__(self, root):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.db_path = os.path.join(self.root, self.DB_NAME)
        self.jsonl_path = os.path.join(self.root, self.JSONL_NAME)
        with self._connect() as con:
            con.execute(
                "CREATE TABLE IF NOT EXISTS runs ("
                " run_id TEXT PRIMARY KEY,"
                " created REAL NOT NULL,"
                " design TEXT NOT NULL,"
                " record TEXT NOT NULL)"
            )
            con.execute(
                "CREATE INDEX IF NOT EXISTS idx_runs_design_created"
                " ON runs(design, created)"
            )

    def _connect(self) -> sqlite3.Connection:
        return sqlite3.connect(self.db_path)

    # -- writes --------------------------------------------------------
    def append(self, record: "RunRecord | dict") -> str:
        """Store one run record; returns its ``run_id``."""
        rec = record.as_record() if isinstance(record, RunRecord) else dict(record)
        rec.setdefault("schema", RUN_SCHEMA_VERSION)
        validate_run_record(rec)
        blob = json.dumps(rec, sort_keys=True)
        with self._connect() as con:
            con.execute(
                "INSERT INTO runs (run_id, created, design, record)"
                " VALUES (?, ?, ?, ?)",
                (rec["run_id"], rec["created"], rec["design"], blob),
            )
        with open(self.jsonl_path, "a", encoding="utf-8") as fh:
            fh.write(blob + "\n")
        return rec["run_id"]

    def set_trace_path(self, run_id: str, trace_path: str) -> None:
        """Attach the exported trace file's path to a stored run."""
        rec = self.get(run_id)
        rec["trace_path"] = str(trace_path)
        with self._connect() as con:
            con.execute(
                "UPDATE runs SET record = ? WHERE run_id = ?",
                (json.dumps(rec, sort_keys=True), rec["run_id"]),
            )

    # -- reads ---------------------------------------------------------
    def list(self, *, design: str | None = None,
             limit: int | None = None) -> list[dict]:
        """Stored records, newest first."""
        query = "SELECT record FROM runs"
        params: list = []
        if design is not None:
            query += " WHERE design = ?"
            params.append(design)
        query += " ORDER BY created DESC, run_id DESC"
        if limit is not None:
            query += " LIMIT ?"
            params.append(int(limit))
        with self._connect() as con:
            rows = con.execute(query, params).fetchall()
        return [json.loads(row[0]) for row in rows]

    def get(self, run_id: str) -> dict:
        """One record by exact id or unique prefix (newest on ties)."""
        with self._connect() as con:
            rows = con.execute(
                "SELECT record FROM runs WHERE run_id = ?", (run_id,)
            ).fetchall()
            if not rows:
                rows = con.execute(
                    "SELECT record FROM runs WHERE run_id LIKE ?"
                    " ORDER BY created DESC",
                    (run_id + "%",),
                ).fetchall()
        if not rows:
            raise RunRegistryError(f"no run matching {run_id!r} in {self.root}")
        if len(rows) > 1:
            ids = [json.loads(r[0])["run_id"] for r in rows]
            raise RunRegistryError(
                f"ambiguous run id {run_id!r}: matches {', '.join(ids)}"
            )
        return json.loads(rows[0][0])

    def count(self) -> int:
        with self._connect() as con:
            return int(con.execute("SELECT COUNT(*) FROM runs").fetchone()[0])


def default_runs_dir(override: str | None = None) -> str | None:
    """The registry directory: explicit override, else ``REPRO_RUNS_DIR``."""
    if override:
        return override
    return os.environ.get(ENV_RUNS_DIR) or None


def record_flow_run(runs_dir, result, config, *, flow: str = "ntuplace4h",
                    trace_path: str | None = None) -> str:
    """Append one flow run to the registry at ``runs_dir``."""
    record = RunRecord.from_flow(
        result, config, flow=flow, trace_path=trace_path
    )
    return RunRegistry(runs_dir).append(record)


# ---------------------------------------------------------------------------
# cross-run analytics
# ---------------------------------------------------------------------------

def diff_runs(a: dict, b: dict) -> dict:
    """Per-stage runtime and quality deltas between two run records.

    Returns ``{"metrics": [...], "stages": [...], "regressions": [...],
    "comparable": bool}``.  A metric row is flagged as a regression when
    its drift (in either direction) exceeds the
    ``check_regression``-style tolerance — runtime rows are reported
    but never gate, matching CI's timing policy.
    """
    metrics_a = a.get("metrics", {})
    metrics_b = b.get("metrics", {})
    metric_rows = []
    regressions = []
    for name in sorted(set(metrics_a) | set(metrics_b)):
        va, vb = metrics_a.get(name), metrics_b.get(name)
        if not isinstance(va, (int, float)) or not isinstance(vb, (int, float)):
            continue
        delta = vb - va
        exceeded = exceeds_tolerance(name, vb, va)
        rel = (delta / va) if va else float("inf") if delta else 0.0
        metric_rows.append(
            {
                "metric": name,
                "a": round(float(va), 6),
                "b": round(float(vb), 6),
                "delta": round(float(delta), 6),
                "rel": f"{100.0 * rel:+.2f}%" if rel != float("inf") else "inf",
                "flag": "REGRESSION" if exceeded else "",
            }
        )
        if exceeded:
            regressions.append(name)
    stages_a = a.get("stage_seconds", {})
    stages_b = b.get("stage_seconds", {})
    stage_rows = []
    for name in sorted(set(stages_a) | set(stages_b)):
        sa = float(stages_a.get(name, 0.0))
        sb = float(stages_b.get(name, 0.0))
        stage_rows.append(
            {
                "stage": name,
                "a_s": round(sa, 3),
                "b_s": round(sb, 3),
                "delta_s": round(sb - sa, 3),
                "rel": f"{100.0 * (sb - sa) / sa:+.1f}%" if sa else "-",
            }
        )
    return {
        "comparable": a.get("design") == b.get("design"),
        "metrics": metric_rows,
        "stages": stage_rows,
        "regressions": regressions,
    }


def run_summary_row(record: dict) -> dict:
    """Compact table row for ``repro runs list``."""
    metrics = record.get("metrics", {})
    total_s = sum(record.get("stage_seconds", {}).values())
    return {
        "run_id": record.get("run_id", ""),
        "when": time.strftime(
            "%Y-%m-%d %H:%M:%S", time.gmtime(record.get("created", 0))
        ),
        "design": record.get("design", ""),
        "flow": record.get("flow", ""),
        "HPWL": round(metrics.get("hpwl_final", 0.0), 0),
        "sHPWL": round(metrics.get("scaled_hpwl", 0.0), 0),
        "RC": round(metrics.get("rc", 0.0), 4),
        "legal": "yes" if record.get("legal") else "NO",
        "degraded": "yes" if record.get("degraded") else "",
        "time_s": round(total_s, 1),
        "rev": (record.get("git_rev") or "")[:10],
    }
