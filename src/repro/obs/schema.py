"""Versioned schemas for streamed trace records and run-history records.

Two record families leave the process as JSON:

* **trace records** — the JSONL stream written by batch export
  (:func:`repro.obs.export.write_jsonl`), by the streaming
  :class:`~repro.obs.bus.JsonlStreamSink`, and by flight-recorder dumps.
  Their schema version is :data:`SCHEMA_VERSION`; every ``meta`` header
  carries it.
* **run records** — the per-flow summary rows appended to the run
  registry (:mod:`repro.obs.runs`), versioned by
  :data:`RUN_SCHEMA_VERSION`.

Both schemas are expressed as restricted JSON-Schema documents built by
:func:`build_trace_schema` / :func:`build_run_schema` and committed under
``docs/schemas/`` (a test asserts the committed files match).  The
:func:`validate` function implements exactly the keyword subset those
documents use — ``type``, ``properties``, ``required``,
``additionalProperties``, ``items``, ``enum``, ``minimum`` — so records
can be validated without third-party dependencies.
"""

from __future__ import annotations

#: Trace-record schema version (bumped in PR 6: streamed ``span_open``
#: records, optional per-span ``resources``, richer ``meta`` headers).
SCHEMA_VERSION = 2

#: Run-registry record schema version.
RUN_SCHEMA_VERSION = 1

_NUM = {"type": ["number", "integer"]}
_STR = {"type": "string"}
_INT = {"type": "integer"}
_OBJ = {"type": "object"}
_BOOL = {"type": "boolean"}


def _record(type_name: str, properties: dict, required: list[str],
            additional: bool = False) -> dict:
    props = {"type": {"enum": [type_name]}}
    props.update(properties)
    return {
        "type": "object",
        "properties": props,
        "required": ["type", *required],
        "additionalProperties": additional,
    }


def build_trace_schema() -> dict:
    """The JSON-Schema document for trace-record streams (JSONL lines)."""
    resources = {
        "type": "object",
        "properties": {
            "cpu_s": _NUM,
            "rss_delta_kb": _NUM,
            "tracemalloc_peak_kb": _NUM,
        },
        "additionalProperties": False,
    }
    span_props = {
        "name": _STR,
        "path": _STR,
        "start": _NUM,
        "duration": _NUM,
        "depth": {"type": "integer", "minimum": 0},
        "attrs": _OBJ,
        "error": _STR,
        "resources": resources,
    }
    return {
        "$id": f"repro/trace-records/v{SCHEMA_VERSION}",
        "title": "repro.obs trace records",
        "description": "One JSON object per line; dispatch on 'type'.",
        "version": SCHEMA_VERSION,
        "records": {
            "meta": _record(
                "meta",
                {"schema": _INT, "reason": _STR},
                ["schema"],
                additional=True,
            ),
            "span": _record(
                "span",
                span_props,
                ["name", "path", "start", "duration", "depth"],
            ),
            "span_open": _record(
                "span_open",
                {
                    "name": _STR,
                    "path": _STR,
                    "start": _NUM,
                    "depth": {"type": "integer", "minimum": 0},
                    "attrs": _OBJ,
                },
                ["name", "path", "start", "depth"],
            ),
            "event": _record(
                "event",
                {"name": _STR, "path": _STR, "time": _NUM, "attrs": _OBJ},
                ["name", "path", "time"],
            ),
            "sample": _record(
                "sample",
                {"metric": _STR, "step": _INT, "value": _NUM},
                ["metric", "step", "value"],
            ),
            "metrics": _record(
                "metrics",
                {"counters": _OBJ, "gauges": _OBJ, "histograms": _OBJ},
                ["counters", "gauges", "histograms"],
            ),
        },
    }


def build_run_schema() -> dict:
    """The JSON-Schema document for run-registry records."""
    return {
        "$id": f"repro/run-record/v{RUN_SCHEMA_VERSION}",
        "title": "repro.obs run-history record",
        "version": RUN_SCHEMA_VERSION,
        "records": {
            "run": {
                "type": "object",
                "properties": {
                    "schema": _INT,
                    "run_id": _STR,
                    "created": _NUM,
                    "design": _STR,
                    "flow": _STR,
                    "config_hash": _STR,
                    "git_rev": {"type": ["string", "null"]},
                    "legal": _BOOL,
                    "degraded": _BOOL,
                    "degradation": {"type": "array", "items": _OBJ},
                    "stage_seconds": _OBJ,
                    "metrics": _OBJ,
                    "trace_path": {"type": ["string", "null"]},
                },
                "required": [
                    "schema", "run_id", "created", "design", "flow",
                    "config_hash", "legal", "degraded", "stage_seconds",
                    "metrics",
                ],
                "additionalProperties": False,
            }
        },
    }


class SchemaError(ValueError):
    """A record does not conform to its schema."""


def _type_ok(value, type_name: str) -> bool:
    if type_name == "object":
        return isinstance(value, dict)
    if type_name == "array":
        return isinstance(value, list)
    if type_name == "string":
        return isinstance(value, str)
    if type_name == "integer":
        # bool is an int subclass; JSON distinguishes them.
        return isinstance(value, int) and not isinstance(value, bool)
    if type_name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if type_name == "boolean":
        return isinstance(value, bool)
    if type_name == "null":
        return value is None
    raise SchemaError(f"unsupported schema type {type_name!r}")


def validate(instance, schema: dict, path: str = "$") -> None:
    """Check ``instance`` against a restricted JSON-Schema ``schema``.

    Raises :class:`SchemaError` with a JSON-pointer-ish location on the
    first violation; returns ``None`` on success.
    """
    types = schema.get("type")
    if types is not None:
        if isinstance(types, str):
            types = [types]
        if not any(_type_ok(instance, t) for t in types):
            raise SchemaError(
                f"{path}: expected type {'/'.join(types)}, "
                f"got {type(instance).__name__}"
            )
    if "enum" in schema and instance not in schema["enum"]:
        raise SchemaError(f"{path}: {instance!r} not in {schema['enum']!r}")
    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            raise SchemaError(
                f"{path}: {instance!r} < minimum {schema['minimum']!r}"
            )
    if isinstance(instance, dict):
        props = schema.get("properties", {})
        for key in schema.get("required", []):
            if key not in instance:
                raise SchemaError(f"{path}: missing required key {key!r}")
        additional = schema.get("additionalProperties", True)
        for key, value in instance.items():
            if key in props:
                validate(value, props[key], f"{path}.{key}")
            elif additional is False:
                raise SchemaError(f"{path}: unexpected key {key!r}")
            elif isinstance(additional, dict):
                validate(value, additional, f"{path}.{key}")
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            validate(item, schema["items"], f"{path}[{i}]")


def validate_trace_record(record: dict, schema: dict | None = None) -> None:
    """Validate one trace record against the per-type trace schema."""
    schema = schema or build_trace_schema()
    if not isinstance(record, dict):
        raise SchemaError(f"record must be an object, got {type(record).__name__}")
    rtype = record.get("type")
    sub = schema["records"].get(rtype)
    if sub is None:
        known = ", ".join(sorted(schema["records"]))
        raise SchemaError(f"unknown record type {rtype!r} (known: {known})")
    validate(record, sub)


def validate_trace_records(records: list[dict]) -> None:
    """Validate a whole trace: a leading ``meta`` header, then records."""
    if not records:
        raise SchemaError("empty trace: missing meta header")
    if records[0].get("type") != "meta":
        raise SchemaError("first record must be the meta header")
    schema = build_trace_schema()
    for i, record in enumerate(records):
        try:
            validate_trace_record(record, schema)
        except SchemaError as exc:
            raise SchemaError(f"record {i}: {exc}") from None


def validate_run_record(record: dict) -> None:
    """Validate one run-registry record."""
    validate(record, build_run_schema()["records"]["run"])
