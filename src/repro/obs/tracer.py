"""Hierarchical span tracing for the placement flow.

A :class:`Tracer` records *spans* — named, nested, wall-clock-timed
regions such as ``flow/gp/iter[12]/cg`` — plus point *events*, and owns
a :class:`~repro.obs.metrics.MetricsRegistry` for numeric telemetry.
All timing uses the monotonic ``time.perf_counter`` clock, so durations
are immune to wall-clock adjustments.

Beyond the batch API (``finished_spans()`` / ``events()`` / JSONL
export after the run), a tracer is a live **telemetry bus**: sinks
attached with :meth:`Tracer.add_sink` receive every record the moment
it is produced — ``span_open`` on entry, ``span`` on close, ``event``,
and ``sample`` for metric series points (see :mod:`repro.obs.bus` for
the provided sinks: streaming JSONL, heartbeat, callback, flight
recorder).  With ``profile_resources=True`` every span additionally
records CPU/RSS/heap deltas (:mod:`repro.obs.profile`).

Instrumented code never checks whether tracing is on: it asks
:func:`get_tracer` for the *current* tracer and uses it unconditionally.
By default that is :data:`NULL_TRACER`, a no-op singleton whose
``span()`` returns one shared, reusable context manager — the disabled
path allocates nothing and costs two attribute lookups plus a call, so
instrumentation can live inside per-iteration loops
(``benchmarks/bench_obs_overhead.py`` gates that cost at <= 1% of GP).

Usage::

    tracer = Tracer()
    tracer.add_sink(JsonlStreamSink("trace.jsonl"), meta={"design": "rh02"})
    with use_tracer(tracer):
        with tracer.span("flow"):
            with tracer.span("gp", design="rh02"):
                ...
    tracer.close_sinks()
    tracer.finished_spans()   # -> [Span(path="flow/gp", ...), Span(path="flow", ...)]

Spans nest per thread (a thread-local stack), while the finished-span
list, the metrics registry, and the sink fan-out are shared and
lock-protected, so one tracer can observe a multi-threaded flow.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.bus import MAX_SINK_FAILURES, make_meta
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, Sample
from repro.obs.profile import capture_resources, finish_resources


@dataclass
class Span:
    """One finished traced region."""

    name: str                 # leaf name, e.g. "cg"
    path: str                 # full slash path, e.g. "flow/gp/iter[3]/cg"
    start: float              # perf_counter timestamp at entry
    duration: float = 0.0     # seconds
    depth: int = 0            # 0 for root spans
    attrs: dict = field(default_factory=dict)
    error: str | None = None  # exception type name if the span raised
    resources: dict | None = None  # CPU/RSS/heap deltas when profiled

    def as_record(self) -> dict:
        """JSON-serializable form (the JSONL ``span`` record payload)."""
        rec = {
            "type": "span",
            "name": self.name,
            "path": self.path,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
        }
        if self.attrs:
            rec["attrs"] = self.attrs
        if self.error:
            rec["error"] = self.error
        if self.resources is not None:
            rec["resources"] = self.resources
        return rec

    def open_record(self) -> dict:
        """The ``span_open`` record streamed to sinks at entry."""
        rec = {
            "type": "span_open",
            "name": self.name,
            "path": self.path,
            "start": self.start,
            "depth": self.depth,
        }
        if self.attrs:
            rec["attrs"] = self.attrs
        return rec


@dataclass
class Event:
    """A point-in-time occurrence (log line, state change, milestone)."""

    name: str
    path: str                 # path of the enclosing span ("" at top level)
    time: float               # perf_counter timestamp
    attrs: dict = field(default_factory=dict)

    def as_record(self) -> dict:
        rec = {
            "type": "event",
            "name": self.name,
            "path": self.path,
            "time": self.time,
        }
        if self.attrs:
            rec["attrs"] = self.attrs
        return rec


class _SpanHandle:
    """Context manager for one live span of an enabled tracer."""

    __slots__ = ("_tracer", "_span", "_entry_resources")

    def __init__(self, tracer: "Tracer", span: Span, entry_resources=None):
        self._tracer = tracer
        self._span = span
        self._entry_resources = entry_resources

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.duration = time.perf_counter() - span.start
        if exc_type is not None:
            span.error = exc_type.__name__
        if self._entry_resources is not None:
            span.resources = finish_resources(self._entry_resources)
        self._tracer._finish(span)
        return False


class Tracer:
    """Collects spans, events, and metrics for one run; fans out to sinks."""

    enabled = True

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        *,
        profile_resources: bool = False,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics.on_sample = self._on_sample
        self.profile_resources = profile_resources
        self._spans: list[Span] = []
        self._events: list[Event] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._sinks: tuple = ()
        self._sink_failures: dict = {}
        # thread ident -> innermost open span path (for the sampling
        # profiler, which reads it from another thread).
        self._thread_paths: dict[int, str] = {}

    # -- span API ------------------------------------------------------
    def span(self, name: str, **attrs) -> _SpanHandle:
        """Open a nested span; use as ``with tracer.span("gp"): ...``."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        path = f"{parent.path}/{name}" if parent else name
        span = Span(
            name=name,
            path=path,
            start=time.perf_counter(),
            depth=len(stack),
            attrs=dict(attrs) if attrs else {},
        )
        stack.append(span)
        self._thread_paths[threading.get_ident()] = path
        if self._sinks:
            self._emit(span.open_record())
        entry = capture_resources() if self.profile_resources else None
        return _SpanHandle(self, span, entry)

    def event(self, name: str, **attrs) -> None:
        """Record a point event under the current span path."""
        evt = Event(
            name=name,
            path=self.current_path(),
            time=time.perf_counter(),
            attrs=dict(attrs) if attrs else {},
        )
        with self._lock:
            self._events.append(evt)
        if self._sinks:
            self._emit(evt.as_record())

    def current_path(self) -> str:
        """Slash path of the innermost open span ("" outside any span)."""
        stack = self._stack()
        return stack[-1].path if stack else ""

    def thread_path(self, thread_id: int) -> str:
        """Innermost open span path of the given thread ("" if none)."""
        return self._thread_paths.get(thread_id, "")

    # -- telemetry bus -------------------------------------------------
    def add_sink(self, sink, meta: dict | None = None):
        """Attach a live subscriber; it gets every record from now on.

        ``meta`` extends the ``meta`` header record passed to
        ``sink.open()`` (and written first by file sinks).  Returns the
        sink for chaining.
        """
        sink.open(make_meta(meta))
        with self._lock:
            self._sinks = (*self._sinks, sink)
        return sink

    def remove_sink(self, sink) -> None:
        """Detach ``sink`` (its ``close()`` is NOT called)."""
        with self._lock:
            self._sinks = tuple(s for s in self._sinks if s is not sink)
            self._sink_failures.pop(id(sink), None)

    def sinks(self) -> tuple:
        """The currently attached sinks."""
        return self._sinks

    def close_sinks(self) -> None:
        """Detach every sink, passing each the final metrics snapshot."""
        with self._lock:
            sinks, self._sinks = self._sinks, ()
            self._sink_failures.clear()
        snapshot = {"type": "metrics", **self.metrics.snapshot()}
        for sink in sinks:
            try:
                sink.close(dict(snapshot))
            except Exception:
                pass

    def dump_flight_recorders(self, reason: str = "") -> list[str]:
        """Ask every sink with a ``dump`` method to write its buffer.

        The flow calls this on degradation, the CLI on crash; returns
        the paths written.  A failing dump never raises — post-mortem
        capture must not take down the run it is documenting.
        """
        paths = []
        for sink in self._sinks:
            dump = getattr(sink, "dump", None)
            if dump is None:
                continue
            try:
                paths.append(dump(reason=reason))
            except Exception:
                pass
        return paths

    def _emit(self, record: dict) -> None:
        """Fan one record out to every sink; detach repeat offenders."""
        for sink in self._sinks:
            try:
                sink.handle(record)
            except Exception:
                failures = self._sink_failures.get(id(sink), 0) + 1
                self._sink_failures[id(sink)] = failures
                if failures >= MAX_SINK_FAILURES:
                    self.remove_sink(sink)

    def _on_sample(self, sample: Sample) -> None:
        """Metric-series hook: stream each sample to the sinks."""
        if self._sinks:
            self._emit(
                {
                    "type": "sample",
                    "metric": sample.metric,
                    "step": sample.step,
                    "value": sample.value,
                }
            )

    def fresh_metrics(self) -> MetricsRegistry:
        """Swap in an empty metrics registry (one registry per flow run).

        The flow calls this at ``run()`` entry so back-to-back runs in
        one process never accumulate each other's series.  Attached
        sinks keep streaming — samples already forwarded are unaffected.
        """
        self.metrics = MetricsRegistry()
        self.metrics.on_sample = self._on_sample
        return self.metrics

    # -- results -------------------------------------------------------
    def finished_spans(self) -> list[Span]:
        """Finished spans in completion order (children before parents)."""
        with self._lock:
            return list(self._spans)

    def events(self) -> list[Event]:
        with self._lock:
            return list(self._events)

    # -- internals -----------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate mis-nested exits (e.g. a generator finalized late):
        # drop the span from wherever it sits rather than corrupting
        # unrelated entries.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            stack.remove(span)
        tid = threading.get_ident()
        if stack:
            self._thread_paths[tid] = stack[-1].path
        else:
            self._thread_paths.pop(tid, None)
        with self._lock:
            self._spans.append(span)
        if self._sinks:
            self._emit(span.as_record())


class _NullContext:
    """Reusable no-op context manager (also a no-op "span")."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """Disabled tracer: every operation is a no-op, nothing allocates.

    ``span()`` hands back one shared context manager instance, so the
    instrumentation in hot loops costs an attribute lookup and a call —
    no objects, no clock reads, no locks.
    """

    enabled = False
    metrics = NULL_REGISTRY
    profile_resources = False

    def span(self, name: str, **attrs) -> _NullContext:  # noqa: ARG002
        return _NULL_CONTEXT

    def event(self, name: str, **attrs) -> None:
        pass

    def current_path(self) -> str:
        return ""

    def thread_path(self, thread_id: int) -> str:  # noqa: ARG002
        return ""

    def add_sink(self, sink, meta: dict | None = None):  # noqa: ARG002
        return sink

    def remove_sink(self, sink) -> None:
        pass

    def sinks(self) -> tuple:
        return ()

    def close_sinks(self) -> None:
        pass

    def dump_flight_recorders(self, reason: str = "") -> list:  # noqa: ARG002
        return []

    def fresh_metrics(self):
        return NULL_REGISTRY

    def finished_spans(self) -> list:
        return []

    def events(self) -> list:
        return []


NULL_TRACER = NullTracer()

_current: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The tracer instrumented code should write to (never ``None``)."""
    return _current


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` globally; ``None`` restores the no-op tracer."""
    global _current
    _current = tracer if tracer is not None else NULL_TRACER
    return _current


@contextmanager
def use_tracer(tracer: Tracer | NullTracer | None):
    """Scoped :func:`set_tracer`: restores the previous tracer on exit."""
    previous = _current
    set_tracer(tracer)
    try:
        yield _current
    finally:
        set_tracer(previous)
