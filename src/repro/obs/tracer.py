"""Hierarchical span tracing for the placement flow.

A :class:`Tracer` records *spans* — named, nested, wall-clock-timed
regions such as ``flow/gp/iter[12]/cg`` — plus point *events*, and owns
a :class:`~repro.obs.metrics.MetricsRegistry` for numeric telemetry.
All timing uses the monotonic ``time.perf_counter`` clock, so durations
are immune to wall-clock adjustments.

Instrumented code never checks whether tracing is on: it asks
:func:`get_tracer` for the *current* tracer and uses it unconditionally.
By default that is :data:`NULL_TRACER`, a no-op singleton whose
``span()`` returns one shared, reusable context manager — the disabled
path allocates nothing and costs two attribute lookups plus a call, so
instrumentation can live inside per-iteration loops.

Usage::

    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span("flow"):
            with tracer.span("gp", design="rh02"):
                ...
    tracer.finished_spans()   # -> [Span(path="flow/gp", ...), Span(path="flow", ...)]

Spans nest per thread (a thread-local stack), while the finished-span
list and the metrics registry are shared and lock-protected, so one
tracer can observe a multi-threaded flow.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry


@dataclass
class Span:
    """One finished traced region."""

    name: str                 # leaf name, e.g. "cg"
    path: str                 # full slash path, e.g. "flow/gp/iter[3]/cg"
    start: float              # perf_counter timestamp at entry
    duration: float = 0.0     # seconds
    depth: int = 0            # 0 for root spans
    attrs: dict = field(default_factory=dict)
    error: str | None = None  # exception type name if the span raised

    def as_record(self) -> dict:
        """JSON-serializable form (the JSONL ``span`` record payload)."""
        rec = {
            "type": "span",
            "name": self.name,
            "path": self.path,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
        }
        if self.attrs:
            rec["attrs"] = self.attrs
        if self.error:
            rec["error"] = self.error
        return rec


@dataclass
class Event:
    """A point-in-time occurrence (log line, state change, milestone)."""

    name: str
    path: str                 # path of the enclosing span ("" at top level)
    time: float               # perf_counter timestamp
    attrs: dict = field(default_factory=dict)

    def as_record(self) -> dict:
        rec = {
            "type": "event",
            "name": self.name,
            "path": self.path,
            "time": self.time,
        }
        if self.attrs:
            rec["attrs"] = self.attrs
        return rec


class _SpanHandle:
    """Context manager for one live span of an enabled tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.duration = time.perf_counter() - span.start
        if exc_type is not None:
            span.error = exc_type.__name__
        self._tracer._finish(span)
        return False


class Tracer:
    """Collects spans, events, and metrics for one run."""

    enabled = True

    def __init__(self, metrics: MetricsRegistry | None = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._spans: list[Span] = []
        self._events: list[Event] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- span API ------------------------------------------------------
    def span(self, name: str, **attrs) -> _SpanHandle:
        """Open a nested span; use as ``with tracer.span("gp"): ...``."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        path = f"{parent.path}/{name}" if parent else name
        span = Span(
            name=name,
            path=path,
            start=time.perf_counter(),
            depth=len(stack),
            attrs=dict(attrs) if attrs else {},
        )
        stack.append(span)
        return _SpanHandle(self, span)

    def event(self, name: str, **attrs) -> None:
        """Record a point event under the current span path."""
        evt = Event(
            name=name,
            path=self.current_path(),
            time=time.perf_counter(),
            attrs=dict(attrs) if attrs else {},
        )
        with self._lock:
            self._events.append(evt)

    def current_path(self) -> str:
        """Slash path of the innermost open span ("" outside any span)."""
        stack = self._stack()
        return stack[-1].path if stack else ""

    # -- results -------------------------------------------------------
    def finished_spans(self) -> list[Span]:
        """Finished spans in completion order (children before parents)."""
        with self._lock:
            return list(self._spans)

    def events(self) -> list[Event]:
        with self._lock:
            return list(self._events)

    # -- internals -----------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate mis-nested exits (e.g. a generator finalized late):
        # drop the span from wherever it sits rather than corrupting
        # unrelated entries.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            stack.remove(span)
        with self._lock:
            self._spans.append(span)


class _NullContext:
    """Reusable no-op context manager (also a no-op "span")."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """Disabled tracer: every operation is a no-op, nothing allocates.

    ``span()`` hands back one shared context manager instance, so the
    instrumentation in hot loops costs an attribute lookup and a call —
    no objects, no clock reads, no locks.
    """

    enabled = False
    metrics = NULL_REGISTRY

    def span(self, name: str, **attrs) -> _NullContext:  # noqa: ARG002
        return _NULL_CONTEXT

    def event(self, name: str, **attrs) -> None:
        pass

    def current_path(self) -> str:
        return ""

    def finished_spans(self) -> list:
        return []

    def events(self) -> list:
        return []


NULL_TRACER = NullTracer()

_current: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The tracer instrumented code should write to (never ``None``)."""
    return _current


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` globally; ``None`` restores the no-op tracer."""
    global _current
    _current = tracer if tracer is not None else NULL_TRACER
    return _current


@contextmanager
def use_tracer(tracer: Tracer | NullTracer | None):
    """Scoped :func:`set_tracer`: restores the previous tracer on exit."""
    previous = _current
    set_tracer(tracer)
    try:
        yield _current
    finally:
        set_tracer(previous)
