"""Numerical optimization for analytical placement."""

from repro.optim.cg import CGResult, minimize_cg

__all__ = ["CGResult", "minimize_cg"]
