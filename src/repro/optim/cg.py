"""Projected Polak-Ribiere conjugate gradient with backtracking line search.

This is the inner solver of global placement: it minimizes the merit
function ``wirelength + lambda * density`` for one value of ``lambda``.
The placement-specific twists, both standard in the NTUplace lineage:

* search directions are normalized to unit infinity-norm, so the step
  length is measured in *distance on the die* and can be capped (cells
  never teleport across the core in one iteration);
* an optional projection keeps iterates inside the core (and inside fence
  regions) after every step, making the method a projected CG.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CGResult:
    """Outcome of :func:`minimize_cg`."""

    x: np.ndarray
    value: float
    grad_norm: float
    iterations: int
    converged: bool
    trajectory: list  # objective value per iteration
    final_step: float = 0.0  # last accepted line-search step (die distance)


def minimize_cg(
    value_grad,
    x0: np.ndarray,
    *,
    max_iter: int = 100,
    step_init: float = 1.0,
    step_max: float | None = None,
    rel_tol: float = 1e-4,
    armijo_c: float = 1e-4,
    backtrack: float = 0.5,
    max_backtracks: int = 12,
    project=None,
    record: bool = False,
) -> CGResult:
    """Minimize ``value_grad: x -> (f, g)`` starting from ``x0``.

    ``step_init``/``step_max`` are in the units of ``x`` (die distance).
    ``project`` maps a candidate iterate back into the feasible set.
    Converges when the relative objective decrease over an iteration falls
    below ``rel_tol``.
    """
    x = np.array(x0, dtype=float)
    if project is not None:
        x = project(x)
    f, g = value_grad(x)
    d = -g
    alpha = float(step_init)
    trajectory = [f] if record else []
    converged = False
    iterations = 0
    last_step = 0.0
    for it in range(max_iter):
        iterations = it + 1
        dinf = float(np.max(np.abs(d))) if d.size else 0.0
        if dinf <= 0.0:
            converged = True
            break
        d_hat = d / dinf
        slope = float(np.dot(g, d_hat))
        if slope >= 0.0:  # not a descent direction: restart on -g
            d = -g
            dinf = float(np.max(np.abs(d)))
            if dinf <= 0.0:
                converged = True
                break
            d_hat = d / dinf
            slope = float(np.dot(g, d_hat))
            if slope >= 0.0:
                converged = True
                break
        # Backtracking Armijo search in absolute distance units.
        step = alpha
        if step_max is not None:
            step = min(step, step_max)
        accepted = False
        f_new = f
        x_new = x
        for _ in range(max_backtracks):
            x_try = x + step * d_hat
            if project is not None:
                x_try = project(x_try)
            f_try, g_try = value_grad(x_try)
            if f_try <= f + armijo_c * step * slope or f_try < f:
                accepted = True
                x_new, f_new, g_new = x_try, f_try, g_try
                break
            step *= backtrack
        if not accepted:
            converged = True
            break
        last_step = step
        # Adapt the trial step: grow after easy acceptance, keep otherwise.
        alpha = step * (2.0 if step >= alpha * 0.99 else 1.0)
        if step_max is not None:
            alpha = min(alpha, step_max)
        # Polak-Ribiere+ update.
        gg = float(np.dot(g, g))
        beta = 0.0
        if gg > 0:
            beta = max(0.0, float(np.dot(g_new, g_new - g)) / gg)
        d = -g_new + beta * d
        rel_drop = abs(f - f_new) / max(abs(f), 1e-12)
        x, f, g = x_new, f_new, g_new
        if record:
            trajectory.append(f)
        if rel_drop < rel_tol:
            converged = True
            break
    grad_norm = float(np.linalg.norm(g)) if g.size else 0.0
    return CGResult(
        x=x,
        value=f,
        grad_norm=grad_norm,
        iterations=iterations,
        converged=converged,
        trajectory=trajectory,
        final_step=last_step,
    )
