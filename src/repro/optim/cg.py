"""Projected Polak-Ribiere conjugate gradient with backtracking line search.

This is the inner solver of global placement: it minimizes the merit
function ``wirelength + lambda * density`` for one value of ``lambda``.
The placement-specific twists, both standard in the NTUplace lineage:

* search directions are normalized to unit infinity-norm, so the step
  length is measured in *distance on the die* and can be capped (cells
  never teleport across the core in one iteration);
* an optional projection keeps iterates inside the core (and inside fence
  regions) after every step, making the method a projected CG.

The default implementation keeps its inner loop allocation-free: the
iterate, trial point, direction, and gradients live in preallocated
buffers updated in place (only commutative/associative-neutral rewrites,
so the trajectory is bit-identical to the original).  Gradients returned
by ``value_grad`` are copied into solver-owned storage, which also makes
the solver safe for objectives that reuse one output buffer across calls.
``minimize_cg(..., reference=True)`` runs the original allocating
implementation, kept verbatim as the golden baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass
class CGResult:
    """Outcome of :func:`minimize_cg`."""

    x: np.ndarray
    value: float
    grad_norm: float
    iterations: int
    converged: bool
    trajectory: list  # objective value per iteration
    final_step: float = 0.0  # last accepted line-search step (die distance)
    nonfinite: bool = False  # NaN/Inf observed in the final value/gradient


def minimize_cg(
    value_grad,
    x0: np.ndarray,
    *,
    max_iter: int = 100,
    step_init: float = 1.0,
    step_max: float | None = None,
    rel_tol: float = 1e-4,
    armijo_c: float = 1e-4,
    backtrack: float = 0.5,
    max_backtracks: int = 12,
    project=None,
    record: bool = False,
    reference: bool = False,
) -> CGResult:
    """Minimize ``value_grad: x -> (f, g)`` starting from ``x0``.

    ``step_init``/``step_max`` are in the units of ``x`` (die distance).
    ``project`` maps a candidate iterate back into the feasible set (it
    may update its argument in place and return it).  Converges when the
    relative objective decrease over an iteration falls below
    ``rel_tol``.  ``reference=True`` selects the original allocating
    implementation (bit-identical results, kept for golden comparisons).
    """
    if reference:
        return _minimize_cg_reference(
            value_grad,
            x0,
            max_iter=max_iter,
            step_init=step_init,
            step_max=step_max,
            rel_tol=rel_tol,
            armijo_c=armijo_c,
            backtrack=backtrack,
            max_backtracks=max_backtracks,
            project=project,
            record=record,
        )
    # Optional value/gradient split: an objective exposing ``probe`` (value
    # of a trial point) and ``finish_grad`` (gradient of the last probed
    # point) lets rejected line-search probes skip gradient work entirely.
    # Both halves must reproduce ``value_grad`` bit for bit.
    probe = getattr(value_grad, "probe", None)
    finish_grad = getattr(value_grad, "finish_grad", None)
    split = probe is not None and finish_grad is not None
    x = np.array(x0, dtype=float)
    if project is not None:
        x = project(x)
    f, g_ret = value_grad(x)
    g = np.array(g_ret, dtype=float)       # solver-owned copy
    g_new = np.empty_like(g)
    d = np.negative(g)
    d_hat = np.empty_like(d)
    x_try = np.empty_like(x)
    work = np.empty_like(d)
    alpha = float(step_init)
    trajectory = [f] if record else []
    converged = False
    iterations = 0
    last_step = 0.0
    for it in range(max_iter):
        iterations = it + 1
        if d.size:
            np.abs(d, out=work)
            dinf = float(work.max())
        else:
            dinf = 0.0
        if dinf <= 0.0:
            converged = True
            break
        np.divide(d, dinf, out=d_hat)
        slope = float(np.dot(g, d_hat))
        if slope >= 0.0:  # not a descent direction: restart on -g
            np.negative(g, out=d)
            np.abs(d, out=work)
            dinf = float(work.max())
            if dinf <= 0.0:
                converged = True
                break
            np.divide(d, dinf, out=d_hat)
            slope = float(np.dot(g, d_hat))
            if slope >= 0.0:
                converged = True
                break
        # Backtracking Armijo search in absolute distance units.
        step = alpha
        if step_max is not None:
            step = min(step, step_max)
        accepted = False
        f_new = f
        for _ in range(max_backtracks):
            np.multiply(d_hat, step, out=x_try)
            x_try += x
            if project is not None:
                x_try = project(x_try)
            if split:
                f_try = probe(x_try)
            else:
                f_try, g_try = value_grad(x_try)
            if f_try <= f + armijo_c * step * slope or f_try < f:
                accepted = True
                f_new = f_try
                np.copyto(g_new, finish_grad() if split else g_try)
                break
            step *= backtrack
        if not accepted:
            converged = True
            break
        last_step = step
        # Adapt the trial step: grow after easy acceptance, keep otherwise.
        alpha = step * (2.0 if step >= alpha * 0.99 else 1.0)
        if step_max is not None:
            alpha = min(alpha, step_max)
        # Polak-Ribiere+ update.
        gg = float(np.dot(g, g))
        beta = 0.0
        if gg > 0:
            np.subtract(g_new, g, out=work)
            beta = max(0.0, float(np.dot(g_new, work)) / gg)
        d *= beta
        d -= g_new
        rel_drop = abs(f - f_new) / max(abs(f), 1e-12)
        x, x_try = x_try, x                  # accepted trial becomes iterate
        g, g_new = g_new, g
        f = f_new
        if record:
            trajectory.append(f)
        if rel_drop < rel_tol:
            converged = True
            break
    grad_norm = float(np.linalg.norm(g)) if g.size else 0.0
    return CGResult(
        x=x,
        value=f,
        grad_norm=grad_norm,
        iterations=iterations,
        converged=converged,
        trajectory=trajectory,
        final_step=last_step,
        nonfinite=not (math.isfinite(f) and math.isfinite(grad_norm)),
    )


def _minimize_cg_reference(
    value_grad,
    x0: np.ndarray,
    *,
    max_iter: int = 100,
    step_init: float = 1.0,
    step_max: float | None = None,
    rel_tol: float = 1e-4,
    armijo_c: float = 1e-4,
    backtrack: float = 0.5,
    max_backtracks: int = 12,
    project=None,
    record: bool = False,
) -> CGResult:
    """The original allocating implementation, kept verbatim."""
    x = np.array(x0, dtype=float)
    if project is not None:
        x = project(x)
    f, g = value_grad(x)
    d = -g
    alpha = float(step_init)
    trajectory = [f] if record else []
    converged = False
    iterations = 0
    last_step = 0.0
    for it in range(max_iter):
        iterations = it + 1
        dinf = float(np.max(np.abs(d))) if d.size else 0.0
        if dinf <= 0.0:
            converged = True
            break
        d_hat = d / dinf
        slope = float(np.dot(g, d_hat))
        if slope >= 0.0:  # not a descent direction: restart on -g
            d = -g
            dinf = float(np.max(np.abs(d)))
            if dinf <= 0.0:
                converged = True
                break
            d_hat = d / dinf
            slope = float(np.dot(g, d_hat))
            if slope >= 0.0:
                converged = True
                break
        # Backtracking Armijo search in absolute distance units.
        step = alpha
        if step_max is not None:
            step = min(step, step_max)
        accepted = False
        f_new = f
        x_new = x
        for _ in range(max_backtracks):
            x_try = x + step * d_hat
            if project is not None:
                x_try = project(x_try)
            f_try, g_try = value_grad(x_try)
            if f_try <= f + armijo_c * step * slope or f_try < f:
                accepted = True
                x_new, f_new, g_new = x_try, f_try, g_try
                break
            step *= backtrack
        if not accepted:
            converged = True
            break
        last_step = step
        # Adapt the trial step: grow after easy acceptance, keep otherwise.
        alpha = step * (2.0 if step >= alpha * 0.99 else 1.0)
        if step_max is not None:
            alpha = min(alpha, step_max)
        # Polak-Ribiere+ update.
        gg = float(np.dot(g, g))
        beta = 0.0
        if gg > 0:
            beta = max(0.0, float(np.dot(g_new, g_new - g)) / gg)
        d = -g_new + beta * d
        rel_drop = abs(f - f_new) / max(abs(f), 1e-12)
        x, f, g = x_new, f_new, g_new
        if record:
            trajectory.append(f)
        if rel_drop < rel_tol:
            converged = True
            break
    grad_norm = float(np.linalg.norm(g)) if g.size else 0.0
    return CGResult(
        x=x,
        value=f,
        grad_norm=grad_norm,
        iterations=iterations,
        converged=converged,
        trajectory=trajectory,
        final_step=last_step,
        nonfinite=not (math.isfinite(f) and math.isfinite(grad_norm)),
    )
