"""Shared-memory multi-core execution inside one placement run.

The package supplies one mechanism reused by three stages:

* :class:`~repro.parallel.pool.WorkerPool` — a handful of long-lived
  worker *processes* (one fork/spawn per stage, not per task) connected
  by duplex pipes.  Tasks are module-level functions addressed as
  ``"module:function"`` strings; replies are gathered **in worker
  order**, so reductions performed by the parent are deterministic.
* :class:`~repro.parallel.shm.SharedArrays` — named
  ``multiprocessing.shared_memory`` segments wrapping the stages'
  preallocated NumPy buffers.  The parent writes inputs (positions, the
  density field, router cost lines) once per evaluation; workers slice
  their shard zero-copy and write results into disjoint output rows.

Consumers:

* ``repro.parallel.gp`` — bell-density window sweeps and WA/LSE
  wirelength value/gradient, sharded by node/net chunk
  (:class:`~repro.gp.placer.GlobalPlacer` engages it via
  ``GPConfig.workers``).
* ``repro.parallel.legal`` — Abacus row refinement (row-parallel) and
  Tetris assignment (fence-domain-parallel), via ``LegalConfig.workers``.
* ``repro.parallel.route`` — rip-up/reroute candidate searches over
  conflict-free offender batches, via ``GlobalRouter(workers=)``.

Determinism contract (gated by ``tests/test_parallel_equiv.py``):

* ``workers=1`` never constructs a pool — the serial hot paths run
  unchanged and stay bit-identical to the pre-parallel code.
* ``deterministic=True`` (default): workers only compute per-row
  results into row-ordered shared slabs; every floating-point
  *reduction* happens in the parent over the same operands in the same
  order as the serial code.  Placements are bit-identical for **any**
  worker count.
* ``deterministic=False`` ("fast" mode): workers reduce their own
  shard and the parent folds per-worker partials in fixed worker
  order.  Results are reproducible for a fixed worker count but may
  differ across worker counts by float-summation-order ulps.  Only the
  GP value/gradient reductions are affected; the legalization and
  routing parallel paths are exact by construction.
"""

from __future__ import annotations

import os

from .pool import RemoteTaskError, WorkerPool, drain_worker_cpu
from .shm import SharedArrays, attach_arrays

__all__ = [
    "RemoteTaskError",
    "SharedArrays",
    "WorkerPool",
    "attach_arrays",
    "chunk_ranges",
    "drain_worker_cpu",
    "logical_cores",
    "net_chunk_ranges",
    "physical_cores",
    "resolve_workers",
]


def logical_cores() -> int:
    """Logical CPUs available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def physical_cores() -> int:
    """Physical core count from ``/proc/cpuinfo`` (logical count fallback).

    Counts unique ``(physical id, core id)`` pairs so SMT siblings
    collapse; on hosts without /proc the logical count is returned.
    """
    try:
        pairs = set()
        phys = core = None
        with open("/proc/cpuinfo", encoding="utf-8") as fh:
            for line in fh:
                if line.startswith("physical id"):
                    phys = line.split(":", 1)[1].strip()
                elif line.startswith("core id"):
                    core = line.split(":", 1)[1].strip()
                elif not line.strip():
                    if phys is not None and core is not None:
                        pairs.add((phys, core))
                    phys = core = None
        if phys is not None and core is not None:
            pairs.add((phys, core))
        if pairs:
            return len(pairs)
    except OSError:
        pass
    return logical_cores()


def resolve_workers(value: int, *, env: bool = True) -> int:
    """Effective worker count for a config knob.

    ``value <= 0`` means "auto" (one worker per available logical CPU).
    ``value == 1`` — the untouched default — additionally consults the
    ``REPRO_WORKERS`` environment variable so whole test/CI matrices can
    opt in without threading a flag through every construction site.
    Explicit ``value > 1`` wins over the environment.

    ``env=False`` pins the count to ``value`` itself (still with the
    ``<= 0`` auto rule) and never reads ``REPRO_WORKERS``.  Multi-job
    hosts need this: a serve worker running four concurrent jobs must
    not have each job silently fan out to every core because the server
    process happened to inherit ``REPRO_WORKERS=8``.  Configs expose it
    as ``workers_pinned``.
    """
    if value <= 0:
        return max(1, logical_cores())
    if value == 1 and env:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if raw:
            try:
                parsed = int(raw)
            except ValueError:
                return 1
            if parsed <= 0:
                return max(1, logical_cores())
            return parsed
    return int(value)


def chunk_ranges(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into at most ``parts`` contiguous non-empty chunks."""
    parts = max(1, min(parts, n))
    if n <= 0:
        return []
    base, extra = divmod(n, parts)
    out = []
    lo = 0
    for p in range(parts):
        hi = lo + base + (1 if p < extra else 0)
        out.append((lo, hi))
        lo = hi
    return out


def net_chunk_ranges(cstarts, parts: int) -> list[tuple[int, int]]:
    """Net-boundary-aligned chunks of a compacted pin array.

    ``cstarts`` is the CSR-style offset array (length num_nets+1) of the
    active-net compaction; each returned ``(n0, n1)`` is a contiguous
    net range whose pins ``cstarts[n0]:cstarts[n1]`` form the shard.
    Chunks are balanced by pin count, never split a net, and are all
    non-empty.
    """
    num_nets = len(cstarts) - 1
    if num_nets <= 0:
        return []
    parts = max(1, min(parts, num_nets))
    total = int(cstarts[-1])
    out = []
    n0 = 0
    for p in range(parts):
        if n0 >= num_nets:
            break
        if p == parts - 1:
            n1 = num_nets
        else:
            target = int(cstarts[n0]) + max(
                1, (total - int(cstarts[n0])) // (parts - p)
            )
            n1 = n0 + 1
            while n1 < num_nets and int(cstarts[n1]) < target:
                n1 += 1
        out.append((n0, n1))
        n0 = n1
    return out
