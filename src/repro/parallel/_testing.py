"""Tiny task functions exercised by the pool/shm lifecycle tests."""

from __future__ import annotations

import os

import numpy as np

from .shm import attach_arrays


def echo(state, payload):
    return (state["worker_id"], payload)


def attach(state, payload):
    arrays, segments = attach_arrays(
        payload["specs"], unregister=payload.get("unregister", False)
    )
    state["arrays"] = arrays
    state.setdefault("_segments", []).extend(segments)
    return sorted(arrays)


def fill_row(state, payload):
    row = payload["row"]
    arr = state["arrays"][payload["name"]]
    arr[row, :] = np.arange(arr.shape[1]) + row
    return float(arr[row].sum())


def boom(state, payload):
    raise payload.get("kind", RuntimeError)(payload.get("message", "boom"))


def burn(state, payload):
    """Consume a measurable amount of CPU (worker-CPU accounting tests)."""
    acc = 0.0
    for i in range(int(payload.get("n", 200_000))):
        acc += i * 0.5
    return acc


def pid(state, payload):
    return os.getpid()
