"""Shared-memory parallel GP density and wirelength evaluation.

The placer's two hot kernels shard cleanly:

* **Bell density** — every small-node window row is independent
  (:meth:`~repro.density.bell.BellDensity._small_window` /
  ``_small_grad``).  Each worker owns a contiguous chunk of the small
  nodes and a :class:`~repro.density.bell.BellDensity` *chunk clone*
  whose per-node coefficient tables are the parent's rows sliced to the
  chunk, so the worker computes exactly the rows the serial sweep would.
* **WA/LSE wirelength** — pins shard on net boundaries; a chunk clone of
  the model carries net-localized ``pin_net``/``cstarts`` so the
  ``reduceat`` reductions reproduce the serial per-net values bitwise.

Deterministic mode (default): workers write per-row results
(window contributions, per-net axis values, per-pin gradients) into
row-ordered shared slabs and the parent performs the *same* final
reductions as the serial code — one flattened ``np.bincount`` for the
field, one ``np.sum(weights * (vx + vy))`` for the value, one
``wpin``-weighted ``np.bincount`` per gradient axis — over operand
arrays whose contents are bit-equal to the serial buffers.  Placements
are therefore bit-identical to ``workers=1`` for any worker count.

Fast mode (``deterministic=False``): workers additionally reduce their
own shard (partial field bincount, partial value sum, partial node-
gradient bincount) and the parent folds the per-worker partials in
worker order — one large reduction less per evaluation, reproducible
per worker count but not across worker counts.

The large-node (macro) path and the fence/guard logic stay in the
parent: macros are few and their batched path is already cheap.
"""

from __future__ import annotations

import numpy as np

from .pool import WorkerPool
from .shm import SharedArrays, attach_arrays

_SETUP = "repro.parallel.gp:gp_setup"
_DENS_PROBE = "repro.parallel.gp:density_probe"
_DENS_GRAD = "repro.parallel.gp:density_grad"
_DENS_AREAS = "repro.parallel.gp:density_set_areas"
_WL_PROBE = "repro.parallel.gp:wl_probe"
_WL_GRAD = "repro.parallel.gp:wl_grad"
_WL_REBIND = "repro.parallel.gp:wl_rebind"


# ----------------------------------------------------------------------
# worker-side task functions
# ----------------------------------------------------------------------
def _build_density_chunk(p):
    """A BellDensity clone evaluating only one chunk of the small nodes."""
    from repro.density.bell import BellDensity

    d = BellDensity.__new__(BellDensity)
    d.grid = p["grid"]
    d.reference = False
    d.num_nodes = p["num_nodes"]
    d.areas = p["areas"]
    d._small = p["small"]
    d._kx = p["kx"]
    d._ky = p["ky"]
    for key in ("_sm_rx", "_sm_ry", "_sm_r1", "_sm_r2",
                "_sm_a", "_sm_b", "_sm_m2a", "_sm_b2"):
        setattr(d, key, p[key])
    d._lg_idx = np.empty(0, dtype=np.int64)
    d._large = d._lg_idx
    d._bufs = {}
    d._aranges = {}
    d._areas_small = None
    d._target_cache = None
    d._probe = None
    return d


def _build_wl_chunk(p):
    """A wirelength-model clone evaluating only one chunk of the nets."""
    from repro.wirelength.smooth import LogSumExp, WeightedAverage

    cls = WeightedAverage if p["kind"] == "wa" else LogSumExp
    m = cls.__new__(cls)
    m.num_nodes = p["num_nodes"]
    m.gamma = p["gamma"]
    m.reference = False
    m._starts = p["starts"]
    m._weights = p["weights"]
    m._pin_net = p["pin_net"]
    m._cstarts = p["cstarts"]
    m._pin_node = p["pin_node"]
    m._pin_dx = p["pin_dx"]
    m._pin_dy = p["pin_dy"]
    m._wpin = p["wpin"]
    m._bufs = {}
    m._probe = None
    return m


def gp_setup(state, payload):
    arrays, segments = attach_arrays(
        payload["specs"], unregister=payload["unregister"]
    )
    state["arrays"] = arrays
    state.setdefault("_segments", []).extend(segments)
    state["det"] = payload["deterministic"]
    state["grid_shape"] = payload["grid_shape"]
    dp = payload["density"]
    state["density"] = _build_density_chunk(dp) if dp is not None else None
    state["dens_range"] = dp["slab_range"] if dp is not None else None
    wp = payload["wl"]
    state["wl"] = _build_wl_chunk(wp) if wp is not None else None
    state["wl_ranges"] = (wp["net_range"], wp["pin_range"]) if wp else None
    return True


def density_probe(state, payload):
    d = state["density"]
    shm = state["arrays"]
    lo, hi = state["dens_range"]
    flat, px, dpx, py, dpy, norm, contrib = d._small_window(shm["cx"], shm["cy"])
    state["dens_tables"] = (d._small, flat, px, dpx, py, dpy, norm)
    if state["det"]:
        shm["dens_flat"][lo:hi] = flat
        shm["dens_contrib"][lo:hi] = contrib
    else:
        nx, ny = state["grid_shape"]
        shm["dens_phi"][state["worker_id"]] = np.bincount(
            flat.reshape(-1), weights=contrib.reshape(-1), minlength=nx * ny
        )
    return True


def density_grad(state, payload):
    d = state["density"]
    shm = state["arrays"]
    lo, hi = state["dens_range"]
    t1x, t1y = d._small_grad(shm["psi"], state["dens_tables"])
    shm["dens_gx"][lo:hi] = t1x
    shm["dens_gy"][lo:hi] = t1y
    return True


def density_set_areas(state, payload):
    d = state["density"]
    if d is not None:
        d.areas = payload["areas"]
        d._areas_small = None
    return True


def wl_probe(state, payload):
    m = state["wl"]
    m.gamma = payload["gamma"]
    shm = state["arrays"]
    (n0, n1), _ = state["wl_ranges"]
    n = len(m._pin_node)
    px = m._buf("px", (n,))
    py = m._buf("py", (n,))
    np.take(shm["cx"], m._pin_node, out=px)
    px += m._pin_dx
    np.take(shm["cy"], m._pin_node, out=py)
    py += m._pin_dy
    vx, st_x = m._axis_value_fast(px, "x")
    vy, st_y = m._axis_value_fast(py, "y")
    state["wl_state"] = (st_x, st_y)
    if state["det"]:
        shm["wl_vx"][n0:n1] = vx
        shm["wl_vy"][n0:n1] = vy
        return True
    return float(np.sum(m._weights * (vx + vy)))


def wl_grad(state, payload):
    m = state["wl"]
    shm = state["arrays"]
    _, (p0, p1) = state["wl_ranges"]
    st_x, st_y = state["wl_state"]
    gx = m._axis_grad_fast(st_x, "x")
    gy = m._axis_grad_fast(st_y, "y")
    if state["det"]:
        shm["wl_gx"][p0:p1] = gx
        shm["wl_gy"][p0:p1] = gy
        return True
    w = state["worker_id"]
    n = len(m._pin_node)
    scatter = m._buf("scatter", (n,))
    np.multiply(m._wpin, gx, out=scatter)
    shm["wl_nodeg"][w, 0] = np.bincount(
        m._pin_node, weights=scatter, minlength=m.num_nodes
    )
    np.multiply(m._wpin, gy, out=scatter)
    shm["wl_nodeg"][w, 1] = np.bincount(
        m._pin_node, weights=scatter, minlength=m.num_nodes
    )
    return True


def wl_rebind(state, payload):
    m = state["wl"]
    if m is not None:
        m._pin_node = payload["pin_node"]
        m._pin_dx = payload["pin_dx"]
        m._pin_dy = payload["pin_dy"]
    return True


# ----------------------------------------------------------------------
# parent-side wrappers
# ----------------------------------------------------------------------
class ParallelDensity:
    """Drop-in BellDensity facade fanning small-node sweeps to workers."""

    def __init__(self, inner, ctx):
        self._inner = inner
        self._ctx = ctx
        self._probe_state = None

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def set_areas(self, areas) -> None:
        self._inner.set_areas(areas)
        self._ctx.pool.broadcast(_DENS_AREAS, {"areas": np.asarray(areas, float)})

    def value_probe(self, cx, cy) -> float:
        ctx = self._ctx
        inner = self._inner
        grid = inner.grid
        np.copyto(ctx.shm["cx"], cx)
        np.copyto(ctx.shm["cy"], cy)
        ctx.pool.run(_DENS_PROBE, ctx.dens_payloads)
        if ctx.deterministic:
            phi = np.bincount(
                ctx.shm["dens_flat"].reshape(-1),
                weights=ctx.shm["dens_contrib"].reshape(-1),
                minlength=grid.nx * grid.ny,
            ).reshape(grid.nx, grid.ny)
        else:
            acc = np.zeros(grid.nx * grid.ny)
            for w in ctx.dens_workers:
                acc += ctx.shm["dens_phi"][w]
            phi = acc.reshape(grid.nx, grid.ny)
        large_tables = inner._large_batch(phi, cx, cy)
        psi = phi - inner.target()
        self._probe_state = (psi, large_tables)
        return float(np.sum(psi * psi))

    def finish_grad(self):
        ctx = self._ctx
        inner = self._inner
        psi, large_tables = self._probe_state
        np.copyto(ctx.shm["psi"], psi)
        ctx.pool.run(_DENS_GRAD, ctx.task_payloads(ctx.dens_workers))
        grad_x, grad_y = inner._grad_from_tables(psi, None, large_tables)
        grad_x[inner._small] = ctx.shm["dens_gx"]
        grad_y[inner._small] = ctx.shm["dens_gy"]
        return grad_x, grad_y

    def value_grad(self, cx, cy):
        value = self.value_probe(cx, cy)
        grad_x, grad_y = self.finish_grad()
        return value, grad_x, grad_y

    def value(self, cx, cy) -> float:
        return self._inner.value(cx, cy)


class ParallelWirelength:
    """Drop-in SmoothWirelength facade fanning net chunks to workers."""

    def __init__(self, inner, ctx):
        self._inner = inner
        self._ctx = ctx
        self._disabled = False

    def __getattr__(self, name):
        return getattr(self._inner, name)

    @property
    def gamma(self) -> float:
        return self._inner.gamma

    @gamma.setter
    def gamma(self, value: float) -> None:
        self._inner.gamma = float(value)

    def rebind(self, arrays):
        inner = self._inner
        old_ptr = inner.arrays.net_ptr
        inner.rebind(arrays)
        same = arrays.net_ptr is old_ptr or np.array_equal(arrays.net_ptr, old_ptr)
        if not same:
            # Topology changed: chunk boundaries and slab sizes no longer
            # line up, so quietly fall back to the serial model.  Never
            # hit by the placer (orientation passes keep the netlist).
            self._disabled = True
            return self
        ctx = self._ctx
        payloads = []
        for rng in ctx.wl_chunks:
            if rng is None:
                payloads.append(None)
                continue
            _n, (p0, p1) = rng
            payloads.append(
                {
                    "pin_node": inner._pin_node[p0:p1],
                    "pin_dx": inner._pin_dx[p0:p1],
                    "pin_dy": inner._pin_dy[p0:p1],
                }
            )
        ctx.pool.run(_WL_REBIND, payloads)
        return self

    def value_probe(self, cx, cy) -> float:
        inner = self._inner
        if self._disabled or len(inner._starts) == 0:
            return inner.value_probe(cx, cy)
        ctx = self._ctx
        np.copyto(ctx.shm["cx"], cx)
        np.copyto(ctx.shm["cy"], cy)
        payload = {"gamma": inner.gamma}
        results = ctx.pool.run(
            _WL_PROBE, ctx.task_payloads(ctx.wl_workers, payload)
        )
        inner._probe = None  # parent-side finish uses worker state instead
        if ctx.deterministic:
            return float(
                np.sum(inner._weights * (ctx.shm["wl_vx"] + ctx.shm["wl_vy"]))
            )
        acc = 0.0
        for w in ctx.wl_workers:
            acc += results[w]
        return acc

    def finish_grad(self):
        inner = self._inner
        if self._disabled or len(inner._starts) == 0:
            return inner.finish_grad()
        ctx = self._ctx
        ctx.pool.run(_WL_GRAD, ctx.task_payloads(ctx.wl_workers))
        if ctx.deterministic:
            n = len(inner._pin_node)
            scatter = inner._buf("scatter", (n,))
            np.multiply(inner._wpin, ctx.shm["wl_gx"], out=scatter)
            grad_x = np.bincount(
                inner._pin_node, weights=scatter, minlength=inner.num_nodes
            )
            np.multiply(inner._wpin, ctx.shm["wl_gy"], out=scatter)
            grad_y = np.bincount(
                inner._pin_node, weights=scatter, minlength=inner.num_nodes
            )
            return grad_x, grad_y
        grad_x = np.zeros(inner.num_nodes)
        grad_y = np.zeros(inner.num_nodes)
        for w in ctx.wl_workers:
            grad_x += ctx.shm["wl_nodeg"][w, 0]
            grad_y += ctx.shm["wl_nodeg"][w, 1]
        return grad_x, grad_y

    def value_grad(self, cx, cy):
        if self._disabled or len(self._inner._starts) == 0:
            return self._inner.value_grad(cx, cy)
        value = self.value_probe(cx, cy)
        grad_x, grad_y = self.finish_grad()
        return value, grad_x, grad_y

    def value(self, cx, cy) -> float:
        return self._inner.value(cx, cy)


class ParallelGP:
    """Pool + shared buffers backing one placer descent."""

    def __init__(self, pool, shm, *, deterministic, dens_chunks, wl_chunks):
        self.pool = pool
        self.shm = shm
        self.deterministic = deterministic
        self.dens_chunks = dens_chunks  # per-worker (lo, hi) or None
        self.wl_chunks = wl_chunks      # per-worker ((n0, n1), (p0, p1)) or None
        self.dens_workers = [w for w, c in enumerate(dens_chunks) if c is not None]
        self.wl_workers = [w for w, c in enumerate(wl_chunks) if c is not None]
        self.density: ParallelDensity | None = None
        self.wl_model: ParallelWirelength | None = None

    def task_payloads(self, workers, payload=None):
        out = [None] * self.pool.workers
        for w in workers:
            out[w] = payload if payload is not None else {}
        return out

    @property
    def dens_payloads(self):
        return self.task_payloads(self.dens_workers)

    def close(self) -> None:
        try:
            self.pool.close()
        finally:
            self.shm.close()

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, density, wl_model, *, workers: int, deterministic: bool,
               kind: str, label: str = "gp"):
        """Build the pool/buffers; ``None`` when sharding can't help.

        ``density``/``wl_model`` are the placer's serial (optimized,
        non-reference) instances; the returned context's ``.density`` /
        ``.wl_model`` facades replace whichever of them sharded.
        """
        from . import chunk_ranges, net_chunk_ranges

        n_small = len(density._small)
        num_nets = len(wl_model._starts)
        par_dens = n_small >= 2 * workers
        par_wl = num_nets >= 2 * workers
        if not par_dens and not par_wl:
            return None

        grid = density.grid
        num_nodes = density.num_nodes
        shm = SharedArrays()
        pool = None
        try:
            shm.add("cx", (num_nodes,))
            shm.add("cy", (num_nodes,))
            shm.add("psi", (grid.nx, grid.ny))
            dens_ranges = []
            if par_dens:
                dens_ranges = chunk_ranges(n_small, workers)
                shm.add("dens_gx", (n_small,))
                shm.add("dens_gy", (n_small,))
                if deterministic:
                    shm.add(
                        "dens_flat", (n_small, density._kx, density._ky), np.int64
                    )
                    shm.add("dens_contrib", (n_small, density._kx, density._ky))
                else:
                    shm.add("dens_phi", (workers, grid.nx * grid.ny))
            wl_ranges = []
            num_pins = len(wl_model._pin_node)
            # reduceat offsets lack the terminal sentinel; append it so
            # chunking can slice pins by net range.
            cst = np.concatenate(
                [wl_model._cstarts, [num_pins]]
            ).astype(np.int64)
            if par_wl:
                wl_ranges = net_chunk_ranges(cst, workers)
                if deterministic:
                    shm.add("wl_vx", (num_nets,))
                    shm.add("wl_vy", (num_nets,))
                    shm.add("wl_gx", (num_pins,))
                    shm.add("wl_gy", (num_pins,))
                else:
                    shm.add("wl_nodeg", (workers, 2, num_nodes))

            pool = WorkerPool(workers, label=label)
            specs = shm.specs()
            payloads = []
            dens_chunks: list = [None] * workers
            wl_chunks: list = [None] * workers
            for w in range(workers):
                dp = None
                if w < len(dens_ranges):
                    lo, hi = dens_ranges[w]
                    dens_chunks[w] = (lo, hi)
                    dp = {
                        "grid": grid,
                        "num_nodes": num_nodes,
                        "areas": density.areas,
                        "small": density._small[lo:hi],
                        "kx": density._kx,
                        "ky": density._ky,
                        "slab_range": (lo, hi),
                    }
                    for key in ("_sm_rx", "_sm_ry", "_sm_r1", "_sm_r2",
                                "_sm_a", "_sm_b", "_sm_m2a", "_sm_b2"):
                        dp[key] = getattr(density, key)[lo:hi]
                wp = None
                if w < len(wl_ranges):
                    n0, n1 = wl_ranges[w]
                    p0, p1 = int(cst[n0]), int(cst[n1])
                    wl_chunks[w] = ((n0, n1), (p0, p1))
                    wp = {
                        "kind": kind,
                        "num_nodes": num_nodes,
                        "gamma": wl_model.gamma,
                        "starts": wl_model._starts[n0:n1],
                        "weights": wl_model._weights[n0:n1],
                        # Chunk-local net ids / reduceat offsets: the
                        # chunk's first net becomes net 0, its first pin
                        # offset 0, so per-net reductions see exactly
                        # the serial operand slices.
                        "pin_net": wl_model._pin_net[p0:p1] - n0,
                        "cstarts": wl_model._cstarts[n0:n1] - int(cst[n0]),
                        "pin_node": wl_model._pin_node[p0:p1],
                        "pin_dx": wl_model._pin_dx[p0:p1],
                        "pin_dy": wl_model._pin_dy[p0:p1],
                        "wpin": wl_model._wpin[p0:p1],
                        "net_range": (n0, n1),
                        "pin_range": (p0, p1),
                    }
                payloads.append(
                    {
                        "specs": specs,
                        "unregister": pool.attach_unregister,
                        "deterministic": deterministic,
                        "grid_shape": (grid.nx, grid.ny),
                        "density": dp,
                        "wl": wp,
                    }
                )
            pool.run(_SETUP, payloads)
        except BaseException:
            if pool is not None:
                pool.close()
            shm.close()
            raise

        ctx = cls(
            pool, shm,
            deterministic=deterministic,
            dens_chunks=dens_chunks,
            wl_chunks=wl_chunks,
        )
        ctx.density = ParallelDensity(density, ctx) if par_dens else density
        ctx.wl_model = ParallelWirelength(wl_model, ctx) if par_wl else wl_model
        return ctx
