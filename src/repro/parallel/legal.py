"""Row- and domain-parallel legalization over a :class:`WorkerPool`.

Two independent units of work exist in the legalization stage:

* **Abacus rows** — the cluster recurrence of each populated sub-row
  depends only on that row's cells, so rows shard freely.  Workers map
  :func:`repro.legal.abacus._refine_row` (the exact function the serial
  loop calls) over contiguous row chunks; the parent applies results in
  sub-row order and accumulates per-cell displacements in the same
  sequence as the serial loop, so the placement *and* the returned
  scalar are bit-identical.
* **Tetris fence domains** — a cell only reads and writes the tails and
  stranding budgets of its own fence domain's sub-rows, so the global
  x-order loop decomposes into independent per-domain loops
  (:func:`repro.legal.tetris._assign_domain`).  Stranding budgets are
  computed once in the parent from the full cell population.  Designs
  with fewer than two populated domains return ``None`` and the caller
  runs the serial path.

Payloads here are small (row targets, cell tuples) relative to the row
recurrences they unlock, so tasks travel over the pool pipes instead of
shared memory.
"""

from __future__ import annotations

from repro.parallel import RemoteTaskError, chunk_ranges

_ABACUS_TASK = "repro.parallel.legal:abacus_rows"
_TETRIS_TASK = "repro.parallel.legal:tetris_domains"


# --------------------------------------------------------------------------
# Worker tasks


def abacus_rows(state, payload):
    """Refine a chunk of sub-rows; returns one ``(order, xs, disps)`` each."""
    from repro.legal.abacus import _refine_row

    return [
        _refine_row(tgt, widths, x_min, x_max, site_width)
        for tgt, widths, x_min, x_max, site_width in payload["rows"]
    ]


def tetris_domains(state, payload):
    """Assign a chunk of fence domains; returns per-domain placements.

    A ``RuntimeError`` (capacity exhaustion) propagates to the parent as
    a :class:`RemoteTaskError` with ``kind == "RuntimeError"``; the
    parent re-raises it as a plain ``RuntimeError`` so the caller's
    pack-only retry engages unchanged.
    """
    from repro.legal.tetris import _assign_domain

    row_probe = payload["row_probe"]
    pack_only = payload["pack_only"]
    return [
        _assign_domain(
            d["cells"],
            d["ys"],
            d["xmin"],
            d["xmax"],
            d["site"],
            d["budgets"],
            row_probe,
            pack_only,
        )
        for d in payload["domains"]
    ]


# --------------------------------------------------------------------------
# Parent orchestration


def abacus_refine_parallel(design, submap, desired_x, pool) -> float:
    """Shard :func:`repro.legal.abacus.abacus_refine` rows across workers."""
    from repro.legal.abacus import _apply_row, _refine_row

    rows = []
    row_srs = []
    for sr in submap.subrows:
        if not sr.cells:
            continue
        nodes = [design.nodes[i] for i in sr.cells]
        tgt = [
            (desired_x.get(n.index, n.x) if desired_x else n.x) for n in nodes
        ]
        widths = [n.placed_width for n in nodes]
        rows.append((tgt, widths, sr.x_min, sr.x_max, sr.site_width))
        row_srs.append(sr)

    if len(rows) < 2 * pool.workers:
        refined = [_refine_row(*row) for row in rows]
    else:
        ranges = chunk_ranges(len(rows), pool.workers)
        payloads: list = [None] * pool.workers
        for w, (lo, hi) in enumerate(ranges):
            payloads[w] = {"rows": rows[lo:hi]}
        results = pool.run(_ABACUS_TASK, payloads)
        refined = []
        for w in range(len(ranges)):
            refined.extend(results[w])

    total_disp = 0.0
    for sr, (order, xs_out, disps) in zip(row_srs, refined):
        _apply_row(design, sr, order, xs_out)
        for d in disps:
            total_disp += d
    return total_disp


def tetris_assign_parallel(design, submap, row_probe, pack_only, pool):
    """Shard Tetris assignment by fence domain; ``None`` if < 2 domains.

    Nothing is written to the design until every worker has answered, so
    a capacity-exhaustion failure leaves the placement untouched for the
    caller's snapshot-restore + pack-only retry.
    """
    from repro.legal.tetris import _sorted_cells, _stranding_budgets

    cells = _sorted_cells(design)
    budgets_by_id = _stranding_budgets(submap, cells)

    # Cells per region, preserving global x order within each region.
    by_region: dict = {}
    for n in cells:
        by_region.setdefault(n.region, []).append(n)
    regions = list(by_region)
    if len(regions) < 2:
        return None
    if any(not submap.for_region(r) for r in regions):
        # A populated region without sub-rows: let the serial loop raise
        # its per-cell capacity error verbatim.
        return None

    domains = []
    for region in regions:
        dom = submap.for_region(region)
        nodes = by_region[region]
        domains.append(
            {
                "region": region,
                "dom": dom,
                "nodes": nodes,
                "payload": {
                    "cells": [
                        (n.x, n.y, n.placed_width, n.name) for n in nodes
                    ],
                    "ys": [sr.y for sr in dom],
                    "xmin": [sr.x_min for sr in dom],
                    "xmax": [sr.x_max for sr in dom],
                    "site": [sr.site_width for sr in dom],
                    "budgets": [budgets_by_id[id(sr)] for sr in dom],
                },
            }
        )
    # Largest domains first, round-robin over workers, keeps shards even.
    order = sorted(
        range(len(domains)), key=lambda i: -len(domains[i]["nodes"])
    )
    shards: list = [[] for _ in range(pool.workers)]
    for pos, i in enumerate(order):
        shards[pos % pool.workers].append(i)

    payloads: list = [None] * pool.workers
    for w, idxs in enumerate(shards):
        if idxs:
            payloads[w] = {
                "row_probe": row_probe,
                "pack_only": pack_only,
                "domains": [domains[i]["payload"] for i in idxs],
            }
    try:
        results = pool.run(_TETRIS_TASK, payloads)
    except RemoteTaskError as exc:
        if exc.kind == "RuntimeError":
            raise RuntimeError(str(exc)) from exc
        raise

    # Cells of unplaceable kinds never reach _sorted_cells, so every
    # region with cells has a sub-row list here; apply per domain.  All
    # cells landing in one sub-row come from one domain in x order, so
    # sr.cells matches the serial interleaved loop exactly.
    for w, idxs in enumerate(shards):
        if not idxs:
            continue
        for d_pos, i in enumerate(idxs):
            dom = domains[i]["dom"]
            nodes = domains[i]["nodes"]
            for node, (local_row, x) in zip(nodes, results[w][d_pos]):
                sr = dom[local_row]
                node.x = x
                node.y = sr.y
                sr.cells.append(node.index)
    return submap
