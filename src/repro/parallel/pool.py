"""Long-lived worker processes with deterministic ordered gather.

One :class:`WorkerPool` is created per parallel stage (GP descent,
legalization, routing) and reused for every task round inside it, so
process startup is paid once.  Tasks are module-level functions named
``"package.module:function"`` called as ``fn(state, payload)`` — the
``state`` dict persists inside the worker between tasks, which lets a
setup task attach shared memory and build per-shard model clones that
later tasks reuse.

Replies are always collected **in worker order**, so any parent-side
fold over per-worker results is deterministic for a fixed worker count.
Per-task child CPU seconds ride back with every reply and accumulate in
a module registry keyed by pool label; :func:`drain_worker_cpu` hands
them to the sampling profiler as ``workers[*]`` rows (satellite: child
CPU time is otherwise invisible to the parent's ``time.process_time``).
"""

from __future__ import annotations

import importlib
import multiprocessing as mp
import threading
import time
import traceback

_EXIT = "__exit__"

_cpu_lock = threading.Lock()
_cpu_by_label: dict[str, float] = {}


def _record_cpu(label: str, seconds: float) -> None:
    if seconds <= 0:
        return
    with _cpu_lock:
        _cpu_by_label[label] = _cpu_by_label.get(label, 0.0) + seconds


def drain_worker_cpu() -> dict[str, float]:
    """Worker CPU seconds accumulated per pool label since the last drain."""
    with _cpu_lock:
        out = dict(_cpu_by_label)
        _cpu_by_label.clear()
    return out


class RemoteTaskError(RuntimeError):
    """A task raised inside a worker; carries the remote type and traceback."""

    def __init__(self, kind: str, message: str, remote_traceback: str = ""):
        super().__init__(f"worker task failed: {kind}: {message}")
        self.kind = kind
        self.remote_traceback = remote_traceback


def _resolve_task(cache: dict, name: str):
    fn = cache.get(name)
    if fn is None:
        module, _, attr = name.partition(":")
        fn = getattr(importlib.import_module(module), attr)
        cache[name] = fn
    return fn


def _worker_main(worker_id: int, conn) -> None:
    state: dict = {"worker_id": worker_id}
    cache: dict = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == _EXIT:
            break
        _, fn_name, payload = msg
        cpu0 = time.process_time()
        try:
            result = _resolve_task(cache, fn_name)(state, payload)
            reply = ("ok", result, time.process_time() - cpu0)
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            reply = (
                "err",
                type(exc).__name__,
                str(exc),
                traceback.format_exc(),
                time.process_time() - cpu0,
            )
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    for seg in state.get("_segments", ()):
        try:
            seg.close()
        except Exception:
            pass
    try:
        conn.close()
    except OSError:
        pass


class WorkerPool:
    """A fixed set of worker processes addressed by index."""

    def __init__(self, workers: int, *, label: str = "parallel"):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.label = label
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        self._conns = []
        self._procs = []
        self._closed = False
        try:
            for w in range(workers):
                parent_conn, child_conn = self._ctx.Pipe(duplex=True)
                proc = self._ctx.Process(
                    target=_worker_main,
                    args=(w, child_conn),
                    name=f"repro-{label}-{w}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
        except BaseException:
            self.close()
            raise

    @property
    def workers(self) -> int:
        return len(self._procs)

    @property
    def start_method(self) -> str:
        return self._ctx.get_start_method()

    @property
    def attach_unregister(self) -> bool:
        """Value for :func:`repro.parallel.shm.attach_arrays` in workers.

        Spawn-started workers own a private resource tracker and must
        unregister attached segments; fork-started workers share the
        parent's tracker and must not.
        """
        return self.start_method != "fork"

    def _recv(self, worker_id: int):
        try:
            return self._conns[worker_id].recv()
        except (EOFError, OSError) as exc:
            raise RuntimeError(
                f"{self.label} worker {worker_id} died mid-task"
            ) from exc

    def run(self, fn_name: str, payloads) -> list:
        """Send one task per worker and gather replies in worker order.

        ``payloads`` has one entry per worker; a ``None`` entry skips
        that worker (its result slot is ``None``).  The first remote
        failure is re-raised as :class:`RemoteTaskError` after all
        outstanding replies are drained, so the pipes stay in sync.
        """
        if len(payloads) > self.workers:
            raise ValueError(
                f"{len(payloads)} payloads for {self.workers} workers"
            )
        active = []
        for w, payload in enumerate(payloads):
            if payload is None:
                continue
            self._conns[w].send(("task", fn_name, payload))
            active.append(w)
        results: list = [None] * len(payloads)
        failure: RemoteTaskError | None = None
        for w in active:
            reply = self._recv(w)
            if reply[0] == "ok":
                results[w] = reply[1]
                _record_cpu(self.label, reply[2])
            else:
                _record_cpu(self.label, reply[4])
                if failure is None:
                    failure = RemoteTaskError(reply[1], reply[2], reply[3])
        if failure is not None:
            raise failure
        return results

    def broadcast(self, fn_name: str, payload) -> list:
        """Run the same task (same payload) on every worker."""
        return self.run(fn_name, [payload] * self.workers)

    def close(self) -> None:
        """Shut every worker down (idempotent, exception-safe)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send((_EXIT,))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._conns = []
        self._procs = []

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
