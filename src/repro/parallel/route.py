"""Net-parallel rip-up/re-route searches over a :class:`WorkerPool`.

The serial negotiation loop in :meth:`GlobalRouter._reroute_offenders`
rips one offender, refreshes the cost lines its route touched, searches
(Z + optional maze) and commits — each offender sees every earlier
commitment.  This module runs the *searches* in parallel without
changing a single resulting route:

* An offender's reads and writes are confined to the cost/prefix/usage
  **lines** (east-edge rows, north-edge columns) inside its influence
  rectangle — the bounding box of its endpoints and current route,
  expanded by the maze window margin when mazing.  Offenders whose
  rectangles are disjoint in *both* the x and the y projection touch no
  common line, so their serial iterations are independent.
* Batches are the maximal **prefix** of the serial offender order whose
  rectangles are pairwise projection-disjoint.  Workers search their
  offenders against a synced snapshot plus a local simulation of their
  own rip; the parent then replays rip → commit in serial order.  A
  batch of one skips the pool and runs the verbatim serial body.
* The parent keeps the canonical ``cost/pe/pn`` arrays in shared
  memory and refreshes dirtied lines before each batch; workers carry
  private copies, re-syncing exactly the lines the parent refreshed
  since their last task (tracked per worker).

Because batch membership depends only on the offender order and their
rectangles, results are bit-identical to the serial loop for **any**
worker count — this path has no ``deterministic=False`` variant.
"""

from __future__ import annotations

import numpy as np

from repro.parallel import SharedArrays, attach_arrays, chunk_ranges
from repro.route.maze import maze_route
from repro.route.pattern import best_z_route, prefix_costs, runs_cost

_SETUP = "repro.parallel.route:route_setup"
_BEGIN = "repro.parallel.route:route_begin"
_SEARCH = "repro.parallel.route:route_search"

_HISTORY_WEIGHT = 1.0
_OVERFLOW_PENALTY = 8.0


# --------------------------------------------------------------------------
# Worker tasks


def route_setup(state, payload):
    """Attach the router's shared arrays and build local cost copies."""
    arrays, segments = attach_arrays(
        payload["specs"], unregister=payload["unregister"]
    )
    state.setdefault("_segments", []).extend(segments)
    state["r_shm"] = arrays
    state["r_nx"] = payload["nx"]
    state["r_ny"] = payload["ny"]
    state["r_local"] = {
        k: np.empty_like(arrays[k]) for k in ("cost_e", "cost_n", "pe", "pn")
    }
    state["r_safe_cap_e"] = np.maximum(arrays["cap_e"], 1e-12)
    state["r_safe_cap_n"] = np.maximum(arrays["cap_n"], 1e-12)
    state["r_blocked_e"] = np.where(arrays["cap_e"] <= 0, 1e6, 0.0)
    state["r_blocked_n"] = np.where(arrays["cap_n"] <= 0, 1e6, 0.0)
    return True


def route_begin(state, payload):
    """Full local sync at a ``_reroute_offenders`` entry."""
    shm = state["r_shm"]
    local = state["r_local"]
    for k in ("cost_e", "cost_n", "pe", "pn"):
        local[k][...] = shm[k]
    return True


def _local_rip_line_h(state, j, intervals):
    """Recompute east row ``j`` with this offender's runs ripped."""
    shm = state["r_shm"]
    local = state["r_local"]
    u = np.array(shm["use_e"][:, j])
    for lo, hi in intervals:
        if hi > lo:
            u[lo:hi] -= 1.0
    util = (u + 1.0) / state["r_safe_cap_e"][:, j]
    over = np.maximum(util - 1.0, 0.0)
    base = 1.0 + np.minimum(util, 1.0) ** 2
    local["cost_e"][:, j] = (
        base
        + _HISTORY_WEIGHT * shm["history_e"][:, j]
        + _OVERFLOW_PENALTY * over
        + state["r_blocked_e"][:, j]
    )
    np.cumsum(local["cost_e"][:, j], out=local["pe"][1:, j])


def _local_rip_line_v(state, i, intervals):
    """Recompute north column ``i`` with this offender's runs ripped."""
    shm = state["r_shm"]
    local = state["r_local"]
    u = np.array(shm["use_n"][i, :])
    for lo, hi in intervals:
        if hi > lo:
            u[lo:hi] -= 1.0
    util = (u + 1.0) / state["r_safe_cap_n"][i, :]
    over = np.maximum(util - 1.0, 0.0)
    base = 1.0 + np.minimum(util, 1.0) ** 2
    local["cost_n"][i, :] = (
        base
        + _HISTORY_WEIGHT * shm["history_n"][i, :]
        + _OVERFLOW_PENALTY * over
        + state["r_blocked_n"][i, :]
    )
    np.cumsum(local["cost_n"][i, :], out=local["pn"][i, 1:])


def route_search(state, payload):
    """Search a chunk of a projection-disjoint offender batch.

    Shared usage/history reflect the state before the batch's first rip
    (earlier batch members touch none of this chunk's lines), so a local
    rip of each offender's own route reproduces the exact post-rip costs
    the serial loop would see.  Returns the chosen run list per
    offender; the parent replays rip/commit in serial order.
    """
    shm = state["r_shm"]
    local = state["r_local"]
    for j in payload["sync_h"]:
        local["cost_e"][:, j] = shm["cost_e"][:, j]
        local["pe"][:, j] = shm["pe"][:, j]
    for i in payload["sync_v"]:
        local["cost_n"][i, :] = shm["cost_n"][i, :]
        local["pn"][i, :] = shm["pn"][i, :]
    use_maze = payload["use_maze"]
    margin = payload["margin"]
    nx = state["r_nx"]
    ny = state["r_ny"]
    results = []
    for a, b, c, d, old_runs in payload["offenders"]:
        old_runs = [tuple(r) for r in old_runs]
        h_ivs: dict = {}
        v_ivs: dict = {}
        for kind, line, lo, hi in old_runs:
            (h_ivs if kind == "H" else v_ivs).setdefault(line, []).append((lo, hi))
        for j, ivs in h_ivs.items():
            _local_rip_line_h(state, j, ivs)
        for i, ivs in v_ivs.items():
            _local_rip_line_v(state, i, ivs)
        # The candidate search, verbatim from the serial loop.
        z_cost, z_runs = best_z_route(local["pe"], local["pn"], a, b, c, d)
        new_runs = z_runs
        if use_maze:
            window = (
                max(0, min(a, c) - margin),
                max(0, min(b, d) - margin),
                min(nx - 1, max(a, c) + margin),
                min(ny - 1, max(b, d) + margin),
            )
            m_cost, m_runs = maze_route(
                local["cost_e"], local["cost_n"], (a, b), (c, d), window
            )
            if m_runs is not None and m_cost < z_cost:
                new_runs = m_runs
        if runs_cost(local["pe"], local["pn"], old_runs) < runs_cost(
            local["pe"], local["pn"], new_runs
        ):
            new_runs = old_runs
        results.append(new_runs)
        # This offender's local lines are now post-rip-stale; the parent
        # adds every replayed line to our pending sync list, so they are
        # re-copied before our next task.
    return results


# --------------------------------------------------------------------------
# Parent orchestration


class ParallelRouter:
    """Pool + shared canonical cost state for one :class:`GridGraph`."""

    def __init__(self, pool, shm, graph):
        self.pool = pool
        self.shm = shm
        self.graph = graph
        # Lines refreshed in the canonical arrays since each worker's
        # last task — what that worker must re-copy before computing.
        self._pending = [(set(), set()) for _ in range(pool.workers)]

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, graph, workers: int, *, label: str = "route"):
        """Build the pool and swap the graph's state into shared memory.

        Returns ``None`` on degenerate grids (any zero-size edge array).
        The graph's ``use_*``/``history_*`` become shm-backed views, so
        the ordinary in-place bookkeeping (``add_*_run``,
        ``bump_history``) keeps the workers' view current for free.
        """
        if (
            graph.use_e.size == 0
            or graph.use_n.size == 0
            or graph.cap_e.size == 0
            or graph.cap_n.size == 0
        ):
            return None
        from repro.parallel import WorkerPool

        cost_e, cost_n = graph.cost_arrays()
        pe, pn = prefix_costs(cost_e, cost_n)
        shm = SharedArrays()
        pool = None
        try:
            for name, src in (
                ("use_e", graph.use_e),
                ("use_n", graph.use_n),
                ("history_e", graph.history_e),
                ("history_n", graph.history_n),
                ("cap_e", graph.cap_e),
                ("cap_n", graph.cap_n),
                ("cost_e", cost_e),
                ("cost_n", cost_n),
                ("pe", pe),
                ("pn", pn),
            ):
                shm.add_from(name, src)
            pool = WorkerPool(workers, label=label)
            pool.broadcast(
                _SETUP,
                {
                    "specs": shm.specs(),
                    "unregister": pool.attach_unregister,
                    "nx": graph.nx,
                    "ny": graph.ny,
                },
            )
        except BaseException:
            if pool is not None:
                pool.close()
            shm.close()
            raise
        graph.use_e = shm["use_e"]
        graph.use_n = shm["use_n"]
        graph.history_e = shm["history_e"]
        graph.history_n = shm["history_n"]
        return cls(pool, shm, graph)

    def close(self) -> None:
        """Shut workers down and re-home the graph's state off shm."""
        graph = self.graph
        graph.use_e = np.array(graph.use_e)
        graph.use_n = np.array(graph.use_n)
        graph.history_e = np.array(graph.history_e)
        graph.history_n = np.array(graph.history_n)
        self.pool.close()
        self.shm.close()

    # ------------------------------------------------------------------
    @staticmethod
    def _rect(a, b, c, d, runs, margin):
        """Influence rectangle: endpoints bbox ∪ route bbox, ± margin."""
        xlo, xhi = min(a, c), max(a, c)
        ylo, yhi = min(b, d), max(b, d)
        for kind, line, lo, hi in runs:
            if kind == "H":
                ylo = min(ylo, line)
                yhi = max(yhi, line)
                xlo = min(xlo, lo)
                xhi = max(xhi, hi)
            else:
                xlo = min(xlo, line)
                xhi = max(xhi, line)
                ylo = min(ylo, lo)
                yhi = max(yhi, hi)
        return xlo - margin, xhi + margin, ylo - margin, yhi + margin

    def reroute(
        self, routes, i0, j0, i1, j1, offenders, *, use_maze: bool, margin: int
    ) -> int:
        """The parallel twin of the serial incremental rip-up loop."""
        graph = self.graph
        cost_e = self.shm["cost_e"]
        cost_n = self.shm["cost_n"]
        pe = self.shm["pe"]
        pn = self.shm["pn"]
        # Fresh canonical costs at entry, exactly like the serial loop.
        ce, cn = graph.cost_arrays()
        cost_e[...] = ce
        cost_n[...] = cn
        fpe, fpn = prefix_costs(ce, cn)
        pe[...] = fpe
        pn[...] = fpn
        self.pool.broadcast(_BEGIN, {})
        for ph, pv in self._pending:
            ph.clear()
            pv.clear()
        dirty_h: set = set()
        dirty_v: set = set()
        rect_margin = margin if use_maze else 0
        rects = [
            self._rect(
                int(i0[s]), int(j0[s]), int(i1[s]), int(j1[s]),
                routes[s], rect_margin,
            )
            for s in offenders
        ]
        rerouted = 0
        idx = 0
        n = len(offenders)
        while idx < n:
            # Maximal prefix with pairwise projection-disjoint rects.
            end = idx + 1
            bx = [rects[idx][:2]]
            by = [rects[idx][2:]]
            while end < n:
                xlo, xhi, ylo, yhi = rects[end]
                if any(xlo <= x1 and x0 <= xhi for x0, x1 in bx) or any(
                    ylo <= y1 and y0 <= yhi for y0, y1 in by
                ):
                    break
                bx.append((xlo, xhi))
                by.append((ylo, yhi))
                end += 1
            batch = offenders[idx:end]
            idx = end
            if len(batch) == 1:
                self._serial_one(
                    routes, batch[0], i0, j0, i1, j1,
                    use_maze, margin, cost_e, cost_n, pe, pn,
                    dirty_h, dirty_v,
                )
                rerouted += 1
                continue
            if dirty_h or dirty_v:
                graph.refresh_cost_lines(cost_e, cost_n, pe, pn, dirty_h, dirty_v)
                for ph, pv in self._pending:
                    ph |= dirty_h
                    pv |= dirty_v
                dirty_h.clear()
                dirty_v.clear()
            ranges = chunk_ranges(len(batch), self.pool.workers)
            payloads: list = [None] * self.pool.workers
            for w, (lo, hi) in enumerate(ranges):
                ph, pv = self._pending[w]
                payloads[w] = {
                    "sync_h": sorted(ph),
                    "sync_v": sorted(pv),
                    "use_maze": use_maze,
                    "margin": margin,
                    "offenders": [
                        (int(i0[s]), int(j0[s]), int(i1[s]), int(j1[s]), routes[s])
                        for s in batch[lo:hi]
                    ],
                }
                ph.clear()
                pv.clear()
            results = self.pool.run(_SEARCH, payloads)
            chosen = []
            for w in range(len(ranges)):
                chosen.extend(results[w])
            # Replay rip → commit in the serial offender order.
            for s, new_runs in zip(batch, chosen):
                for kind, line, lo, hi in routes[s]:
                    if kind == "H":
                        graph.add_horizontal_run(line, lo, hi, -1.0)
                        dirty_h.add(line)
                    else:
                        graph.add_vertical_run(line, lo, hi, -1.0)
                        dirty_v.add(line)
                new_runs = [tuple(r) for r in new_runs]
                routes[s] = new_runs
                for kind, line, lo, hi in new_runs:
                    if kind == "H":
                        graph.add_horizontal_run(line, lo, hi)
                        dirty_h.add(line)
                    else:
                        graph.add_vertical_run(line, lo, hi)
                        dirty_v.add(line)
                rerouted += 1
        return rerouted

    def _serial_one(
        self, routes, s, i0, j0, i1, j1, use_maze, margin,
        cost_e, cost_n, pe, pn, dirty_h, dirty_v,
    ) -> None:
        """The verbatim serial loop body for a conflicting offender."""
        graph = self.graph
        for kind, line, lo, hi in routes[s]:
            if kind == "H":
                graph.add_horizontal_run(line, lo, hi, -1.0)
                dirty_h.add(line)
            else:
                graph.add_vertical_run(line, lo, hi, -1.0)
                dirty_v.add(line)
        graph.refresh_cost_lines(cost_e, cost_n, pe, pn, dirty_h, dirty_v)
        for ph, pv in self._pending:
            ph |= dirty_h
            pv |= dirty_v
        dirty_h.clear()
        dirty_v.clear()
        a, b, c, d = int(i0[s]), int(j0[s]), int(i1[s]), int(j1[s])
        z_cost, z_runs = best_z_route(pe, pn, a, b, c, d)
        new_runs = z_runs
        if use_maze:
            window = (
                max(0, min(a, c) - margin),
                max(0, min(b, d) - margin),
                min(graph.nx - 1, max(a, c) + margin),
                min(graph.ny - 1, max(b, d) + margin),
            )
            m_cost, m_runs = maze_route(cost_e, cost_n, (a, b), (c, d), window)
            if m_runs is not None and m_cost < z_cost:
                new_runs = m_runs
        if runs_cost(pe, pn, routes[s]) < runs_cost(pe, pn, new_runs):
            new_runs = routes[s]
        routes[s] = new_runs
        for kind, line, lo, hi in new_runs:
            if kind == "H":
                graph.add_horizontal_run(line, lo, hi)
                dirty_h.add(line)
            else:
                graph.add_vertical_run(line, lo, hi)
                dirty_v.add(line)
