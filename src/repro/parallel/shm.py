"""Named shared-memory NumPy arrays with leak-free lifecycle.

The parent creates segments (:class:`SharedArrays`), ships the
name/shape/dtype specs to workers once, and workers attach read/write
views (:func:`attach_arrays`).  Only the parent unlinks; workers merely
close their mappings.  On Python < 3.13 an attaching process re-registers
the segment with its resource tracker, which would then unlink it (and
warn) when that process exits — the attach path unregisters to keep
ownership solely with the creator.
"""

from __future__ import annotations

import os
import secrets
from multiprocessing import shared_memory

import numpy as np


def _segment_name() -> str:
    return f"repro_{os.getpid()}_{secrets.token_hex(4)}"


class SharedArrays:
    """A set of parent-owned named shared-memory NumPy arrays."""

    def __init__(self):
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._specs: dict[str, tuple[str, tuple, str]] = {}
        self.arrays: dict[str, np.ndarray] = {}
        self._closed = False

    def add(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """Create a zero-filled shared array registered under ``name``."""
        if name in self.arrays:
            raise ValueError(f"shared array {name!r} already exists")
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dt.itemsize)
        seg = shared_memory.SharedMemory(create=True, size=nbytes, name=_segment_name())
        arr = np.ndarray(shape, dtype=dt, buffer=seg.buf)
        arr.fill(0)
        self._segments[name] = seg
        self._specs[name] = (seg.name, tuple(int(s) for s in shape), dt.str)
        self.arrays[name] = arr
        return arr

    def add_from(self, name: str, source: np.ndarray) -> np.ndarray:
        """Create a shared array holding a copy of ``source``."""
        arr = self.add(name, source.shape, source.dtype)
        np.copyto(arr, source)
        return arr

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def specs(self) -> dict[str, tuple[str, tuple, str]]:
        """Picklable ``{name: (segment, shape, dtype)}`` for workers."""
        return dict(self._specs)

    def segment_names(self) -> list[str]:
        return [seg.name for seg in self._segments.values()]

    def close(self) -> None:
        """Release and unlink every segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.arrays = {}
        for seg in self._segments.values():
            try:
                seg.close()
            except OSError:
                pass
            try:
                seg.unlink()
            except (OSError, FileNotFoundError):
                pass
        self._segments = {}

    def __del__(self):  # last-resort leak guard; explicit close is the API
        try:
            self.close()
        except Exception:
            pass


def attach_arrays(
    specs: dict, *, unregister: bool = False
) -> tuple[dict[str, np.ndarray], list]:
    """Worker-side attach: ``{name: array}`` plus segment handles to keep.

    The returned segment list must stay referenced while the arrays are
    in use (the mappings die with the handles).  Workers never unlink.

    On Python < 3.13 attaching registers the segment with *this*
    process's resource tracker.  ``unregister=True`` undoes that — the
    right call for spawn-started workers, whose private tracker would
    otherwise unlink the parent's live segment at worker exit.  Leave it
    False for fork-started workers: they share the parent's tracker, the
    re-registration is an idempotent set-add, and unregistering would
    strip the parent's own entry.
    """
    arrays: dict[str, np.ndarray] = {}
    segments = []
    for name, (seg_name, shape, dtype) in specs.items():
        try:
            seg = shared_memory.SharedMemory(name=seg_name, track=False)
        except TypeError:  # track= is 3.13+
            seg = shared_memory.SharedMemory(name=seg_name)
            if unregister:
                try:
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(seg._name, "shared_memory")
                except Exception:
                    pass
        arrays[name] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
        segments.append(seg)
    return arrays, segments
