"""Learned congestion prediction (the inflation loop's cheap oracle).

The look-ahead router gives the most faithful congestion picture the
inflation loop can ratchet against, but one pattern route per inflation
round dominates GP wall time once the other stage hot paths are
overhauled.  This package learns that signal instead: vectorized per-bin
features (RUDY demand, pin density, local net-degree statistics, routing
supply), a pure-NumPy model zoo (ridge regression baseline plus
gradient-boosted stumps) serialized to a versioned JSON artifact, and a
training harness that labels synthetic benchgen designs with real
lookahead-router overflow maps.

``CongestionInflator(estimator="hybrid")`` consumes the artifact: the
predictor answers every inflation round, the real router only every
K-th round (plus a final check), and drift between the two falls the
loop back to the pure router.
"""

from repro.predict.features import FEATURE_NAMES, FeatureExtractor
from repro.predict.model import (
    ARTIFACT_VERSION,
    BoostedStumps,
    CongestionPredictor,
    PredictError,
    RidgeModel,
    build_predict_schema,
    load_artifact,
    load_predictor,
    save_artifact,
    validate_artifact,
)
from repro.predict.train import (
    TRAIN_CUTOFFS,
    collect_dataset,
    default_artifact_path,
    train_predictor,
    training_specs,
)

__all__ = [
    "ARTIFACT_VERSION",
    "FEATURE_NAMES",
    "TRAIN_CUTOFFS",
    "BoostedStumps",
    "CongestionPredictor",
    "FeatureExtractor",
    "PredictError",
    "RidgeModel",
    "build_predict_schema",
    "collect_dataset",
    "default_artifact_path",
    "load_artifact",
    "load_predictor",
    "save_artifact",
    "train_predictor",
    "training_specs",
    "validate_artifact",
]
