"""Per-bin feature maps for the congestion predictor.

Every feature is a vectorized NumPy map over the routing grid — the same
``(nx, ny)`` tiles the look-ahead router scores — flattened to one row
per bin.  The extractor owns preallocated buffers, so refreshing the
features every inflation round allocates nothing after the first call.

Features (one column each, see :data:`FEATURE_NAMES`):

* ``rudy`` / ``rudy_h`` / ``rudy_v`` — total and directional RUDY wire
  demand density (net HPWL, or its horizontal/vertical span, smeared
  over the net bounding box).
* ``pins`` — pin density (pins per unit area).
* ``nets`` / ``net_degree`` / ``avg_degree`` — net-count density,
  degree-weighted net density, and their ratio: a local Rent-style
  statistic separating many-small-nets tiles from few-large-nets tiles.
* ``supply_h`` / ``supply_v`` — routing track supply density from the
  :class:`~repro.route.RoutingSpec` (capacity map, macro blockages).
* ``cong_est`` / ``cong_h`` / ``cong_v`` — demand/supply ratios (total
  and per direction): scale-invariant, so split thresholds learned on
  one design transfer to another.
* ``rudy_3x3`` / ``pins_3x3`` / ``cong_3x3`` — 3x3 neighbourhood means,
  letting the model see demand spilling over from adjacent tiles.
* ``edge_distance`` — normalized distance to the nearest die edge
  (boundary tiles route differently from core tiles).
"""

from __future__ import annotations

import numpy as np

from repro.route.rudy import pin_density_map
from repro.wirelength.hpwl import net_bounding_boxes

#: Column order of the feature matrix; artifacts record this tuple and
#: loading fails on mismatch (a model must see the features it trained on).
FEATURE_NAMES = (
    "rudy",
    "rudy_h",
    "rudy_v",
    "pins",
    "nets",
    "net_degree",
    "avg_degree",
    "supply_h",
    "supply_v",
    "cong_est",
    "cong_h",
    "cong_v",
    "rudy_3x3",
    "pins_3x3",
    "cong_3x3",
    "edge_distance",
)


def box_mean_3x3(a: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """3x3 box-filter mean with edge clamping."""
    padded = np.pad(a, 1, mode="edge")
    if out is None:
        out = np.zeros_like(a)
    else:
        out.fill(0.0)
    for dx in range(3):
        for dy in range(3):
            out += padded[dx : dx + a.shape[0], dy : dy + a.shape[1]]
    out /= 9.0
    return out


class FeatureExtractor:
    """Computes the ``(num_bins, num_features)`` matrix for one spec.

    Bind one extractor per :class:`~repro.route.RoutingSpec`; the static
    supply/edge columns and all scratch grids are computed once.
    """

    def __init__(self, spec, wire_width: float = 1.0):
        self.spec = spec
        self.grid = spec.grid
        self.wire_width = float(wire_width)
        grid = self.grid
        nb = grid.nx * grid.ny
        self.num_features = len(FEATURE_NAMES)
        self._X = np.empty((nb, self.num_features))
        # Scratch grids reused across calls (one per dynamic map).
        self._bufs = [grid.zeros() for _ in range(8)]
        # Static columns: routing supply densities and edge distance.
        supply_h = spec.hcap * grid.bin_h / grid.bin_area
        supply_v = spec.vcap * grid.bin_w / grid.bin_area
        self._X[:, FEATURE_NAMES.index("supply_h")] = supply_h.ravel()
        self._X[:, FEATURE_NAMES.index("supply_v")] = supply_v.ravel()
        self._inv_supply = 1.0 / np.maximum(supply_h + supply_v, 1e-12)
        self._inv_supply_h = 1.0 / np.maximum(supply_h, 1e-12)
        self._inv_supply_v = 1.0 / np.maximum(supply_v, 1e-12)
        ex = np.minimum(np.arange(grid.nx), grid.nx - 1 - np.arange(grid.nx))
        ey = np.minimum(np.arange(grid.ny), grid.ny - 1 - np.arange(grid.ny))
        span = max(min(grid.nx, grid.ny) - 1, 1)
        edge = np.minimum.outer(ex, ey) / span
        self._X[:, FEATURE_NAMES.index("edge_distance")] = edge.ravel()

    def _col(self, name: str, grid_map: np.ndarray) -> None:
        self._X[:, FEATURE_NAMES.index(name)] = grid_map.ravel()

    def compute(self, arrays, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        """Feature matrix for the current positions.

        Returns the extractor-owned buffer — valid until the next call.
        """
        grid = self.grid
        rudy_b, rh_b, rv_b, pin_b, net_b, deg_b, cong_b, tmp_b = self._bufs
        pins = pin_density_map(arrays, cx, cy, grid, out=pin_b)
        pins /= grid.bin_area

        # All five net-box maps rasterize the *same* padded boxes (the
        # RUDY padding rule), so the bin-window geometry is computed once
        # and each map costs one extra bincount.
        xl, yl, xh, yh = net_bounding_boxes(arrays, cx, cy)
        counts = np.diff(arrays.net_ptr)
        active = counts >= 2
        xl, yl, xh, yh = xl[active], yl[active], xh[active], yh[active]
        pad_x = np.maximum(grid.bin_w - (xh - xl), 0.0) / 2.0
        pad_y = np.maximum(grid.bin_h - (yh - yl), 0.0) / 2.0
        xl -= pad_x
        xh += pad_x
        yl -= pad_y
        yh += pad_y
        w = xh - xl
        h = yh - yl
        inv_area = 1.0 / np.maximum(w * h, 1e-12)
        rudy, rudy_h, rudy_v, nets, deg = grid.rasterize_rects_multi(
            xl, yl, xh, yh,
            values=[
                self.wire_width * (w + h) * inv_area,
                self.wire_width * w * inv_area,
                self.wire_width * h * inv_area,
                inv_area,
                counts[active].astype(float) * inv_area,
            ],
            outs=[rudy_b, rh_b, rv_b, net_b, deg_b],
        )
        for grid_map in (rudy, rudy_h, rudy_v, nets, deg):
            grid_map /= grid.bin_area

        self._col("rudy", rudy)
        self._col("rudy_h", rudy_h)
        self._col("rudy_v", rudy_v)
        self._col("pins", pins)
        self._col("nets", nets)
        self._col("net_degree", deg)
        self._X[:, FEATURE_NAMES.index("avg_degree")] = (
            deg / np.maximum(nets, 1e-12)
        ).ravel()
        np.multiply(rudy, self._inv_supply, out=cong_b)
        self._col("cong_est", cong_b)
        self._col("cong_h", np.multiply(rudy_h, self._inv_supply_h, out=tmp_b))
        self._col("cong_v", np.multiply(rudy_v, self._inv_supply_v, out=tmp_b))
        self._col("rudy_3x3", box_mean_3x3(rudy, out=tmp_b))
        self._col("pins_3x3", box_mean_3x3(pins, out=tmp_b))
        self._col("cong_3x3", box_mean_3x3(cong_b, out=tmp_b))
        return self._X
