"""Pure-NumPy congestion model zoo + versioned JSON artifact.

Two models share the artifact:

* :class:`RidgeModel` — standardized closed-form ridge regression, the
  interpretable baseline.
* :class:`BoostedStumps` — gradient-boosted depth-1 regression trees
  over quantile thresholds; the usual winner on the non-linear
  demand/supply interaction.

Training stores both, picks the lower-validation-MSE one as ``primary``,
and serializes everything to one JSON document (schema
``predict-model-v1``, committed under ``docs/schemas/``) with provenance
hashes so an artifact can be traced back to the exact training
configuration that produced it.  No third-party ML dependency, no
pickle: artifacts are inspectable text and load anywhere NumPy loads.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

from repro.obs.schema import SchemaError, validate
from repro.predict.features import FEATURE_NAMES

ARTIFACT_VERSION = 1
ARTIFACT_KIND = "congestion-predictor"

_NUM = {"type": ["number", "integer"]}
_STR = {"type": "string"}
_INT = {"type": "integer"}
_NUMS = {"type": "array", "items": _NUM}


class PredictError(ValueError):
    """An artifact is malformed, stale, or incompatible."""


# ----------------------------------------------------------------------
# models
# ----------------------------------------------------------------------
class RidgeModel:
    """Standardized ridge regression, fit by normal equations."""

    kind = "ridge"

    def __init__(self, coef, intercept, mean, scale, alpha):
        self.coef = np.asarray(coef, dtype=float)
        self.intercept = float(intercept)
        self.mean = np.asarray(mean, dtype=float)
        self.scale = np.asarray(scale, dtype=float)
        self.alpha = float(alpha)

    @staticmethod
    def fit(X: np.ndarray, y: np.ndarray, alpha: float = 1.0) -> "RidgeModel":
        mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale = np.where(scale < 1e-12, 1.0, scale)
        Z = (X - mean) / scale
        ybar = float(y.mean())
        A = Z.T @ Z + alpha * np.eye(Z.shape[1])
        coef = np.linalg.solve(A, Z.T @ (y - ybar))
        return RidgeModel(coef, ybar, mean, scale, alpha)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return ((X - self.mean) / self.scale) @ self.coef + self.intercept

    def as_dict(self) -> dict:
        return {
            "type": self.kind,
            "alpha": self.alpha,
            "coef": self.coef.tolist(),
            "intercept": self.intercept,
            "mean": self.mean.tolist(),
            "scale": self.scale.tolist(),
        }

    @staticmethod
    def from_dict(data: dict) -> "RidgeModel":
        return RidgeModel(
            data["coef"], data["intercept"], data["mean"], data["scale"],
            data["alpha"],
        )


class BoostedStumps:
    """Gradient-boosted depth-1 trees (L2 loss, quantile split points).

    Training is fully vectorized: each feature's samples are bucketed
    once against its quantile thresholds, so one boosting round costs a
    ``bincount`` per feature instead of a scan per (feature, threshold).
    Leaf values are stored pre-scaled by the learning rate.
    """

    kind = "gb_stumps"

    def __init__(self, bias, feature, threshold, left, right, learning_rate):
        self.bias = float(bias)
        self.feature = np.asarray(feature, dtype=np.int64)
        self.threshold = np.asarray(threshold, dtype=float)
        self.left = np.asarray(left, dtype=float)
        self.right = np.asarray(right, dtype=float)
        self.learning_rate = float(learning_rate)

    @staticmethod
    def fit(
        X: np.ndarray,
        y: np.ndarray,
        *,
        rounds: int = 150,
        learning_rate: float = 0.12,
        num_thresholds: int = 16,
        min_leaf: int = 8,
    ) -> "BoostedStumps":
        n, f = X.shape
        bias = float(y.mean())
        pred = np.full(n, bias)
        # Bucket every sample once per feature: bucket b means
        # thresholds[0..b-1] < x, so "x <= thresholds[t]" <=> b <= t.
        thresholds: list[np.ndarray] = []
        buckets: list[np.ndarray] = []
        counts: list[np.ndarray] = []
        for j in range(f):
            qs = np.unique(
                np.quantile(X[:, j], np.linspace(0.05, 0.95, num_thresholds))
            )
            thresholds.append(qs)
            b = np.searchsorted(qs, X[:, j], side="left")
            buckets.append(b)
            counts.append(np.bincount(b, minlength=len(qs) + 1))
        feat, thr, left, right = [], [], [], []
        for _ in range(rounds):
            resid = y - pred
            total = float(resid.sum())
            best = None  # (gain, j, t, left_mean, right_mean)
            for j in range(f):
                qs = thresholds[j]
                if len(qs) == 0:
                    continue
                sums = np.bincount(
                    buckets[j], weights=resid, minlength=len(qs) + 1
                )
                left_cnt = np.cumsum(counts[j][:-1])
                left_sum = np.cumsum(sums[:-1])
                right_cnt = n - left_cnt
                ok = (left_cnt >= min_leaf) & (right_cnt >= min_leaf)
                if not ok.any():
                    continue
                with np.errstate(divide="ignore", invalid="ignore"):
                    gain = (
                        left_sum**2 / np.maximum(left_cnt, 1)
                        + (total - left_sum) ** 2 / np.maximum(right_cnt, 1)
                    )
                gain = np.where(ok, gain, -np.inf)
                t = int(np.argmax(gain))
                if best is None or gain[t] > best[0]:
                    lm = left_sum[t] / left_cnt[t]
                    rm = (total - left_sum[t]) / right_cnt[t]
                    best = (float(gain[t]), j, t, float(lm), float(rm))
            if best is None:
                break
            _, j, t, lm, rm = best
            cut = thresholds[j][t]
            step_l = learning_rate * lm
            step_r = learning_rate * rm
            pred += np.where(X[:, j] <= cut, step_l, step_r)
            feat.append(j)
            thr.append(float(cut))
            left.append(step_l)
            right.append(step_r)
        return BoostedStumps(bias, feat, thr, left, right, learning_rate)

    def predict(self, X: np.ndarray) -> np.ndarray:
        if len(self.feature) == 0:
            return np.full(len(X), self.bias)
        vals = X[:, self.feature]  # (n, rounds)
        contrib = np.where(vals <= self.threshold, self.left, self.right)
        return self.bias + contrib.sum(axis=1)

    def as_dict(self) -> dict:
        return {
            "type": self.kind,
            "bias": self.bias,
            "learning_rate": self.learning_rate,
            "feature": self.feature.tolist(),
            "threshold": self.threshold.tolist(),
            "left": self.left.tolist(),
            "right": self.right.tolist(),
        }

    @staticmethod
    def from_dict(data: dict) -> "BoostedStumps":
        return BoostedStumps(
            data["bias"], data["feature"], data["threshold"], data["left"],
            data["right"], data["learning_rate"],
        )


_MODEL_TYPES = {RidgeModel.kind: RidgeModel, BoostedStumps.kind: BoostedStumps}


# ----------------------------------------------------------------------
# artifact (predict-model-v1)
# ----------------------------------------------------------------------
def build_predict_schema() -> dict:
    """The restricted JSON-Schema document for model artifacts."""
    ridge = {
        "type": "object",
        "properties": {
            "type": {"enum": ["ridge"]},
            "alpha": _NUM,
            "coef": _NUMS,
            "intercept": _NUM,
            "mean": _NUMS,
            "scale": _NUMS,
        },
        "required": ["type", "alpha", "coef", "intercept", "mean", "scale"],
        "additionalProperties": False,
    }
    stumps = {
        "type": "object",
        "properties": {
            "type": {"enum": ["gb_stumps"]},
            "bias": _NUM,
            "learning_rate": _NUM,
            "feature": {"type": "array", "items": _INT},
            "threshold": _NUMS,
            "left": _NUMS,
            "right": _NUMS,
        },
        "required": [
            "type", "bias", "learning_rate", "feature", "threshold",
            "left", "right",
        ],
        "additionalProperties": False,
    }
    provenance = {
        "type": "object",
        "properties": {
            "seed": _INT,
            "designs": {"type": "array", "items": _STR},
            "cutoffs": {"type": "array", "items": _INT},
            "num_samples": _INT,
            "num_train": _INT,
            "num_val": _INT,
            "config_hash": _STR,
            "trainer": _STR,
        },
        "required": ["seed", "designs", "num_samples", "config_hash"],
        "additionalProperties": False,
    }
    return {
        "$id": f"repro/predict-model/v{ARTIFACT_VERSION}",
        "title": "repro.predict congestion-model artifact",
        "version": ARTIFACT_VERSION,
        "records": {
            "model": {
                "type": "object",
                "properties": {
                    "schema": _INT,
                    "kind": {"enum": [ARTIFACT_KIND]},
                    "feature_names": {"type": "array", "items": _STR},
                    "primary": _STR,
                    "models": {
                        "type": "object",
                        "properties": {"ridge": ridge, "gb_stumps": stumps},
                        "additionalProperties": False,
                    },
                    "metrics": {"type": "object", "additionalProperties": _NUM},
                    "provenance": provenance,
                },
                "required": [
                    "schema", "kind", "feature_names", "primary", "models",
                    "provenance",
                ],
                "additionalProperties": False,
            }
        },
    }


def config_hash(config: dict) -> str:
    """SHA-256 of the canonical-JSON training configuration."""
    canon = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def validate_artifact(data: dict) -> None:
    """Schema + semantic checks; raises :class:`PredictError`."""
    try:
        validate(data, build_predict_schema()["records"]["model"])
    except SchemaError as exc:
        raise PredictError(f"artifact fails predict-model-v1: {exc}") from None
    if data["schema"] != ARTIFACT_VERSION:
        raise PredictError(
            f"artifact schema {data['schema']!r} != {ARTIFACT_VERSION}"
        )
    if data["primary"] not in data["models"]:
        raise PredictError(
            f"primary model {data['primary']!r} not in artifact "
            f"(has {sorted(data['models'])})"
        )
    if tuple(data["feature_names"]) != FEATURE_NAMES:
        raise PredictError(
            "artifact features do not match this build "
            f"({data['feature_names']} vs {list(FEATURE_NAMES)}); retrain "
            "with 'repro predict train'"
        )


class CongestionPredictor:
    """A loaded artifact: the primary model plus its zoo and provenance."""

    def __init__(self, data: dict):
        validate_artifact(data)
        self.data = data
        self.feature_names = tuple(data["feature_names"])
        self.models = {
            name: _MODEL_TYPES[spec["type"]].from_dict(spec)
            for name, spec in data["models"].items()
        }
        self.primary = data["primary"]
        self.metrics = dict(data.get("metrics", {}))
        self.provenance = dict(data["provenance"])

    def predict(self, X: np.ndarray, model: str | None = None) -> np.ndarray:
        """Per-bin congestion prediction, clipped to be non-negative."""
        pred = self.models[model or self.primary].predict(X)
        return np.maximum(pred, 0.0)


def save_artifact(data: dict, path: str) -> str:
    """Validate and write an artifact (stable key order, trailing newline)."""
    validate_artifact(data)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_artifact(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise PredictError(f"unreadable model artifact {path}: {exc}") from exc
    validate_artifact(data)
    return data


_PREDICTOR_CACHE: dict[str, CongestionPredictor] = {}


def load_predictor(path: str | None = None) -> CongestionPredictor:
    """Load (and memoize) the artifact at ``path``, or the packaged default."""
    if path is None:
        from repro.predict.train import default_artifact_path

        path = default_artifact_path()
    key = os.path.abspath(path)
    cached = _PREDICTOR_CACHE.get(key)
    if cached is None:
        cached = CongestionPredictor(load_artifact(path))
        _PREDICTOR_CACHE[key] = cached
    return cached
