"""Training harness: label benchgen designs with lookahead-router maps.

``benchgen`` generates unlimited designs from a seed, so training data is
free: for each training spec the harness replays global placement to a
few outer-iteration cutoffs (the mid-placement states the inflation loop
actually queries — spread-out early clouds through nearly-converged
placements), extracts the per-bin features at each state, and labels
every tile with the congestion a real pattern-only lookahead route
reports there.  Everything is seeded, so the same call produces the
same artifact byte for byte.

``repro predict train`` and ``benchmarks/bench_predict.py`` drive this;
the committed default artifact under ``predict/artifacts/`` ships with
the package so ``estimator="hybrid"`` works out of the box.
"""

from __future__ import annotations

import os

import numpy as np

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.predict.features import FEATURE_NAMES, FeatureExtractor
from repro.predict.model import (
    ARTIFACT_KIND,
    ARTIFACT_VERSION,
    BoostedStumps,
    RidgeModel,
    config_hash,
)

#: GP outer-iteration cutoffs sampled per design: the initial spread,
#: an early cloud, and a near-settled placement — the range of states
#: the inflation loop queries.
TRAIN_CUTOFFS = (0, 4, 9)

#: Labels are clipped here before fitting.  The inflation response
#: saturates near local congestion ~1.5 (``max_inflation`` caps the
#: area ratchet), so the heavy tail above this adds nothing to the loop
#: but dominates the L2 loss and starves the mid-range fit.
LABEL_CLIP = 4.0

# Base recipes cycled by training_specs(); cap factors and congestion
# bands bracket the bundled rh suite so the model sees both comfortable
# and starved supply regimes.
_RECIPES = (
    dict(
        num_cells=700, num_macros=2, num_fixed_macros=1,
        macro_area_fraction=0.18, utilization=0.64, cap_factor=4.4,
        locality=0.8,
    ),
    dict(
        num_cells=1000, num_macros=3, num_fixed_macros=1,
        macro_area_fraction=0.22, utilization=0.7, cap_factor=5.2,
        congested_band=0.45, locality=0.7,
    ),
    dict(
        num_cells=1300, num_macros=2, num_fixed_macros=2,
        macro_area_fraction=0.28, utilization=0.66, cap_factor=4.0,
        locality=0.85,
    ),
    dict(
        num_cells=900, num_macros=4, num_fixed_macros=1,
        macro_area_fraction=0.3, utilization=0.68, cap_factor=5.8,
        congested_band=0.55, locality=0.75,
    ),
    dict(
        num_cells=1100, num_macros=2, num_fixed_macros=1,
        macro_area_fraction=0.15, utilization=0.62, cap_factor=6.5,
        locality=0.65,
    ),
)


def default_artifact_path() -> str:
    """The committed in-package artifact used when no path is configured."""
    return os.path.join(os.path.dirname(__file__), "artifacts", "default.json")


def training_specs(count: int = 3, seed: int = 0) -> list[BenchmarkSpec]:
    """``count`` seeded benchmark specs cycling the base recipes."""
    specs = []
    for i in range(count):
        kw = dict(_RECIPES[i % len(_RECIPES)])
        specs.append(
            BenchmarkSpec(
                name=f"ptrain{i:02d}",
                seed=1000 * seed + 17 * i + 11,
                **kw,
            )
        )
    return specs


def _placement_state(spec: BenchmarkSpec, cutoff: int, gp_seed: int):
    """A fresh design advanced to ``cutoff`` GP outer iterations."""
    from repro.gp import GlobalPlacer, GPConfig
    from repro.gp.initial import initial_placement

    design = make_benchmark(spec)
    if cutoff <= 0:
        initial_placement(design, seed=gp_seed)
        return design
    cfg = GPConfig(
        max_outer_iterations=cutoff,
        clustering=False,
        congestion_estimator="rudy",
        seed=gp_seed,
    )
    GlobalPlacer(cfg).place(design)
    return design


def _label_map(design) -> np.ndarray:
    """Per-tile congestion from the same lookahead route hybrid mode skips."""
    from repro.route.router import GlobalRouter

    router = GlobalRouter(design.routing, sweeps=1, z_refine=False, maze_rounds=0)
    return router.route(design).congestion_map().ravel()


def collect_dataset(
    specs,
    cutoffs=TRAIN_CUTOFFS,
    *,
    gp_seed: int = 7,
    wire_width: float = 1.0,
):
    """Feature/label rows for every (spec, cutoff) placement state.

    Returns ``(X, y, groups)`` where ``groups[i]`` is the spec index the
    row came from (used for the leave-last-design-out validation split).
    """
    xs, ys, gs = [], [], []
    for gi, spec in enumerate(specs):
        for cutoff in cutoffs:
            design = _placement_state(spec, cutoff, gp_seed)
            extractor = FeatureExtractor(design.routing, wire_width=wire_width)
            X = extractor.compute(design.pin_arrays(), *design.pull_centers())
            xs.append(np.array(X, copy=True))
            ys.append(_label_map(design))
            gs.append(np.full(len(X), gi, dtype=np.int64))
    return np.concatenate(xs), np.concatenate(ys), np.concatenate(gs)


def train_predictor(
    specs=None,
    *,
    seed: int = 0,
    cutoffs=TRAIN_CUTOFFS,
    boost_rounds: int = 150,
    ridge_alpha: float = 1.0,
    gp_seed: int = 7,
) -> dict:
    """Train the model zoo and return the artifact document.

    The last spec is held out for validation (model selection); with a
    single spec the split degrades to in-sample selection.  Everything
    downstream of the seeds is deterministic, so the artifact is too.
    """
    if specs is None:
        specs = training_specs(3, seed)
    cutoffs = tuple(int(c) for c in cutoffs)
    X, y, groups = collect_dataset(specs, cutoffs, gp_seed=gp_seed)
    y = np.minimum(y, LABEL_CLIP)
    val_group = int(groups.max()) if len(specs) > 1 else -1
    train_mask = groups != val_group
    val_mask = ~train_mask if val_group >= 0 else train_mask
    Xt, yt = X[train_mask], y[train_mask]
    Xv, yv = X[val_mask], y[val_mask]

    ridge = RidgeModel.fit(Xt, yt, alpha=ridge_alpha)
    stumps = BoostedStumps.fit(Xt, yt, rounds=boost_rounds)
    models = {RidgeModel.kind: ridge, BoostedStumps.kind: stumps}
    val_mse = {
        name: float(np.mean((np.maximum(m.predict(Xv), 0.0) - yv) ** 2))
        for name, m in models.items()
    }
    primary = min(sorted(val_mse), key=lambda name: val_mse[name])
    baseline = float(np.mean((float(yt.mean()) - yv) ** 2))

    train_config = {
        "specs": [vars(s) for s in specs],
        "cutoffs": list(cutoffs),
        "seed": seed,
        "gp_seed": gp_seed,
        "boost_rounds": boost_rounds,
        "ridge_alpha": ridge_alpha,
        "label_clip": LABEL_CLIP,
        "feature_names": list(FEATURE_NAMES),
    }
    metrics = {f"val_mse_{name}": mse for name, mse in val_mse.items()}
    metrics["val_mse_mean_baseline"] = baseline
    metrics["num_stumps"] = float(len(stumps.feature))
    return {
        "schema": ARTIFACT_VERSION,
        "kind": ARTIFACT_KIND,
        "feature_names": list(FEATURE_NAMES),
        "primary": primary,
        "models": {name: m.as_dict() for name, m in models.items()},
        "metrics": metrics,
        "provenance": {
            "seed": int(seed),
            "designs": [s.name for s in specs],
            "cutoffs": list(cutoffs),
            "num_samples": int(len(X)),
            "num_train": int(train_mask.sum()),
            "num_val": int(val_mask.sum()),
            "config_hash": config_hash(train_config),
            "trainer": "repro predict train",
        },
    }
