"""repro.resilience: keep the flow standing when inputs or numerics fail.

Four pillars (see ``docs/robustness.md``):

* :mod:`repro.resilience.validate` — design validation & sanitization at
  flow entry (``validate_design``).
* :mod:`repro.resilience.guards` — NaN/Inf + divergence detection in the
  analytical placer with rollback to a last-good snapshot
  (``NumericalGuard``).
* :mod:`repro.resilience.watchdog` — cooperative per-stage time budgets
  with graceful degradation (``StageWatchdog``).
* :mod:`repro.resilience.checkpoint` — post-stage flow checkpoints and
  bit-identical resume (``FlowCheckpoint``).

All of it is driven through :mod:`repro.resilience.faults`, a
deterministic fault-injection layer (``REPRO_FAULTS`` env var or the
``inject()`` context manager) so every recovery path has a repeatable
test.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    FlowCheckpoint,
    checkpoint_path,
    has_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.faults import (
    ENV_VAR,
    FAULT_POINTS,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    check_fault,
    fault_armed,
    fault_plan,
    inject,
    install_plan,
    maybe_raise,
    reset_plan,
)
from repro.resilience.guards import (
    GuardEvent,
    GuardSnapshot,
    NumericalGuard,
    all_finite,
)
from repro.resilience.validate import (
    DesignValidationError,
    Severity,
    ValidationIssue,
    ValidationReport,
    validate_design,
)
from repro.resilience.watchdog import StageWatchdog, reset_clock_skew

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "DesignValidationError",
    "ENV_VAR",
    "FAULT_POINTS",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "FlowCheckpoint",
    "GuardEvent",
    "GuardSnapshot",
    "NumericalGuard",
    "Severity",
    "StageWatchdog",
    "ValidationIssue",
    "ValidationReport",
    "all_finite",
    "check_fault",
    "checkpoint_path",
    "fault_armed",
    "fault_plan",
    "has_checkpoint",
    "inject",
    "install_plan",
    "load_checkpoint",
    "maybe_raise",
    "reset_clock_skew",
    "reset_plan",
    "save_checkpoint",
    "validate_design",
]
