"""Flow checkpoint/resume: serialize pipeline state between stages.

After every completed stage the flow writes one JSON document —
``<dir>/checkpoint.json`` — holding everything needed to continue the
run in a fresh process: the list of completed stages, every node's
position and orientation, the (possibly reweighted) net weights, the
original scoring weights, the scalar result fields accumulated so far,
the flow configuration, per-stage telemetry, and the interpreter RNG
states.  Floats round-trip exactly (``json`` emits ``repr``-shortest
doubles), so a resumed run continues **bit-identically**: the restored
positions are the exact doubles the killed run held, and every
downstream stage is deterministic given them.

Writes are atomic (temp file + ``os.replace``) so a kill mid-write
leaves the previous checkpoint intact.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.geometry import Orientation
from repro.resilience.faults import maybe_raise

CHECKPOINT_VERSION = 1
CHECKPOINT_FILE = "checkpoint.json"


class CheckpointError(ValueError):
    """A checkpoint is missing, unreadable, or does not match the design."""


@dataclass
class FlowCheckpoint:
    """One serialized flow state."""

    design: str
    completed: list = field(default_factory=list)
    positions: dict = field(default_factory=dict)  # name -> [x, y, orient]
    net_weights: list = field(default_factory=list)
    score_weights: list = field(default_factory=list)
    result: dict = field(default_factory=dict)
    telemetry: dict = field(default_factory=dict)
    config: dict = field(default_factory=dict)
    rng: dict = field(default_factory=dict)
    # One-time congestion-estimator calibration (pin_norm + supply map)
    # shared by every CongestionInflator bound to the design; restoring
    # it keeps a resumed run bit-identical to the uninterrupted one
    # instead of recomputing the calibration at post-resume positions.
    # Optional (absent in older checkpoints), so the version stays 1.
    calibration: dict = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION

    # -- capture -------------------------------------------------------
    @staticmethod
    def capture(
        design,
        *,
        completed: list,
        score_weights: list,
        result: dict,
        telemetry: dict | None = None,
        config=None,
    ) -> "FlowCheckpoint":
        """Snapshot the design + flow bookkeeping after a stage."""
        positions = {
            node.name: [node.x, node.y, node.orientation.value]
            for node in design.nodes
        }
        calibration = {}
        cal = getattr(design, "congestion_calibration", None)
        if isinstance(cal, dict):
            for key, value in cal.items():
                calibration[key] = (
                    np.asarray(value).tolist()
                    if isinstance(value, np.ndarray)
                    else value
                )
        py_state = random.getstate()
        np_state = np.random.get_state()
        return FlowCheckpoint(
            design=design.name,
            completed=list(completed),
            positions=positions,
            net_weights=[net.weight for net in design.nets],
            score_weights=list(score_weights),
            result=dict(result),
            telemetry=dict(telemetry or {}),
            config=asdict(config) if config is not None else {},
            calibration=calibration,
            rng={
                "python": [py_state[0], list(py_state[1]), py_state[2]],
                "numpy": [
                    np_state[0],
                    np.asarray(np_state[1]).tolist(),
                    int(np_state[2]),
                    int(np_state[3]),
                    float(np_state[4]),
                ],
            },
        )

    # -- restore -------------------------------------------------------
    def apply(self, design) -> None:
        """Write the checkpointed state back onto ``design`` (+ RNGs)."""
        if design.name != self.design:
            raise CheckpointError(
                f"checkpoint is for design {self.design!r}, "
                f"got {design.name!r}"
            )
        if len(self.positions) != len(design.nodes):
            raise CheckpointError(
                f"checkpoint has {len(self.positions)} nodes, "
                f"design has {len(design.nodes)}"
            )
        if len(self.net_weights) != len(design.nets):
            raise CheckpointError(
                f"checkpoint has {len(self.net_weights)} nets, "
                f"design has {len(design.nets)}"
            )
        for name, (x, y, orient) in self.positions.items():
            if not design.has_node(name):
                raise CheckpointError(f"checkpoint references unknown node {name!r}")
            node = design.node(name)
            if node.orientation.value != orient:
                node.orientation = Orientation.from_string(orient)
            node.x = float(x)
            node.y = float(y)
        for net, weight in zip(design.nets, self.net_weights):
            net.weight = float(weight)
        if self.calibration:
            cal = dict(self.calibration)
            if cal.get("supply") is not None:
                cal["supply"] = np.asarray(cal["supply"], dtype=float)
            design.congestion_calibration = cal
        design.mark_positions_dirty()
        design._topology_version += 1
        rng = self.rng or {}
        if "python" in rng:
            ver, state, gauss = rng["python"]
            random.setstate((ver, tuple(state), gauss))
        if "numpy" in rng:
            name, keys, pos, has_gauss, cached = rng["numpy"]
            np.random.set_state(
                (name, np.asarray(keys, dtype=np.uint32), pos, has_gauss, cached)
            )

    # -- (de)serialization --------------------------------------------
    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "design": self.design,
            "completed": self.completed,
            "positions": self.positions,
            "net_weights": self.net_weights,
            "score_weights": self.score_weights,
            "result": self.result,
            "telemetry": self.telemetry,
            "config": self.config,
            "calibration": self.calibration,
            "rng": self.rng,
        }

    @staticmethod
    def from_dict(data: dict) -> "FlowCheckpoint":
        version = data.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {version!r} "
                f"(expected {CHECKPOINT_VERSION})"
            )
        return FlowCheckpoint(
            design=data["design"],
            completed=list(data.get("completed", [])),
            positions=dict(data.get("positions", {})),
            net_weights=list(data.get("net_weights", [])),
            score_weights=list(data.get("score_weights", [])),
            result=dict(data.get("result", {})),
            telemetry=dict(data.get("telemetry", {})),
            config=dict(data.get("config", {})),
            calibration=dict(data.get("calibration", {})),
            rng=dict(data.get("rng", {})),
            version=version,
        )


def checkpoint_path(directory: str) -> str:
    return os.path.join(directory, CHECKPOINT_FILE)


def save_checkpoint(checkpoint: FlowCheckpoint, directory: str) -> str:
    """Atomically write ``checkpoint`` under ``directory``; returns the path."""
    maybe_raise("checkpoint.io_error")
    os.makedirs(directory, exist_ok=True)
    path = checkpoint_path(directory)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(checkpoint.as_dict(), fh)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def load_checkpoint(directory: str) -> FlowCheckpoint:
    """Read the checkpoint under ``directory`` (a file path also works)."""
    path = directory
    if os.path.isdir(directory):
        path = checkpoint_path(directory)
    if not os.path.exists(path):
        raise CheckpointError(f"no checkpoint found at {path}")
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    return FlowCheckpoint.from_dict(data)


def has_checkpoint(directory: str) -> bool:
    return os.path.exists(checkpoint_path(directory))
