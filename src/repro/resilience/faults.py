"""Deterministic fault injection for the resilience machinery.

Every recovery path in the flow (numerical rollback, watchdog
degradation, stage fallbacks) is exercised through *fault points*:
named hooks compiled into the pipeline that normally cost one cheap
``None`` check.  A :class:`FaultPlan` arms a subset of them; each armed
fault fires exactly once, on a chosen hit of its point, so tests drive
the failure paths without flaky timing or monkeypatching internals.

Plans come from two places:

* the ``REPRO_FAULTS`` environment variable — a comma-separated list of
  ``point[@hit][=value]`` specs, e.g.
  ``REPRO_FAULTS="raise.route,gp.nan_gradient@3,clock.skew=600"`` —
  parsed lazily on first use (the CI fault-injection job uses this);
* :func:`inject`, a context manager tests use to install a plan for one
  block.

Addressing is fully deterministic: a spec ``point@n`` fires on the
``n``-th time that point is checked (1-based), independent of wall
clock, thread timing, or randomness.  Unknown point names are rejected
at parse time against :data:`FAULT_POINTS` so typos fail loudly.

On top of the deterministic ``@hit`` addressing, a spec may instead
carry a *probability*: ``point~0.05`` fires on roughly 5% of checks of
that point, every time the draw lands (not once).  Probabilistic specs
are what the chaos/soak harness (``benchmarks/bench_chaos.py``) arms:
a whole schedule of them plus a ``seed=<n>`` token makes the draw
stream reproducible — ``"serve.http_500~0.05,serve.store_write~0.02,
seed=7"`` is one seeded randomized fault schedule.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Registry of every fault point compiled into the pipeline.
#: name -> human description of what firing it does.
FAULT_POINTS = {
    "raise.gp": "raise FaultInjected at global-placement stage entry",
    "raise.refine": "raise FaultInjected at the post-macro refinement pass",
    "raise.legal": "raise FaultInjected at legalization stage entry",
    "raise.dp": "raise FaultInjected at detailed-placement stage entry",
    "raise.route": "raise FaultInjected at routing stage entry",
    "gp.nan_gradient": "poison the GP objective gradient with NaN "
    "(hit = objective evaluation index)",
    "watchdog.expire.gp": "force the GP stage watchdog to report expiry",
    "watchdog.expire.legal": "force the legalization watchdog to report expiry",
    "watchdog.expire.dp": "force the detailed-placement watchdog to report expiry",
    "watchdog.expire.route": "force the routing watchdog to report expiry",
    "clock.skew": "advance the watchdog clock by <value> seconds when checked",
    "checkpoint.io_error": "raise FaultInjected while writing a flow checkpoint",
    "predict.drift": "poison the hybrid-estimator congestion prediction by "
    "+<value> (default 10) so the drift detector must fall back to the "
    "router (hit = prediction index)",
    "serve.worker_exit": "hard-exit a serve worker process (os._exit) at "
    "the <hit>-th completed flow stage (crash/requeue drills)",
    "serve.store_write": "fail a job-store write transaction with a sqlite "
    "DatabaseError (store write-failure and recovery drills)",
    "serve.http_500": "make the job server answer the request with a "
    "500 (client retry drills)",
    "serve.client_conn_reset": "drop a ServeClient request with a simulated "
    "connection reset before it reaches the server (client retry drills)",
    "serve.disk_full": "fail a job-store write with ENOSPC / 'disk is "
    "full' (read-only degradation and recovery drills)",
}

ENV_VAR = "REPRO_FAULTS"


class FaultInjected(RuntimeError):
    """Raised by ``raise.*`` fault points (and checkpoint IO faults)."""

    def __init__(self, point: str):
        super().__init__(f"injected fault at {point!r}")
        self.point = point


@dataclass
class FaultSpec:
    """One armed fault.

    Deterministic form (``probability is None``): fires once, on the
    ``hit``-th check of ``point``.  Probabilistic form: fires on every
    check whose seeded draw lands under ``probability`` — repeatedly,
    for as long as the plan is installed.
    """

    point: str
    hit: int = 1
    value: str | None = None
    probability: float | None = None
    fired: bool = False
    fires: int = 0

    @staticmethod
    def parse(token: str) -> "FaultSpec":
        """Parse one ``point[@hit][~probability][=value]`` token."""
        token = token.strip()
        value: str | None = None
        if "=" in token:
            token, _, value = token.partition("=")
        probability: float | None = None
        if "~" in token:
            token, _, prob_s = token.partition("~")
            try:
                probability = float(prob_s)
            except ValueError as exc:
                raise ValueError(
                    f"bad fault probability in {token + '~' + prob_s!r}"
                ) from exc
            if not 0.0 < probability <= 1.0:
                raise ValueError(
                    f"fault probability must be in (0, 1], got {probability}"
                )
        hit = 1
        if "@" in token:
            if probability is not None:
                raise ValueError(
                    f"fault spec {token!r} mixes @hit with ~probability"
                )
            token, _, hit_s = token.partition("@")
            try:
                hit = int(hit_s)
            except ValueError as exc:
                raise ValueError(f"bad fault hit index in {token + '@' + hit_s!r}") from exc
            if hit < 1:
                raise ValueError(f"fault hit index must be >= 1, got {hit}")
        point = token.strip()
        if point not in FAULT_POINTS:
            known = ", ".join(sorted(FAULT_POINTS))
            raise ValueError(f"unknown fault point {point!r} (known: {known})")
        return FaultSpec(point=point, hit=hit, value=value,
                         probability=probability)


class FaultPlan:
    """A set of armed faults plus per-point hit counters (thread-safe).

    ``seed`` makes probabilistic (``~p``) specs reproducible: the same
    plan checked in the same order draws the same fire/no-fire stream.
    """

    def __init__(self, specs: list[FaultSpec], *, seed: int | None = None):
        self._specs: dict[str, list[FaultSpec]] = {}
        for spec in specs:
            self._specs.setdefault(spec.point, []).append(spec)
        self._hits: dict[str, int] = {}
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    @staticmethod
    def parse(text: str, *, seed: int | None = None) -> "FaultPlan":
        """Build a plan from a ``REPRO_FAULTS``-style spec string.

        A ``seed=<n>`` token inside the text seeds the probabilistic
        draw stream (it wins over the ``seed`` argument), so one string
        carries a whole reproducible randomized schedule.
        """
        specs = []
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            if token.startswith("seed="):
                try:
                    seed = int(token[5:])
                except ValueError as exc:
                    raise ValueError(f"bad fault plan seed in {token!r}") from exc
                continue
            specs.append(FaultSpec.parse(token))
        return FaultPlan(specs, seed=seed)

    def has(self, point: str) -> bool:
        """Whether any (fired or unfired) fault is armed at ``point``."""
        return point in self._specs

    def check(self, point: str) -> FaultSpec | None:
        """Count one hit of ``point``; return the spec if a fault fires now."""
        specs = self._specs.get(point)
        if specs is None:
            return None
        with self._lock:
            count = self._hits.get(point, 0) + 1
            self._hits[point] = count
            for spec in specs:
                if spec.probability is not None:
                    if self._rng.random() < spec.probability:
                        spec.fired = True
                        spec.fires += 1
                        return spec
                elif not spec.fired and spec.hit == count:
                    spec.fired = True
                    spec.fires += 1
                    return spec
        return None

    def fired(self) -> list[FaultSpec]:
        """All specs that have fired so far."""
        return [s for specs in self._specs.values() for s in specs if s.fired]

    def fire_count(self) -> int:
        """Total fault firings so far (probabilistic specs count each)."""
        return sum(
            s.fires for specs in self._specs.values() for s in specs
        )


# -- global plan ------------------------------------------------------------
# ``None`` until first use; the sentinel distinguishes "not parsed yet"
# from "parsed, no faults configured" so the disabled path stays one
# attribute load + an ``is None`` test.
_UNSET = object()
_plan: FaultPlan | None | object = _UNSET


def fault_plan() -> FaultPlan | None:
    """The active plan, parsing ``REPRO_FAULTS`` on first call."""
    global _plan
    if _plan is _UNSET:
        text = os.environ.get(ENV_VAR, "")
        _plan = FaultPlan.parse(text) if text.strip() else None
    return _plan  # type: ignore[return-value]


def install_plan(plan: FaultPlan | None) -> None:
    """Install ``plan`` globally (``None`` disables injection)."""
    global _plan
    _plan = plan


def reset_plan() -> None:
    """Forget the active plan; the next use re-reads ``REPRO_FAULTS``."""
    global _plan
    _plan = _UNSET


@contextmanager
def inject(*tokens: str):
    """Scoped plan from spec tokens: ``with inject("raise.route"): ...``."""
    previous = fault_plan()
    plan = FaultPlan([FaultSpec.parse(t) for t in tokens])
    install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(previous)


def check_fault(point: str) -> FaultSpec | None:
    """Count a hit of ``point`` against the active plan, if any."""
    plan = fault_plan()
    if plan is None:
        return None
    return plan.check(point)


def fault_armed(point: str) -> bool:
    """Cheap pre-check for hot paths: is anything armed at ``point``?"""
    plan = fault_plan()
    return plan is not None and plan.has(point)


def maybe_raise(point: str) -> None:
    """Raise :class:`FaultInjected` if a fault fires at ``point``."""
    if check_fault(point) is not None:
        raise FaultInjected(point)
