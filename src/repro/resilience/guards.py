"""Numerical guards: NaN/Inf detection, divergence tracking, rollback.

The analytical placer's outer loop drives these.  After every outer
iteration the placer offers the guard its fresh state (iterate vector,
smoothing gamma, step bounds, exact HPWL); the guard either *commits*
it as the new last-good snapshot or flags the iteration as poisoned —
non-finite objective/gradient/metrics, or HPWL running away from the
best seen — and hands back the last-good snapshot together with
backed-off step/smoothing parameters.  Retries are bounded; when they
run out the placer keeps the last-good placement and stops cleanly.

All state lives in plain Python/NumPy copies; on the happy path the
guard costs one vector copy per outer iteration and never perturbs the
optimization trajectory (the golden-equivalence tests pin this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


@dataclass
class GuardSnapshot:
    """Last-known-good optimizer state."""

    v: np.ndarray          # packed iterate (solver coordinates), owned copy
    gamma: float           # wirelength smoothing at snapshot time
    step_init: float
    step_max: float
    hpwl: float


@dataclass
class GuardEvent:
    """One recovery (or exhaustion), for telemetry and reports."""

    outer: int
    reason: str            # "nonfinite" | "divergence" | "exhausted"
    detail: str = ""

    def as_dict(self) -> dict:
        return {"outer": self.outer, "reason": self.reason, "detail": self.detail}


def all_finite(*values: float) -> bool:
    """Scalar finiteness check (cheap; no array temporaries)."""
    return all(math.isfinite(v) for v in values)


@dataclass
class NumericalGuard:
    """Rollback-and-backoff supervisor for one GP descent.

    ``max_retries`` bounds the total number of rollbacks; ``backoff``
    scales the line-search step bounds down and the smoothing gamma up
    on every recovery (a smoother, shorter-stepping objective is the
    standard remedy for a diverging nonlinear-placement iteration).
    Divergence means: exact HPWL exceeding ``divergence_ratio`` times
    the best HPWL seen, ``divergence_patience`` outer iterations in a
    row.  HPWL legitimately grows while the density weight ramps, so
    the ratio is generous — the trigger is meant for runaway steps, not
    the normal spreading trade-off.
    """

    max_retries: int = 3
    divergence_ratio: float = 20.0
    divergence_patience: int = 2
    backoff: float = 0.5
    gamma_inflate: float = 2.0

    retries_used: int = 0
    events: list = field(default_factory=list)
    _snapshot: GuardSnapshot | None = None
    _best_hpwl: float = math.inf
    _streak: int = 0

    # -- happy path ----------------------------------------------------
    def commit(
        self,
        v: np.ndarray,
        *,
        gamma: float,
        step_init: float,
        step_max: float,
        hpwl: float,
    ) -> None:
        """Record the post-iteration state as last-known-good."""
        self._snapshot = GuardSnapshot(
            v=np.array(v, dtype=float, copy=True),
            gamma=gamma,
            step_init=step_init,
            step_max=step_max,
            hpwl=hpwl,
        )
        if hpwl < self._best_hpwl:
            self._best_hpwl = hpwl
        self._streak = 0

    # -- detection -----------------------------------------------------
    def diverged(self, hpwl: float) -> bool:
        """Track the divergence streak; True once patience is exhausted."""
        if not math.isfinite(hpwl):
            return False  # non-finite is handled by the caller's check
        if (
            math.isfinite(self._best_hpwl)
            and self._best_hpwl > 0
            and hpwl > self.divergence_ratio * self._best_hpwl
        ):
            self._streak += 1
        else:
            self._streak = 0
        return self._streak >= self.divergence_patience

    # -- recovery ------------------------------------------------------
    @property
    def can_recover(self) -> bool:
        return self._snapshot is not None and self.retries_used < self.max_retries

    @property
    def exhausted(self) -> bool:
        return self.retries_used >= self.max_retries

    @property
    def last_good(self) -> GuardSnapshot | None:
        return self._snapshot

    def recover(self, outer: int, reason: str, detail: str = "") -> GuardSnapshot | None:
        """Consume a retry and return the backed-off last-good snapshot.

        Returns ``None`` when no snapshot exists or retries ran out (the
        caller should then restore ``last_good`` if present and stop).
        """
        self.events.append(GuardEvent(outer=outer, reason=reason, detail=detail))
        if not self.can_recover:
            return None
        self.retries_used += 1
        self._streak = 0
        snap = self._snapshot
        # Back off in place so repeated recoveries compound.
        snap.step_init *= self.backoff
        snap.step_max *= self.backoff
        snap.gamma *= self.gamma_inflate
        return snap

    @property
    def rollbacks(self) -> int:
        return self.retries_used
