"""Design validation & sanitization — the flow's front door.

``validate_design`` classifies every structural problem a Bookshelf
benchmark (or a programmatically built design) can arrive with into
three severities:

* ``FATAL`` — the flow cannot run (or would silently produce garbage):
  non-finite geometry, negative node sizes, movable objects larger than
  the core, a fence whose usable area inside the core is empty while
  cells are bound to it.
* ``WARNING`` — fixable: the flow can proceed, and ``sanitize=True``
  repairs the design in place (zero-area movable nodes get a minimum
  footprint, pin offsets are clamped into their node outline, fence
  rectangles are clipped to the core, off-chip terminals are pulled to
  the core boundary, empty nets are removed).
* ``INFO`` — recorded but harmless (single-pin nets, overlapping fence
  rectangles of the *same* region).

The rules and their repairs are tabulated in ``docs/robustness.md``.
Validation is read-only unless ``sanitize=True``; the happy path of a
clean design does no mutation and allocates only the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import math

from repro.geometry import Rect


class Severity(Enum):
    """How bad a validation issue is for the flow."""

    INFO = "info"
    WARNING = "warning"  # fixable: sanitize=True repairs it
    FATAL = "fatal"      # the flow must not run on this design

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class ValidationIssue:
    """One problem found in a design."""

    code: str            # machine-readable rule id, e.g. "node.zero_area"
    severity: Severity
    message: str
    subject: str = ""    # node / net / region name the issue is about
    fixed: bool = False  # True when sanitize repaired it

    def as_row(self) -> dict:
        return {
            "severity": self.severity.value,
            "code": self.code,
            "subject": self.subject,
            "fixed": "yes" if self.fixed else "",
            "message": self.message,
        }


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_design`."""

    issues: list = field(default_factory=list)
    sanitized: bool = False

    def add(
        self,
        code: str,
        severity: Severity,
        message: str,
        subject: str = "",
        fixed: bool = False,
    ) -> ValidationIssue:
        issue = ValidationIssue(code, severity, message, subject, fixed)
        self.issues.append(issue)
        return issue

    @property
    def fatal(self) -> list:
        return [i for i in self.issues if i.severity is Severity.FATAL and not i.fixed]

    @property
    def warnings(self) -> list:
        return [i for i in self.issues if i.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when the flow may run (no unfixed fatal issues)."""
        return not self.fatal

    @property
    def clean(self) -> bool:
        return not self.issues

    def counts(self) -> dict:
        out: dict = {}
        for issue in self.issues:
            out[issue.severity.value] = out.get(issue.severity.value, 0) + 1
        return out

    def summary(self) -> str:
        if not self.issues:
            return "design is clean"
        parts = [f"{n} {sev}" for sev, n in sorted(self.counts().items())]
        fixed = sum(1 for i in self.issues if i.fixed)
        if fixed:
            parts.append(f"{fixed} repaired")
        return f"{len(self.issues)} issues ({', '.join(parts)})"


class DesignValidationError(ValueError):
    """A design failed validation with fatal issues."""

    def __init__(self, report: ValidationReport):
        fatal = report.fatal
        first = fatal[0].message if fatal else report.summary()
        super().__init__(
            f"design validation failed: {len(fatal)} fatal issues; first: {first}"
        )
        self.report = report


def _finite(*values: float) -> bool:
    return all(math.isfinite(v) for v in values)


def validate_design(design, *, sanitize: bool = False) -> ValidationReport:
    """Classify (and with ``sanitize=True`` repair) a design's defects."""
    report = ValidationReport(sanitized=sanitize)
    _check_nodes(design, report, sanitize)
    _check_nets(design, report, sanitize)
    _check_pins(design, report, sanitize)
    _check_fences(design, report, sanitize)
    if sanitize and any(i.fixed for i in report.issues):
        design.mark_positions_dirty()
        design._topology_version += 1
    return report


# ---------------------------------------------------------------------------
def _check_nodes(design, report: ValidationReport, sanitize: bool) -> None:
    try:
        core = design.core
    except ValueError:
        report.add(
            "design.no_core",
            Severity.FATAL,
            "design has neither rows nor an explicit core area",
        )
        return
    if core.xh <= core.xl or core.yh <= core.yl:
        report.add(
            "design.empty_core",
            Severity.FATAL,
            f"core area is degenerate: {core}",
        )
        return
    min_w = design.site_width
    min_h = design.row_height
    for node in design.nodes:
        if not _finite(node.x, node.y, node.width, node.height):
            issue = report.add(
                "node.nonfinite",
                Severity.FATAL,
                f"node {node.name} has non-finite geometry "
                f"(x={node.x}, y={node.y}, w={node.width}, h={node.height})",
                subject=node.name,
            )
            if sanitize and _finite(node.width, node.height):
                # Position-only damage is repairable: recentre in the core.
                node.move_center_to(core.center.x, core.center.y)
                issue.fixed = True
                issue.severity = Severity.WARNING
            continue
        if node.width < 0 or node.height < 0:
            report.add(
                "node.negative_size",
                Severity.FATAL,
                f"node {node.name} has negative size "
                f"({node.width} x {node.height})",
                subject=node.name,
            )
            continue
        if node.is_movable and (node.width == 0 or node.height == 0):
            issue = report.add(
                "node.zero_area",
                Severity.WARNING,
                f"movable node {node.name} has zero area "
                f"({node.width} x {node.height})",
                subject=node.name,
            )
            if sanitize:
                node.width = max(node.width, min_w)
                node.height = max(node.height, min_h)
                issue.fixed = True
        if node.is_movable and (
            node.placed_width > core.width or node.placed_height > core.height
        ):
            report.add(
                "node.larger_than_core",
                Severity.FATAL,
                f"movable node {node.name} "
                f"({node.placed_width} x {node.placed_height}) cannot fit "
                f"the core ({core.width} x {core.height})",
                subject=node.name,
            )
        if node.kind.is_fixed and node.kind.blocks_placement:
            r = node.rect
            if r.xh < core.xl or r.xl > core.xh or r.yh < core.yl or r.yl > core.yh:
                issue = report.add(
                    "terminal.off_chip",
                    Severity.WARNING,
                    f"fixed node {node.name} lies entirely outside the core "
                    f"({r} vs core {core})",
                    subject=node.name,
                )
                if sanitize:
                    ox, oy = core.clamp_rect_origin(r)
                    node.x, node.y = ox, oy
                    issue.fixed = True


def _check_nets(design, report: ValidationReport, sanitize: bool) -> None:
    empty = []
    for net in design.nets:
        if net.degree == 0:
            issue = report.add(
                "net.empty",
                Severity.WARNING,
                f"net {net.name} has no pins",
                subject=net.name,
            )
            empty.append(net.index)
            if sanitize:
                issue.fixed = True
        elif net.degree == 1:
            report.add(
                "net.single_pin",
                Severity.INFO,
                f"net {net.name} has a single pin (zero wirelength)",
                subject=net.name,
            )
    if sanitize and empty:
        design.remove_nets(empty)


def _check_pins(design, report: ValidationReport, sanitize: bool) -> None:
    for net in design.nets:
        for pin in net.pins:
            if not 0 <= pin.node < len(design.nodes):
                report.add(
                    "pin.unknown_node",
                    Severity.FATAL,
                    f"net {net.name} pin references unknown node index {pin.node}",
                    subject=net.name,
                )
                continue
            node = design.nodes[pin.node]
            if not _finite(pin.dx, pin.dy):
                issue = report.add(
                    "pin.nonfinite_offset",
                    Severity.WARNING,
                    f"net {net.name} pin on {node.name} has non-finite offset",
                    subject=net.name,
                )
                if sanitize:
                    pin.dx = pin.dy = 0.0
                    issue.fixed = True
                continue
            # Offsets are measured from the node centre in the N frame.
            half_w = node.width / 2.0
            half_h = node.height / 2.0
            if abs(pin.dx) > half_w + 1e-9 or abs(pin.dy) > half_h + 1e-9:
                issue = report.add(
                    "pin.outside_node",
                    Severity.WARNING,
                    f"net {net.name} pin offset ({pin.dx}, {pin.dy}) falls "
                    f"outside node {node.name} "
                    f"({node.width} x {node.height})",
                    subject=net.name,
                )
                if sanitize:
                    pin.dx = min(max(pin.dx, -half_w), half_w)
                    pin.dy = min(max(pin.dy, -half_h), half_h)
                    issue.fixed = True


def _check_fences(design, report: ValidationReport, sanitize: bool) -> None:
    try:
        core = design.core
    except ValueError:
        return
    members: dict[int, int] = {}
    for node in design.nodes:
        if node.region is not None:
            if not 0 <= node.region < len(design.regions):
                report.add(
                    "fence.unknown_region",
                    Severity.FATAL,
                    f"node {node.name} references unknown fence region "
                    f"{node.region}",
                    subject=node.name,
                )
                continue
            members[node.region] = members.get(node.region, 0) + 1
    for region in design.regions:
        usable = 0.0
        dirty = False
        for rect in region.rects:
            inside = rect.intersection(core)
            if inside is None or inside.area <= 0:
                issue = report.add(
                    "fence.outside_core",
                    Severity.WARNING,
                    f"fence {region.name} rect {rect} lies outside the core",
                    subject=region.name,
                )
                issue.fixed = sanitize
                dirty = True
                continue
            if inside.area < rect.area - 1e-9:
                issue = report.add(
                    "fence.outside_core",
                    Severity.WARNING,
                    f"fence {region.name} rect {rect} extends beyond the core",
                    subject=region.name,
                )
                issue.fixed = sanitize
                dirty = True
            usable += inside.area
        if sanitize and dirty:
            # Clip every rect to the core; drop the ones with nothing left.
            region.rects = [
                inside
                for inside in (r.intersection(core) for r in region.rects)
                if inside is not None and inside.area > 0
            ]
        if usable <= 0 and members.get(region.index, 0) > 0:
            report.add(
                "fence.unsatisfiable",
                Severity.FATAL,
                f"fence {region.name} has no usable area inside the core but "
                f"{members[region.index]} cells are bound to it",
                subject=region.name,
            )
    # Overlap between *different* regions makes sub-row domains ambiguous.
    rects: list[tuple[int, str, Rect]] = [
        (region.index, region.name, rect)
        for region in design.regions
        for rect in region.rects
    ]
    reported: set = set()
    for a in range(len(rects)):
        ia, na, ra = rects[a]
        for b in range(a + 1, len(rects)):
            ib, nb, rb = rects[b]
            if ia == ib or ra.overlap_area(rb) <= 0:
                continue
            key = (min(ia, ib), max(ia, ib))
            if key in reported:
                continue
            reported.add(key)
            report.add(
                "fence.overlap",
                Severity.WARNING,
                f"fence regions {na} and {nb} overlap "
                f"(exclusive-region semantics are ambiguous)",
                subject=f"{na}+{nb}",
            )
