"""Stage watchdogs: soft per-stage time budgets with graceful expiry.

A :class:`StageWatchdog` is armed by the flow for one stage with an
optional budget in seconds.  Stages *cooperate*: long-running loops ask
``watchdog.expired()`` at their natural boundaries (GP outer iteration,
router round, DP round) and wind down cleanly when the budget runs out
— nothing is killed mid-update, so the placement is always consistent.

Time comes from :func:`now`, a monotonic clock with an injectable skew:
the ``clock.skew=<seconds>`` fault point jumps it forward, and the
``watchdog.expire.<stage>`` fault points force expiry directly — both
deterministic, so watchdog behaviour is testable without sleeping.
"""

from __future__ import annotations

import time

from repro.resilience.faults import check_fault

# Accumulated skew injected by ``clock.skew`` faults (test-only; zero in
# production, where now() is exactly perf_counter()).
_skew = 0.0


def now() -> float:
    """The watchdog clock: ``time.perf_counter()`` plus injected skew."""
    global _skew
    spec = check_fault("clock.skew")
    if spec is not None and spec.value is not None:
        _skew += float(spec.value)
    return time.perf_counter() + _skew


def reset_clock_skew() -> None:
    """Drop accumulated fault-injected skew (test isolation)."""
    global _skew
    _skew = 0.0


class StageWatchdog:
    """Budget supervisor for one flow stage.

    ``budget_seconds=None`` disarms it: ``expired()`` is a constant
    ``False`` with no clock read, so unbudgeted flows pay nothing.
    """

    __slots__ = ("stage", "budget", "start", "_forced", "_tripped")

    def __init__(self, stage: str, budget_seconds: float | None = None):
        self.stage = stage
        self.budget = budget_seconds
        self.start = now() if budget_seconds is not None else 0.0
        self._forced = False
        self._tripped = False

    def expired(self) -> bool:
        """Whether the stage should wind down now."""
        if self._tripped:
            return True
        if check_fault(f"watchdog.expire.{self.stage}") is not None:
            self._forced = True
        if self._forced:
            self._tripped = True
            return True
        if self.budget is None:
            return False
        if now() - self.start > self.budget:
            self._tripped = True
            return True
        return False

    @property
    def elapsed(self) -> float:
        if self.budget is None:
            # Disarmed: no start time was taken (forced expiry included).
            return 0.0
        return now() - self.start

    @property
    def tripped(self) -> bool:
        """Whether expiry has been observed at least once."""
        return self._tripped

    def describe(self) -> dict:
        """Machine-readable expiry record for degradation reasons.

        Deliberately has no ``stage`` key — callers attach their own
        stage label alongside it.
        """
        return {
            "budget_seconds": self.budget,
            "elapsed_seconds": round(self.elapsed, 6),
            "forced": self._forced,
        }
