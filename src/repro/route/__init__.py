"""Global-routing substrate used both *during* placement (congestion
estimation, cell inflation) and *after* placement (the evaluation router
that produces the contest congestion metrics).

The model is the standard global-routing abstraction: the die is tiled
into a uniform grid; each tile boundary is an edge with a track capacity;
nets are decomposed into two-pin connections routed tile-to-tile.  The
router runs congestion-aware pattern routing (L then Z) with a maze
(A*) fallback inside negotiation-style rip-up-and-reroute rounds.
"""

from repro.route.spec import LayerSpec, RoutingSpec
from repro.route.layer_report import LayerUsage, spread_over_layers
from repro.route.graph import GridGraph
from repro.route.rudy import pin_density_map, rudy_congestion_metrics, rudy_map
from repro.route.steiner import decompose_net, manhattan_mst
from repro.route.router import GlobalRouter, RouteResult, RouteTimeout, route_design
from repro.route.metrics import (
    ace,
    congestion_metrics,
    CongestionMetrics,
    rc_score,
    scaled_hpwl,
)

__all__ = [
    "CongestionMetrics",
    "GlobalRouter",
    "GridGraph",
    "LayerSpec",
    "LayerUsage",
    "spread_over_layers",
    "RouteResult",
    "RouteTimeout",
    "RoutingSpec",
    "ace",
    "congestion_metrics",
    "decompose_net",
    "manhattan_mst",
    "pin_density_map",
    "rc_score",
    "route_design",
    "rudy_congestion_metrics",
    "rudy_map",
    "scaled_hpwl",
]
