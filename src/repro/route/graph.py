"""The routing grid graph: tile-boundary edges with capacity and usage.

Edges are stored as two dense arrays:

* ``cap_e[i, j]`` / ``use_e[i, j]`` — the **east** edge from tile
  ``(i, j)`` to ``(i+1, j)``, shape ``(nx-1, ny)``;
* ``cap_n[i, j]`` / ``use_n[i, j]`` — the **north** edge from ``(i, j)``
  to ``(i, j+1)``, shape ``(nx, ny-1)``.

``history_*`` carries the negotiated-congestion history cost that makes
rip-up-and-reroute converge (PathFinder-style).
"""

from __future__ import annotations

import numpy as np

from repro.route.spec import RoutingSpec


class GridGraph:
    """Capacity/usage state of the routing grid."""

    def __init__(self, spec: RoutingSpec):
        self.spec = spec
        nx, ny = spec.grid.nx, spec.grid.ny
        self.nx, self.ny = nx, ny
        # Boundary capacity = mean of adjacent tile supplies.
        self.cap_e = 0.5 * (spec.hcap[:-1, :] + spec.hcap[1:, :])
        self.cap_n = 0.5 * (spec.vcap[:, :-1] + spec.vcap[:, 1:])
        self.use_e = np.zeros_like(self.cap_e)
        self.use_n = np.zeros_like(self.cap_n)
        self.history_e = np.zeros_like(self.cap_e)
        self.history_n = np.zeros_like(self.cap_n)
        # Static pieces of cost_arrays(), precomputed once: capacities
        # never change after construction and cost_arrays() runs once per
        # reroute in the rip-up loops.
        self._safe_cap_e = np.maximum(self.cap_e, 1e-12)
        self._safe_cap_n = np.maximum(self.cap_n, 1e-12)
        self._blocked_e = np.where(self.cap_e <= 0, 1e6, 0.0)
        self._blocked_n = np.where(self.cap_n <= 0, 1e6, 0.0)

    # ------------------------------------------------------------------
    # usage bookkeeping
    # ------------------------------------------------------------------
    def reset_usage(self) -> None:
        self.use_e[:] = 0.0
        self.use_n[:] = 0.0

    def add_horizontal_run(self, j: int, i0: int, i1: int, amount: float = 1.0) -> None:
        """Add usage along row ``j`` crossing east edges ``i0..i1-1``."""
        if i1 > i0:
            self.use_e[i0:i1, j] += amount

    def add_vertical_run(self, i: int, j0: int, j1: int, amount: float = 1.0) -> None:
        """Add usage along column ``i`` crossing north edges ``j0..j1-1``."""
        if j1 > j0:
            self.use_n[i, j0:j1] += amount

    # ------------------------------------------------------------------
    # congestion views
    # ------------------------------------------------------------------
    def overflow_e(self) -> np.ndarray:
        return np.maximum(self.use_e - self.cap_e, 0.0)

    def overflow_n(self) -> np.ndarray:
        return np.maximum(self.use_n - self.cap_n, 0.0)

    def total_overflow(self) -> float:
        return float(self.overflow_e().sum() + self.overflow_n().sum())

    def max_overflow(self) -> float:
        vals = [0.0]
        if self.use_e.size:
            vals.append(float(self.overflow_e().max()))
        if self.use_n.size:
            vals.append(float(self.overflow_n().max()))
        return max(vals)

    def edge_congestion(self) -> np.ndarray:
        """usage/capacity of every edge, flattened (zero-capacity edges
        report usage as infinite congestion only when actually used)."""
        parts = []
        for use, cap in ((self.use_e, self.cap_e), (self.use_n, self.cap_n)):
            if use.size == 0:
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                c = np.where(
                    cap > 0,
                    use / np.maximum(cap, 1e-12),
                    np.where(use > 0, np.inf, 0.0),
                )
            parts.append(c.ravel())
        if not parts:
            return np.zeros(0)
        return np.concatenate(parts)

    def tile_congestion(self) -> np.ndarray:
        """Per-tile congestion: max usage/capacity of its incident edges.

        This is the heat-map view used by the placer's inflation and the
        congestion-map figure.
        """
        out = np.zeros((self.nx, self.ny))
        with np.errstate(divide="ignore", invalid="ignore"):
            ce = np.where(self.cap_e > 0, self.use_e / np.maximum(self.cap_e, 1e-12), 0.0)
            cn = np.where(self.cap_n > 0, self.use_n / np.maximum(self.cap_n, 1e-12), 0.0)
        if ce.size:
            out[:-1, :] = np.maximum(out[:-1, :], ce)
            out[1:, :] = np.maximum(out[1:, :], ce)
        if cn.size:
            out[:, :-1] = np.maximum(out[:, :-1], cn)
            out[:, 1:] = np.maximum(out[:, 1:], cn)
        return out

    def wirelength(self) -> float:
        """Total routed length in tile-edge crossings."""
        return float(self.use_e.sum() + self.use_n.sum())

    # ------------------------------------------------------------------
    # edge costs for congestion-aware routing
    # ------------------------------------------------------------------
    def cost_arrays(self, history_weight: float = 1.0, overflow_penalty: float = 8.0):
        """Per-edge traversal cost (east, north) for the current state.

        Cost grows smoothly with utilization and sharply past capacity —
        the standard negotiated-congestion shape: ``1 + h*history +
        penalty * max(0, (use+1-cap)/cap)`` evaluated for the *next* wire.
        """
        def cost(use, safe_cap, blocked, hist):
            util = (use + 1.0) / safe_cap
            over = np.maximum(util - 1.0, 0.0)
            base = 1.0 + np.minimum(util, 1.0) ** 2
            return base + history_weight * hist + overflow_penalty * over + blocked

        return (
            cost(self.use_e, self._safe_cap_e, self._blocked_e, self.history_e),
            cost(self.use_n, self._safe_cap_n, self._blocked_n, self.history_n),
        )

    def refresh_cost_lines(
        self,
        cost_e: np.ndarray,
        cost_n: np.ndarray,
        pe: np.ndarray,
        pn: np.ndarray,
        h_lines,
        v_lines,
        history_weight: float = 1.0,
        overflow_penalty: float = 8.0,
    ) -> None:
        """Incrementally refresh cost/prefix arrays on the given lines.

        After a rip or commit only the lines carrying the changed runs
        have new usage; recomputing those rows/columns (same formula as
        :meth:`cost_arrays`) and re-prefixing them is bitwise identical
        to a full rebuild at a fraction of the cost.  ``h_lines`` are
        row indices ``j`` of east-edge lines, ``v_lines`` column indices
        ``i`` of north-edge lines; ``pe``/``pn`` are the zero-padded
        prefix arrays from :func:`~repro.route.pattern.prefix_costs`.
        """
        for j in h_lines:
            util = (self.use_e[:, j] + 1.0) / self._safe_cap_e[:, j]
            over = np.maximum(util - 1.0, 0.0)
            base = 1.0 + np.minimum(util, 1.0) ** 2
            cost_e[:, j] = (
                base
                + history_weight * self.history_e[:, j]
                + overflow_penalty * over
                + self._blocked_e[:, j]
            )
            np.cumsum(cost_e[:, j], out=pe[1:, j])
        for i in v_lines:
            util = (self.use_n[i, :] + 1.0) / self._safe_cap_n[i, :]
            over = np.maximum(util - 1.0, 0.0)
            base = 1.0 + np.minimum(util, 1.0) ** 2
            cost_n[i, :] = (
                base
                + history_weight * self.history_n[i, :]
                + overflow_penalty * over
                + self._blocked_n[i, :]
            )
            np.cumsum(cost_n[i, :], out=pn[i, 1:])

    def bump_history(self, increment: float = 0.5) -> None:
        """Raise history cost on currently overflowed edges (PathFinder)."""
        self.history_e += increment * (self.use_e > self.cap_e)
        self.history_n += increment * (self.use_n > self.cap_n)
