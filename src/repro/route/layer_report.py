"""Per-layer spreading of routed usage.

The router works on horizontal/vertical aggregates; this report
re-distributes the committed usage over the spec's metal layers in
proportion to each layer's capacity share — the standard first-order
layer-assignment model — and reports per-layer wirelength and peak
utilization.  Useful when comparing placements whose congestion differs
mostly on the scarce low layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.route.graph import GridGraph
from repro.route.spec import LayerSpec, RoutingSpec


@dataclass
class LayerUsage:
    """Usage of one layer after proportional spreading."""

    layer: LayerSpec
    wirelength: float
    peak_utilization: float
    usage: np.ndarray  # per-edge usage on this layer

    def as_row(self) -> dict:
        return {
            "layer": self.layer.name,
            "dir": self.layer.direction,
            "capacity": self.layer.capacity,
            "wirelength": round(self.wirelength, 1),
            "peak_util": round(self.peak_utilization, 3),
        }


def spread_over_layers(graph: GridGraph, spec: RoutingSpec | None = None) -> list:
    """Distribute routed usage over the spec's layers; returns LayerUsage.

    Raises when the spec carries no layer breakdown.
    """
    spec = spec or graph.spec
    if not spec.layers:
        raise ValueError("routing spec has no per-layer breakdown")
    out = []
    for direction, use, cap in (
        ("H", graph.use_e, graph.cap_e),
        ("V", graph.use_n, graph.cap_n),
    ):
        members = [l for l in spec.layers if l.direction == direction]
        total_cap = sum(l.capacity for l in members)
        for layer in members:
            share = layer.capacity / total_cap if total_cap > 0 else 0.0
            layer_use = use * share
            if cap.size and layer.capacity > 0:
                cap_share = cap * share
                with np.errstate(divide="ignore", invalid="ignore"):
                    util = np.where(
                        cap_share > 0, layer_use / np.maximum(cap_share, 1e-12), 0.0
                    )
                peak = float(util.max()) if util.size else 0.0
            else:
                peak = 0.0
            out.append(
                LayerUsage(
                    layer=layer,
                    wirelength=float(layer_use.sum()),
                    peak_utilization=peak,
                    usage=layer_use,
                )
            )
    return out
