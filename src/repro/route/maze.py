"""A* maze routing on the tile grid.

The escape hatch for connections pattern routing cannot realize without
overflow: finds the cheapest monotone-or-not path between two tiles under
the current congestion costs, restricted to a search window around the
connection's bounding box.

Two implementations share the algorithm (same frontier ordering, same
expansion order, so they produce identical paths):

* :func:`maze_route` — the hot path.  Search state lives in flat arrays
  indexed by an integer-encoded ``(i, j, dir)`` state, and the window's
  edge costs are pulled out once; only the heapq frontier allocates.
* :func:`maze_route_reference` — the original dict-of-tuples version,
  kept as the golden reference for the equivalence tests and the perf
  harness baseline.
"""

from __future__ import annotations

import heapq

import numpy as np

_INF = float("inf")


def maze_route(
    cost_e: np.ndarray,
    cost_n: np.ndarray,
    start: tuple,
    goal: tuple,
    window=None,
    bend_cost: float = 0.05,
):
    """Cheapest path from ``start`` to ``goal`` tile, as a run list.

    ``window`` is ``(i_lo, j_lo, i_hi, j_hi)`` inclusive bounds on the
    searched tiles; default: whole grid.  ``bend_cost`` mildly prefers
    straighter paths so run lists stay short.  Returns ``(cost, runs)``
    or ``(inf, None)`` when no path exists in the window.
    """
    nx = cost_n.shape[0]
    ny = cost_e.shape[1]
    if window is None:
        window = (0, 0, nx - 1, ny - 1)
    i_lo, j_lo, i_hi, j_hi = window
    si, sj = start
    gi, gj = goal
    if (si, sj) == (gi, gj):
        return 0.0, []
    # The flat state space must contain both endpoints.
    i_lo = min(i_lo, si, gi)
    j_lo = min(j_lo, sj, gj)
    i_hi = max(i_hi, si, gi)
    j_hi = max(j_hi, sj, gj)
    w = i_hi - i_lo + 1
    h = j_hi - j_lo + 1
    # States are ``(tile * 5) + dir`` over window-local tiles, with dir
    # 0 = start (no incoming direction), then 1=E, 2=W, 3=N, 4=S — the
    # encoding is ordered exactly like the reference's (i, j, d) tuples,
    # so heap ties break identically.  Flat lists beat numpy here: the
    # inner loop is all scalar reads/writes.
    best = [_INF] * (w * h * 5)
    came = [-1] * (w * h * 5)
    # Window-local edge costs as nested lists for cheap scalar access:
    # ce[li][lj] is the east edge out of local tile (li, lj), cn likewise
    # for the north edge.
    ce = cost_e[i_lo:i_hi, j_lo : j_hi + 1].tolist() if w > 1 else []
    cn = cost_n[i_lo : i_hi + 1, j_lo:j_hi].tolist() if h > 1 else []
    ls_i = si - i_lo
    ls_j = sj - j_lo
    lg_i = gi - i_lo
    lg_j = gj - j_lo
    start_tile = ls_i * h + ls_j
    best[start_tile * 5] = 0.0
    # Per-tile admissible heuristic (manhattan distance to goal; edge
    # costs are >= ~1), flat-indexed like the tiles.
    hs = (
        np.abs(np.arange(w) - lg_i)[:, None] + np.abs(np.arange(h) - lg_j)
    ).ravel().tolist()
    # Heap entries are (f, g, tile, dir, li, lj): comparison order
    # (f, g, tile, dir) matches the reference's (f, g, i, j, d) tuples,
    # and carrying li/lj/dir avoids divmods in the loop.
    heap = [(float(hs[start_tile]), 0.0, start_tile, 0, ls_i, ls_j)]
    push = heapq.heappush
    pop = heapq.heappop
    found = -1
    goal_tile = lg_i * h + lg_j
    w1 = w - 1
    h1 = h - 1
    while heap:
        f, g, tile, d, li, lj = pop(heap)
        state = tile * 5 + d
        if tile == goal_tile:
            found = state
            break
        if g > best[state]:
            continue
        # Expansion order matches the reference: E, W, N, S.
        if li < w1:
            ng = g + ce[li][lj] + (bend_cost if d != 0 and d != 1 else 0.0)
            ntile = tile + h
            ns = ntile * 5 + 1
            if ng < best[ns]:
                best[ns] = ng
                came[ns] = state
                push(heap, (ng + hs[ntile], ng, ntile, 1, li + 1, lj))
        if li > 0:
            ng = g + ce[li - 1][lj] + (bend_cost if d != 0 and d != 2 else 0.0)
            ntile = tile - h
            ns = ntile * 5 + 2
            if ng < best[ns]:
                best[ns] = ng
                came[ns] = state
                push(heap, (ng + hs[ntile], ng, ntile, 2, li - 1, lj))
        if lj < h1:
            ng = g + cn[li][lj] + (bend_cost if d != 0 and d != 3 else 0.0)
            ntile = tile + 1
            ns = ntile * 5 + 3
            if ng < best[ns]:
                best[ns] = ng
                came[ns] = state
                push(heap, (ng + hs[ntile], ng, ntile, 3, li, lj + 1))
        if lj > 0:
            ng = g + cn[li][lj - 1] + (bend_cost if d != 0 and d != 4 else 0.0)
            ntile = tile - 1
            ns = ntile * 5 + 4
            if ng < best[ns]:
                best[ns] = ng
                came[ns] = state
                push(heap, (ng + hs[ntile], ng, ntile, 4, li, lj - 1))
    if found < 0:
        return np.inf, None
    # Reconstruct the tile path (window-local -> global).
    path = []
    state = found
    while state >= 0:
        tile = state // 5
        li, lj = divmod(tile, h)
        path.append((li + i_lo, lj + j_lo))
        state = came[state]
    path.reverse()
    return best[found], _path_to_runs(path)


def maze_route_reference(
    cost_e: np.ndarray,
    cost_n: np.ndarray,
    start: tuple,
    goal: tuple,
    window=None,
    bend_cost: float = 0.05,
):
    """Dict-of-tuples A*: the original implementation, kept as reference."""
    nx = cost_n.shape[0]
    ny = cost_e.shape[1]
    if window is None:
        window = (0, 0, nx - 1, ny - 1)
    i_lo, j_lo, i_hi, j_hi = window
    si, sj = start
    gi, gj = goal
    min_edge = 1.0  # admissible heuristic scale: costs are >= ~1

    # State: (f, g, i, j, incoming direction), directions 0=E,1=W,2=N,3=S.
    start_state = (si, sj, -1)
    best = {start_state: 0.0}
    came = {}
    h0 = (abs(gi - si) + abs(gj - sj)) * min_edge
    heap = [(h0, 0.0, si, sj, -1)]
    found = None
    while heap:
        f, g, i, j, d = heapq.heappop(heap)
        if (i, j) == (gi, gj):
            found = (i, j, d)
            break
        if g > best.get((i, j, d), np.inf):
            continue
        moves = []
        if i < i_hi:
            moves.append((i + 1, j, 0, cost_e[i, j]))
        if i > i_lo:
            moves.append((i - 1, j, 1, cost_e[i - 1, j]))
        if j < j_hi:
            moves.append((i, j + 1, 2, cost_n[i, j]))
        if j > j_lo:
            moves.append((i, j - 1, 3, cost_n[i, j - 1]))
        for ni, nj, nd, ec in moves:
            ng = g + float(ec) + (bend_cost if d != -1 and d != nd else 0.0)
            key = (ni, nj, nd)
            if ng < best.get(key, np.inf):
                best[key] = ng
                came[key] = (i, j, d)
                h = (abs(gi - ni) + abs(gj - nj)) * min_edge
                heapq.heappush(heap, (ng + h, ng, ni, nj, nd))
    if found is None:
        return np.inf, None
    # Reconstruct the tile path.
    path = []
    state = found
    while state != start_state:
        path.append((state[0], state[1]))
        state = came[state]
    path.append((si, sj))
    path.reverse()
    return best[found], _path_to_runs(path)


def _path_to_runs(path):
    """Merge a tile path into maximal horizontal/vertical runs."""
    runs = []
    k = 0
    n = len(path)
    while k < n - 1:
        i0, j0 = path[k]
        i1, j1 = path[k + 1]
        if j0 == j1:  # horizontal
            m = k + 1
            while m + 1 < n and path[m + 1][1] == j0:
                m += 1
            a = min(path[k][0], path[m][0])
            b = max(path[k][0], path[m][0])
            runs.append(("H", j0, a, b))
            k = m
        else:  # vertical
            m = k + 1
            while m + 1 < n and path[m + 1][0] == i0:
                m += 1
            a = min(path[k][1], path[m][1])
            b = max(path[k][1], path[m][1])
            runs.append(("V", i0, a, b))
            k = m
    return runs
