"""A* maze routing on the tile grid.

The escape hatch for connections pattern routing cannot realize without
overflow: finds the cheapest monotone-or-not path between two tiles under
the current congestion costs, restricted to a search window around the
connection's bounding box.
"""

from __future__ import annotations

import heapq

import numpy as np


def maze_route(
    cost_e: np.ndarray,
    cost_n: np.ndarray,
    start: tuple,
    goal: tuple,
    window=None,
    bend_cost: float = 0.05,
):
    """Cheapest path from ``start`` to ``goal`` tile, as a run list.

    ``window`` is ``(i_lo, j_lo, i_hi, j_hi)`` inclusive bounds on the
    searched tiles; default: whole grid.  ``bend_cost`` mildly prefers
    straighter paths so run lists stay short.  Returns ``(cost, runs)``
    or ``(inf, None)`` when no path exists in the window.
    """
    nx = cost_n.shape[0]
    ny = cost_e.shape[1]
    if window is None:
        window = (0, 0, nx - 1, ny - 1)
    i_lo, j_lo, i_hi, j_hi = window
    si, sj = start
    gi, gj = goal
    min_edge = 1.0  # admissible heuristic scale: costs are >= ~1

    # State: (f, g, i, j, incoming direction), directions 0=E,1=W,2=N,3=S.
    start_state = (si, sj, -1)
    best = {start_state: 0.0}
    came = {}
    h0 = (abs(gi - si) + abs(gj - sj)) * min_edge
    heap = [(h0, 0.0, si, sj, -1)]
    found = None
    while heap:
        f, g, i, j, d = heapq.heappop(heap)
        if (i, j) == (gi, gj):
            found = (i, j, d)
            break
        if g > best.get((i, j, d), np.inf):
            continue
        moves = []
        if i < i_hi:
            moves.append((i + 1, j, 0, cost_e[i, j]))
        if i > i_lo:
            moves.append((i - 1, j, 1, cost_e[i - 1, j]))
        if j < j_hi:
            moves.append((i, j + 1, 2, cost_n[i, j]))
        if j > j_lo:
            moves.append((i, j - 1, 3, cost_n[i, j - 1]))
        for ni, nj, nd, ec in moves:
            ng = g + float(ec) + (bend_cost if d != -1 and d != nd else 0.0)
            key = (ni, nj, nd)
            if ng < best.get(key, np.inf):
                best[key] = ng
                came[key] = (i, j, d)
                h = (abs(gi - ni) + abs(gj - nj)) * min_edge
                heapq.heappush(heap, (ng + h, ng, ni, nj, nd))
    if found is None:
        return np.inf, None
    # Reconstruct the tile path.
    path = []
    state = found
    while state != start_state:
        path.append((state[0], state[1]))
        state = came[state]
    path.append((si, sj))
    path.reverse()
    return best[found], _path_to_runs(path)


def _path_to_runs(path):
    """Merge a tile path into maximal horizontal/vertical runs."""
    runs = []
    k = 0
    n = len(path)
    while k < n - 1:
        i0, j0 = path[k]
        i1, j1 = path[k + 1]
        if j0 == j1:  # horizontal
            m = k + 1
            while m + 1 < n and path[m + 1][1] == j0:
                m += 1
            a = min(path[k][0], path[m][0])
            b = max(path[k][0], path[m][0])
            runs.append(("H", j0, a, b))
            k = m
        else:  # vertical
            m = k + 1
            while m + 1 < n and path[m + 1][0] == i0:
                m += 1
            a = min(path[k][1], path[m][1])
            b = max(path[k][1], path[m][1])
            runs.append(("V", i0, a, b))
            k = m
    return runs
