"""Contest-style congestion metrics.

The DAC/ICCAD 2012 routability contests scored a placement by routing it
with a global router and computing **ACE** — the Average Congestion of the
top x% most-congested edges — at several x, combining them into the **RC**
(routing congestion) score, and penalizing HPWL by the amount RC exceeds
100%:

    scaledHPWL = HPWL * (1 + penalty * max(0, RC - 1))

with ``penalty`` 0.03 per percentage point in the contest (0.03 * 100 *
(RC - 1) here since RC is kept as a ratio).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

ACE_LEVELS = (0.005, 0.01, 0.02, 0.05)
SCALED_HPWL_PENALTY = 0.03  # per percent of RC over 100%


def ace(congestion: np.ndarray, fraction: float) -> float:
    """Average congestion of the top ``fraction`` of edges.

    ``congestion`` is usage/capacity per edge; infinite entries (usage on
    zero-capacity edges) are clipped to a large finite value so a single
    blocked edge cannot dominate the average unboundedly.
    """
    if congestion.size == 0:
        return 0.0
    c = np.minimum(np.nan_to_num(congestion, posinf=10.0), 10.0)
    k = max(1, int(np.ceil(fraction * c.size)))
    top = np.partition(c, c.size - k)[c.size - k :]
    return float(top.mean())


def rc_score(congestion: np.ndarray, levels=ACE_LEVELS) -> float:
    """The contest RC: mean of ACE at the standard levels, as a ratio.

    1.0 means the worst pockets of the design are exactly at capacity;
    above 1.0 the placement is unroutable without detours.
    """
    if congestion.size == 0:
        return 0.0
    return float(np.mean([ace(congestion, f) for f in levels]))


def scaled_hpwl(hpwl: float, rc: float, penalty: float = SCALED_HPWL_PENALTY) -> float:
    """HPWL scaled by the congestion penalty (the contest objective)."""
    over_percent = max(0.0, (rc - 1.0) * 100.0)
    return hpwl * (1.0 + penalty * over_percent)


@dataclass
class CongestionMetrics:
    """Everything the result tables report about one routed placement."""

    total_overflow: float
    max_overflow: float
    routed_wirelength: float
    ace_levels: dict = field(default_factory=dict)
    rc: float = 0.0
    peak_congestion: float = 0.0
    vias: int = 0  # direction changes + pin-access vias over all routes

    def as_row(self) -> dict:
        row = {
            "overflow": round(self.total_overflow, 1),
            "max_ov": round(self.max_overflow, 2),
            "routed_wl": round(self.routed_wirelength, 1),
            "vias": self.vias,
            "RC": round(self.rc, 4),
            "peak": round(self.peak_congestion, 3),
        }
        for frac, value in sorted(self.ace_levels.items()):
            row[f"ACE{frac * 100:g}%"] = round(value, 4)
        return row


def congestion_metrics(graph) -> CongestionMetrics:
    """Compute :class:`CongestionMetrics` from a routed :class:`GridGraph`."""
    congestion = graph.edge_congestion()
    levels = {f: ace(congestion, f) for f in ACE_LEVELS}
    peak = float(np.minimum(np.nan_to_num(congestion, posinf=10.0), 10.0).max()) if congestion.size else 0.0
    return CongestionMetrics(
        total_overflow=graph.total_overflow(),
        max_overflow=graph.max_overflow(),
        routed_wirelength=graph.wirelength(),
        ace_levels=levels,
        rc=float(np.mean(list(levels.values()))) if levels else 0.0,
        peak_congestion=peak,
    )
