"""Pattern routing: L and Z shapes evaluated with prefix-summed edge costs.

For one two-pin connection the candidate topologies are the two L shapes
(one bend) and the Z shapes (two bends, every intermediate bend position).
Costs of straight runs are range sums over the edge-cost arrays, so with
prefix sums an L costs O(1) and a full Z scan O(span) per connection —
cheap enough to route tens of thousands of connections per sweep.

Routes are represented as lists of runs: ``("H", j, a, b)`` crosses east
edges ``a..b-1`` on row ``j``; ``("V", i, a, b)`` crosses north edges
``a..b-1`` on column ``i``.
"""

from __future__ import annotations

import numpy as np


def prefix_costs(cost_e: np.ndarray, cost_n: np.ndarray):
    """Zero-padded prefix sums of the edge costs.

    ``pe[b, j] - pe[a, j]`` is the cost of crossing east edges ``a..b-1``
    on row ``j``; ``pn[i, b] - pn[i, a]`` likewise for north edges.
    """
    nx_e, ny = cost_e.shape
    pe = np.zeros((nx_e + 1, ny))
    np.cumsum(cost_e, axis=0, out=pe[1:, :])
    nx, ny_n = cost_n.shape
    pn = np.zeros((nx, ny_n + 1))
    np.cumsum(cost_n, axis=1, out=pn[:, 1:])
    return pe, pn


def h_run_cost(pe: np.ndarray, j, i_a, i_b):
    """Cost of horizontal runs (vectorized over aligned index arrays)."""
    lo = np.minimum(i_a, i_b)
    hi = np.maximum(i_a, i_b)
    return pe[hi, j] - pe[lo, j]


def v_run_cost(pn: np.ndarray, i, j_a, j_b):
    """Cost of vertical runs (vectorized over aligned index arrays)."""
    lo = np.minimum(j_a, j_b)
    hi = np.maximum(j_a, j_b)
    return pn[i, hi] - pn[i, lo]


def l_route_costs(pe, pn, i0, j0, i1, j1):
    """Costs of the two L shapes for each connection.

    Returns ``(cost_hv, cost_vh)`` where HV runs horizontally at ``j0``
    first, VH vertically at ``i0`` first.
    """
    cost_hv = h_run_cost(pe, j0, i0, i1) + v_run_cost(pn, i1, j0, j1)
    cost_vh = v_run_cost(pn, i0, j0, j1) + h_run_cost(pe, j1, i0, i1)
    return cost_hv, cost_vh


def l_route_runs(i0: int, j0: int, i1: int, j1: int, hv_first: bool):
    """The run list of the chosen L shape (degenerate runs dropped)."""
    runs = []
    lo_i, hi_i = min(i0, i1), max(i0, i1)
    lo_j, hi_j = min(j0, j1), max(j0, j1)
    if hv_first:
        if hi_i > lo_i:
            runs.append(("H", j0, lo_i, hi_i))
        if hi_j > lo_j:
            runs.append(("V", i1, lo_j, hi_j))
    else:
        if hi_j > lo_j:
            runs.append(("V", i0, lo_j, hi_j))
        if hi_i > lo_i:
            runs.append(("H", j1, lo_i, hi_i))
    return runs


def best_z_route(pe, pn, i0: int, j0: int, i1: int, j1: int):
    """The cheapest Z route (both orientations, all bend positions).

    Returns ``(cost, runs)``; straight/degenerate connections fall back to
    the L machinery.  HVH bends at an intermediate column ``m`` strictly
    between the endpoints; VHV at an intermediate row.
    """
    lo_i, hi_i = min(i0, i1), max(i0, i1)
    lo_j, hi_j = min(j0, j1), max(j0, j1)
    best_cost = np.inf
    best_runs = None
    if hi_i - lo_i >= 2 and hi_j > lo_j:
        cols = np.arange(lo_i + 1, hi_i)
        cost = (
            h_run_cost(pe, j0, i0, cols)
            + v_run_cost(pn, cols, j0, j1)
            + h_run_cost(pe, j1, cols, i1)
        )
        k = int(np.argmin(cost))
        if cost[k] < best_cost:
            m = int(cols[k])
            best_cost = float(cost[k])
            best_runs = [
                ("H", j0, min(i0, m), max(i0, m)),
                ("V", m, lo_j, hi_j),
                ("H", j1, min(m, i1), max(m, i1)),
            ]
    if hi_j - lo_j >= 2 and hi_i > lo_i:
        rows = np.arange(lo_j + 1, hi_j)
        cost = (
            v_run_cost(pn, i0, j0, rows)
            + h_run_cost(pe, rows, i0, i1)
            + v_run_cost(pn, i1, rows, j1)
        )
        k = int(np.argmin(cost))
        if cost[k] < best_cost:
            m = int(rows[k])
            best_cost = float(cost[k])
            best_runs = [
                ("V", i0, min(j0, m), max(j0, m)),
                ("H", m, lo_i, hi_i),
                ("V", i1, min(m, j1), max(m, j1)),
            ]
    if best_runs is None:
        chv, cvh = l_route_costs(
            pe, pn, np.array([i0]), np.array([j0]), np.array([i1]), np.array([j1])
        )
        if chv[0] <= cvh[0]:
            return float(chv[0]), l_route_runs(i0, j0, i1, j1, True)
        return float(cvh[0]), l_route_runs(i0, j0, i1, j1, False)
    # Drop degenerate (zero-length) runs.
    best_runs = [r for r in best_runs if r[3] > r[2]]
    return best_cost, best_runs


def runs_cost(pe, pn, runs) -> float:
    """Total cost of a run list under the prefix-summed costs."""
    total = 0.0
    for kind, line, a, b in runs:
        if kind == "H":
            total += float(pe[b, line] - pe[a, line])
        else:
            total += float(pn[line, b] - pn[line, a])
    return total
