"""The evaluation global router.

Three phases, each congestion-aware:

1. **L sweeps** — every two-pin connection gets the cheaper of its two
   one-bend routes; the whole sweep is vectorized with prefix-summed edge
   costs and repeated so later sweeps see earlier demand.
2. **Z refinement** — connections crossing overflowed edges are ripped and
   re-routed with the best two-bend route.
3. **Maze rip-up-and-reroute** — remaining offenders go through A* with
   PathFinder-style history costs, several rounds.

The router is deliberately an *evaluator*: good enough to rank placements
by routability (the contest methodology), not a sign-off router.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import get_tracer
from repro.route.graph import GridGraph
from repro.route.maze import maze_route
from repro.route.metrics import CongestionMetrics, congestion_metrics
from repro.route.pattern import (
    best_z_route,
    l_route_costs,
    l_route_runs,
    prefix_costs,
    runs_cost,
)
from repro.route.spec import RoutingSpec
from repro.route.steiner import decompose_net


@dataclass
class RouteResult:
    """Outcome of routing one placement."""

    graph: GridGraph
    metrics: CongestionMetrics
    num_segments: int
    maze_rerouted: int
    # Total overflow after each rip-up/re-route round: index 0 is the
    # initial L-sweep commit, then one entry per Z/maze round that ran.
    overflow_per_round: list = field(default_factory=list)

    @property
    def rc(self) -> float:
        return self.metrics.rc

    def congestion_map(self) -> np.ndarray:
        """Per-tile congestion heat map (usage/capacity)."""
        return self.graph.tile_congestion()


class GlobalRouter:
    """Routes a placed design over a :class:`RoutingSpec`."""

    def __init__(
        self,
        spec: RoutingSpec,
        *,
        sweeps: int = 2,
        z_refine: bool = True,
        maze_rounds: int = 3,
        max_maze_nets: int = 1500,
        maze_window_margin: int = 6,
        cost_refresh: int = 1,
    ):
        self.spec = spec
        self.sweeps = max(1, sweeps)
        self.z_refine = z_refine
        self.maze_rounds = maze_rounds
        self.max_maze_nets = max_maze_nets
        self.maze_window_margin = maze_window_margin
        self.cost_refresh = cost_refresh

    # ------------------------------------------------------------------
    def segments_for(self, arrays, cx: np.ndarray, cy: np.ndarray):
        """Two-pin tile connections of every net of the placement."""
        grid = self.spec.grid
        px, py = arrays.pin_positions(cx, cy)
        tix, tiy = grid.index_of(px, py)
        seg = []
        ptr = arrays.net_ptr
        for n in range(arrays.num_nets):
            a, b = ptr[n], ptr[n + 1]
            if b - a < 2:
                continue
            for i0, j0, i1, j1 in decompose_net(tix[a:b], tiy[a:b]):
                seg.append((i0, j0, i1, j1))
        if not seg:
            return (np.zeros((0,), dtype=np.int64),) * 4
        arr = np.asarray(seg, dtype=np.int64)
        return arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3]

    # ------------------------------------------------------------------
    def route(self, design=None, *, arrays=None, cx=None, cy=None) -> RouteResult:
        """Route ``design`` (or explicit pin arrays + centres)."""
        if design is not None:
            arrays = design.pin_arrays()
            cx, cy = design.pull_centers()
        if arrays is None or cx is None or cy is None:
            raise ValueError("route() needs a design or (arrays, cx, cy)")
        tracer = get_tracer()
        graph = GridGraph(self.spec)
        with tracer.span("decompose"):
            i0, j0, i1, j1 = self.segments_for(arrays, cx, cy)
        nseg = len(i0)
        if nseg == 0:
            return RouteResult(graph, congestion_metrics(graph), 0, 0)

        overflow_per_round: list[float] = []

        def note_round(overflow: float) -> float:
            tracer.metrics.record("route.overflow", len(overflow_per_round), overflow)
            overflow_per_round.append(overflow)
            return overflow

        with tracer.span("l_sweeps", sweeps=self.sweeps):
            hv = self._l_sweeps(graph, i0, j0, i1, j1)
            routes = [
                l_route_runs(int(a), int(b), int(c), int(d), bool(h))
                for a, b, c, d, h in zip(i0, j0, i1, j1, hv)
            ]
            self._commit_all(graph, routes)
        overflow = note_round(graph.total_overflow())
        maze_count = 0
        if self.z_refine and overflow > 0:
            with tracer.span("z_refine"):
                self._reroute_offenders(
                    graph, routes, i0, j0, i1, j1, use_maze=False
                )
            overflow = note_round(graph.total_overflow())
        for rnd in range(self.maze_rounds):
            if overflow <= 0:
                break
            with tracer.span(f"maze[{rnd}]"):
                graph.bump_history()
                maze_count += self._reroute_offenders(
                    graph, routes, i0, j0, i1, j1, use_maze=True
                )
            overflow = note_round(graph.total_overflow())
        metrics = congestion_metrics(graph)
        # Via estimate: one via per bend (adjacent runs on H/V layers)
        # plus two pin-access vias per routed connection.
        metrics.vias = sum(max(0, len(r) - 1) for r in routes) + 2 * nseg
        return RouteResult(graph, metrics, nseg, maze_count, overflow_per_round)

    # ------------------------------------------------------------------
    def _l_sweeps(self, graph: GridGraph, i0, j0, i1, j1) -> np.ndarray:
        """Iterated vectorized L routing; returns the HV/VH choice."""
        nseg = len(i0)
        hv = np.ones(nseg, dtype=bool)
        for _ in range(self.sweeps):
            cost_e, cost_n = graph.cost_arrays()
            pe, pn = prefix_costs(cost_e, cost_n)
            chv, cvh = l_route_costs(pe, pn, i0, j0, i1, j1)
            hv = chv <= cvh
            self._commit_l_choices(graph, i0, j0, i1, j1, hv)
        return hv

    @staticmethod
    def _commit_l_choices(graph: GridGraph, i0, j0, i1, j1, hv) -> None:
        """Rebuild usage from scratch for the given L choices (diff trick)."""
        nx, ny = graph.nx, graph.ny
        lo_i = np.minimum(i0, i1)
        hi_i = np.maximum(i0, i1)
        lo_j = np.minimum(j0, j1)
        hi_j = np.maximum(j0, j1)
        h_rows = np.where(hv, j0, j1)
        v_cols = np.where(hv, i1, i0)
        de = np.zeros((nx, ny))
        has_h = hi_i > lo_i
        np.add.at(de, (lo_i[has_h], h_rows[has_h]), 1.0)
        np.add.at(de, (hi_i[has_h], h_rows[has_h]), -1.0)
        dn = np.zeros((nx, ny))
        has_v = hi_j > lo_j
        np.add.at(dn, (v_cols[has_v], lo_j[has_v]), 1.0)
        np.add.at(dn, (v_cols[has_v], hi_j[has_v]), -1.0)
        graph.use_e = np.cumsum(de, axis=0)[: nx - 1, :]
        graph.use_n = np.cumsum(dn, axis=1)[:, : ny - 1]

    @staticmethod
    def _commit_all(graph: GridGraph, routes) -> None:
        """Rebuild usage from explicit run lists."""
        graph.reset_usage()
        for runs in routes:
            for kind, line, a, b in runs:
                if kind == "H":
                    graph.add_horizontal_run(line, a, b)
                else:
                    graph.add_vertical_run(line, a, b)

    @staticmethod
    def _rip(graph: GridGraph, runs) -> None:
        for kind, line, a, b in runs:
            if kind == "H":
                graph.add_horizontal_run(line, a, b, -1.0)
            else:
                graph.add_vertical_run(line, a, b, -1.0)

    def _offending_segments(self, graph: GridGraph, routes) -> list:
        """Indices of segments whose route crosses an overflowed edge."""
        over_e = graph.use_e > graph.cap_e
        over_n = graph.use_n > graph.cap_n
        out = []
        for idx, runs in enumerate(routes):
            hit = False
            for kind, line, a, b in runs:
                if kind == "H":
                    if over_e[a:b, line].any():
                        hit = True
                        break
                else:
                    if over_n[line, a:b].any():
                        hit = True
                        break
            if hit:
                out.append(idx)
        return out

    def _reroute_offenders(
        self, graph: GridGraph, routes, i0, j0, i1, j1, *, use_maze: bool
    ) -> int:
        """Rip and re-route segments crossing overflow; returns count."""
        offenders = self._offending_segments(graph, routes)
        if not offenders:
            return 0
        # Worst (longest) first would hog resources; shortest first frees
        # hotspots fastest — the usual negotiation ordering.
        offenders.sort(
            key=lambda s: abs(int(i1[s]) - int(i0[s])) + abs(int(j1[s]) - int(j0[s]))
        )
        offenders = offenders[: self.max_maze_nets]
        cost_e = cost_n = pe = pn = None
        rerouted = 0
        for count, s in enumerate(offenders):
            self._rip(graph, routes[s])
            # Fresh costs per reroute (post-rip): identical offenders must
            # see each other's commitments or they all pile into the same
            # detour and the negotiation never converges.
            if count % self.cost_refresh == 0 or cost_e is None:
                cost_e, cost_n = graph.cost_arrays()
                pe, pn = prefix_costs(cost_e, cost_n)
            a, b, c, d = int(i0[s]), int(j0[s]), int(i1[s]), int(j1[s])
            z_cost, z_runs = best_z_route(pe, pn, a, b, c, d)
            new_runs = z_runs
            if use_maze:
                margin = self.maze_window_margin
                window = (
                    max(0, min(a, c) - margin),
                    max(0, min(b, d) - margin),
                    min(graph.nx - 1, max(a, c) + margin),
                    min(graph.ny - 1, max(b, d) + margin),
                )
                m_cost, m_runs = maze_route(cost_e, cost_n, (a, b), (c, d), window)
                if m_runs is not None and m_cost < z_cost:
                    new_runs = m_runs
            # Keep the better of old and new under current costs.
            if runs_cost(pe, pn, routes[s]) < runs_cost(pe, pn, new_runs):
                new_runs = routes[s]
            routes[s] = new_runs
            for kind, line, lo, hi in new_runs:
                if kind == "H":
                    graph.add_horizontal_run(line, lo, hi)
                else:
                    graph.add_vertical_run(line, lo, hi)
            rerouted += 1
        return rerouted


def route_design(design, spec: RoutingSpec | None = None, **router_kw) -> RouteResult:
    """Convenience wrapper: route ``design`` over ``spec`` (or its own)."""
    if spec is None:
        spec = design.routing
    if spec is None:
        raise ValueError("design has no routing spec; pass one explicitly")
    return GlobalRouter(spec, **router_kw).route(design)
