"""The evaluation global router.

Three phases, each congestion-aware:

1. **L sweeps** — every two-pin connection gets the cheaper of its two
   one-bend routes; the whole sweep is vectorized with prefix-summed edge
   costs and repeated so later sweeps see earlier demand.
2. **Z refinement** — connections crossing overflowed edges are ripped and
   re-routed with the best two-bend route.
3. **Maze rip-up-and-reroute** — remaining offenders go through A* with
   PathFinder-style history costs, several rounds.

The router is deliberately an *evaluator*: good enough to rank placements
by routability (the contest methodology), not a sign-off router.

Hot-path layout (see ``docs/performance.md``): decomposition runs through
the vectorized, memoized :func:`~repro.route.steiner.decompose_all`;
offender detection flattens every route's runs into edge-interval arrays
and intersects them with prefix-summed overflow masks (the CSR
incidence trick), so a rip-up round costs O(runs) numpy instead of a
Python scan with per-run ``any()``; usage updates are incremental
(rip/commit touch only the changed segment's edges, full rebuilds use
the diff-array/cumsum commit).  ``reference=True`` selects the original
per-net/dict/scan implementations — the golden baseline for the
equivalence tests and ``benchmarks/bench_perf.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import get_tracer
from repro.parallel import resolve_workers
from repro.route.graph import GridGraph
from repro.route.maze import maze_route, maze_route_reference
from repro.route.metrics import CongestionMetrics, congestion_metrics
from repro.route.pattern import (
    best_z_route,
    l_route_costs,
    l_route_runs,
    prefix_costs,
    runs_cost,
)
from repro.route.spec import RoutingSpec
from repro.route.steiner import decompose_all, decompose_net


class RouteTimeout(RuntimeError):
    """Routing was cut short by its stage watchdog.

    Raised cooperatively at round boundaries when the ``should_stop``
    callback passed to :meth:`GlobalRouter.route` returns True; the flow
    catches it and degrades to estimator-based congestion metrics.
    """

    def __init__(self, phase: str, rounds_done: int):
        super().__init__(
            f"routing stopped by watchdog during {phase} "
            f"({rounds_done} rounds completed)"
        )
        self.phase = phase
        self.rounds_done = rounds_done


@dataclass
class RouteResult:
    """Outcome of routing one placement."""

    graph: GridGraph
    metrics: CongestionMetrics
    num_segments: int
    maze_rerouted: int
    # Total overflow after each rip-up/re-route round: index 0 is the
    # initial L-sweep commit, then one entry per Z/maze round that ran.
    overflow_per_round: list = field(default_factory=list)

    @property
    def rc(self) -> float:
        return self.metrics.rc

    def congestion_map(self) -> np.ndarray:
        """Per-tile congestion heat map (usage/capacity)."""
        return self.graph.tile_congestion()


class GlobalRouter:
    """Routes a placed design over a :class:`RoutingSpec`.

    ``reference=True`` swaps every optimized hot path for the original
    straight-line implementation (per-net decomposition, dict-based maze
    A*, Python offender scan, from-scratch usage rebuild).  Results are
    identical either way; the flag exists so tests and the perf harness
    can hold the optimized paths against a golden baseline.
    """

    def __init__(
        self,
        spec: RoutingSpec,
        *,
        sweeps: int = 2,
        z_refine: bool = True,
        maze_rounds: int = 3,
        max_maze_nets: int = 1500,
        maze_window_margin: int = 6,
        cost_refresh: int = 1,
        reference: bool = False,
        workers: int = 1,
        workers_pinned: bool = False,
    ):
        self.spec = spec
        self.sweeps = max(1, sweeps)
        self.z_refine = z_refine
        self.maze_rounds = maze_rounds
        self.max_maze_nets = max_maze_nets
        self.maze_window_margin = maze_window_margin
        self.cost_refresh = cost_refresh
        self.reference = reference
        # Worker processes for the rip-up/re-route searches
        # (repro.parallel.route) — bit-identical to serial for any count.
        # 1 = serial (REPRO_WORKERS env can override), 0 = one per CPU.
        # Only the incremental cost mode (cost_refresh == 1) has a
        # parallel path; reference mode always runs serial.
        self.workers = workers
        # True = ``workers`` is exact; REPRO_WORKERS is never consulted
        # (per-job pinning on multi-job hosts).
        self.workers_pinned = workers_pinned
        self._par = None
        self._par_workers = 1
        self._par_failed = False

    # ------------------------------------------------------------------
    def segments_for(self, arrays, cx: np.ndarray, cy: np.ndarray):
        """Two-pin tile connections of every net of the placement."""
        grid = self.spec.grid
        px, py = arrays.pin_positions(cx, cy)
        tix, tiy = grid.index_of(px, py)
        if self.reference:
            return self._segments_for_reference(arrays, tix, tiy)
        i0, j0, i1, j1, stats = decompose_all(tix, tiy, arrays.net_ptr)
        metrics = get_tracer().metrics
        metrics.counter("route.decompose.deg2_batched").inc(stats["deg2"])
        metrics.counter("route.decompose.deg3_batched").inc(stats["deg3"])
        metrics.counter("route.decompose.mst_cache_hits").inc(stats["mst_hits"])
        metrics.counter("route.decompose.mst_cache_misses").inc(stats["mst_misses"])
        return i0, j0, i1, j1

    @staticmethod
    def _segments_for_reference(arrays, tix, tiy):
        """Per-net reference loop over :func:`decompose_net`."""
        seg = []
        ptr = arrays.net_ptr
        for n in range(arrays.num_nets):
            a, b = ptr[n], ptr[n + 1]
            if b - a < 2:
                continue
            for i0, j0, i1, j1 in decompose_net(tix[a:b], tiy[a:b]):
                seg.append((i0, j0, i1, j1))
        if not seg:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
            )
        arr = np.asarray(seg, dtype=np.int64)
        return arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3]

    # ------------------------------------------------------------------
    def route(
        self, design=None, *, arrays=None, cx=None, cy=None, should_stop=None
    ) -> RouteResult:
        """Route ``design`` (or explicit pin arrays + centres).

        ``should_stop`` is an optional zero-argument callable polled at
        phase/round boundaries; when it returns True the router raises
        :class:`RouteTimeout` instead of starting the next phase.
        """
        if design is not None:
            arrays = design.pin_arrays()
            cx, cy = design.pull_centers()
        if arrays is None or cx is None or cy is None:
            raise ValueError("route() needs a design or (arrays, cx, cy)")
        tracer = get_tracer()
        graph = GridGraph(self.spec)
        self._par = None
        self._par_failed = False
        self._par_workers = (
            1
            if self.reference
            else resolve_workers(self.workers, env=not self.workers_pinned)
        )
        try:
            return self._route_phases(
                graph, arrays, cx, cy, tracer, should_stop
            )
        finally:
            if self._par is not None:
                self._par.close()
                self._par = None

    def _route_phases(
        self, graph, arrays, cx, cy, tracer, should_stop
    ) -> RouteResult:
        if should_stop is not None and should_stop():
            raise RouteTimeout("decompose", 0)
        with tracer.span("decompose"):
            i0, j0, i1, j1 = self.segments_for(arrays, cx, cy)
        nseg = len(i0)
        if nseg == 0:
            return RouteResult(graph, congestion_metrics(graph), 0, 0)

        overflow_per_round: list[float] = []

        def note_round(overflow: float) -> float:
            tracer.metrics.record("route.overflow", len(overflow_per_round), overflow)
            overflow_per_round.append(overflow)
            return overflow

        with tracer.span("l_sweeps", sweeps=self.sweeps):
            hv = self._l_sweeps(graph, i0, j0, i1, j1)
            if self.reference:
                routes = [
                    l_route_runs(int(a), int(b), int(c), int(d), bool(h))
                    for a, b, c, d, h in zip(i0, j0, i1, j1, hv)
                ]
                # The last sweep's _commit_l_choices already left exactly
                # this usage; the reference path re-derives it from the
                # run lists to anchor the equivalence tests.
                self._commit_all_reference(graph, routes)
            else:
                routes = self._build_l_routes(i0, j0, i1, j1, hv)
        overflow = note_round(graph.total_overflow())
        maze_count = 0
        if self.z_refine and overflow > 0:
            if should_stop is not None and should_stop():
                raise RouteTimeout("z_refine", len(overflow_per_round))
            with tracer.span("z_refine"):
                self._reroute_offenders(
                    graph, routes, i0, j0, i1, j1, use_maze=False
                )
            overflow = note_round(graph.total_overflow())
        for rnd in range(self.maze_rounds):
            if overflow <= 0:
                break
            if should_stop is not None and should_stop():
                raise RouteTimeout(f"maze[{rnd}]", len(overflow_per_round))
            with tracer.span(f"maze[{rnd}]"):
                graph.bump_history()
                maze_count += self._reroute_offenders(
                    graph, routes, i0, j0, i1, j1, use_maze=True
                )
            overflow = note_round(graph.total_overflow())
        metrics = congestion_metrics(graph)
        # Via estimate: one via per bend (adjacent runs on H/V layers)
        # plus two pin-access vias per routed connection.
        metrics.vias = sum(max(0, len(r) - 1) for r in routes) + 2 * nseg
        return RouteResult(graph, metrics, nseg, maze_count, overflow_per_round)

    # ------------------------------------------------------------------
    def _l_sweeps(self, graph: GridGraph, i0, j0, i1, j1) -> np.ndarray:
        """Iterated vectorized L routing; returns the HV/VH choice."""
        nseg = len(i0)
        hv = np.ones(nseg, dtype=bool)
        for _ in range(self.sweeps):
            cost_e, cost_n = graph.cost_arrays()
            pe, pn = prefix_costs(cost_e, cost_n)
            chv, cvh = l_route_costs(pe, pn, i0, j0, i1, j1)
            hv = chv <= cvh
            self._commit_l_choices(graph, i0, j0, i1, j1, hv)
        return hv

    @staticmethod
    def _build_l_routes(i0, j0, i1, j1, hv) -> list:
        """Run lists of the chosen L shapes, built batch-wise.

        Same output as mapping :func:`l_route_runs` over the segments
        (degenerate runs dropped, H before V for HV shapes and V before H
        for VH), but the per-run tuples come out of three vectorized
        passes instead of one Python call per segment.
        """
        routes: list = [[] for _ in range(len(i0))]
        lo_i = np.minimum(i0, i1)
        hi_i = np.maximum(i0, i1)
        lo_j = np.minimum(j0, j1)
        hi_j = np.maximum(j0, j1)
        h_rows = np.where(hv, j0, j1)
        v_cols = np.where(hv, i1, i0)
        has_h = hi_i > lo_i
        has_v = hi_j > lo_j

        def emit(mask, kind, line, lo, hi):
            for s, ln, a, b in zip(
                np.flatnonzero(mask).tolist(),
                line[mask].tolist(),
                lo[mask].tolist(),
                hi[mask].tolist(),
            ):
                routes[s].append((kind, ln, a, b))

        # HV segments take their H run first, VH their V run first.
        emit(has_h & hv, "H", h_rows, lo_i, hi_i)
        emit(has_v, "V", v_cols, lo_j, hi_j)
        emit(has_h & ~hv, "H", h_rows, lo_i, hi_i)
        return routes

    @staticmethod
    def _commit_l_choices(graph: GridGraph, i0, j0, i1, j1, hv) -> None:
        """Rebuild usage from scratch for the given L choices (diff trick)."""
        nx, ny = graph.nx, graph.ny
        lo_i = np.minimum(i0, i1)
        hi_i = np.maximum(i0, i1)
        lo_j = np.minimum(j0, j1)
        hi_j = np.maximum(j0, j1)
        h_rows = np.where(hv, j0, j1)
        v_cols = np.where(hv, i1, i0)
        de = np.zeros((nx, ny))
        has_h = hi_i > lo_i
        np.add.at(de, (lo_i[has_h], h_rows[has_h]), 1.0)
        np.add.at(de, (hi_i[has_h], h_rows[has_h]), -1.0)
        dn = np.zeros((nx, ny))
        has_v = hi_j > lo_j
        np.add.at(dn, (v_cols[has_v], lo_j[has_v]), 1.0)
        np.add.at(dn, (v_cols[has_v], hi_j[has_v]), -1.0)
        graph.use_e = np.cumsum(de, axis=0)[: nx - 1, :]
        graph.use_n = np.cumsum(dn, axis=1)[:, : ny - 1]

    @staticmethod
    def _flatten_runs(routes):
        """Flat edge-interval arrays of every run of every route.

        Returns ``(seg, is_h, line, lo, hi)`` int64 arrays — the CSR
        incidence view the vectorized offender scan and the diff-array
        commit operate on — or ``None`` when there are no runs.
        """
        flat = [
            (s, kind == "H", line, a, b)
            for s, runs in enumerate(routes)
            for kind, line, a, b in runs
        ]
        if not flat:
            return None
        arr = np.asarray(flat, dtype=np.int64)
        return arr[:, 0], arr[:, 1].astype(bool), arr[:, 2], arr[:, 3], arr[:, 4]

    @classmethod
    def _commit_all(cls, graph: GridGraph, routes) -> None:
        """Rebuild usage from explicit run lists (diff-array/cumsum)."""
        graph.reset_usage()
        flat = cls._flatten_runs(routes)
        if flat is None:
            return
        _, is_h, line, lo, hi = flat
        nx, ny = graph.nx, graph.ny
        de = np.zeros((nx, ny))
        np.add.at(de, (lo[is_h], line[is_h]), 1.0)
        np.add.at(de, (hi[is_h], line[is_h]), -1.0)
        dn = np.zeros((nx, ny))
        is_v = ~is_h
        np.add.at(dn, (line[is_v], lo[is_v]), 1.0)
        np.add.at(dn, (line[is_v], hi[is_v]), -1.0)
        graph.use_e = np.cumsum(de, axis=0)[: nx - 1, :]
        graph.use_n = np.cumsum(dn, axis=1)[:, : ny - 1]

    @staticmethod
    def _commit_all_reference(graph: GridGraph, routes) -> None:
        """Rebuild usage with the original per-run Python loop."""
        graph.reset_usage()
        for runs in routes:
            for kind, line, a, b in runs:
                if kind == "H":
                    graph.add_horizontal_run(line, a, b)
                else:
                    graph.add_vertical_run(line, a, b)

    @staticmethod
    def _rip(graph: GridGraph, runs) -> None:
        for kind, line, a, b in runs:
            if kind == "H":
                graph.add_horizontal_run(line, a, b, -1.0)
            else:
                graph.add_vertical_run(line, a, b, -1.0)

    def _offending_segments(self, graph: GridGraph, routes) -> list:
        """Indices of segments whose route crosses an overflowed edge."""
        if self.reference:
            return self._offending_segments_reference(graph, routes)
        over_e = graph.use_e > graph.cap_e
        over_n = graph.use_n > graph.cap_n
        any_over = bool(over_e.any() or over_n.any())
        metrics = get_tracer().metrics
        if not any_over:
            return []
        flat = self._flatten_runs(routes)
        if flat is None:
            return []
        seg, is_h, line, lo, hi = flat
        # Prefix-summed overflow masks: a run crosses an overflowed edge
        # iff the prefix count differs across its interval.
        nx, ny = graph.nx, graph.ny
        pe = np.zeros((nx, ny))
        np.cumsum(over_e, axis=0, out=pe[1:, :])
        pn = np.zeros((nx, ny))
        np.cumsum(over_n, axis=1, out=pn[:, 1:])
        hit = np.zeros(len(seg), dtype=bool)
        hit[is_h] = (pe[hi[is_h], line[is_h]] - pe[lo[is_h], line[is_h]]) > 0
        is_v = ~is_h
        hit[is_v] = (pn[line[is_v], hi[is_v]] - pn[line[is_v], lo[is_v]]) > 0
        offenders = np.unique(seg[hit])
        metrics.counter("route.offenders.candidates").inc(len(routes))
        metrics.counter("route.offenders.skipped").inc(len(routes) - len(offenders))
        return offenders

    @staticmethod
    def _offending_segments_reference(graph: GridGraph, routes) -> list:
        """The original full Python scan over every route."""
        over_e = graph.use_e > graph.cap_e
        over_n = graph.use_n > graph.cap_n
        out = []
        for idx, runs in enumerate(routes):
            hit = False
            for kind, line, a, b in runs:
                if kind == "H":
                    if over_e[a:b, line].any():
                        hit = True
                        break
                else:
                    if over_n[line, a:b].any():
                        hit = True
                        break
            if hit:
                out.append(idx)
        return out

    def _parallel(self, graph):
        """Lazily build the pool+shm for this graph; None on failure."""
        if self._par is not None and self._par.graph is graph:
            return self._par
        if self._par_failed:
            return None
        try:
            from repro.parallel.route import ParallelRouter

            self._par = ParallelRouter.create(graph, self._par_workers)
        except Exception:
            self._par = None
        if self._par is None:
            # Degenerate grid or pool construction failure: stay serial
            # for the rest of this route() call.
            self._par_failed = True
        return self._par

    def _reroute_offenders(
        self, graph: GridGraph, routes, i0, j0, i1, j1, *, use_maze: bool
    ) -> int:
        """Rip and re-route segments crossing overflow; returns count."""
        offenders = self._offending_segments(graph, routes)
        if len(offenders) == 0:
            return 0
        # Worst (longest) first would hog resources; shortest first frees
        # hotspots fastest — the usual negotiation ordering.
        if isinstance(offenders, np.ndarray):
            length = np.abs(i1[offenders] - i0[offenders]) + np.abs(
                j1[offenders] - j0[offenders]
            )
            offenders = offenders[np.argsort(length, kind="stable")]
            offenders = offenders[: self.max_maze_nets].tolist()
        else:
            offenders.sort(
                key=lambda s: abs(int(i1[s]) - int(i0[s]))
                + abs(int(j1[s]) - int(j0[s]))
            )
            offenders = offenders[: self.max_maze_nets]
        maze = maze_route_reference if self.reference else maze_route
        # With per-reroute refresh (the default) the costs are maintained
        # incrementally: only the lines touched by a rip/commit are
        # recomputed and re-prefixed, which is bitwise identical to the
        # reference's full rebuild after every rip.
        incremental = self.cost_refresh == 1 and not self.reference
        if incremental and self._par_workers > 1 and len(offenders) >= 8:
            par = self._parallel(graph)
            if par is not None:
                return par.reroute(
                    routes, i0, j0, i1, j1, offenders,
                    use_maze=use_maze, margin=self.maze_window_margin,
                )
        if incremental:
            cost_e, cost_n = graph.cost_arrays()
            pe, pn = prefix_costs(cost_e, cost_n)
            dirty_h: set = set()
            dirty_v: set = set()
        else:
            cost_e = cost_n = pe = pn = None
        rerouted = 0
        for count, s in enumerate(offenders):
            self._rip(graph, routes[s])
            # Fresh costs per reroute (post-rip): identical offenders must
            # see each other's commitments or they all pile into the same
            # detour and the negotiation never converges.
            if incremental:
                # Lines dirtied by the previous commit and by this rip
                # refresh together; consecutive offenders crowd the same
                # hotspots, so the dedup roughly halves the refresh work.
                for kind, line, _a, _b in routes[s]:
                    (dirty_h if kind == "H" else dirty_v).add(line)
                graph.refresh_cost_lines(cost_e, cost_n, pe, pn, dirty_h, dirty_v)
                dirty_h.clear()
                dirty_v.clear()
            elif count % self.cost_refresh == 0 or cost_e is None:
                cost_e, cost_n = graph.cost_arrays()
                pe, pn = prefix_costs(cost_e, cost_n)
            a, b, c, d = int(i0[s]), int(j0[s]), int(i1[s]), int(j1[s])
            z_cost, z_runs = best_z_route(pe, pn, a, b, c, d)
            new_runs = z_runs
            if use_maze:
                margin = self.maze_window_margin
                window = (
                    max(0, min(a, c) - margin),
                    max(0, min(b, d) - margin),
                    min(graph.nx - 1, max(a, c) + margin),
                    min(graph.ny - 1, max(b, d) + margin),
                )
                m_cost, m_runs = maze(cost_e, cost_n, (a, b), (c, d), window)
                if m_runs is not None and m_cost < z_cost:
                    new_runs = m_runs
            # Keep the better of old and new under current costs.
            if runs_cost(pe, pn, routes[s]) < runs_cost(pe, pn, new_runs):
                new_runs = routes[s]
            routes[s] = new_runs
            for kind, line, lo, hi in new_runs:
                if kind == "H":
                    graph.add_horizontal_run(line, lo, hi)
                else:
                    graph.add_vertical_run(line, lo, hi)
            if incremental:
                for kind, line, _a, _b in new_runs:
                    (dirty_h if kind == "H" else dirty_v).add(line)
            rerouted += 1
        return rerouted


def route_design(design, spec: RoutingSpec | None = None, **router_kw) -> RouteResult:
    """Convenience wrapper: route ``design`` over ``spec`` (or its own)."""
    if spec is None:
        spec = design.routing
    if spec is None:
        raise ValueError("design has no routing spec; pass one explicitly")
    return GlobalRouter(spec, **router_kw).route(design)
