"""RUDY — Rectangular Uniform wire DensitY (Spindler & Johannes, DATE'07).

The fast congestion estimate used *inside* the placement loop: each net
smears a demand of ``HPWL x wire_width`` uniformly over its bounding box.
No routing is performed, so it is cheap enough to refresh every few
placement iterations; the evaluation router provides the accurate
post-placement picture.
"""

from __future__ import annotations

import numpy as np

from repro.grids import BinGrid
from repro.wirelength.hpwl import net_bounding_boxes


def rudy_map(
    arrays,
    cx: np.ndarray,
    cy: np.ndarray,
    grid: BinGrid,
    wire_width: float = 1.0,
    reference: bool = False,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Wire-demand density per bin.

    For net ``n`` with bounding box ``w x h`` the demand density inside
    the box is ``wire_width * (w + h) / (w * h)`` — integrating to the
    net's HPWL times the wire width.  Degenerate boxes are padded to one
    bin so flat nets still register demand.

    ``out`` supplies a caller-owned ``(nx, ny)`` buffer reused across
    calls (the inflation loop refreshes this map every round); results
    are bit-identical to the allocating path.
    """
    xl, yl, xh, yh = net_bounding_boxes(arrays, cx, cy)
    counts = np.diff(arrays.net_ptr)
    active = counts >= 2
    xl, yl, xh, yh = xl[active], yl[active], xh[active], yh[active]
    pad_x = np.maximum(grid.bin_w - (xh - xl), 0.0) / 2.0
    pad_y = np.maximum(grid.bin_h - (yh - yl), 0.0) / 2.0
    xl -= pad_x
    xh += pad_x
    yl -= pad_y
    yh += pad_y
    demand = wire_width * ((xh - xl) + (yh - yl))
    box_area = np.maximum((xh - xl) * (yh - yl), 1e-12)
    # values are per-unit-area densities; integrating a box recovers its
    # HPWL * wire_width demand.
    grid_map = grid.rasterize_rects(
        xl, yl, xh, yh, values=demand / box_area, reference=reference, out=out
    )
    grid_map /= grid.bin_area
    return grid_map


def rudy_congestion_metrics(design, wire_width: float = 1.0):
    """Estimator-based :class:`~repro.route.metrics.CongestionMetrics`.

    The graceful-degradation fallback when the evaluation router cannot
    finish (watchdog expiry, injected fault): per routing tile, RUDY wire
    demand ``L = density * bin_area`` is compared against the track
    supply ``S = hcap * bin_h + vcap * bin_w``, and ACE/RC are computed
    over the ``L/S`` ratios exactly as for routed edge congestion.  No
    routing runs, so the numbers are estimates — the flow marks results
    built this way as degraded.
    """
    from repro.route.metrics import ACE_LEVELS, CongestionMetrics, ace

    spec = design.routing
    if spec is None:
        raise ValueError("design has no routing spec; cannot estimate congestion")
    grid = spec.grid
    arrays = design.pin_arrays()
    cx, cy = design.pull_centers()
    demand = rudy_map(arrays, cx, cy, grid, wire_width=wire_width) * grid.bin_area
    supply = spec.hcap * grid.bin_h + spec.vcap * grid.bin_w
    with np.errstate(divide="ignore", invalid="ignore"):
        congestion = np.where(supply > 0, demand / np.maximum(supply, 1e-12), np.inf)
        congestion = np.where((supply <= 0) & (demand <= 0), 0.0, congestion)
    flat = congestion.ravel()
    overflow = np.maximum(demand - supply, 0.0)
    levels = {f: ace(flat, f) for f in ACE_LEVELS}
    peak = (
        float(np.minimum(np.nan_to_num(flat, posinf=10.0), 10.0).max())
        if flat.size
        else 0.0
    )
    return CongestionMetrics(
        total_overflow=float(overflow.sum()),
        max_overflow=float(overflow.max()) if overflow.size else 0.0,
        routed_wirelength=float(demand.sum()),
        ace_levels=levels,
        rc=float(np.mean(list(levels.values()))) if levels else 0.0,
        peak_congestion=peak,
        vias=0,
    )


def pin_density_map(
    arrays,
    cx: np.ndarray,
    cy: np.ndarray,
    grid: BinGrid,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Pins per bin — a proxy for local-routing demand around dense logic.

    ``out`` supplies a caller-owned ``(nx, ny)`` buffer reused across
    calls; a zeroed buffer matches ``grid.zeros()`` bit-identically.
    """
    px, py = arrays.pin_positions(cx, cy)
    ix, iy = grid.index_of(px, py)
    if out is None:
        out = grid.zeros()
    else:
        if out.shape != (grid.nx, grid.ny):
            raise ValueError(
                f"out has shape {out.shape}, grid is ({grid.nx}, {grid.ny})"
            )
        out.fill(0.0)
    np.add.at(out, (ix, iy), 1.0)
    return out
