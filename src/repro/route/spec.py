"""Routing resource specification (the ``.route`` side of a benchmark).

Capacities are expressed in *tracks per tile boundary*.  Routing itself
operates on the horizontal/vertical **aggregates** (the resolution at
which the 2012-era contest routers and congestion estimators work), but
the spec can optionally carry the per-metal-layer breakdown
(:class:`LayerSpec`), which the layer-spreading report and the ``.route``
writer use.  Macros and routing blockages reduce capacity locally via
:meth:`RoutingSpec.block_rect`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import Rect
from repro.grids import BinGrid


@dataclass(frozen=True)
class LayerSpec:
    """One metal layer: routing direction and per-tile track capacity."""

    name: str
    direction: str  # "H" or "V"
    capacity: float  # tracks per tile boundary on this layer

    def __post_init__(self):
        if self.direction not in ("H", "V"):
            raise ValueError(f"layer direction must be H or V, got {self.direction!r}")
        if self.capacity < 0:
            raise ValueError("layer capacity must be non-negative")


class RoutingSpec:
    """Tile grid plus per-tile horizontal/vertical track supply."""

    def __init__(self, grid: BinGrid, hcap: np.ndarray, vcap: np.ndarray, layers=None):
        if hcap.shape != (grid.nx, grid.ny) or vcap.shape != (grid.nx, grid.ny):
            raise ValueError("capacity maps must be (nx, ny)")
        self.grid = grid
        self.hcap = hcap.astype(float)
        self.vcap = vcap.astype(float)
        self.layers = list(layers) if layers else []

    @staticmethod
    def from_layers(area: Rect, nx: int, ny: int, layers) -> "RoutingSpec":
        """Build a spec from per-layer capacities (aggregated per axis)."""
        layers = list(layers)
        hcap = sum(l.capacity for l in layers if l.direction == "H")
        vcap = sum(l.capacity for l in layers if l.direction == "V")
        grid = BinGrid(area, nx, ny)
        return RoutingSpec(
            grid,
            np.full((nx, ny), float(hcap)),
            np.full((nx, ny), float(vcap)),
            layers=layers,
        )

    @staticmethod
    def uniform(
        area: Rect, nx: int, ny: int, hcap: float = 10.0, vcap: float = 10.0
    ) -> "RoutingSpec":
        """Uniform capacity everywhere — the blank-die starting point."""
        grid = BinGrid(area, nx, ny)
        return RoutingSpec(
            grid,
            np.full((nx, ny), float(hcap)),
            np.full((nx, ny), float(vcap)),
        )

    def block_rect(self, rect: Rect, keep_fraction: float = 0.2) -> None:
        """Reduce capacity under ``rect`` (e.g. a macro) proportionally.

        A tile fully covered keeps ``keep_fraction`` of its tracks (macros
        still allow some over-the-block routing on upper layers); partial
        coverage scales linearly with the covered area.
        """
        if not 0.0 <= keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in [0, 1]")
        cover = self.grid.zeros()
        self.grid.add_rect(cover, rect)
        frac = np.clip(cover / self.grid.bin_area, 0.0, 1.0)
        scale = 1.0 - frac * (1.0 - keep_fraction)
        self.hcap *= scale
        self.vcap *= scale

    def total_supply(self) -> float:
        return float(self.hcap.sum() + self.vcap.sum())

    def copy(self) -> "RoutingSpec":
        return RoutingSpec(
            self.grid, self.hcap.copy(), self.vcap.copy(), layers=list(self.layers)
        )
