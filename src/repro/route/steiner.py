"""Net decomposition into two-pin connections.

The router needs each multi-pin net broken into tile-to-tile two-pin
segments.  Degree-2 nets are trivial; degree-3 nets get the optimal
single Steiner point (the coordinate-wise median); larger nets use a
Manhattan-distance minimum spanning tree (Prim, O(k^2) vectorized) —
within 1.5x of the rectilinear Steiner minimum by the classic bound,
which is accurate enough to rank placements.

Two entry points:

* :func:`decompose_net` — the per-net reference, one net at a time.
* :func:`decompose_all` — the hot path: one vectorized pass over a whole
  CSR pin table.  Tile dedup and the degree-2/3 cases are batched across
  every net; only degree>=4 nets run Prim, and those results are
  memoized on the net's *pin-tile signature* (the sorted unique tile
  keys), so repeated route calls — flow loops, look-ahead congestion
  maps, benchmark sweeps — reuse Steiner/MST topologies as long as the
  net's pins stay in the same tiles.  Output ordering is identical to
  running ``decompose_net`` net by net.
"""

from __future__ import annotations

import numpy as np

# Memoized MST decompositions keyed on the pin-tile signature (the
# ``tobytes`` of the net's sorted unique packed tile keys).  Content
# keyed, so it never goes stale; bounded, and cleared wholesale when
# full (route topologies are cheap to recompute relative to churn).
_MST_CACHE: dict = {}
_MST_CACHE_MAX = 65536


def clear_decompose_cache() -> None:
    """Drop all memoized MST decompositions."""
    _MST_CACHE.clear()


def decompose_cache_size() -> int:
    return len(_MST_CACHE)


def manhattan_mst(xs: np.ndarray, ys: np.ndarray):
    """Edges ``(a, b)`` of a Manhattan MST over the given points."""
    k = len(xs)
    if k <= 1:
        return []
    in_tree = np.zeros(k, dtype=bool)
    dist = np.full(k, np.inf)
    parent = np.full(k, -1, dtype=np.int64)
    in_tree[0] = True
    d0 = np.abs(xs - xs[0]) + np.abs(ys - ys[0])
    dist = np.minimum(dist, d0)
    parent[:] = 0
    dist[0] = np.inf
    edges = []
    for _ in range(k - 1):
        # dist of in-tree points is pinned at inf, so no masking needed.
        nxt = int(np.argmin(dist))
        edges.append((int(parent[nxt]), nxt))
        in_tree[nxt] = True
        d = np.abs(xs - xs[nxt]) + np.abs(ys - ys[nxt])
        closer = (~in_tree) & (d < dist)
        dist[closer] = d[closer]
        parent[closer] = nxt
        dist[nxt] = np.inf
    return edges


def decompose_net(tile_x: np.ndarray, tile_y: np.ndarray):
    """Two-pin tile connections covering all of a net's pin tiles.

    Input arrays are pin tile indices; duplicates are removed first.
    Returns a list of ``(i0, j0, i1, j1)`` tuples (possibly empty when the
    net fits in one tile).
    """
    pts = np.unique(np.stack([tile_x, tile_y], axis=1), axis=0)
    k = len(pts)
    if k <= 1:
        return []
    xs = pts[:, 0].astype(float)
    ys = pts[:, 1].astype(float)
    if k == 2:
        return [(int(xs[0]), int(ys[0]), int(xs[1]), int(ys[1]))]
    if k == 3:
        # Median point is the optimal single Steiner point for 3 pins.
        sx = int(np.median(xs))
        sy = int(np.median(ys))
        out = []
        for x, y in zip(xs, ys):
            if int(x) != sx or int(y) != sy:
                out.append((sx, sy, int(x), int(y)))
        return out
    edges = manhattan_mst(xs, ys)
    return [
        (int(xs[a]), int(ys[a]), int(xs[b]), int(ys[b])) for a, b in edges
    ]


def _mst_segments(keys: np.ndarray, ux: np.ndarray, uy: np.ndarray, stats: dict):
    """Memoized Prim decomposition of one degree>=4 net (unique tiles)."""
    sig = keys.tobytes()
    segs = _MST_CACHE.get(sig)
    if segs is None:
        xs = ux.astype(float)
        ys = uy.astype(float)
        edges = manhattan_mst(xs, ys)
        segs = np.asarray(
            [(int(xs[a]), int(ys[a]), int(xs[b]), int(ys[b])) for a, b in edges],
            dtype=np.int64,
        )
        if len(_MST_CACHE) >= _MST_CACHE_MAX:
            _MST_CACHE.clear()
        _MST_CACHE[sig] = segs
        stats["mst_misses"] += 1
    else:
        stats["mst_hits"] += 1
    return segs


def decompose_all(tile_x: np.ndarray, tile_y: np.ndarray, net_ptr: np.ndarray):
    """Vectorized :func:`decompose_net` over every net of a CSR pin table.

    ``net_ptr[n]:net_ptr[n+1]`` slices the pin tile arrays for net ``n``.
    Returns ``(i0, j0, i1, j1, stats)`` — four independent int64 arrays
    of two-pin connections in exactly the order the per-net reference
    loop would emit them, plus a stats dict (counts of nets handled by
    the batched degree-2/3 paths and MST memo hits/misses).
    """
    stats = {"deg2": 0, "deg3": 0, "mst_hits": 0, "mst_misses": 0}
    empty = lambda: np.zeros(0, dtype=np.int64)  # noqa: E731
    num_nets = len(net_ptr) - 1
    num_pins = len(tile_x)
    if num_pins == 0 or num_nets == 0:
        return empty(), empty(), empty(), empty(), stats

    # Unique (net, tile) pairs, tiles in lexicographic (x, y) order within
    # each net — the same order np.unique gives the reference path.
    tile_x = np.asarray(tile_x, dtype=np.int64)
    tile_y = np.asarray(tile_y, dtype=np.int64)
    net_id = np.repeat(np.arange(num_nets, dtype=np.int64), np.diff(net_ptr))
    key = (tile_x << 32) | tile_y
    order = np.lexsort((key, net_id))
    ks = key[order]
    ns = net_id[order]
    keep = np.ones(num_pins, dtype=bool)
    keep[1:] = (ns[1:] != ns[:-1]) | (ks[1:] != ks[:-1])
    uk = ks[keep]
    un = ns[keep]
    ucnt = np.bincount(un, minlength=num_nets)
    uptr = np.zeros(num_nets + 1, dtype=np.int64)
    np.cumsum(ucnt, out=uptr[1:])
    ux = uk >> 32
    uy = uk & 0xFFFFFFFF

    nets2 = np.flatnonzero(ucnt == 2)
    nets3 = np.flatnonzero(ucnt == 3)
    nets4 = np.flatnonzero(ucnt >= 4)
    stats["deg2"] = len(nets2)
    stats["deg3"] = len(nets3)

    # Degree-3 Steiner point: coordinates are sorted within the net, so
    # the median x is the middle entry; y needs a per-net 3-sort.
    if len(nets3):
        g3 = uptr[nets3][:, None] + np.arange(3)
        x3 = ux[g3]
        y3 = uy[g3]
        sx = x3[:, 1]
        sy = np.sort(y3, axis=1)[:, 1]
        emit3 = (x3 != sx[:, None]) | (y3 != sy[:, None])
        n3seg = emit3.sum(axis=1)
    else:
        x3 = y3 = sx = sy = emit3 = None
        n3seg = np.zeros(0, dtype=np.int64)

    nseg = np.zeros(num_nets, dtype=np.int64)
    nseg[nets2] = 1
    if len(nets3):
        nseg[nets3] = n3seg
    nseg[nets4] = ucnt[nets4] - 1
    seg_ptr = np.zeros(num_nets + 1, dtype=np.int64)
    np.cumsum(nseg, out=seg_ptr[1:])
    total = int(seg_ptr[-1])
    if total == 0:
        return empty(), empty(), empty(), empty(), stats
    out = np.empty((total, 4), dtype=np.int64)

    if len(nets2):
        starts = uptr[nets2]
        rows = seg_ptr[nets2]
        out[rows, 0] = ux[starts]
        out[rows, 1] = uy[starts]
        out[rows, 2] = ux[starts + 1]
        out[rows, 3] = uy[starts + 1]
    if len(nets3):
        # Scatter each net's segments (steiner -> pin) in pin order.
        rows = (seg_ptr[nets3][:, None] + np.cumsum(emit3, axis=1) - 1)[emit3]
        out[rows, 0] = np.broadcast_to(sx[:, None], emit3.shape)[emit3]
        out[rows, 1] = np.broadcast_to(sy[:, None], emit3.shape)[emit3]
        out[rows, 2] = x3[emit3]
        out[rows, 3] = y3[emit3]
    for n in nets4:
        a, b = uptr[n], uptr[n + 1]
        segs = _mst_segments(uk[a:b], ux[a:b], uy[a:b], stats)
        out[seg_ptr[n] : seg_ptr[n] + len(segs)] = segs
    return (
        np.ascontiguousarray(out[:, 0]),
        np.ascontiguousarray(out[:, 1]),
        np.ascontiguousarray(out[:, 2]),
        np.ascontiguousarray(out[:, 3]),
        stats,
    )
