"""Net decomposition into two-pin connections.

The router needs each multi-pin net broken into tile-to-tile two-pin
segments.  Degree-2 nets are trivial; degree-3 nets get the optimal
single Steiner point (the coordinate-wise median); larger nets use a
Manhattan-distance minimum spanning tree (Prim, O(k^2) vectorized) —
within 1.5x of the rectilinear Steiner minimum by the classic bound,
which is accurate enough to rank placements.
"""

from __future__ import annotations

import numpy as np


def manhattan_mst(xs: np.ndarray, ys: np.ndarray):
    """Edges ``(a, b)`` of a Manhattan MST over the given points."""
    k = len(xs)
    if k <= 1:
        return []
    in_tree = np.zeros(k, dtype=bool)
    dist = np.full(k, np.inf)
    parent = np.full(k, -1, dtype=np.int64)
    in_tree[0] = True
    d0 = np.abs(xs - xs[0]) + np.abs(ys - ys[0])
    dist = np.minimum(dist, d0)
    parent[:] = 0
    dist[0] = np.inf
    edges = []
    for _ in range(k - 1):
        nxt = int(np.argmin(np.where(in_tree, np.inf, dist)))
        edges.append((int(parent[nxt]), nxt))
        in_tree[nxt] = True
        d = np.abs(xs - xs[nxt]) + np.abs(ys - ys[nxt])
        closer = (~in_tree) & (d < dist)
        dist[closer] = d[closer]
        parent[closer] = nxt
        dist[nxt] = np.inf
    return edges


def decompose_net(tile_x: np.ndarray, tile_y: np.ndarray):
    """Two-pin tile connections covering all of a net's pin tiles.

    Input arrays are pin tile indices; duplicates are removed first.
    Returns a list of ``(i0, j0, i1, j1)`` tuples (possibly empty when the
    net fits in one tile).
    """
    pts = np.unique(np.stack([tile_x, tile_y], axis=1), axis=0)
    k = len(pts)
    if k <= 1:
        return []
    xs = pts[:, 0].astype(float)
    ys = pts[:, 1].astype(float)
    if k == 2:
        return [(int(xs[0]), int(ys[0]), int(xs[1]), int(ys[1]))]
    if k == 3:
        # Median point is the optimal single Steiner point for 3 pins.
        sx = int(np.median(xs))
        sy = int(np.median(ys))
        out = []
        for x, y in zip(xs, ys):
            if int(x) != sx or int(y) != sy:
                out.append((sx, sy, int(x), int(y)))
        return out
    edges = manhattan_mst(xs, ys)
    return [
        (int(xs[a]), int(ys[a]), int(xs[b]), int(ys[b])) for a, b in edges
    ]
