"""Placement-as-a-service: a persistent job queue + worker fleet + HTTP API.

``repro.serve`` turns the one-shot :class:`~repro.flow.NTUplace4H` flow
into a long-running service (ROADMAP item: production-scale serving):

* :mod:`repro.serve.schema` — versioned job-record schema and lifecycle
  state machine.
* :mod:`repro.serve.store` — SQLite-backed persistent priority queue
  with atomic multi-process claims, a JSONL mutation journal, and
  degrade-don't-crash failure handling (corruption quarantine +
  journal rebuild, disk-full read-only mode).
* :mod:`repro.serve.journal` — the append-only journal itself plus the
  invariant checker the chaos harness gates on.
* :mod:`repro.serve.worker` — the per-process job runner: builds the
  design, runs the flow with pinned per-job workers, streams progress
  via a live JSONL trace, heartbeats, honours cooperative cancel, and
  resumes crashed attempts from their last stage checkpoint.
* :mod:`repro.serve.engine` — the worker supervisor: crash/stall/
  timeout requeue with bounded retries, cancel escalation, respawn,
  and graceful drain.
* :mod:`repro.serve.ratelimit` — per-client token buckets behind the
  server's admission control.
* :mod:`repro.serve.server` — stdlib HTTP API (submit/status/result/
  cancel/list/trace/drain) with the 429/503 overload contract and
  ``/healthz`` / ``/readyz`` probes.
* :mod:`repro.serve.client` — urllib client used by the CLI, the
  load-test bench, and CI; retries transient failures with backoff +
  jitter and survives server restarts mid-wait.

See ``docs/serving.md`` for the full API, lifecycle, and operations
reference.
"""

from repro.serve.client import ServeAPIError, ServeClient
from repro.serve.engine import ServeSettings, WorkerSupervisor
from repro.serve.journal import JobJournal, check_invariants
from repro.serve.ratelimit import RateLimiter, TokenBucket
from repro.serve.schema import (
    JOB_SCHEMA_VERSION,
    JOB_STATES,
    TERMINAL_STATES,
    build_job_schema,
    new_job_record,
    validate_job_record,
)
from repro.serve.server import JobServer
from repro.serve.store import (
    JobStore,
    JobStoreError,
    JobStoreReadOnly,
    JobStoreWriteError,
)
from repro.serve.worker import run_job, worker_loop

__all__ = [
    "JOB_SCHEMA_VERSION",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobJournal",
    "JobServer",
    "JobStore",
    "JobStoreError",
    "JobStoreReadOnly",
    "JobStoreWriteError",
    "RateLimiter",
    "ServeAPIError",
    "ServeClient",
    "ServeSettings",
    "TokenBucket",
    "WorkerSupervisor",
    "build_job_schema",
    "check_invariants",
    "new_job_record",
    "run_job",
    "validate_job_record",
    "worker_loop",
]
