"""Placement-as-a-service: a persistent job queue + worker fleet + HTTP API.

``repro.serve`` turns the one-shot :class:`~repro.flow.NTUplace4H` flow
into a long-running service (ROADMAP item: production-scale serving):

* :mod:`repro.serve.schema` — versioned job-record schema and lifecycle
  state machine.
* :mod:`repro.serve.store` — SQLite-backed persistent priority queue
  with atomic multi-process claims.
* :mod:`repro.serve.worker` — the per-process job runner: builds the
  design, runs the flow with pinned per-job workers, streams progress
  via a live JSONL trace, heartbeats, honours cooperative cancel, and
  resumes crashed attempts from their last stage checkpoint.
* :mod:`repro.serve.engine` — the worker supervisor: crash/stall/
  timeout requeue with bounded retries, cancel escalation, respawn.
* :mod:`repro.serve.server` — stdlib HTTP API (submit/status/result/
  cancel/list/trace).
* :mod:`repro.serve.client` — urllib client used by the CLI, the
  load-test bench, and CI.

See ``docs/serving.md`` for the full API and lifecycle reference.
"""

from repro.serve.client import ServeAPIError, ServeClient
from repro.serve.engine import ServeSettings, WorkerSupervisor
from repro.serve.schema import (
    JOB_SCHEMA_VERSION,
    JOB_STATES,
    TERMINAL_STATES,
    build_job_schema,
    new_job_record,
    validate_job_record,
)
from repro.serve.server import JobServer
from repro.serve.store import JobStore, JobStoreError
from repro.serve.worker import run_job, worker_loop

__all__ = [
    "JOB_SCHEMA_VERSION",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobServer",
    "JobStore",
    "JobStoreError",
    "ServeAPIError",
    "ServeClient",
    "ServeSettings",
    "WorkerSupervisor",
    "build_job_schema",
    "new_job_record",
    "run_job",
    "validate_job_record",
    "worker_loop",
]
