"""Resilient urllib client for the serve HTTP API (stdlib only).

Everything the CLI, the load-test bench, and the CI smoke job need to
talk to a :class:`~repro.serve.server.JobServer`: submit, poll, tail
the live trace, cancel, drain, and wait for terminal states.  Errors
come back as :class:`ServeAPIError` carrying the HTTP status, the
server's ``error`` message (or the raw body when the response is not
JSON — a proxy's HTML error page must not vanish into ``HTTP 502``),
and any ``Retry-After`` the server sent.

The client is built for an overloaded or restarting server:

* every request retries *transient* failures — connection errors
  (status 0), 429, and 5xx — with capped exponential backoff and full
  jitter, honoring ``Retry-After`` when present.  The injected fault
  points never fire after a store write, and real connection failures
  happen before one, so retrying a submit cannot duplicate a job.
* the polling loops (:meth:`wait`, :meth:`wait_all`,
  :meth:`follow_trace`/:meth:`stream`) additionally tolerate transient
  errors until *their own* deadline, so they survive a server restart
  that outlasts the per-request retry budget.
* :meth:`wait_all` pages through ``/jobs`` (the server clamps
  ``limit``), so waiting on more jobs than one page holds cannot
  silently miss any.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from urllib.parse import quote, urlencode

from repro.resilience.faults import check_fault
from repro.serve.schema import TERMINAL_STATES

#: The server's hard cap on ``GET /jobs?limit=`` (keep in sync with
#: :data:`repro.serve.server.MAX_LIST_LIMIT`).
LIST_PAGE = 1000


class ServeAPIError(RuntimeError):
    """An HTTP-level failure talking to the job server."""

    def __init__(self, status: int, message: str, *,
                 body: str | None = None,
                 retry_after: float | None = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        #: Raw response body (useful when the server spoke non-JSON).
        self.body = body
        #: Parsed ``Retry-After`` seconds, when the server sent one.
        self.retry_after = retry_after

    @property
    def transient(self) -> bool:
        """Whether retrying later may succeed (conn error, 429, 5xx)."""
        return self.status == 0 or self.status == 429 or self.status >= 500


class ServeClient:
    """JSON-over-HTTP client for one job server."""

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 30.0,
        retries: int = 4,
        backoff: float = 0.25,
        max_backoff: float = 4.0,
        client_id: str | None = None,
    ):
        self.url = url.rstrip("/")
        self.timeout = timeout
        #: Transparent retries per request on transient failures.
        self.retries = max(0, int(retries))
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        #: Sent as ``X-Client-Id`` — the server's rate-limit key.
        self.client_id = client_id

    # -- plumbing ------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        retry: bool = True,
        request_timeout: float | None = None,
    ) -> dict:
        attempts = (self.retries if retry else 0) + 1
        for attempt in range(attempts):
            try:
                return self._request_once(
                    method, path, body, request_timeout=request_timeout
                )
            except ServeAPIError as exc:
                if not exc.transient or attempt + 1 >= attempts:
                    raise
                # Capped exponential backoff with full jitter; a
                # server-sent Retry-After is a floor, not a suggestion.
                delay = random.random() * min(
                    self.max_backoff, self.backoff * (2 ** attempt)
                )
                if exc.retry_after is not None:
                    delay = max(delay, float(exc.retry_after))
                time.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(
        self,
        method: str,
        path: str,
        body: dict | None,
        *,
        request_timeout: float | None = None,
    ) -> dict:
        if check_fault("serve.client_conn_reset") is not None:
            # Simulated network failure *before* the request is sent,
            # so a retried submit can never have reached the server.
            raise ServeAPIError(
                0,
                "connection reset by peer "
                "(injected fault: serve.client_conn_reset)",
            )
        data = None
        headers = {"Accept": "application/json"}
        if self.client_id:
            headers["X-Client-Id"] = self.client_id
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        timeout = self.timeout if request_timeout is None else request_timeout
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise self._http_error(exc) from None
        except urllib.error.URLError as exc:
            raise ServeAPIError(
                0, f"cannot reach {self.url}: {exc.reason}"
            ) from None
        except OSError as exc:
            # Resets mid-read and socket timeouts surface as bare
            # OSErrors, not URLError.
            raise ServeAPIError(
                0, f"cannot reach {self.url}: {exc}"
            ) from None

    def _http_error(self, exc: urllib.error.HTTPError) -> ServeAPIError:
        raw = b""
        try:
            raw = exc.read()
        except OSError:
            pass
        text = raw.decode("utf-8", "replace")
        retry_after: float | None = None
        header = exc.headers.get("Retry-After") if exc.headers else None
        if header:
            try:
                retry_after = float(header)
            except ValueError:
                pass
        message: str | None = None
        try:
            detail = json.loads(text)
        except ValueError:
            detail = None
        if isinstance(detail, dict) and "error" in detail:
            message = str(detail["error"])
            if retry_after is None and detail.get("retry_after") is not None:
                retry_after = float(detail["retry_after"])
        if message is None:
            # Non-JSON error (a proxy page, a half-written response):
            # surface the status plus the raw body instead of eating it.
            snippet = " ".join(text.split())[:200]
            message = snippet or str(exc.reason or exc)
        return ServeAPIError(
            exc.code, message, body=text or None, retry_after=retry_after
        )

    # -- API -----------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/health")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def ready(self) -> bool:
        """Whether ``/readyz`` reports ready (False on 503)."""
        try:
            self._request("GET", "/readyz", retry=False)
        except ServeAPIError as exc:
            if exc.status == 503:
                return False
            raise
        return True

    def submit(
        self,
        design: dict,
        *,
        options: dict | None = None,
        priority: int = 0,
        max_retries: int | None = None,
    ) -> dict:
        body: dict = {"design": design, "priority": priority}
        if options:
            body["options"] = options
        if max_retries is not None:
            body["max_retries"] = max_retries
        return self._request("POST", "/jobs", body)

    def get(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{quote(job_id)}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{quote(job_id)}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{quote(job_id)}/cancel")

    def drain(self, timeout: float | None = None) -> dict:
        """Drain the server (blocks while it waits for in-flight jobs)."""
        body: dict = {}
        if timeout is not None:
            body["timeout"] = float(timeout)
        wait = 60.0 if timeout is None else float(timeout) + 30.0
        return self._request(
            "POST", "/drain", body,
            retry=False, request_timeout=max(wait, self.timeout),
        )

    def list(self, *, state: str | None = None, limit: int = 100,
             offset: int = 0) -> list:
        query: dict = {"limit": limit}
        if state:
            query["state"] = state
        if offset:
            query["offset"] = offset
        path = "/jobs?" + urlencode(query)
        return self._request("GET", path)["jobs"]

    def list_all(self, *, state: str | None = None) -> list:
        """Every record, paging past the server's ``limit`` clamp."""
        out: list = []
        offset = 0
        while True:
            page = self.list(state=state, limit=LIST_PAGE, offset=offset)
            out.extend(page)
            if len(page) < LIST_PAGE:
                return out
            offset += len(page)

    def tail_trace(self, job_id: str, *, offset: int = 0) -> dict:
        path = f"/jobs/{quote(job_id)}/trace?" + urlencode(
            {"offset": offset}
        )
        return self._request("GET", path)

    # -- waiting -------------------------------------------------------
    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 300.0,
        poll: float = 0.25,
    ) -> dict:
        """Block until the job reaches a terminal state; returns it.

        Transient API failures (the server restarting, 5xx, 429) are
        tolerated until the deadline — only the deadline or a
        non-transient error ends the wait early.
        """
        deadline = time.monotonic() + timeout
        state = "unknown"
        while True:
            try:
                record = self.get(job_id)
            except ServeAPIError as exc:
                if not exc.transient or time.monotonic() > deadline:
                    raise
                time.sleep(poll)
                continue
            state = record["state"]
            if state in TERMINAL_STATES:
                return record
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {state} after {timeout:.0f}s"
                )
            time.sleep(poll)

    def wait_all(
        self,
        job_ids: list,
        *,
        timeout: float = 600.0,
        poll: float = 0.25,
    ) -> dict:
        """Wait for many jobs; returns ``{job_id: final record}``.

        Sweeps via paged ``/jobs`` listings (a handful of requests per
        sweep, not one per job), with a per-id ``get`` fallback for
        anything a listing missed, and survives server restarts
        mid-wait like :meth:`wait` does.
        """
        pending = set(job_ids)
        done: dict = {}
        deadline = time.monotonic() + timeout
        while pending:
            try:
                listed = {r["job_id"]: r for r in self.list_all()}
                for job_id in list(pending):
                    record = listed.get(job_id)
                    if record is None:
                        record = self.get(job_id)
                    if record["state"] in TERMINAL_STATES:
                        done[job_id] = record
                        pending.discard(job_id)
            except ServeAPIError as exc:
                if not exc.transient or time.monotonic() > deadline:
                    raise
            if pending:
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"{len(pending)} jobs not terminal after "
                        f"{timeout:.0f}s: {sorted(pending)[:5]}..."
                    )
                time.sleep(poll)
        return done

    def stream(
        self,
        job_id: str,
        *,
        timeout: float = 300.0,
        poll: float = 0.2,
    ):
        """Yield trace lines live until the job goes terminal.

        Survives a server restart mid-stream: transient failures wait
        and re-poll, and the server resets the offset when a new
        attempt started a fresh trace file.
        """
        offset = 0
        deadline = time.monotonic() + timeout
        while True:
            try:
                out = self.tail_trace(job_id, offset=offset)
            except ServeAPIError as exc:
                if not exc.transient or time.monotonic() > deadline:
                    raise
                time.sleep(poll)
                continue
            offset = out["offset"]
            yield from out["lines"]
            if out["state"] in TERMINAL_STATES:
                # One final drain in case lines landed after the state
                # flipped.
                final = self.tail_trace(job_id, offset=offset)
                yield from final["lines"]
                return
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} trace stream timed out")
            time.sleep(poll)

    # ``follow_trace`` is the operator-facing name (docs, CLI); it is
    # the same generator as :meth:`stream`.
    follow_trace = stream
