"""Thin urllib client for the serve HTTP API (stdlib only).

Everything the CLI, the load-test bench, and the CI smoke job need to
talk to a :class:`~repro.serve.server.JobServer`: submit, poll, tail
the live trace, cancel, and wait for terminal states.  Errors come
back as :class:`ServeAPIError` carrying the HTTP status and the
server's ``error`` message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from urllib.parse import quote, urlencode

from repro.serve.schema import TERMINAL_STATES


class ServeAPIError(RuntimeError):
    """An HTTP-level failure talking to the job server."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """JSON-over-HTTP client for one job server."""

    def __init__(self, url: str, *, timeout: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------
    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))
                message = detail.get("error", str(exc))
            except (ValueError, UnicodeDecodeError):
                message = str(exc)
            raise ServeAPIError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServeAPIError(0, f"cannot reach {self.url}: {exc.reason}") \
                from None

    # -- API -----------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/health")

    def submit(
        self,
        design: dict,
        *,
        options: dict | None = None,
        priority: int = 0,
        max_retries: int | None = None,
    ) -> dict:
        body: dict = {"design": design, "priority": priority}
        if options:
            body["options"] = options
        if max_retries is not None:
            body["max_retries"] = max_retries
        return self._request("POST", "/jobs", body)

    def get(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{quote(job_id)}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{quote(job_id)}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{quote(job_id)}/cancel")

    def list(self, *, state: str | None = None, limit: int = 100) -> list:
        query = {"limit": limit}
        if state:
            query["state"] = state
        path = "/jobs?" + urlencode(query)
        return self._request("GET", path)["jobs"]

    def tail_trace(self, job_id: str, *, offset: int = 0) -> dict:
        path = f"/jobs/{quote(job_id)}/trace?" + urlencode(
            {"offset": offset}
        )
        return self._request("GET", path)

    # -- waiting -------------------------------------------------------
    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 300.0,
        poll: float = 0.25,
    ) -> dict:
        """Block until the job reaches a terminal state; returns it."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.get(job_id)
            if record["state"] in TERMINAL_STATES:
                return record
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll)

    def wait_all(
        self,
        job_ids: list,
        *,
        timeout: float = 600.0,
        poll: float = 0.25,
    ) -> dict:
        """Wait for many jobs; returns ``{job_id: final record}``.

        Polls via ``/jobs`` listings (one request per sweep, not one
        per job) so waiting on hundreds of jobs stays cheap.
        """
        pending = set(job_ids)
        done: dict = {}
        deadline = time.monotonic() + timeout
        while pending:
            listed = {
                r["job_id"]: r
                for r in self.list(limit=max(1000, len(job_ids) * 2))
            }
            for job_id in list(pending):
                record = listed.get(job_id)
                if record is None:
                    record = self.get(job_id)
                if record["state"] in TERMINAL_STATES:
                    done[job_id] = record
                    pending.discard(job_id)
            if pending:
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"{len(pending)} jobs not terminal after "
                        f"{timeout:.0f}s: {sorted(pending)[:5]}..."
                    )
                time.sleep(poll)
        return done

    def stream(
        self,
        job_id: str,
        *,
        timeout: float = 300.0,
        poll: float = 0.2,
    ):
        """Yield trace lines live until the job goes terminal."""
        offset = 0
        deadline = time.monotonic() + timeout
        while True:
            out = self.tail_trace(job_id, offset=offset)
            offset = out["offset"]
            yield from out["lines"]
            if out["state"] in TERMINAL_STATES:
                # One final drain in case lines landed after the state
                # flipped.
                final = self.tail_trace(job_id, offset=offset)
                yield from final["lines"]
                return
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} trace stream timed out")
            time.sleep(poll)
